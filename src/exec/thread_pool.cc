#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

namespace wasp::exec {

std::uint64_t fork_seed(std::uint64_t base_seed, std::uint64_t index) {
  // splitmix64 finalizer over the (base, index) pair. Mixing the index with
  // the golden-ratio increment before the finalizer keeps index 0 from
  // degenerating to a plain hash of the base seed.
  std::uint64_t z = base_seed + (index + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

ThreadPool::ThreadPool(int workers) {
  const int n = std::max(1, workers);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

int ThreadPool::hardware_workers() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Capture per-index exceptions and rethrow the lowest index so the error
  // surfaced does not depend on the schedule.
  std::vector<std::exception_ptr> errors(n);
  {
    ThreadPool pool(static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs), n)));
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([i, &fn, &errors] {
        try {
          fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  for (const std::exception_ptr& e : errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

}  // namespace wasp::exec
