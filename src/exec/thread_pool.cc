#include "exec/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/log.h"

namespace wasp::exec {
namespace {

// region_claim_ packs (generation << 32) | next-chunk-index. Even
// generations are open regions; the odd generation between region G and
// region G+2 marks the publish window, during which no claim can succeed.
constexpr std::uint64_t kGenShift = 32;
constexpr std::uint64_t kIndexMask = 0xffff'ffffULL;

inline std::uint64_t claim_gen(std::uint64_t claim) {
  return claim >> kGenShift;
}
inline std::size_t claim_index(std::uint64_t claim) {
  return static_cast<std::size_t>(claim & kIndexMask);
}

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

// Bounded spin between pause and sleep. Yields periodically so that on an
// oversubscribed host (more threads than cores) a spinning worker cannot
// starve the thread that is producing the work it waits for.
struct SpinWait {
  int spins = 0;
  void pause() {
    if (++spins % 64 == 0) {
      std::this_thread::yield();
    } else {
      cpu_relax();
    }
  }
};

inline std::uint64_t stats_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::uint64_t fork_seed(std::uint64_t base_seed, std::uint64_t index) {
  // splitmix64 finalizer over the (base, index) pair. Mixing the index with
  // the golden-ratio increment before the finalizer keeps index 0 from
  // degenerating to a plain hash of the base seed.
  std::uint64_t z = base_seed + (index + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

ThreadPool::ThreadPool(int workers)
    : counters_(static_cast<std::size_t>(std::max(1, workers)) + 1) {
  const int n = std::max(1, workers);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Stats slot 0 belongs to the controller thread; workers take 1..n.
    const std::size_t slot = static_cast<std::size_t>(i) + 1;
    threads_.emplace_back([this, slot] { worker_loop(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_.store(true, std::memory_order_release);
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
  if (first_error_ != nullptr) {
    // Can't throw from a destructor, but a captured task error must not
    // vanish either: surface it on the log before dropping it.
    try {
      std::rethrow_exception(first_error_);
    } catch (const std::exception& e) {
      log(LogLevel::kError,
          "ThreadPool destroyed with an unretrieved task error "
          "(call wait_idle() to rethrow it): ",
          e.what());
    } catch (...) {
      log(LogLevel::kError,
          "ThreadPool destroyed with an unretrieved non-std task error "
          "(call wait_idle() to rethrow it)");
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    queue_peak_ = std::max(queue_peak_, static_cast<std::uint64_t>(queue_.size()));
    queue_has_work_.store(true, std::memory_order_release);
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

// Region claim protocol. region_claim_ packs (gen << 32) | next-index in
// ONE atomic word, so a claim -- a CAS that bumps the index -- validates the
// generation and the index bound atomically. The controller publishes a
// region in this order (G = previous even generation):
//
//   1. region_claim_ := (G+1) << 32 (release)   odd gen: claims impossible
//   2. region_done_ := 0, region_n_ := n (release), region_fn_ := &fn
//   3. region_claim_ := (G+2) << 32 (release, under mu_)   claim window opens
//
// A claimer latches the current even generation g and its n, then claims
// index i only via compare_exchange on the (g, i) word it last read. That
// closes the classic straggler race of a bare fetch_add counter: a stale
// thread still holding region G state cannot accidentally consume -- or
// out-of-range-run -- an index of region G+2, because its expected word has
// the wrong generation and the CAS fails.
//
// Why the latched `n` always matches the claimed generation: region_n_ is
// only overwritten during a publish, which first flips region_claim_ to an
// odd generation (step 1, release) before touching region_n_ (step 2). A
// claimer that acquire-reads the NEW n value therefore also observes the
// park (happens-before through the release/acquire pair on region_n_), so
// its next CAS -- whose expected word still carries the old even generation
// -- must fail. A successful CAS thus implies the n it validated against
// belonged to the same generation it claimed from.
//
// The controller returns from parallel_for only once region_done_ reached n.
// Each index is claimed exactly once (CAS) and bumps region_done_ exactly
// once, so at that point every chunk body has finished and `fn` (often a
// lambda on the controller's stack) outlives every dereference. A later
// publish therefore implies the previous region completed, which is why a
// worker observing a generation change may simply return.
//
// Generations wrap after 2^31 publishes; a stale claim word surviving an
// exact wrap is not a realistic schedule (workers re-read the word every
// loop iteration).
std::uint64_t ThreadPool::run_region_chunks(std::size_t stats_slot) {
  ThreadCounters& counters = counters_[stats_slot];
  const bool timing = stats_timing_.load(std::memory_order_relaxed);
  SpinWait spin;
  std::uint64_t c = region_claim_.load(std::memory_order_acquire);
  while (claim_gen(c) % 2 != 0) {  // mid-publish: wait for the window to open
    spin.pause();
    c = region_claim_.load(std::memory_order_acquire);
  }
  const std::uint64_t g = claim_gen(c);
  const std::size_t n = region_n_.load(std::memory_order_acquire);
  for (;;) {
    if (claim_gen(c) != g) return g;  // superseded => region g completed
    const std::size_t i = claim_index(c);
    if (i < n) {
      if (region_claim_.compare_exchange_weak(c, c + 1,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        const RegionFn* fn = region_fn_.load(std::memory_order_acquire);
        const std::uint64_t start = timing ? stats_now_ns() : 0;
        try {
          (*fn)(i);
        } catch (...) {
          std::unique_lock<std::mutex> lock(mu_);
          if (region_error_ == nullptr || i < region_error_index_) {
            region_error_index_ = i;
            region_error_ = std::current_exception();
          }
        }
        counters.chunks.fetch_add(1, std::memory_order_relaxed);
        if (timing) {
          counters.busy_ns.fetch_add(stats_now_ns() - start,
                                     std::memory_order_relaxed);
        }
        region_done_.fetch_add(1, std::memory_order_release);
        c = region_claim_.load(std::memory_order_acquire);
      }
      continue;  // CAS failure reloaded c; revalidate from the top
    }
    if (region_done_.load(std::memory_order_acquire) >= n) return g;
    spin.pause();
    c = region_claim_.load(std::memory_order_acquire);
  }
}

void ThreadPool::parallel_for(std::size_t n, const RegionFn& fn) {
  if (n == 0) return;
  // Chunk indices live in the low 32 bits of the claim word; a region that
  // somehow exceeds that (callers chunk work, so real n is tiny) runs
  // serially rather than corrupting the packed counter.
  if (threads_.empty() || n == 1 || n > kIndexMask) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Publish steps 1-3 (see the protocol comment above run_region_chunks).
  const std::uint64_t g =
      claim_gen(region_claim_.load(std::memory_order_relaxed));
  region_claim_.store((g + 1) << kGenShift, std::memory_order_release);
  {
    std::unique_lock<std::mutex> lock(mu_);
    region_error_index_ = 0;
    region_error_ = nullptr;
  }
  region_done_.store(0, std::memory_order_relaxed);
  region_n_.store(n, std::memory_order_release);
  region_fn_.store(&fn, std::memory_order_release);
  {
    // Opening the claim window must happen under mu_ so a worker checking
    // the sleep predicate cannot miss it between its predicate evaluation
    // and its wait.
    std::unique_lock<std::mutex> lock(mu_);
    region_claim_.store((g + 2) << kGenShift, std::memory_order_release);
  }
  ++regions_;
  work_available_.notify_all();
  run_region_chunks(/*stats_slot=*/0);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    error = std::exchange(region_error_, nullptr);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

bool ThreadPool::take_and_run_one_task(std::size_t stats_slot) {
  std::function<void()> task;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) {
      queue_has_work_.store(false, std::memory_order_release);
      return false;
    }
    task = std::move(queue_.front());
    queue_.pop_front();
    queue_has_work_.store(!queue_.empty(), std::memory_order_release);
    ++in_flight_;
  }
  ThreadCounters& counters = counters_[stats_slot];
  const bool timing = stats_timing_.load(std::memory_order_relaxed);
  const std::uint64_t start = timing ? stats_now_ns() : 0;
  try {
    task();
  } catch (...) {
    std::unique_lock<std::mutex> lock(mu_);
    if (first_error_ == nullptr) first_error_ = std::current_exception();
  }
  counters.tasks.fetch_add(1, std::memory_order_relaxed);
  if (timing) {
    counters.busy_ns.fetch_add(stats_now_ns() - start,
                               std::memory_order_relaxed);
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop(std::size_t stats_slot) {
  std::uint64_t seen_gen = 0;
  SpinWait spin;
  for (;;) {
    const std::uint64_t gen =
        claim_gen(region_claim_.load(std::memory_order_acquire));
    if (gen != seen_gen) {
      // A new region (or its odd mid-publish window) appeared. Help run it;
      // run_region_chunks returns the even generation whose completion it
      // confirmed, which de-duplicates re-entry into a finished region.
      seen_gen = run_region_chunks(stats_slot);
      spin.spins = 0;
      continue;
    }
    if (queue_has_work_.load(std::memory_order_acquire)) {
      if (take_and_run_one_task(stats_slot)) {
        spin.spins = 0;
        continue;
      }
    }
    if (stopping_.load(std::memory_order_acquire)) {
      // Drain outstanding tasks before exiting (regions cannot be in flight
      // at destruction: parallel_for only returns completed).
      std::unique_lock<std::mutex> lock(mu_);
      if (queue_.empty()) return;
      continue;
    }
    if (spin.spins < 4096) {
      // Fresh off a task or a region: the next tick phase is likely
      // microseconds away. Spin briefly before paying the condvar sleep.
      spin.pause();
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    work_available_.wait(lock, [&] {
      return stopping_.load(std::memory_order_relaxed) || !queue_.empty() ||
             claim_gen(region_claim_.load(std::memory_order_relaxed)) !=
                 seen_gen;
    });
    spin.spins = 0;
  }
}

ThreadPool::PoolStats ThreadPool::stats() {
  PoolStats out;
  out.per_thread.reserve(counters_.size());
  for (const ThreadCounters& counters : counters_) {
    PoolStats::PerThread t;
    t.busy_ns = counters.busy_ns.load(std::memory_order_relaxed);
    t.tasks = counters.tasks.load(std::memory_order_relaxed);
    t.chunks = counters.chunks.load(std::memory_order_relaxed);
    out.tasks += t.tasks;
    out.chunks += t.chunks;
    out.busy_ns += t.busy_ns;
    out.per_thread.push_back(t);
  }
  out.regions = regions_;
  {
    std::unique_lock<std::mutex> lock(mu_);
    out.queue_peak = queue_peak_;
  }
  return out;
}

int ThreadPool::hardware_workers() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Total concurrency is `jobs`: a pool of jobs-1 workers plus the calling
  // thread, which participates in the region. Indices are claimed in
  // ascending order (one atomic counter), preserving the FIFO start-order
  // property the sweep contract relies on.
  const std::size_t width = std::min(static_cast<std::size_t>(jobs), n);
  ThreadPool pool(static_cast<int>(width) - 1);
  pool.parallel_for(n, fn);
}

}  // namespace wasp::exec
