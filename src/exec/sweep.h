// Declarative simulation sweeps: grid expansion, shared-nothing execution,
// ordered merge.
//
// A sweep is a cartesian grid of independent WaspSystem runs -- the unit of
// work behind `tools/wasp_sweep` and the parallel bench drivers. The paper's
// evaluation (Fig. 8-14, Tables 2-3) is a set of such grids: seeds x
// adaptation policies x bandwidth traces x fault schedules, every cell a
// self-contained simulation. This header turns a grid description into an
// ordered list of RunSpecs, executes them across N workers, and merges the
// per-cell summaries into one deterministic JSONL stream.
//
// Determinism contract (DESIGN.md §9):
//   1. Cells are expanded in row-major axis order (last axis fastest) and
//      numbered 0..n-1; the cell index is part of the spec.
//   2. A cell's seed comes from its `seeds` axis value if the grid has one,
//      otherwise it is forked from the grid's base seed by *cell index*
//      (exec::fork_seed) -- never from scheduling order.
//   3. Every run is shared-nothing: it builds its own Rng, Topology, Network,
//      workload pattern, WaspSystem (hence its own Recorder, MetricsRegistry,
//      TraceEmitter) and, when tracing, its own private FileSink. Nothing in
//      a run reads wall-clock time into its results.
//   4. The merge walks results by cell index, so the merged JSONL (and the
//      summary table derived from it) is byte-identical for --jobs 1 and
//      --jobs N. Wall-clock timings are reported separately (bench JSON /
//      stderr), never in the merged stream.
//
// Merged output reuses the obs trace event encoding: line 0 is a
// "sweep_grid" header event, followed by one "sweep_cell" event per cell
// with `seq` = cell index. `wasp_trace validate/diff` therefore work on
// sweep output unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace wasp::exec {

// One grid axis: an ordered list of string values for a named parameter.
// Supported names (aliases in parentheses):
//   seeds (seed)            integer list/range; the per-cell master seed
//   policy (mode)           wasp|static|no-adapt|degrade|re-assign|scale|
//                           re-plan|hybrid ("static" is an alias of no-adapt)
//   query                   topk|ysb|interest|join
//   duration, rate, alpha, slo                      numeric
//   trace                   bandwidth-trace CSV path, or "live"/"none"
//   fault (fault-schedule)  fault-schedule file path, or "none"
//   workload-step / bandwidth-step                  "T:F" steps, '+'-joined
//   topology                TopologySpec strings (DESIGN.md §14): "paper",
//                           "uniform:sites=..;slots=..", "edge:sites=..;
//                           regions=..". Use ';' between params -- ',' would
//                           split the axis value list.
// File-valued axes (trace, fault) expand shell-style globs at parse time.
struct GridAxis {
  std::string name;                 // canonical name (aliases resolved)
  std::vector<std::string> values;  // in declaration order
};

struct GridSpec {
  std::vector<GridAxis> axes;

  // Parses one "name=values" argument (values: comma list, "a..b" integer
  // range, or a glob for file axes) and appends the axis. Repeating a name
  // replaces the earlier axis. Returns false with *error set on bad input.
  bool parse_arg(const std::string& arg, std::string* error);

  // Parses a sweep file: one "name=values" per line, blank lines and
  // '#' comments ignored.
  bool parse_file(const std::string& path, std::string* error);

  [[nodiscard]] std::size_t num_cells() const;

  // "seeds=1..4 policy=wasp,static" -- canonical one-line form for headers.
  [[nodiscard]] std::string to_string() const;
};

// Grid-independent defaults applied to every cell an axis does not override.
struct SweepDefaults {
  std::uint64_t base_seed = 42;  // forked per cell when there is no seeds axis
  std::string mode = "wasp";
  std::string query = "topk";
  double duration_sec = 900.0;
  double rate_eps = 10'000.0;
  double alpha = 0.8;
  double slo_sec = 10.0;
};

// One fully-resolved cell.
struct RunSpec {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  bool seed_forked = false;  // true when seed came from fork_seed, not an axis
  std::string mode = "wasp";
  std::string query = "topk";
  double duration_sec = 900.0;
  double rate_eps = 10'000.0;
  double alpha = 0.8;
  double slo_sec = 10.0;
  std::string bandwidth_trace;  // empty = constant; "live" = random walk
  std::string fault_schedule;   // empty = none
  std::string topology;         // canonical TopologySpec; empty = paper
  std::vector<std::pair<double, double>> workload_steps;
  std::vector<std::pair<double, double>> bandwidth_steps;
  // The (axis, value) pairs that produced this cell, in axis order -- echoed
  // into the result line so every cell is self-describing.
  std::vector<std::pair<std::string, std::string>> labels;
};

// Expands the grid against the defaults into cells ordered row-major (last
// axis fastest). Returns nullopt with *error set when an axis has an unknown
// name or an unparseable value.
std::optional<std::vector<RunSpec>> expand_grid(const GridSpec& grid,
                                                const SweepDefaults& defaults,
                                                std::string* error);

// Per-cell summary: the figures' headline metrics, computed from the run's
// private Recorder. Wall time is carried for operator feedback but excluded
// from the deterministic serialization.
struct RunResult {
  RunSpec spec;
  bool ok = false;
  std::string error;  // non-empty when !ok (e.g. unreadable trace file)
  double delay_mean_sec = 0.0;
  double delay_p50_sec = 0.0;
  double delay_p95_sec = 0.0;
  double delay_p99_sec = 0.0;
  double ratio_mean = 0.0;
  double processed_pct = 0.0;
  double dropped_events = 0.0;
  std::size_t adaptations = 0;
  std::size_t aborted_transitions = 0;
  std::size_t recovery_events = 0;
  // First "confirm_failure" to last "stabilized" in the recovery log; 0 when
  // the run had no detector-confirmed failure.
  double recovery_sec = 0.0;
  double wall_ms = 0.0;  // NOT serialized into the merged JSONL

  // The deterministic "sweep_cell" event (seq = cell index).
  [[nodiscard]] obs::TraceEvent to_trace_event() const;
};

struct SweepOptions {
  int jobs = 1;
  // Intra-run worker threads per cell (SystemConfig::threads). Results are
  // bit-identical for any value; total concurrency is jobs * threads, so
  // callers should keep that product within the machine's cores (wasp_sweep
  // warns and clamps).
  int threads = 1;
  // When non-empty, each run writes its private observability trace to
  // "<trace_dir>/run_<index>.jsonl" (the directory must exist).
  std::string trace_dir;
  // Always-on phase profiler (DESIGN.md §13): each cell emits periodic
  // `profile` events into its private trace. Pure observer -- the merged
  // sweep stream and every cell's results are bit-identical either way.
  bool profile = false;
  int profile_every = 60;
  // Optional progress hook, invoked from worker threads under an internal
  // mutex as each cell finishes (completion order, i.e. nondeterministic --
  // for stderr progress only, never for results).
  std::function<void(const RunResult&)> on_cell_done;
};

// Executes one cell in a fresh, self-contained context. `trace_path` (may be
// empty) is the run's private JSONL trace destination; `threads` is the
// cell's intra-run worker count (SystemConfig::threads); `profile` /
// `profile_every` mirror SweepOptions.
RunResult run_one(const RunSpec& spec, const std::string& trace_path = {},
                  int threads = 1, bool profile = false,
                  int profile_every = 60);

// Executes all cells across opts.jobs workers and returns results ordered by
// cell index regardless of completion order.
std::vector<RunResult> run_sweep(const std::vector<RunSpec>& cells,
                                 const SweepOptions& opts);

// Deterministic merged stream: the "sweep_grid" header event followed by one
// "sweep_cell" line per result, in index order. Identical for any --jobs.
std::string merged_jsonl(const GridSpec& grid, const SweepDefaults& defaults,
                         const std::vector<RunResult>& results);

}  // namespace wasp::exec
