#include "exec/sweep.h"

#include <fnmatch.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/rng.h"
#include "exec/thread_pool.h"
#include "faults/fault_injector.h"
#include "faults/fault_schedule.h"
#include "net/bandwidth_model.h"
#include "net/network.h"
#include "net/topology.h"
#include "net/topology_spec.h"
#include "net/trace_io.h"
#include "runtime/wasp_system.h"
#include "workload/patterns.h"
#include "workload/queries.h"

namespace wasp::exec {
namespace {

const char* kAxisNames[] = {"seeds",    "policy",        "query",
                            "duration", "rate",          "alpha",
                            "slo",      "trace",         "fault",
                            "workload-step", "bandwidth-step", "topology"};

std::string canonical_axis(const std::string& name) {
  if (name == "seed") return "seeds";
  if (name == "mode") return "policy";
  if (name == "fault-schedule") return "fault";
  return name;
}

bool known_axis(const std::string& name) {
  for (const char* known : kAxisNames) {
    if (name == known) return true;
  }
  return false;
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  try {
    std::size_t pos = 0;
    *out = std::stoull(text, &pos);
    return pos == text.size();
  } catch (...) {
    return false;
  }
}

bool parse_double(const std::string& text, double* out) {
  try {
    std::size_t pos = 0;
    *out = std::stod(text, &pos);
    return pos == text.size();
  } catch (...) {
    return false;
  }
}

// "T:F" pairs joined by '+': "300:2+600:1".
bool parse_steps(const std::string& text,
                 std::vector<std::pair<double, double>>* out) {
  out->clear();
  std::stringstream in(text);
  std::string item;
  while (std::getline(in, item, '+')) {
    const auto colon = item.find(':');
    if (colon == std::string::npos) return false;
    std::pair<double, double> step;
    if (!parse_double(item.substr(0, colon), &step.first) ||
        !parse_double(item.substr(colon + 1), &step.second)) {
      return false;
    }
    out->push_back(step);
  }
  return !out->empty();
}

bool mode_valid(const std::string& name) {
  return name == "wasp" || name == "static" || name == "no-adapt" ||
         name == "degrade" || name == "re-assign" || name == "scale" ||
         name == "re-plan" || name == "hybrid";
}

std::optional<runtime::AdaptationMode> mode_of(const std::string& name) {
  if (name == "wasp") return runtime::AdaptationMode::kWasp;
  if (name == "static" || name == "no-adapt") {
    return runtime::AdaptationMode::kNoAdapt;
  }
  if (name == "degrade") return runtime::AdaptationMode::kDegrade;
  if (name == "re-assign") return runtime::AdaptationMode::kReassignOnly;
  if (name == "scale") return runtime::AdaptationMode::kScaleOnly;
  if (name == "re-plan") return runtime::AdaptationMode::kReplanOnly;
  if (name == "hybrid") return runtime::AdaptationMode::kHybrid;
  return std::nullopt;
}

bool query_valid(const std::string& name) {
  return name == "topk" || name == "ysb" || name == "interest" ||
         name == "join";
}

bool has_glob_chars(const std::string& value) {
  return value.find_first_of("*?[") != std::string::npos;
}

// Shell-style glob over one directory level, sorted by path so the axis
// order (hence cell numbering) is stable across filesystems.
bool expand_glob(const std::string& pattern, std::vector<std::string>* out,
                 std::string* error) {
  namespace fs = std::filesystem;
  const auto slash = pattern.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : pattern.substr(0, slash);
  const std::string name_pattern =
      slash == std::string::npos ? pattern : pattern.substr(slash + 1);
  std::vector<std::string> matches;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (fnmatch(name_pattern.c_str(), name.c_str(), 0) == 0) {
      matches.push_back(slash == std::string::npos ? name : dir + "/" + name);
    }
  }
  if (ec) {
    *error = "glob '" + pattern + "': cannot read directory '" + dir + "'";
    return false;
  }
  if (matches.empty()) {
    *error = "glob '" + pattern + "' matched no files";
    return false;
  }
  std::sort(matches.begin(), matches.end());
  out->insert(out->end(), matches.begin(), matches.end());
  return true;
}

// Splits an axis value string into its ordered values: a comma list whose
// items may be "a..b" integer ranges (seeds only) or globs (file axes only).
bool expand_values(const std::string& axis, const std::string& text,
                   std::vector<std::string>* out, std::string* error) {
  std::stringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto dots = item.find("..");
    if (axis == "seeds" && dots != std::string::npos) {
      std::uint64_t lo = 0, hi = 0;
      if (!parse_u64(item.substr(0, dots), &lo) ||
          !parse_u64(item.substr(dots + 2), &hi) || lo > hi) {
        *error = "bad seed range '" + item + "' (want a..b with a <= b)";
        return false;
      }
      for (std::uint64_t s = lo; s <= hi; ++s) out->push_back(std::to_string(s));
    } else if ((axis == "trace" || axis == "fault") && has_glob_chars(item)) {
      if (!expand_glob(item, out, error)) return false;
    } else {
      out->push_back(item);
    }
  }
  if (out->empty()) {
    *error = "axis '" + axis + "' has no values";
    return false;
  }
  return true;
}

// Applies one axis value to the cell; false with *error on a bad value.
bool apply_axis(const std::string& axis, const std::string& value,
                RunSpec* spec, std::string* error) {
  if (axis == "seeds") {
    if (!parse_u64(value, &spec->seed)) {
      *error = "bad seed '" + value + "'";
      return false;
    }
    spec->seed_forked = false;
    return true;
  }
  if (axis == "policy") {
    if (!mode_valid(value)) {
      *error = "unknown policy '" + value + "'";
      return false;
    }
    spec->mode = value == "static" ? "no-adapt" : value;
    return true;
  }
  if (axis == "query") {
    if (!query_valid(value)) {
      *error = "unknown query '" + value + "'";
      return false;
    }
    spec->query = value;
    return true;
  }
  if (axis == "duration") return parse_double(value, &spec->duration_sec) ||
                                 (*error = "bad duration '" + value + "'",
                                  false);
  if (axis == "rate") return parse_double(value, &spec->rate_eps) ||
                             (*error = "bad rate '" + value + "'", false);
  if (axis == "alpha") return parse_double(value, &spec->alpha) ||
                              (*error = "bad alpha '" + value + "'", false);
  if (axis == "slo") return parse_double(value, &spec->slo_sec) ||
                            (*error = "bad slo '" + value + "'", false);
  if (axis == "trace") {
    spec->bandwidth_trace = value == "none" ? "" : value;
    return true;
  }
  if (axis == "fault") {
    spec->fault_schedule = value == "none" ? "" : value;
    return true;
  }
  if (axis == "workload-step") {
    if (!parse_steps(value, &spec->workload_steps)) {
      *error = "bad workload-step '" + value + "' (want T:F, '+'-joined)";
      return false;
    }
    return true;
  }
  if (axis == "bandwidth-step") {
    if (!parse_steps(value, &spec->bandwidth_steps)) {
      *error = "bad bandwidth-step '" + value + "' (want T:F, '+'-joined)";
      return false;
    }
    return true;
  }
  if (axis == "topology") {
    // Specs use ';' between params ("edge:sites=64;regions=4") because ','
    // separates axis values. "paper" resets to the default testbed.
    std::string parse_error;
    const auto topo = net::TopologySpec::parse(value, &parse_error);
    if (!topo.has_value()) {
      *error = "bad topology '" + value + "': " + parse_error;
      return false;
    }
    spec->topology = topo->kind == net::TopologySpec::Kind::kPaper
                         ? std::string{}
                         : topo->to_string();
    return true;
  }
  *error = "unknown axis '" + axis + "'";
  return false;
}

}  // namespace

bool GridSpec::parse_arg(const std::string& arg, std::string* error) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) {
    *error = "bad grid axis '" + arg + "' (want name=value[,value...])";
    return false;
  }
  GridAxis axis;
  axis.name = canonical_axis(arg.substr(0, eq));
  if (!known_axis(axis.name)) {
    *error = "unknown grid axis '" + axis.name + "'";
    return false;
  }
  if (!expand_values(axis.name, arg.substr(eq + 1), &axis.values, error)) {
    return false;
  }
  for (GridAxis& existing : axes) {
    if (existing.name == axis.name) {
      existing.values = std::move(axis.values);
      return true;
    }
  }
  axes.push_back(std::move(axis));
  return true;
}

bool GridSpec::parse_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open sweep file '" + path + "'";
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    const auto end = line.find_last_not_of(" \t\r");
    if (!parse_arg(line.substr(start, end - start + 1), error)) {
      *error = path + ":" + std::to_string(lineno) + ": " + *error;
      return false;
    }
  }
  return true;
}

std::size_t GridSpec::num_cells() const {
  std::size_t n = 1;
  for (const GridAxis& axis : axes) n *= axis.values.size();
  return n;
}

std::string GridSpec::to_string() const {
  std::string out;
  for (const GridAxis& axis : axes) {
    if (!out.empty()) out += ' ';
    out += axis.name + "=";
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      if (i > 0) out += ',';
      out += axis.values[i];
    }
  }
  return out;
}

std::optional<std::vector<RunSpec>> expand_grid(const GridSpec& grid,
                                                const SweepDefaults& defaults,
                                                std::string* error) {
  RunSpec base;
  base.seed = defaults.base_seed;
  base.seed_forked = true;
  base.mode = defaults.mode;
  base.query = defaults.query;
  base.duration_sec = defaults.duration_sec;
  base.rate_eps = defaults.rate_eps;
  base.alpha = defaults.alpha;
  base.slo_sec = defaults.slo_sec;

  const std::size_t n = grid.num_cells();
  std::vector<RunSpec> cells;
  cells.reserve(n);
  for (std::size_t index = 0; index < n; ++index) {
    RunSpec cell = base;
    cell.index = index;
    // Row-major decode: the last axis varies fastest.
    std::size_t remainder = index;
    std::size_t stride = n;
    for (const GridAxis& axis : grid.axes) {
      stride /= axis.values.size();
      const std::size_t pick = remainder / stride;
      remainder %= stride;
      const std::string& value = axis.values[pick];
      if (!apply_axis(axis.name, value, &cell, error)) {
        *error = "cell " + std::to_string(index) + ": " + *error;
        return std::nullopt;
      }
      cell.labels.emplace_back(axis.name, value);
    }
    // Seed forking by cell index (never by scheduling order) when the grid
    // does not pin seeds explicitly.
    if (cell.seed_forked) cell.seed = fork_seed(defaults.base_seed, index);
    cells.push_back(std::move(cell));
  }
  return cells;
}

RunResult run_one(const RunSpec& spec, const std::string& trace_path,
                  int threads, bool profile, int profile_every) {
  RunResult result;
  result.spec = spec;
  const auto wall_start = std::chrono::steady_clock::now();
  auto fail = [&](const std::string& why) {
    result.ok = false;
    result.error = why;
    return result;
  };

  // ---- private, shared-nothing run context -------------------------------
  Rng rng(spec.seed);
  net::TopologySpec topo_spec;  // Kind::kPaper
  if (!spec.topology.empty()) {
    std::string spec_error;
    const auto parsed = net::TopologySpec::parse(spec.topology, &spec_error);
    if (!parsed.has_value()) return fail("bad topology: " + spec_error);
    topo_spec = *parsed;
  }
  net::Topology topo = topo_spec.build(rng);

  std::shared_ptr<const net::BandwidthModel> bw_model =
      std::make_shared<net::ConstantBandwidth>();
  if (spec.bandwidth_trace == "live") {
    Rng bw_rng(spec.seed + 1);
    net::RandomWalkBandwidth::Config cfg;
    cfg.horizon_sec = spec.duration_sec;
    cfg.min_factor = 0.51;
    cfg.max_factor = 2.36;
    bw_model = std::make_shared<net::RandomWalkBandwidth>(topo.num_sites(),
                                                          cfg, bw_rng);
  } else if (!spec.bandwidth_trace.empty()) {
    std::ifstream in(spec.bandwidth_trace);
    if (!in) return fail("cannot open trace '" + spec.bandwidth_trace + "'");
    std::string error;
    auto trace = std::make_shared<net::TraceBandwidth>(
        net::load_bandwidth_trace(in, &error));
    if (!error.empty()) return fail(error);
    bw_model = std::move(trace);
  }
  if (!spec.bandwidth_steps.empty()) {
    bw_model = std::make_shared<net::ComposedBandwidth>(
        bw_model, std::make_shared<net::SteppedBandwidth>(spec.bandwidth_steps));
  }
  net::Network network(topo, bw_model);

  std::vector<SiteId> east, west, edges, dcs;
  SiteId sink;
  for (const auto& site : topo.sites()) {
    if (site.type == net::SiteType::kEdge) {
      (east.size() <= west.size() ? east : west).push_back(site.id);
      edges.push_back(site.id);
    } else {
      dcs.push_back(site.id);
      if (!sink.valid()) sink = site.id;
    }
  }
  if (edges.empty()) {
    // Uniform topologies have no edge tier; every non-sink site feeds sources
    // (the wasp_sim hub layout) so the queries still have inputs.
    for (const auto& site : topo.sites()) {
      if (site.id == sink) continue;
      (east.size() <= west.size() ? east : west).push_back(site.id);
      edges.push_back(site.id);
    }
  }

  workload::QuerySpec query = [&] {
    if (spec.query == "ysb") return workload::make_ysb_campaign(edges, sink);
    if (spec.query == "interest") {
      return workload::make_events_of_interest(edges, sink);
    }
    if (spec.query == "join") {
      return workload::make_four_source_join(dcs, sink, true);
    }
    return workload::make_topk_topics(east, west, sink);
  }();

  workload::SteppedWorkload pattern;
  for (OperatorId src : query.sources) {
    for (SiteId s : query.plan.op(src).pinned_sites) {
      pattern.set_base_rate(src, s, spec.rate_eps);
    }
  }
  for (const auto& [t, factor] : spec.workload_steps) {
    pattern.add_step(t, factor);
  }

  runtime::SystemConfig config;
  const auto mode = mode_of(spec.mode);
  if (!mode.has_value()) return fail("unknown mode '" + spec.mode + "'");
  config.mode = *mode;
  config.slo_sec = spec.slo_sec;
  config.scheduler.alpha = spec.alpha;
  config.seed = spec.seed;
  config.threads = std::max(1, threads);
  if (topo_spec.kind == net::TopologySpec::Kind::kEdgeHierarchy) {
    // Planet-scale cells re-plan per failure domain (DESIGN.md §14) so a
    // localized failure never re-solves the whole placement.
    config.policy.region_decomposition = true;
  }
  config.profile = profile;
  config.profile_every = std::max(1, profile_every);
  std::shared_ptr<obs::FileSink> trace_sink;
  if (!trace_path.empty()) {
    trace_sink = std::make_shared<obs::FileSink>(trace_path);
    if (!trace_sink->ok()) {
      return fail("cannot open trace output '" + trace_path + "'");
    }
    config.trace_sink = trace_sink;
  }
  runtime::WaspSystem system(network, std::move(query), pattern, config);

  std::unique_ptr<faults::FaultInjector> injector;
  if (!spec.fault_schedule.empty()) {
    faults::FaultSchedule schedule;
    std::string error;
    if (!faults::FaultSchedule::parse_file(spec.fault_schedule, &schedule,
                                           &error)) {
      return fail(error);
    }
    injector = std::make_unique<faults::FaultInjector>(
        network, std::move(schedule), Rng(spec.seed ^ 0xFA17));
    faults::FaultInjector::Hooks hooks;
    hooks.crash_site = [&system](SiteId s) { system.fail_sites({s}); };
    hooks.restore_site = [&system](SiteId s) { system.restore_sites({s}); };
    hooks.set_straggler = [&system](SiteId s, double f) {
      system.mutable_engine().set_straggler(s, f);
    };
    hooks.stall_control = [&system](double sec) {
      system.stall_control_for(sec);
    };
    injector->set_hooks(std::move(hooks));
    injector->set_trace(&system.trace());
  }

  // ---- run ---------------------------------------------------------------
  if (injector != nullptr) {
    while (system.now() + config.tick_sec <= spec.duration_sec + 1e-9) {
      injector->tick(system.now());
      system.step();
    }
  } else {
    system.run_until(spec.duration_sec);
  }
  if (trace_sink != nullptr) trace_sink->flush();

  // ---- summarize ---------------------------------------------------------
  const auto& rec = system.recorder();
  result.ok = true;
  result.delay_mean_sec = rec.delay().mean_over(0.0, spec.duration_sec);
  result.delay_p50_sec = rec.delay_histogram().percentile(50);
  result.delay_p95_sec = rec.delay_histogram().percentile(95);
  result.delay_p99_sec = rec.delay_histogram().percentile(99);
  result.ratio_mean = rec.ratio().mean_over(0.0, spec.duration_sec);
  result.processed_pct = 100.0 * rec.processed_fraction();
  result.dropped_events = rec.total_dropped();
  result.adaptations = rec.events().size();
  for (const auto& event : rec.events()) {
    if (event.aborted()) ++result.aborted_transitions;
  }
  result.recovery_events = rec.recovery_events().size();
  double first_confirm = -1.0, last_stabilized = -1.0;
  for (const auto& event : rec.recovery_events()) {
    if (event.kind == "confirm_failure" && first_confirm < 0.0) {
      first_confirm = event.t;
    }
    if (event.kind == "stabilized") last_stabilized = event.t;
  }
  if (first_confirm >= 0.0 && last_stabilized >= first_confirm) {
    result.recovery_sec = last_stabilized - first_confirm;
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  return result;
}

obs::TraceEvent RunResult::to_trace_event() const {
  obs::TraceEvent event;
  event.seq = spec.index + 1;  // seq 0 is the sweep_grid header
  event.t = 0.0;
  event.type = "sweep_cell";
  for (const auto& [axis, value] : spec.labels) {
    event.strs.emplace_back(axis, value);
  }
  event.strs.emplace_back("mode", spec.mode);
  event.strs.emplace_back("query", spec.query);
  if (!spec.bandwidth_trace.empty()) {
    event.strs.emplace_back("bandwidth_trace", spec.bandwidth_trace);
  }
  if (!spec.fault_schedule.empty()) {
    event.strs.emplace_back("fault_schedule", spec.fault_schedule);
  }
  event.strs.emplace_back("seed_forked", spec.seed_forked ? "true" : "false");
  if (!ok) event.strs.emplace_back("error", error);
  event.nums.emplace_back("cell", static_cast<double>(spec.index));
  event.nums.emplace_back("seed", static_cast<double>(spec.seed));
  event.nums.emplace_back("duration_sec", spec.duration_sec);
  event.nums.emplace_back("rate_eps", spec.rate_eps);
  event.nums.emplace_back("alpha", spec.alpha);
  event.nums.emplace_back("slo_sec", spec.slo_sec);
  event.nums.emplace_back("ok", ok ? 1.0 : 0.0);
  if (ok) {
    event.nums.emplace_back("delay_mean_sec", delay_mean_sec);
    event.nums.emplace_back("delay_p50_sec", delay_p50_sec);
    event.nums.emplace_back("delay_p95_sec", delay_p95_sec);
    event.nums.emplace_back("delay_p99_sec", delay_p99_sec);
    event.nums.emplace_back("ratio_mean", ratio_mean);
    event.nums.emplace_back("processed_pct", processed_pct);
    event.nums.emplace_back("dropped_events", dropped_events);
    event.nums.emplace_back("adaptations", static_cast<double>(adaptations));
    event.nums.emplace_back("aborted_transitions",
                            static_cast<double>(aborted_transitions));
    event.nums.emplace_back("recovery_events",
                            static_cast<double>(recovery_events));
    event.nums.emplace_back("recovery_sec", recovery_sec);
  }
  return event;
}

std::vector<RunResult> run_sweep(const std::vector<RunSpec>& cells,
                                 const SweepOptions& opts) {
  std::vector<RunResult> results(cells.size());
  std::mutex progress_mu;
  parallel_for(opts.jobs, cells.size(), [&](std::size_t i) {
    std::string trace_path;
    if (!opts.trace_dir.empty()) {
      trace_path =
          opts.trace_dir + "/run_" + std::to_string(cells[i].index) + ".jsonl";
    }
    results[i] = run_one(cells[i], trace_path, opts.threads, opts.profile,
                         opts.profile_every);
    if (opts.on_cell_done) {
      std::lock_guard<std::mutex> lock(progress_mu);
      opts.on_cell_done(results[i]);
    }
  });
  return results;
}

std::string merged_jsonl(const GridSpec& grid, const SweepDefaults& defaults,
                         const std::vector<RunResult>& results) {
  obs::TraceEvent header;
  header.seq = 0;
  header.t = 0.0;
  header.type = "sweep_grid";
  header.strs.emplace_back("grid", grid.to_string());
  header.strs.emplace_back("default_mode", defaults.mode);
  header.strs.emplace_back("default_query", defaults.query);
  header.nums.emplace_back("cells", static_cast<double>(results.size()));
  header.nums.emplace_back("base_seed",
                           static_cast<double>(defaults.base_seed));
  header.nums.emplace_back("default_duration_sec", defaults.duration_sec);
  header.nums.emplace_back("default_rate_eps", defaults.rate_eps);
  header.nums.emplace_back("default_alpha", defaults.alpha);
  header.nums.emplace_back("default_slo_sec", defaults.slo_sec);

  std::string out = obs::to_json_line(header);
  out.push_back('\n');
  for (const RunResult& result : results) {
    out += obs::to_json_line(result.to_trace_event());
    out.push_back('\n');
  }
  return out;
}

}  // namespace wasp::exec
