// Deterministic parallel execution substrate for simulation sweeps.
//
// WASP simulations are embarrassingly parallel across configurations: every
// run owns its whole world (Rng, Topology, Network, WaspSystem, Recorder,
// MetricsRegistry, TraceEmitter) and touches nothing shared, so a grid of
// runs can fan out across cores with no synchronization beyond the task
// queue. What must NOT vary with the fan-out is the *result*: the sweep
// contract (DESIGN.md §9) is that `--jobs N` produces byte-identical merged
// output to `--jobs 1`. The executor is therefore deliberately boring:
//
//   - a fixed worker count decided at construction (no elastic growth);
//   - one FIFO task queue (no work stealing, no per-worker deques) -- tasks
//     are *started* in submission order even though they may *finish* in any
//     order;
//   - no executor-provided randomness or time: anything a task needs that
//     could differ between schedules (seeds above all) is derived from the
//     task's index via `fork_seed`, never from which worker ran it or when.
//
// Determinism then reduces to a caller-side rule: tasks write only to
// per-index slots (results[i]) and the merge walks indices in order.
//
// Threading guarantees:
//   - ThreadPool is externally synchronized: submit()/wait_idle() may be
//     called from one controller thread (typically main). Tasks run on
//     worker threads and must be shared-nothing with respect to each other.
//   - parallel_for is a self-contained fork/join: it returns only after
//     every index ran (or the first captured exception is rethrown), so the
//     caller's vectors are safe to read immediately after it returns.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wasp::exec {

// Splits `base_seed` into the seed for run `index`. Pure function of
// (base_seed, index) -- scheduling order, worker identity, and the number of
// workers cannot perturb it. Uses the splitmix64 finalizer (the same mixer
// wasp::Rng seeds through), so adjacent indices land in decorrelated streams.
[[nodiscard]] std::uint64_t fork_seed(std::uint64_t base_seed,
                                      std::uint64_t index);

// Fixed-size worker pool over one FIFO queue.
//
// Lifecycle: constructing starts the workers; the destructor drains every
// already-submitted task, then joins. A task that throws does not kill the
// pool: the first exception (in completion order) is captured and rethrown
// from the next wait_idle() call; subsequent tasks still run.
class ThreadPool {
 public:
  // `workers` is clamped to >= 1.
  explicit ThreadPool(int workers);

  // Drains the queue (runs every submitted task) and joins the workers.
  // Exceptions still pending from tasks are swallowed here -- call
  // wait_idle() first if you need them.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; tasks are started strictly in submission order.
  void submit(std::function<void()> task);

  // Blocks until the queue is empty and every worker is idle. If any task
  // threw since the last wait_idle(), rethrows the first captured exception
  // (the pool remains usable afterwards).
  void wait_idle();

  [[nodiscard]] int workers() const { return static_cast<int>(threads_.size()); }

  // max(1, std::thread::hardware_concurrency()) -- the default --jobs.
  [[nodiscard]] static int hardware_workers();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // popped but not yet finished
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> threads_;
};

// Fork/join helper: runs fn(0) .. fn(n-1) across up to `jobs` workers and
// returns when all are done. jobs <= 1 (or n <= 1) runs inline on the
// calling thread -- the serial and parallel paths execute the same code, so
// a shared-nothing fn gives identical per-index results either way. If one
// or more calls throw, the exception of the *lowest index* is rethrown after
// every index has run (lowest-index, not first-in-time, so the error too is
// schedule-independent).
void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace wasp::exec
