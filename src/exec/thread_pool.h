// Deterministic parallel execution substrate for simulation sweeps and for
// intra-run tick phases.
//
// WASP simulations are embarrassingly parallel across configurations: every
// run owns its whole world (Rng, Topology, Network, WaspSystem, Recorder,
// MetricsRegistry, TraceEmitter) and touches nothing shared, so a grid of
// runs can fan out across cores with no synchronization beyond the task
// queue. What must NOT vary with the fan-out is the *result*: the sweep
// contract (DESIGN.md §9) is that `--jobs N` produces byte-identical merged
// output to `--jobs 1`. The executor is therefore deliberately boring:
//
//   - a fixed worker count decided at construction (no elastic growth);
//   - one FIFO task queue (no work stealing, no per-worker deques) -- tasks
//     are *started* in submission order even though they may *finish* in any
//     order;
//   - no executor-provided randomness or time: anything a task needs that
//     could differ between schedules (seeds above all) is derived from the
//     task's index via `fork_seed`, never from which worker ran it or when.
//
// Determinism then reduces to a caller-side rule: tasks write only to
// per-index slots (results[i]) and the merge walks indices in order.
//
// Since PR 7 the pool doubles as the *intra-run* executor for the fluid
// engine's tick phases (DESIGN.md §11). Those need a fork/join whose cost is
// a few microseconds, not a queue round-trip per chunk, so the pool carries a
// second dispatch path: parallel_for(n, fn) publishes one region (a chunk
// count plus a chunk function), workers claim chunk indices from an atomic
// counter, and the caller participates and then spin-waits for completion.
// Chunk *indices* -- and therefore the data each chunk touches -- are fixed
// by the caller independent of worker count; which worker runs which chunk
// is immaterial because chunks are shared-nothing and any cross-chunk
// reduction is the caller's (serial, fixed-order) job.
//
// Threading guarantees:
//   - ThreadPool is externally synchronized: submit()/wait_idle()/
//     parallel_for() may be called from one controller thread (typically
//     main). Tasks and chunks run on worker threads and must be
//     shared-nothing with respect to each other.
//   - parallel_for is a self-contained fork/join: it returns only after
//     every index ran (or, if any indices threw, after every index ran and
//     the lowest-index exception is rethrown), so the caller's vectors are
//     safe to read -- and the chunk function safe to destroy -- immediately
//     after it returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wasp::exec {

// Splits `base_seed` into the seed for run `index`. Pure function of
// (base_seed, index) -- scheduling order, worker identity, and the number of
// workers cannot perturb it. Uses the splitmix64 finalizer (the same mixer
// wasp::Rng seeds through), so adjacent indices land in decorrelated streams.
[[nodiscard]] std::uint64_t fork_seed(std::uint64_t base_seed,
                                      std::uint64_t index);

// Fixed-size worker pool over one FIFO queue plus one fork/join region slot.
//
// Lifecycle: constructing starts the workers; the destructor drains every
// already-submitted task, then joins. A task that throws does not kill the
// pool: the first exception (in completion order) is captured and rethrown
// from the next wait_idle() call; subsequent tasks still run.
class ThreadPool {
 public:
  using RegionFn = std::function<void(std::size_t)>;

  // `workers` is clamped to >= 1.
  explicit ThreadPool(int workers);

  // Drains the queue (runs every submitted task) and joins the workers.
  // An exception still pending from a task (no wait_idle() call since it was
  // captured) cannot propagate out of a destructor, but it is NOT silently
  // dropped either: it is logged at Error level before being discarded.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; tasks are started strictly in submission order.
  void submit(std::function<void()> task);

  // Blocks until the queue is empty and every worker is idle. If any task
  // threw since the last wait_idle(), rethrows the first captured exception
  // (the pool remains usable afterwards).
  void wait_idle();

  // Fork/join parallel region: runs fn(0) .. fn(n-1) across the workers and
  // the calling thread, returning once every index ran. Designed for
  // microsecond-scale phases issued back-to-back (engine tick passes):
  // dispatch is a generation bump on an atomic plus at most one condvar
  // broadcast, and workers that just finished a region spin briefly before
  // sleeping so consecutive regions skip the wakeup entirely.
  //
  // Chunks must be shared-nothing (distinct indices touch distinct data).
  // If one or more chunks throw, every index still runs and the exception of
  // the *lowest* index is rethrown (schedule-independent, matching the free
  // parallel_for below). Must not be called concurrently with submit()/
  // wait_idle()/itself, nor from inside a task or a chunk.
  void parallel_for(std::size_t n, const RegionFn& fn);

  [[nodiscard]] int workers() const { return static_cast<int>(threads_.size()); }

  // max(1, std::thread::hardware_concurrency()) -- the default --jobs.
  [[nodiscard]] static int hardware_workers();

  // --- observability (DESIGN.md §13) -------------------------------------
  // Counters the pool maintains about its own scheduling. The task / chunk /
  // region *totals* are deterministic (they are fixed by what callers
  // submit); per-thread attribution, busy time, and the queue high-water
  // mark depend on real scheduling and must only surface through wall_*
  // trace fields or explicitly profile-gated exports.
  struct PoolStats {
    struct PerThread {
      std::uint64_t busy_ns = 0;  // time inside task/chunk bodies
      std::uint64_t tasks = 0;
      std::uint64_t chunks = 0;
    };
    std::uint64_t regions = 0;     // parallel_for regions published
    std::uint64_t tasks = 0;       // queue tasks executed (total)
    std::uint64_t chunks = 0;      // region chunks executed (total)
    std::uint64_t queue_peak = 0;  // queue-depth high-water mark
    std::uint64_t busy_ns = 0;     // sum of per_thread busy_ns
    // [0] is the controller thread (it claims chunks inside parallel_for);
    // [1..] are the pool workers.
    std::vector<PerThread> per_thread;
  };

  // Busy-time measurement costs two extra clock reads per task/chunk body,
  // so it is off by default; `--profile` turns it on. Event counts are
  // always maintained (relaxed increments, no clock involved).
  void set_stats_timing(bool enabled) {
    stats_timing_.store(enabled, std::memory_order_relaxed);
  }
  // Serial-merge of the per-thread counters. Call from the controller at a
  // point where no region is in flight (between ticks); concurrently running
  // queue tasks only make the snapshot slightly stale, never torn per-field.
  [[nodiscard]] PoolStats stats();

 private:
  void worker_loop(std::size_t stats_slot);
  // Latches onto the current region, claims and runs its chunks, and returns
  // once that region is known complete (every chunk done, or a newer region
  // has been published -- which implies completion). Returns the generation
  // it processed so the caller can de-duplicate re-entry.
  std::uint64_t run_region_chunks(std::size_t stats_slot);
  bool take_and_run_one_task(std::size_t stats_slot);

  // One cache line per thread so workers never contend on the counters;
  // updates are relaxed (totals are read serially between regions).
  struct alignas(64) ThreadCounters {
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> chunks{0};
  };

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // popped but not yet finished
  std::atomic<bool> queue_has_work_{false};
  std::atomic<bool> stopping_{false};
  std::exception_ptr first_error_;
  std::vector<std::thread> threads_;

  // --- parallel region slot (see thread_pool.cc for the claim protocol) ---
  // One word packs the region generation (high 32 bits, even = open, odd =
  // mid-publish) with the next chunk index (low 32 bits), so a claim
  // validates its region atomically with taking an index. See the protocol
  // comment above run_region_chunks().
  std::atomic<std::uint64_t> region_claim_{0};
  std::atomic<const RegionFn*> region_fn_{nullptr};
  std::atomic<std::size_t> region_n_{0};
  std::atomic<std::size_t> region_done_{0};
  std::size_t region_error_index_ = 0;   // guarded by mu_
  std::exception_ptr region_error_;      // guarded by mu_

  // --- observability state (sized at construction, never resized) ---------
  std::atomic<bool> stats_timing_{false};
  std::vector<ThreadCounters> counters_;  // [0] controller, [1..] workers
  std::uint64_t regions_ = 0;             // controller-only
  std::uint64_t queue_peak_ = 0;          // guarded by mu_
};

// Fork/join helper: runs fn(0) .. fn(n-1) across up to `jobs` workers and
// returns when all are done. jobs <= 1 (or n <= 1) runs inline on the
// calling thread -- the serial and parallel paths execute the same code, so
// a shared-nothing fn gives identical per-index results either way. If one
// or more calls throw, the exception of the *lowest index* is rethrown after
// every index has run (lowest-index, not first-in-time, so the error too is
// schedule-independent). Constructs a pool per call: fine for coarse tasks
// (whole sweep cells), unusable per-tick -- hold a ThreadPool and call its
// parallel_for member for that.
void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace wasp::exec
