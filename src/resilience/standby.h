// Hot-standby replication (DESIGN.md §12).
//
// A StandbyManager keeps K passive replicas of every protected stage --
// stateful, splittable, unpinned -- on sites chosen by the placement ILP
// under a failure-domain anti-affinity constraint: a standby never shares a
// domain with any of the stage's primary sites, so one `domain_down` cannot
// take both copies. Replicas are kept warm by periodic state-delta shipping
// over `net::Network` bulk flows, which share WAN links with the data plane
// and in-flight migrations (standby sync is not free bandwidth).
//
// The division of labor with the runtime:
//  - planning (which site hosts a replica) runs in the background at the
//    sync cadence, so the ILP never sits on the failure hot path;
//  - on a confirmed failure the runtime asks `viable_standby` -- a pure
//    lookup -- and, if one exists, promotes it via Engine::promote_standby,
//    replaying only the delta since the replica's last completed sync;
//  - a promoted (or dead) replica is consumed/dropped and re-planned at the
//    next sync boundary.
//
// Determinism: every decision here is a pure function of (engine state,
// monitor view, schedule); slots and flows are iterated in stable vector
// order and the ILP is deterministic, so same seed + same fault schedule
// gives byte-identical traces at any thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "engine/engine.h"
#include "net/network.h"
#include "physical/scheduler.h"

namespace wasp::obs {
class Profiler;
class TraceEmitter;
}  // namespace wasp::obs

namespace wasp::resilience {

struct StandbyConfig {
  // Passive replicas per protected stage. 0 disables the subsystem.
  int replicas = 0;
  // Delta-shipping cadence; also the background planning cadence.
  double sync_interval_sec = 30.0;
  // A replica whose last completed sync captured state older than this is
  // not promotable: replaying that much delta would cost more than the
  // fallback replan path saves.
  double max_staleness_sec = 300.0;
  // Floor on a sync flow's size (metadata, membership, manifests).
  double min_sync_mb = 1.0;
};

class StandbyManager {
 public:
  // The Network must outlive the manager (sync flows live in it).
  StandbyManager(net::Network& network, StandbyConfig config);
  ~StandbyManager();

  StandbyManager(const StandbyManager&) = delete;
  StandbyManager& operator=(const StandbyManager&) = delete;

  void set_trace(obs::TraceEmitter* trace) { trace_ = trace; }

  // Tick-phase profiler hook (DESIGN.md §13): tick() runs under the
  // control.standby_sync phase (its placement-ILP calls nest under
  // control.solver.placement through the scheduler's own hook). Null (the
  // default) disables.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

  // Control-plane trust predicate (heartbeat detector), supplied by the
  // runtime so the manager never reads engine failure flags directly.
  using SiteOk = std::function<bool(SiteId)>;

  // Background pump, called once per control tick: completes / aborts
  // in-flight sync flows, drops replicas on dead sites, and at every sync
  // boundary re-plans missing replicas (placement ILP with domain
  // anti-affinity) and launches the next round of delta flows.
  void tick(double now, const engine::Engine& engine,
            const physical::Scheduler& scheduler,
            const physical::NetworkView& view, const SiteOk& trusted);

  // Hot-path query (pure lookup, no solver): the freshest promotable replica
  // of `op` covering `failed_site`, if any.
  struct Promotion {
    SiteId standby_site;
    double synced_window_events = 0.0;  // window prefix resident at standby
    double staleness_sec = 0.0;         // age of that prefix
  };
  [[nodiscard]] std::optional<Promotion> viable_standby(
      OperatorId op, SiteId failed_site, double now,
      const SiteOk& trusted) const;

  // Consumes the replica at `standby_site` after the runtime promoted it
  // (the site is now a primary). A replacement is planned at the next sync
  // boundary.
  void consume(OperatorId op, SiteId standby_site);

  // Drops every replica and aborts in-flight syncs. Called on re-plan:
  // operator ids are renumbered, so replicas must be rebuilt from scratch.
  void reset();

  // Slots reserved by replicas per site; the runtime's scheduler view
  // subtracts these from availability so standbys are not double-booked.
  [[nodiscard]] const std::vector<int>& reserved_slots() const {
    return reserved_;
  }

  [[nodiscard]] std::size_t num_replicas() const { return slots_.size(); }
  // Replica inventory (op, standby site) in planning order; inspection hook
  // for tests and tools.
  [[nodiscard]] std::vector<std::pair<OperatorId, SiteId>> replicas() const;
  [[nodiscard]] std::size_t completed_syncs() const {
    return completed_syncs_;
  }

 private:
  struct InFlightSync {
    FlowId flow;
    SiteId primary;
    double captured_at = 0.0;  // snapshot time (staleness is measured here)
    double window_at_capture = 0.0;
    double state_mb_at_capture = 0.0;
    double size_mb = 0.0;
  };
  struct Slot {
    OperatorId op;
    SiteId site;
    int reserved_tasks = 0;
    // Per-primary-site replica contents, from the last *completed* sync.
    std::vector<double> synced_window;
    std::vector<double> synced_state_mb;
    std::vector<double> synced_at;  // capture time; -1 = never synced
    std::vector<InFlightSync> inflight;
  };

  void pump_syncs(double now, const SiteOk& trusted);
  void plan_missing(double now, const engine::Engine& engine,
                    const physical::Scheduler& scheduler,
                    const physical::NetworkView& view, const SiteOk& trusted);
  void launch_syncs(double now, const engine::Engine& engine,
                    const SiteOk& trusted);
  void drop_slot(std::size_t index);
  void rebuild_reserved();

  net::Network& network_;
  StandbyConfig config_;
  obs::TraceEmitter* trace_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  std::vector<Slot> slots_;
  std::vector<int> reserved_;
  double last_sync_ = -1e18;
  std::size_t completed_syncs_ = 0;
};

}  // namespace wasp::resilience
