#include "resilience/standby.h"

#include <algorithm>
#include <cmath>

#include "obs/profiler.h"
#include "obs/trace.h"

namespace wasp::resilience {
namespace {

// Sync traffic is periodic delta shipping; modeled for the placement ILP as
// a steady stream of this event size so constraint (2) verifies the standby
// link can actually carry the replication load.
constexpr double kSyncEventBytes = 100.0;

bool is_protected(const query::LogicalOperator& op) {
  return op.stateful() && op.splittable && op.pinned_sites.empty();
}

}  // namespace

StandbyManager::StandbyManager(net::Network& network, StandbyConfig config)
    : network_(network), config_(config) {
  reserved_.assign(network_.topology().num_sites(), 0);
}

StandbyManager::~StandbyManager() {
  for (Slot& slot : slots_) {
    for (const InFlightSync& sync : slot.inflight) {
      if (network_.has_flow(sync.flow)) network_.remove_flow(sync.flow);
    }
  }
}

void StandbyManager::tick(double now, const engine::Engine& engine,
                          const physical::Scheduler& scheduler,
                          const physical::NetworkView& view,
                          const SiteOk& trusted) {
  if (config_.replicas <= 0) return;
  obs::Profiler::Scope profile_sync(profiler_, obs::Phase::kStandbySync);
  pump_syncs(now, trusted);

  // A replica on a dead/distrusted site is useless; drop it so a fresh one
  // is planned below. Reverse order keeps erase indexes stable.
  for (std::size_t i = slots_.size(); i-- > 0;) {
    if (network_.site_down(slots_[i].site) || !trusted(slots_[i].site)) {
      drop_slot(i);
    }
  }

  if (now - last_sync_ < config_.sync_interval_sec) return;
  last_sync_ = now;
  plan_missing(now, engine, scheduler, view, trusted);
  launch_syncs(now, engine, trusted);
}

void StandbyManager::pump_syncs(double now, const SiteOk& trusted) {
  for (Slot& slot : slots_) {
    for (std::size_t i = slot.inflight.size(); i-- > 0;) {
      InFlightSync& sync = slot.inflight[i];
      if (!network_.has_flow(sync.flow)) {
        slot.inflight.erase(slot.inflight.begin() +
                            static_cast<std::ptrdiff_t>(i));
        continue;
      }
      const net::Flow& flow = network_.flow(sync.flow);
      const bool dead_endpoint = network_.site_down(sync.primary) ||
                                 network_.site_down(slot.site) ||
                                 !trusted(sync.primary);
      if (flow.done) {
        // Install the snapshot captured at launch; the replica's contents
        // are as of `captured_at`, not completion time.
        const auto p = static_cast<std::size_t>(sync.primary.value());
        slot.synced_window[p] = sync.window_at_capture;
        slot.synced_state_mb[p] = sync.state_mb_at_capture;
        slot.synced_at[p] = sync.captured_at;
        ++completed_syncs_;
        network_.remove_flow(sync.flow);
        if (trace_ != nullptr && trace_->enabled()) {
          trace_->event("standby_sync")
              .num("op", static_cast<double>(slot.op.value()))
              .num("from", static_cast<double>(sync.primary.value()))
              .num("to", static_cast<double>(slot.site.value()))
              .num("size_mb", sync.size_mb)
              .num("staleness_sec", now - sync.captured_at);
        }
        slot.inflight.erase(slot.inflight.begin() +
                            static_cast<std::ptrdiff_t>(i));
      } else if (dead_endpoint ||
                 network_.link_partitioned(sync.primary, slot.site)) {
        // The transfer will never finish; abort and retry at the next sync
        // boundary (the replica keeps its previous completed snapshot).
        network_.remove_flow(sync.flow);
        slot.inflight.erase(slot.inflight.begin() +
                            static_cast<std::ptrdiff_t>(i));
      }
    }
  }
}

void StandbyManager::plan_missing(double now, const engine::Engine& engine,
                                  const physical::Scheduler& scheduler,
                                  const physical::NetworkView& view,
                                  const SiteOk& trusted) {
  const net::Topology& topo = network_.topology();
  const std::size_t m = topo.num_sites();
  for (const query::LogicalOperator& lop : engine.logical().operators()) {
    if (!is_protected(lop)) continue;
    int existing = 0;
    for (const Slot& slot : slots_) {
      if (slot.op == lop.id) ++existing;
    }
    if (existing >= config_.replicas) continue;

    const physical::StagePlacement& placement = engine.placement(lop.id);
    if (placement.parallelism() == 0) continue;

    // Anti-affinity: exclude every site sharing a failure domain with a
    // primary site or with an already-placed replica of this stage.
    int reserve = 0;
    auto domain_excluded = [&](int domain) {
      for (std::size_t s = 0; s < m; ++s) {
        const SiteId site(static_cast<std::int64_t>(s));
        if (placement.per_site[s] > 0 && topo.domain_of(site) == domain) {
          return true;
        }
      }
      for (const Slot& slot : slots_) {
        if (slot.op == lop.id && topo.domain_of(slot.site) == domain) {
          return true;
        }
      }
      return false;
    };

    physical::StageContext context;
    for (std::size_t s = 0; s < m; ++s) {
      const SiteId site(static_cast<std::int64_t>(s));
      if (placement.per_site[s] > 0) {
        reserve = std::max(reserve, placement.per_site[s]);
        // Average replication rate: one full-state's worth of delta per sync
        // interval from this primary, expressed as an event stream so the
        // ILP's bandwidth constraint (2) prices it like any other edge.
        const double mb = std::max(config_.min_sync_mb,
                                   engine.state_mb(lop.id, site));
        const double eps =
            (mb * 8.0 * 1e6) /
            (config_.sync_interval_sec * kSyncEventBytes * 8.0);
        context.upstream.push_back(
            physical::TrafficEndpoint{site, eps, kSyncEventBytes});
      }
      if (domain_excluded(topo.domain_of(site)) || !trusted(site) ||
          network_.site_down(site)) {
        context.excluded_sites.push_back(site);
      }
    }
    if (context.upstream.empty() || reserve == 0) continue;

    for (int k = existing; k < config_.replicas; ++k) {
      context.parallelism = reserve;
      const auto outcome = scheduler.place_stage(context, view);
      if (!outcome.has_value()) break;  // infeasible; retry next boundary
      // The replica lives on one site: the one the ILP loaded most
      // (ascending scan, strict improvement, so ties break low).
      SiteId chosen;
      int best = 0;
      for (std::size_t s = 0; s < m; ++s) {
        if (outcome->placement.per_site[s] > best) {
          best = outcome->placement.per_site[s];
          chosen = SiteId(static_cast<std::int64_t>(s));
        }
      }
      if (!chosen.valid()) break;

      Slot slot;
      slot.op = lop.id;
      slot.site = chosen;
      slot.reserved_tasks = reserve;
      slot.synced_window.assign(m, 0.0);
      slot.synced_state_mb.assign(m, 0.0);
      slot.synced_at.assign(m, -1.0);
      slots_.push_back(std::move(slot));
      context.excluded_sites.push_back(chosen);  // K > 1: spread replicas
      if (trace_ != nullptr && trace_->enabled()) {
        trace_->event_at(now, "standby_planned")
            .num("op", static_cast<double>(lop.id.value()))
            .num("site", static_cast<double>(chosen.value()))
            .num("reserved_tasks", static_cast<double>(reserve));
      }
    }
  }
  rebuild_reserved();
}

void StandbyManager::launch_syncs(double now, const engine::Engine& engine,
                                  const SiteOk& trusted) {
  for (Slot& slot : slots_) {
    const physical::StagePlacement& placement = engine.placement(slot.op);
    for (std::size_t s = 0; s < placement.per_site.size(); ++s) {
      const SiteId primary(static_cast<std::int64_t>(s));
      if (placement.per_site[s] == 0 || primary == slot.site) continue;
      if (network_.site_down(primary) || !trusted(primary)) continue;
      bool already = false;
      for (const InFlightSync& sync : slot.inflight) {
        if (sync.primary == primary) {
          already = true;
          break;
        }
      }
      if (already) continue;

      // Ship the delta since the last completed sync (full state on the
      // first round); tiered checkpoints keep this proportional to the
      // change rate, not the total state.
      const double state_now = engine.state_mb(slot.op, primary);
      const double delta =
          std::abs(state_now -
                   slot.synced_state_mb[static_cast<std::size_t>(s)]);
      InFlightSync sync;
      sync.primary = primary;
      sync.captured_at = now;
      sync.window_at_capture = engine.window_events(slot.op, primary);
      sync.state_mb_at_capture = state_now;
      sync.size_mb =
          std::max(config_.min_sync_mb,
                   slot.synced_at[s] < 0.0 ? state_now : delta);
      sync.flow = network_.add_bulk_flow(primary, slot.site, sync.size_mb);
      slot.inflight.push_back(sync);
    }
  }
}

std::optional<StandbyManager::Promotion> StandbyManager::viable_standby(
    OperatorId op, SiteId failed_site, double now,
    const SiteOk& trusted) const {
  const auto f = static_cast<std::size_t>(failed_site.value());
  std::optional<Promotion> best;
  for (const Slot& slot : slots_) {
    if (slot.op != op) continue;
    if (f >= slot.synced_at.size() || slot.synced_at[f] < 0.0) continue;
    if (network_.site_down(slot.site) || !trusted(slot.site)) continue;
    const double staleness = now - slot.synced_at[f];
    if (staleness > config_.max_staleness_sec) continue;
    if (!best.has_value() || staleness < best->staleness_sec) {
      best = Promotion{slot.site, slot.synced_window[f], staleness};
    }
  }
  return best;
}

void StandbyManager::consume(OperatorId op, SiteId standby_site) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].op == op && slots_[i].site == standby_site) {
      drop_slot(i);
      return;
    }
  }
}

void StandbyManager::reset() {
  for (std::size_t i = slots_.size(); i-- > 0;) drop_slot(i);
}

std::vector<std::pair<OperatorId, SiteId>> StandbyManager::replicas() const {
  std::vector<std::pair<OperatorId, SiteId>> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) out.emplace_back(slot.op, slot.site);
  return out;
}

void StandbyManager::drop_slot(std::size_t index) {
  for (const InFlightSync& sync : slots_[index].inflight) {
    if (network_.has_flow(sync.flow)) network_.remove_flow(sync.flow);
  }
  slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(index));
  rebuild_reserved();
}

void StandbyManager::rebuild_reserved() {
  reserved_.assign(network_.topology().num_sites(), 0);
  for (const Slot& slot : slots_) {
    reserved_[static_cast<std::size_t>(slot.site.value())] +=
        slot.reserved_tasks;
  }
}

}  // namespace wasp::resilience
