// Logical query plan: a DAG of logical operators.
//
// Besides graph bookkeeping, the plan provides two facilities the WASP
// adaptation layer builds on:
//
//  - rate estimation (§3.3): propagating the *actual* source workload through
//    operator selectivities to get each operator's expected input/output
//    rates regardless of backpressure-distorted observations;
//  - canonical signatures (§4.3): a commutative-aware structural hash of the
//    sub-plan feeding each operator, used to decide whether a stateful
//    operator in a new plan can inherit the state of one in the old plan
//    ("common sub-plans").
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "query/operator.h"

namespace wasp::query {

// Expected steady-state rates of one operator under a given workload.
struct OperatorRates {
  double input_eps = 0.0;   // λ̂_I: expected input events/s
  double output_eps = 0.0;  // λ̂_O = σ · λ̂_I
};

class LogicalPlan {
 public:
  // Adds an operator; its id is assigned by the plan and returned.
  OperatorId add_operator(LogicalOperator op);

  // Adds the edge upstream -> downstream.
  void connect(OperatorId upstream, OperatorId downstream);

  [[nodiscard]] std::size_t num_operators() const { return ops_.size(); }
  [[nodiscard]] const LogicalOperator& op(OperatorId id) const;
  [[nodiscard]] LogicalOperator& mutable_op(OperatorId id);
  [[nodiscard]] const std::vector<LogicalOperator>& operators() const {
    return ops_;
  }

  [[nodiscard]] const std::vector<OperatorId>& upstream(OperatorId id) const;
  [[nodiscard]] const std::vector<OperatorId>& downstream(OperatorId id) const;

  [[nodiscard]] std::vector<OperatorId> sources() const;
  [[nodiscard]] std::vector<OperatorId> sinks() const;

  // Operators in topological order (sources first). Asserts on cycles.
  [[nodiscard]] std::vector<OperatorId> topological_order() const;

  // Validates DAG shape: connected, acyclic, sources have no inputs, sinks
  // no outputs, join ops have exactly two inputs. Returns an error message
  // or empty string if valid.
  [[nodiscard]] std::string validate() const;

  // §3.3 workload estimation: propagates per-source output rates (events/s,
  // keyed by source operator id) through selectivities.
  [[nodiscard]] std::unordered_map<OperatorId, OperatorRates> estimate_rates(
      const std::unordered_map<OperatorId, double>& source_rates) const;

  // Canonical structural signature of the sub-plan rooted at `id` (the
  // operator plus everything upstream of it). Commutative operators (join,
  // union) sort their children's signatures, so σ(C ⋈ D) == σ(D ⋈ C) but
  // != σ(B ⋈ C) -- exactly the §4.3 state-compatibility test.
  [[nodiscard]] std::string signature(OperatorId id) const;

  // True if every *stateful* operator of `old_plan` has a signature-matching
  // operator in this plan, i.e. switching from `old_plan` to this plan can
  // restore all state (§4.3).
  [[nodiscard]] bool can_inherit_state_from(const LogicalPlan& old_plan) const;

  // Pairs of (old operator, new operator) whose signatures match between
  // `old_plan` and this plan; used to carry state across a re-plan.
  [[nodiscard]] std::vector<std::pair<OperatorId, OperatorId>>
  matching_operators(const LogicalPlan& old_plan) const;

 private:
  std::vector<LogicalOperator> ops_;
  std::vector<std::vector<OperatorId>> upstream_;
  std::vector<std::vector<OperatorId>> downstream_;
};

}  // namespace wasp::query
