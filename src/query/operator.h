// Logical stream operators.
//
// A query's logical plan is a DAG of these operators (§2.1). Each operator
// carries the parameters the simulator and the adaptation layer need:
//
//  - selectivity σ: output events per input event (§3.2); for joins it is
//    applied to the combined input rate,
//  - per-slot processing capacity: how many events/s one task (one computing
//    slot) sustains -- the compute-bottleneck knob,
//  - output event size: converts event rates into WAN bandwidth demand,
//  - state spec: whether the operator is stateful and how its state grows,
//    which gates query re-planning (§4.3) and prices migration (§5),
//  - splittable: whether parallelizing preserves semantics; a global counter
//    or sink does not split without a combiner, so WASP re-plans instead of
//    scaling it (§6.2).
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"

namespace wasp::query {

enum class OperatorKind {
  kSource,
  kFilter,
  kMap,
  kProject,
  kUnion,
  kWindowAggregate,  // keyed tumbling-window aggregation
  kJoin,             // binary, commutative hash join
  kTopK,             // windowed top-k reduction
  kSink,
};

[[nodiscard]] const char* to_string(OperatorKind kind);

// How an operator's output is routed to a downstream stage's tasks.
//  - kHash: balanced partitioning over all downstream tasks (§7's default).
//  - kForward: task-local forwarding, as with Flink's operator chaining --
//    each task feeds the downstream task co-located at its own site. Used
//    for source -> pre-filter edges so raw events never cross the WAN.
//    Falls back to hash routing toward sites where the downstream stage has
//    no co-located tasks.
enum class Partitioning { kHash, kForward };

// Tumbling-window specification; length 0 means "not windowed".
struct WindowSpec {
  double length_sec = 0.0;
  [[nodiscard]] bool windowed() const { return length_sec > 0.0; }
};

// How operator state evolves. Total state per operator is
//   base_mb + mb_per_kevent * (events buffered in the open window / 1000)
// split evenly across the operator's tasks (balanced partitioning, §7).
// `fixed_mb` > 0 pins the state to a constant size -- used by the §8.7
// controlled-state experiments.
struct StateSpec {
  bool stateful = false;
  double base_mb = 0.0;
  double mb_per_kevent = 0.0;
  double fixed_mb = -1.0;

  [[nodiscard]] static StateSpec stateless() { return {}; }
  [[nodiscard]] static StateSpec windowed(double base_mb,
                                          double mb_per_kevent) {
    return {true, base_mb, mb_per_kevent, -1.0};
  }
  [[nodiscard]] static StateSpec fixed(double mb) {
    return {true, 0.0, 0.0, mb};
  }
};

struct LogicalOperator {
  OperatorId id;
  std::string name;
  OperatorKind kind = OperatorKind::kMap;
  double selectivity = 1.0;
  double output_event_bytes = 100.0;
  double events_per_sec_per_slot = 50'000.0;
  WindowSpec window;
  StateSpec state;
  Partitioning output_partitioning = Partitioning::kHash;
  bool splittable = true;
  // Sources/sinks are pinned where the data lives / results are consumed.
  std::vector<SiteId> pinned_sites;

  [[nodiscard]] bool is_source() const { return kind == OperatorKind::kSource; }
  [[nodiscard]] bool is_sink() const { return kind == OperatorKind::kSink; }
  [[nodiscard]] bool stateful() const { return state.stateful; }
};

}  // namespace wasp::query
