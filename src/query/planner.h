// Query planner: rewrites and logical-plan enumeration.
//
// WASP's Query Planner (§4.3, §8.1) first applies environment-independent
// optimizations (filter pushdown, as in classic RDBMS optimizers) and then
// enumerates alternative plans that differ in the ordering of aggregation/
// join operators -- the operators whose placement moves data across the WAN.
// The Scheduler prices each candidate plan's best placement and the cheapest
// plan-placement pair wins; that joint step lives in the runtime's
// JobManager, keeping this module free of placement concerns.
//
// For stateful queries, enumeration is filtered through the common-sub-plan
// test (LogicalPlan::can_inherit_state_from) before a *re*-plan is allowed.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/logical_plan.h"

namespace wasp::query {

// A logical plan admissible as a runtime re-plan. When the candidate cannot
// inherit all of the current execution's state but every orphaned stateful
// operator is a tumbling window, the switch is still safe *at a window
// boundary*, where that state re-initializes (§4.3); `boundary_window_sec`
// is the window length the reconfiguration must align to (0 = switch any
// time).
struct ReplanCandidate {
  LogicalPlan plan;
  double boundary_window_sec = 0.0;
};

class QueryPlanner {
 public:
  struct Options {
    bool enable_filter_pushdown = true;
    bool enable_join_reordering = true;
    // Distributive window aggregations directly downstream of a union can
    // be split into per-branch partial aggregations plus a final merge --
    // the "aggregation ordering" dimension of the paper's plan space.
    bool enable_aggregation_pushdown = true;
    // Join chains wider than this are not reordered (factorial blow-up).
    std::size_t max_join_inputs = 6;
  };

  QueryPlanner() = default;
  explicit QueryPlanner(Options options) : options_(options) {}

  // All candidate logical plans for `input`: the (rewritten) original first,
  // then join-reordered variants. Every candidate passes validate().
  [[nodiscard]] std::vector<LogicalPlan> enumerate(
      const LogicalPlan& input) const;

  // Candidates admissible as a *runtime re-plan* of `current` (§4.3):
  // enumerate() filtered to plans that either inherit all of `current`'s
  // stateful state (common sub-plans) or orphan only tumbling-window state,
  // in which case the candidate carries the window length the switch must
  // align to. Stateless queries are unrestricted.
  [[nodiscard]] std::vector<ReplanCandidate> enumerate_replans(
      const LogicalPlan& current) const;

  // Semantics-preserving rewrite: a filter directly downstream of a union is
  // replicated onto each union input, reducing the data rate entering the
  // union (and any WAN hop in front of it).
  [[nodiscard]] static LogicalPlan push_down_filters(const LogicalPlan& plan);

  // All left-deep reorderings of the plan's topmost join tree (commutative
  // joins; the two operands of the bottom join are canonicalized to avoid
  // mirror duplicates). Returns just {plan} when there is no join tree or it
  // is too wide.
  [[nodiscard]] static std::vector<LogicalPlan> reorder_joins(
      const LogicalPlan& plan, std::size_t max_inputs);

  // Partial-aggregation pushdown: rewrites every windowed aggregation whose
  // single input is a union into per-branch partial aggregations feeding a
  // union and a final merge aggregation. Cuts the pre-union WAN traffic to
  // the aggregated rate at the cost of `kPartialDuplication`x duplicate
  // partials crossing the union. Returns the rewritten plan, or nullopt if
  // nothing was rewritable.
  [[nodiscard]] static std::optional<LogicalPlan> push_down_aggregation(
      const LogicalPlan& plan);

 private:
  Options options_{};
  // Re-plan candidates depend only on the logical plan, and the running plan
  // changes only when a re-plan is applied -- yet try_replan re-enumerates
  // every decision epoch a bottleneck persists. Memoized on an exact
  // serialization of the input plan (rewrites and reordering are
  // deterministic, so a hit is identical to a fresh enumeration).
  mutable std::unordered_map<std::string, std::vector<ReplanCandidate>>
      replan_memo_;
};

}  // namespace wasp::query
