#include "query/planner.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace wasp::query {
namespace {

// Rebuilds `plan` keeping only operators for which `keep` is true, copying
// all edges between kept operators. Returns the new plan and the old->new id
// mapping.
struct RebuiltPlan {
  LogicalPlan plan;
  std::unordered_map<OperatorId, OperatorId> remap;
};

RebuiltPlan rebuild_without(
    const LogicalPlan& plan,
    const std::unordered_set<OperatorId>& removed) {
  RebuiltPlan out;
  for (const auto& op : plan.operators()) {
    if (removed.contains(op.id)) continue;
    LogicalOperator copy = op;
    out.remap.emplace(op.id, out.plan.add_operator(std::move(copy)));
  }
  for (const auto& op : plan.operators()) {
    if (removed.contains(op.id)) continue;
    for (OperatorId d : plan.downstream(op.id)) {
      if (removed.contains(d)) continue;
      out.plan.connect(out.remap.at(op.id), out.remap.at(d));
    }
  }
  return out;
}

// A join tree found in the plan: its internal join nodes and its leaf inputs
// (operators outside the tree feeding it).
struct JoinTree {
  OperatorId root;                 // topmost join
  std::vector<OperatorId> joins;   // all internal joins, root included
  std::vector<OperatorId> leaves;  // external inputs, in discovery order
};

// Finds the topmost join tree: a join none of whose downstream operators is
// another join of the same tree. Returns nullopt-ish (root invalid) if the
// plan has no join.
JoinTree find_join_tree(const LogicalPlan& plan) {
  JoinTree tree;
  // Topmost join: a join whose downstream contains no join.
  for (const auto& op : plan.operators()) {
    if (op.kind != OperatorKind::kJoin) continue;
    bool feeds_join = false;
    for (OperatorId d : plan.downstream(op.id)) {
      if (plan.op(d).kind == OperatorKind::kJoin) {
        feeds_join = true;
        break;
      }
    }
    if (!feeds_join) {
      tree.root = op.id;
      break;
    }
  }
  if (!tree.root.valid()) return tree;

  // DFS through upstream joins. An upstream join belongs to the tree only if
  // it exclusively feeds the tree (single downstream); otherwise its output
  // is shared and it must stay intact -> treat as leaf.
  std::vector<OperatorId> stack{tree.root};
  while (!stack.empty()) {
    const OperatorId id = stack.back();
    stack.pop_back();
    tree.joins.push_back(id);
    for (OperatorId u : plan.upstream(id)) {
      const LogicalOperator& up = plan.op(u);
      if (up.kind == OperatorKind::kJoin && plan.downstream(u).size() == 1) {
        stack.push_back(u);
      } else {
        tree.leaves.push_back(u);
      }
    }
  }
  return tree;
}

}  // namespace

LogicalPlan QueryPlanner::push_down_filters(const LogicalPlan& plan) {
  // Find a filter whose only upstream is a union that only feeds it; pull
  // the filter below the union (one filter clone per union input). Repeat to
  // a fixed point.
  LogicalPlan current = plan;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& op : current.operators()) {
      if (op.kind != OperatorKind::kFilter) continue;
      if (current.upstream(op.id).size() != 1) continue;
      const OperatorId union_id = current.upstream(op.id)[0];
      const LogicalOperator& u = current.op(union_id);
      if (u.kind != OperatorKind::kUnion) continue;
      if (current.downstream(union_id).size() != 1) continue;

      // Rebuild: drop the filter; splice per-input filter clones in front of
      // the union.
      const LogicalOperator filter_template = op;
      const std::vector<OperatorId> union_downstream =
          current.downstream(op.id);  // filter's consumers move to the union
      std::unordered_set<OperatorId> removed{op.id};
      RebuiltPlan rebuilt = rebuild_without(current, removed);
      LogicalPlan& next = rebuilt.plan;
      const OperatorId new_union = rebuilt.remap.at(union_id);

      // The union's inputs currently connect straight to it; reroute each
      // through a filter clone. Rebuild edges: remove handled by rebuilding
      // again is overkill -- instead we rebuilt without the filter, so the
      // union's consumers are missing (they were the filter's consumers).
      for (OperatorId d : union_downstream) {
        next.connect(new_union, rebuilt.remap.at(d));
      }
      // Insert filter clones on each union input edge. LogicalPlan has no
      // edge removal, so rebuild once more without the union's direct input
      // edges by reconstructing from scratch.
      LogicalPlan final_plan;
      std::unordered_map<OperatorId, OperatorId> remap2;
      for (const auto& o : next.operators()) {
        remap2.emplace(o.id, final_plan.add_operator(o));
      }
      for (const auto& o : next.operators()) {
        for (OperatorId d : next.downstream(o.id)) {
          if (d == new_union) {
            LogicalOperator clone = filter_template;
            clone.name = filter_template.name + "@" + o.name;
            const OperatorId f = final_plan.add_operator(std::move(clone));
            final_plan.connect(remap2.at(o.id), f);
            final_plan.connect(f, remap2.at(new_union));
          } else {
            final_plan.connect(remap2.at(o.id), remap2.at(d));
          }
        }
      }
      current = std::move(final_plan);
      changed = true;
      break;  // restart scan on the rewritten plan
    }
  }
  return current;
}

std::vector<LogicalPlan> QueryPlanner::reorder_joins(const LogicalPlan& plan,
                                                     std::size_t max_inputs) {
  const JoinTree tree = find_join_tree(plan);
  if (!tree.root.valid() || tree.leaves.size() < 2 ||
      tree.leaves.size() > max_inputs) {
    return {plan};
  }

  const LogicalOperator root_template = plan.op(tree.root);
  const std::vector<OperatorId> root_downstream = [&] {
    std::vector<OperatorId> out;
    for (OperatorId d : plan.downstream(tree.root)) out.push_back(d);
    return out;
  }();

  std::unordered_set<OperatorId> removed(tree.joins.begin(), tree.joins.end());

  // Enumerate left-deep orders over leaf *indices*; the bottom join is
  // commutative, so enforce perm[0] < perm[1] to halve duplicates.
  std::vector<std::size_t> perm(tree.leaves.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;

  std::vector<LogicalPlan> plans;
  std::set<std::string> seen_signatures;
  do {
    if (perm[0] > perm[1]) continue;
    RebuiltPlan rebuilt = rebuild_without(plan, removed);
    LogicalPlan& p = rebuilt.plan;
    OperatorId left = rebuilt.remap.at(tree.leaves[perm[0]]);
    for (std::size_t i = 1; i < perm.size(); ++i) {
      LogicalOperator j = root_template;
      j.name = root_template.name + "#" + std::to_string(i - 1);
      const OperatorId join_id = p.add_operator(std::move(j));
      p.connect(left, join_id);
      p.connect(rebuilt.remap.at(tree.leaves[perm[i]]), join_id);
      left = join_id;
    }
    for (OperatorId d : root_downstream) {
      p.connect(left, rebuilt.remap.at(d));
    }
    // Signature-level dedupe (different perms can yield isomorphic trees).
    const std::string sig = p.signature(left);
    if (seen_signatures.insert(sig).second) {
      assert(p.validate().empty());
      plans.push_back(std::move(p));
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return plans;
}

// Cross-branch key duplication of a partially-aggregated stream: each
// branch holds its own partial result per key, so the merged input carries
// roughly this factor more records than the final aggregate emits.
constexpr double kPartialDuplication = 2.0;

std::optional<LogicalPlan> QueryPlanner::push_down_aggregation(
    const LogicalPlan& plan) {
  // Find a windowed aggregation whose single input is a union that only
  // feeds it (the union's branches are the partial-aggregation sites).
  for (const auto& agg : plan.operators()) {
    if (agg.kind != OperatorKind::kWindowAggregate || !agg.window.windowed()) {
      continue;
    }
    if (plan.upstream(agg.id).size() != 1) continue;
    const OperatorId union_id = plan.upstream(agg.id)[0];
    const LogicalOperator& u = plan.op(union_id);
    if (u.kind != OperatorKind::kUnion) continue;
    if (plan.downstream(union_id).size() != 1) continue;
    const auto& branches = plan.upstream(union_id);
    if (branches.size() < 2) continue;

    // Rebuild without the aggregation; splice partial aggs onto the union's
    // inputs and a merge aggregation after it.
    LogicalPlan next;
    std::unordered_map<OperatorId, OperatorId> remap;
    for (const auto& op : plan.operators()) {
      if (op.id == agg.id) continue;
      remap.emplace(op.id, next.add_operator(op));
    }
    // Partial aggregation per branch: same window/state semantics, higher
    // selectivity (duplicate partials), smaller per-branch state share.
    // Merge: combines partials into the exact final aggregate.
    LogicalOperator merge = agg;
    merge.name = agg.name + "-merge";
    merge.selectivity = 1.0 / kPartialDuplication;
    merge.state = StateSpec::windowed(1.0, 0.001);
    const OperatorId merge_id = next.add_operator(std::move(merge));

    for (const auto& op : plan.operators()) {
      if (op.id == agg.id) continue;
      for (OperatorId d : plan.downstream(op.id)) {
        if (d == agg.id) continue;  // re-attached below via merge
        if (d == union_id) {
          LogicalOperator partial = agg;
          partial.name = agg.name + "-partial@" + op.name;
          partial.selectivity =
              std::min(1.0, agg.selectivity * kPartialDuplication);
          const OperatorId pid = next.add_operator(std::move(partial));
          next.connect(remap.at(op.id), pid);
          next.connect(pid, remap.at(union_id));
        } else {
          next.connect(remap.at(op.id), remap.at(d));
        }
      }
    }
    next.connect(remap.at(union_id), merge_id);
    for (OperatorId d : plan.downstream(agg.id)) {
      next.connect(merge_id, remap.at(d));
    }
    if (!next.validate().empty()) continue;
    return next;
  }
  return std::nullopt;
}

std::vector<LogicalPlan> QueryPlanner::enumerate(
    const LogicalPlan& input) const {
  LogicalPlan base =
      options_.enable_filter_pushdown ? push_down_filters(input) : input;
  if (!options_.enable_join_reordering) return {std::move(base)};

  // The (rewritten) original is always candidate 0 -- reorder_joins emits
  // left-deep trees only, so a bushy input would otherwise be lost (and a
  // stateful bushy plan would lose its only state-compatible candidate).
  auto full_signature = [](const LogicalPlan& p) {
    std::string sig;
    for (OperatorId s : p.sinks()) sig += p.signature(s);
    return sig;
  };
  const std::string base_sig = full_signature(base);

  std::vector<LogicalPlan> reordered =
      reorder_joins(base, options_.max_join_inputs);
  std::vector<LogicalPlan> plans;
  plans.push_back(std::move(base));
  for (auto& p : reordered) {
    if (full_signature(p) != base_sig) plans.push_back(std::move(p));
  }
  if (options_.enable_aggregation_pushdown) {
    // Aggregation-ordering variants of every plan gathered so far.
    const std::size_t before = plans.size();
    for (std::size_t i = 0; i < before; ++i) {
      if (auto pushed = push_down_aggregation(plans[i])) {
        if (full_signature(*pushed) != base_sig) {
          plans.push_back(std::move(*pushed));
        }
      }
    }
  }
  return plans;
}

namespace {

// Exact textual serialization of a logical plan: every operator field the
// rewrites and the state-inheritance test read, plus all edges. Two plans
// with equal serializations enumerate identical candidate sets.
std::string plan_memo_key(const LogicalPlan& plan) {
  std::string key;
  key.reserve(plan.num_operators() * 96);
  for (const auto& op : plan.operators()) {
    key += std::to_string(op.id.value());
    key += '|';
    key += op.name;
    key += '|';
    key += to_string(op.kind);
    key += '|';
    key += std::to_string(op.selectivity);
    key += '|';
    key += std::to_string(op.output_event_bytes);
    key += '|';
    key += std::to_string(op.events_per_sec_per_slot);
    key += '|';
    key += std::to_string(op.window.length_sec);
    key += '|';
    key += std::to_string(op.state.stateful);
    key += std::to_string(op.state.base_mb);
    key += '|';
    key += std::to_string(op.state.mb_per_kevent);
    key += '|';
    key += std::to_string(op.state.fixed_mb);
    key += '|';
    key += std::to_string(static_cast<int>(op.output_partitioning));
    key += std::to_string(op.splittable);
    for (SiteId s : op.pinned_sites) {
      key += ',';
      key += std::to_string(s.value());
    }
    key += '>';
    for (OperatorId d : plan.downstream(op.id)) {
      key += std::to_string(d.value());
      key += ',';
    }
    key += ';';
  }
  return key;
}

}  // namespace

std::vector<ReplanCandidate> QueryPlanner::enumerate_replans(
    const LogicalPlan& current) const {
  const std::string memo_key = plan_memo_key(current);
  if (const auto it = replan_memo_.find(memo_key); it != replan_memo_.end()) {
    return it->second;
  }
  std::vector<ReplanCandidate> admissible;
  for (auto& candidate : enumerate(current)) {
    // §4.3: every stateful operator of the running plan must either find a
    // signature match in the candidate (state carried over) or hold only
    // tumbling-window state, which re-initializes at the window boundary --
    // the switch then waits for that boundary.
    double boundary = 0.0;
    bool ok = true;
    for (const auto& op : current.operators()) {
      if (!op.stateful()) continue;
      const std::string sig = current.signature(op.id);
      bool matched = false;
      for (const auto& cop : candidate.operators()) {
        if (candidate.signature(cop.id) == sig) {
          matched = true;
          break;
        }
      }
      if (matched) continue;
      if (op.window.windowed()) {
        boundary = std::max(boundary, op.window.length_sec);
      } else {
        ok = false;  // unbounded state with no compatible home
        break;
      }
    }
    if (ok) {
      admissible.push_back(ReplanCandidate{std::move(candidate), boundary});
    }
  }
  replan_memo_.emplace(memo_key, admissible);
  return admissible;
}

}  // namespace wasp::query
