#include "query/logical_plan.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace wasp::query {

const char* to_string(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kSource: return "source";
    case OperatorKind::kFilter: return "filter";
    case OperatorKind::kMap: return "map";
    case OperatorKind::kProject: return "project";
    case OperatorKind::kUnion: return "union";
    case OperatorKind::kWindowAggregate: return "window-agg";
    case OperatorKind::kJoin: return "join";
    case OperatorKind::kTopK: return "top-k";
    case OperatorKind::kSink: return "sink";
  }
  return "?";
}

OperatorId LogicalPlan::add_operator(LogicalOperator op) {
  const OperatorId id(static_cast<std::int64_t>(ops_.size()));
  op.id = id;
  ops_.push_back(std::move(op));
  upstream_.emplace_back();
  downstream_.emplace_back();
  return id;
}

void LogicalPlan::connect(OperatorId upstream, OperatorId downstream) {
  assert(upstream.valid() && downstream.valid());
  assert(static_cast<std::size_t>(upstream.value()) < ops_.size());
  assert(static_cast<std::size_t>(downstream.value()) < ops_.size());
  downstream_[static_cast<std::size_t>(upstream.value())].push_back(downstream);
  upstream_[static_cast<std::size_t>(downstream.value())].push_back(upstream);
}

const LogicalOperator& LogicalPlan::op(OperatorId id) const {
  return ops_[static_cast<std::size_t>(id.value())];
}

LogicalOperator& LogicalPlan::mutable_op(OperatorId id) {
  return ops_[static_cast<std::size_t>(id.value())];
}

const std::vector<OperatorId>& LogicalPlan::upstream(OperatorId id) const {
  return upstream_[static_cast<std::size_t>(id.value())];
}

const std::vector<OperatorId>& LogicalPlan::downstream(OperatorId id) const {
  return downstream_[static_cast<std::size_t>(id.value())];
}

std::vector<OperatorId> LogicalPlan::sources() const {
  std::vector<OperatorId> out;
  for (const auto& op : ops_) {
    if (op.is_source()) out.push_back(op.id);
  }
  return out;
}

std::vector<OperatorId> LogicalPlan::sinks() const {
  std::vector<OperatorId> out;
  for (const auto& op : ops_) {
    if (op.is_sink()) out.push_back(op.id);
  }
  return out;
}

std::vector<OperatorId> LogicalPlan::topological_order() const {
  std::vector<std::size_t> indegree(ops_.size(), 0);
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    indegree[i] = upstream_[i].size();
  }
  std::vector<OperatorId> ready;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(OperatorId(static_cast<std::int64_t>(i)));
  }
  std::vector<OperatorId> order;
  order.reserve(ops_.size());
  while (!ready.empty()) {
    const OperatorId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (OperatorId d : downstream_[static_cast<std::size_t>(id.value())]) {
      if (--indegree[static_cast<std::size_t>(d.value())] == 0) {
        ready.push_back(d);
      }
    }
  }
  assert(order.size() == ops_.size() && "logical plan has a cycle");
  return order;
}

std::string LogicalPlan::validate() const {
  if (ops_.empty()) return "plan has no operators";
  std::vector<std::size_t> indegree(ops_.size(), 0);
  std::size_t visited = 0;
  for (const auto& op : ops_) {
    const auto i = static_cast<std::size_t>(op.id.value());
    if (op.is_source() && !upstream_[i].empty()) {
      return "source '" + op.name + "' has inputs";
    }
    if (!op.is_source() && upstream_[i].empty()) {
      return "non-source '" + op.name + "' has no inputs";
    }
    if (op.is_sink() && !downstream_[i].empty()) {
      return "sink '" + op.name + "' has outputs";
    }
    if (!op.is_sink() && downstream_[i].empty()) {
      return "non-sink '" + op.name + "' has no outputs";
    }
    if (op.kind == OperatorKind::kJoin && upstream_[i].size() != 2) {
      return "join '" + op.name + "' must have exactly two inputs";
    }
    if (op.is_source() && op.pinned_sites.empty()) {
      return "source '" + op.name + "' is not pinned to any site";
    }
  }
  // Acyclicity via Kahn count.
  for (std::size_t i = 0; i < ops_.size(); ++i) indegree[i] = upstream_[i].size();
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    const std::size_t i = ready.back();
    ready.pop_back();
    ++visited;
    for (OperatorId d : downstream_[i]) {
      if (--indegree[static_cast<std::size_t>(d.value())] == 0) {
        ready.push_back(static_cast<std::size_t>(d.value()));
      }
    }
  }
  if (visited != ops_.size()) return "plan has a cycle";
  return "";
}

std::unordered_map<OperatorId, OperatorRates> LogicalPlan::estimate_rates(
    const std::unordered_map<OperatorId, double>& source_rates) const {
  std::unordered_map<OperatorId, OperatorRates> rates;
  for (OperatorId id : topological_order()) {
    const LogicalOperator& o = op(id);
    OperatorRates r;
    if (o.is_source()) {
      const auto it = source_rates.find(id);
      r.input_eps = it != source_rates.end() ? it->second : 0.0;
    } else {
      for (OperatorId u : upstream(id)) r.input_eps += rates.at(u).output_eps;
    }
    r.output_eps = o.selectivity * r.input_eps;
    rates.emplace(id, r);
  }
  return rates;
}

std::string LogicalPlan::signature(OperatorId id) const {
  const LogicalOperator& o = op(id);
  std::vector<std::string> children;
  for (OperatorId u : upstream(id)) children.push_back(signature(u));
  // Commutative operators are order-insensitive in their inputs.
  if (o.kind == OperatorKind::kJoin || o.kind == OperatorKind::kUnion) {
    std::sort(children.begin(), children.end());
  }
  std::ostringstream os;
  if (o.is_source()) {
    // Source identity is its name (the external stream it reads).
    os << "src(" << o.name << ")";
  } else {
    os << to_string(o.kind);
    if (o.window.windowed()) os << "[w=" << o.window.length_sec << "]";
    os << "(";
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (i > 0) os << ",";
      os << children[i];
    }
    os << ")";
  }
  return os.str();
}

bool LogicalPlan::can_inherit_state_from(const LogicalPlan& old_plan) const {
  std::vector<std::string> mine;
  for (const auto& o : ops_) {
    if (o.stateful()) mine.push_back(signature(o.id));
  }
  for (const auto& o : old_plan.ops_) {
    if (!o.stateful()) continue;
    const std::string sig = old_plan.signature(o.id);
    if (std::find(mine.begin(), mine.end(), sig) == mine.end()) return false;
  }
  return true;
}

std::vector<std::pair<OperatorId, OperatorId>> LogicalPlan::matching_operators(
    const LogicalPlan& old_plan) const {
  std::vector<std::pair<OperatorId, OperatorId>> matches;
  std::unordered_map<std::string, OperatorId> mine;
  for (const auto& o : ops_) mine.emplace(signature(o.id), o.id);
  for (const auto& o : old_plan.ops_) {
    const auto it = mine.find(old_plan.signature(o.id));
    if (it != mine.end()) matches.emplace_back(o.id, it->second);
  }
  return matches;
}

}  // namespace wasp::query
