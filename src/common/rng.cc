#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace wasp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed all 256 bits of state through splitmix64, per the xoshiro authors'
  // recommendation; this avoids the all-zero state and decorrelates seeds.
  for (auto& s : state_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from zero so log() is finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::int64_t Rng::zipf(std::int64_t n, double s) {
  assert(n > 0);
  if (s <= 0.0) return uniform_int(0, n - 1);
  // Inverse-CDF over the harmonic weights. n is small (countries, campaigns),
  // so the linear scan is fine and keeps the generator bias-free.
  double total = 0.0;
  for (std::int64_t k = 1; k <= n; ++k) total += 1.0 / std::pow(k, s);
  double u = uniform() * total;
  for (std::int64_t k = 1; k <= n; ++k) {
    u -= 1.0 / std::pow(k, s);
    if (u <= 0.0) return k - 1;
  }
  return n - 1;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) {
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(weights.size()) - 1));
  }
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0.0) {
      u -= weights[i];
      if (u <= 0.0) return i;
    }
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace wasp
