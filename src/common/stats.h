// Small statistics accumulators used by monitors and experiment harnesses.
#pragma once

#include <cmath>
#include <cstddef>

namespace wasp {

// Streaming mean/variance accumulator (Welford's algorithm). Numerically
// stable; used by metric monitors for per-interval summaries.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  void reset() { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exponentially-weighted moving average; used by the WAN monitor to smooth
// noisy bandwidth probes.
class Ewma {
 public:
  // `alpha` is the weight of the newest sample, in (0, 1].
  explicit Ewma(double alpha = 0.3) : alpha_(alpha) {}

  void add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace wasp
