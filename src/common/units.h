// Unit helpers used throughout the simulator.
//
// The simulator works in a small set of base units:
//   time       -- seconds (double)
//   bandwidth  -- megabits per second (Mbps)
//   data size  -- megabytes (MB)
//   rates      -- events per second
//
// Conversions between bandwidth and data size are frequent (state migration
// time, stream bandwidth demand), so they are centralized here instead of
// being re-derived ad hoc with magic constants.
#pragma once

namespace wasp {

// Bits per byte; a megabyte here is 10^6 bytes, matching how link capacities
// are quoted (Mbps are decimal megabits).
inline constexpr double kBitsPerByte = 8.0;

// Converts a bandwidth in Mbps to a data rate in MB/s.
[[nodiscard]] constexpr double mbps_to_mb_per_sec(double mbps) {
  return mbps / kBitsPerByte;
}

// Converts a data rate in MB/s to a bandwidth in Mbps.
[[nodiscard]] constexpr double mb_per_sec_to_mbps(double mb_per_sec) {
  return mb_per_sec * kBitsPerByte;
}

// Time to transfer `size_mb` megabytes over a link of `mbps` megabit/s.
// Returns +infinity for a dead link so callers can treat it as unusable.
[[nodiscard]] double transfer_seconds(double size_mb, double mbps);

// Bandwidth demand (Mbps) of an event stream of `events_per_sec` events of
// `event_bytes` bytes each.
[[nodiscard]] constexpr double stream_mbps(double events_per_sec,
                                           double event_bytes) {
  return events_per_sec * event_bytes * kBitsPerByte / 1e6;
}

// Event throughput (events/s) sustainable over `mbps` for events of
// `event_bytes` bytes.
[[nodiscard]] constexpr double events_per_sec_over(double mbps,
                                                   double event_bytes) {
  return event_bytes > 0.0 ? mbps * 1e6 / (kBitsPerByte * event_bytes) : 0.0;
}

}  // namespace wasp
