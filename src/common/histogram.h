// Weighted sample accumulator with percentile/CDF queries.
//
// The paper reports delay *distributions* (CDFs, 95th/99th percentiles) where
// each simulated tick contributes a delay value weighted by the number of
// events emitted during that tick. This class stores (value, weight) samples
// and answers percentile and CDF queries over the weighted distribution.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace wasp {

class WeightedHistogram {
 public:
  // Adds a sample `value` with the given weight (e.g. events in the tick).
  // Non-positive weights are ignored.
  void add(double value, double weight = 1.0);

  // Weighted percentile in [0, 100]. Returns 0 for an empty histogram.
  [[nodiscard]] double percentile(double pct) const;

  // Fraction of total weight with value <= x.
  [[nodiscard]] double cdf_at(double x) const;

  // Evenly-spaced CDF points (value, cumulative fraction) suitable for
  // plotting; `points` values are taken at quantiles 1/points .. 1.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_points(
      std::size_t points) const;

  [[nodiscard]] double total_weight() const { return total_weight_; }
  [[nodiscard]] double weighted_mean() const;
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }

  void clear();

 private:
  void sort_if_needed() const;

  // (value, weight); kept lazily sorted by value.
  mutable std::vector<std::pair<double, double>> samples_;
  mutable bool sorted_ = true;
  double total_weight_ = 0.0;
};

}  // namespace wasp
