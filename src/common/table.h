// Plain-text table and series printers for bench output.
//
// Every bench binary regenerates one of the paper's tables or figures and
// prints it as aligned text: tables as rows/columns, figures as (x, series...)
// blocks. Centralizing the formatting keeps the bench output uniform and easy
// to diff across runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/time_series.h"

namespace wasp {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Appends a row; missing cells are padded empty, extra cells are kept (the
  // table widens).
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 2);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints several series sharing an x-axis as one aligned block:
//   x  <name1>  <name2> ...
// Series are sampled at each series' own recorded x values merged together;
// missing values print as "-". `precision` applies to the y values.
void print_series(std::ostream& os, const std::string& x_label,
                  const std::vector<TimeSeries>& series, int precision = 3);

// Prints a section header used to delimit figures/tables in bench output.
void print_section(std::ostream& os, const std::string& title);

}  // namespace wasp
