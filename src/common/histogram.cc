#include "common/histogram.h"

#include <algorithm>
#include <cassert>

namespace wasp {

void WeightedHistogram::add(double value, double weight) {
  if (weight <= 0.0) return;
  samples_.emplace_back(value, weight);
  total_weight_ += weight;
  sorted_ = false;
}

void WeightedHistogram::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double WeightedHistogram::percentile(double pct) const {
  if (samples_.empty() || total_weight_ <= 0.0) return 0.0;
  sort_if_needed();
  const double target = std::clamp(pct, 0.0, 100.0) / 100.0 * total_weight_;
  double cum = 0.0;
  for (const auto& [value, weight] : samples_) {
    cum += weight;
    if (cum >= target) return value;
  }
  return samples_.back().first;
}

double WeightedHistogram::cdf_at(double x) const {
  if (samples_.empty() || total_weight_ <= 0.0) return 0.0;
  sort_if_needed();
  double cum = 0.0;
  for (const auto& [value, weight] : samples_) {
    if (value > x) break;
    cum += weight;
  }
  return cum / total_weight_;
}

std::vector<std::pair<double, double>> WeightedHistogram::cdf_points(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0 || total_weight_ <= 0.0) return out;
  sort_if_needed();
  out.reserve(points);
  // One cumulative pass: quantile targets are visited in increasing order, so
  // the sample cursor only ever advances — O(n + points) instead of the old
  // O(points * n) percentile re-scan per point.
  std::size_t i = 0;
  double cum = samples_.front().second;
  for (std::size_t k = 1; k <= points; ++k) {
    const double q = static_cast<double>(k) / static_cast<double>(points);
    const double target = q * total_weight_;
    while (cum < target && i + 1 < samples_.size()) {
      ++i;
      cum += samples_[i].second;
    }
    out.emplace_back(samples_[i].first, q);
  }
  return out;
}

double WeightedHistogram::weighted_mean() const {
  if (total_weight_ <= 0.0) return 0.0;
  double sum = 0.0;
  for (const auto& [value, weight] : samples_) sum += value * weight;
  return sum / total_weight_;
}

void WeightedHistogram::clear() {
  samples_.clear();
  total_weight_ = 0.0;
  sorted_ = true;
}

}  // namespace wasp
