#include "common/histogram.h"

#include <algorithm>
#include <cassert>

namespace wasp {

void WeightedHistogram::add(double value, double weight) {
  if (weight <= 0.0) return;
  samples_.emplace_back(value, weight);
  total_weight_ += weight;
  sorted_ = false;
}

void WeightedHistogram::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double WeightedHistogram::percentile(double pct) const {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  const double target = std::clamp(pct, 0.0, 100.0) / 100.0 * total_weight_;
  double cum = 0.0;
  for (const auto& [value, weight] : samples_) {
    cum += weight;
    if (cum >= target) return value;
  }
  return samples_.back().first;
}

double WeightedHistogram::cdf_at(double x) const {
  if (samples_.empty() || total_weight_ <= 0.0) return 0.0;
  sort_if_needed();
  double cum = 0.0;
  for (const auto& [value, weight] : samples_) {
    if (value > x) break;
    cum += weight;
  }
  return cum / total_weight_;
}

std::vector<std::pair<double, double>> WeightedHistogram::cdf_points(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(percentile(q * 100.0), q);
  }
  return out;
}

double WeightedHistogram::weighted_mean() const {
  if (total_weight_ <= 0.0) return 0.0;
  double sum = 0.0;
  for (const auto& [value, weight] : samples_) sum += value * weight;
  return sum / total_weight_;
}

void WeightedHistogram::clear() {
  samples_.clear();
  total_weight_ = 0.0;
  sorted_ = true;
}

}  // namespace wasp
