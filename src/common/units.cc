#include "common/units.h"

#include <limits>

namespace wasp {

double transfer_seconds(double size_mb, double mbps) {
  if (mbps <= 0.0) {
    return size_mb <= 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return size_mb / mbps_to_mb_per_sec(mbps);
}

}  // namespace wasp
