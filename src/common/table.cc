#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

namespace wasp {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::size_t cols = headers_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  widen(headers_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void print_series(std::ostream& os, const std::string& x_label,
                  const std::vector<TimeSeries>& series, int precision) {
  // Merge all x values; map each series to its value at each x if present.
  std::map<double, std::vector<double>> grid;  // x -> per-series value
  const double nan = std::nan("");
  for (std::size_t i = 0; i < series.size(); ++i) {
    for (const auto& [x, y] : series[i].points()) {
      auto& row = grid[x];
      row.resize(series.size(), nan);
      row[i] = y;
    }
  }
  TextTable table([&] {
    std::vector<std::string> headers{x_label};
    for (const auto& s : series) headers.push_back(s.name());
    return headers;
  }());
  for (const auto& [x, values] : grid) {
    std::vector<std::string> cells{TextTable::fmt(x, 1)};
    for (double v : values) {
      cells.push_back(std::isnan(v) ? "-" : TextTable::fmt(v, precision));
    }
    table.add_row(std::move(cells));
  }
  table.print(os);
}

void print_section(std::ostream& os, const std::string& title) {
  os << '\n' << "== " << title << " ==" << '\n';
}

}  // namespace wasp
