// Strong identifier types shared across the WASP modules.
//
// Using distinct wrapper types (rather than bare ints) prevents accidentally
// passing a task id where a site id is expected -- the kind of mix-up that is
// otherwise easy to make in placement code that juggles several index spaces.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <ostream>

namespace wasp {

// A strongly-typed integer id. `Tag` is a phantom type used only to make
// different id families incompatible at compile time.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::int64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::int64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  friend constexpr auto operator<=>(Id, Id) = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << id.value_;
  }

 private:
  std::int64_t value_ = -1;
};

struct SiteTag {};
struct OperatorTag {};
struct StageTag {};
struct TaskTag {};
struct QueryTag {};
struct FlowTag {};

using SiteId = Id<SiteTag>;
using OperatorId = Id<OperatorTag>;
using StageId = Id<StageTag>;
using TaskId = Id<TaskTag>;
using QueryId = Id<QueryTag>;
using FlowId = Id<FlowTag>;

}  // namespace wasp

namespace std {
template <typename Tag>
struct hash<wasp::Id<Tag>> {
  size_t operator()(wasp::Id<Tag> id) const noexcept {
    return std::hash<std::int64_t>{}(id.value());
  }
};
}  // namespace std
