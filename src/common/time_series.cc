#include "common/time_series.h"

#include <algorithm>
#include <cmath>

namespace wasp {

double TimeSeries::mean_over(double t0, double t1) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [t, v] : points_) {
    if (t >= t0 && t < t1) {
      sum += v;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double TimeSeries::max_over(double t0, double t1) const {
  double best = 0.0;
  bool found = false;
  for (const auto& [t, v] : points_) {
    if (t >= t0 && t < t1 && (!found || v > best)) {
      best = v;
      found = true;
    }
  }
  return best;
}

double TimeSeries::percentile_over(double t0, double t1, double pct) const {
  std::vector<double> window;
  for (const auto& [t, v] : points_) {
    if (t >= t0 && t < t1) window.push_back(v);
  }
  if (window.empty()) return 0.0;
  std::sort(window.begin(), window.end());
  const double clamped = std::min(100.0, std::max(0.0, pct));
  // Nearest-rank: the smallest value with at least pct% of samples <= it.
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(window.size())));
  return window[rank == 0 ? 0 : rank - 1];
}

double TimeSeries::value_at(double t, double fallback) const {
  double result = fallback;
  for (const auto& [pt, v] : points_) {
    if (pt > t) break;
    result = v;
  }
  return result;
}

std::vector<std::pair<double, double>> TimeSeries::downsample(double dt) const {
  std::vector<std::pair<double, double>> out;
  if (points_.empty() || dt <= 0.0) return out;
  const double t_end = points_.back().first;
  const auto buckets = static_cast<std::size_t>(std::floor(t_end / dt)) + 1;
  std::vector<double> sums(buckets, 0.0);
  std::vector<std::size_t> counts(buckets, 0);
  for (const auto& [t, v] : points_) {
    const auto b = std::min(
        buckets - 1, static_cast<std::size_t>(std::max(0.0, t) / dt));
    sums[b] += v;
    ++counts[b];
  }
  out.reserve(buckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    if (counts[b] > 0) {
      out.emplace_back((static_cast<double>(b) + 0.5) * dt,
                       sums[b] / static_cast<double>(counts[b]));
    }
  }
  return out;
}

}  // namespace wasp
