// Time-series recorder for experiment outputs.
//
// Benches record one series per plotted line (delay over time, processing
// ratio, parallelism, ...) and print them in the same shape the paper's
// figures show. Sampling helpers (window averages, resampling) live here so
// every bench reports series consistently.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace wasp {

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void add(double t, double value) { points_.emplace_back(t, value); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<std::pair<double, double>>& points() const {
    return points_;
  }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  // Mean of values with t in [t0, t1).
  [[nodiscard]] double mean_over(double t0, double t1) const;

  // Maximum value with t in [t0, t1); 0 if the window is empty.
  [[nodiscard]] double max_over(double t0, double t1) const;

  // `pct`-th percentile (0..100, nearest-rank) of values with t in [t0, t1);
  // 0 if the window is empty.
  [[nodiscard]] double percentile_over(double t0, double t1, double pct) const;

  // Last recorded value at or before time `t`; `fallback` if none.
  [[nodiscard]] double value_at(double t, double fallback = 0.0) const;

  // Averages points into buckets of width `dt` starting at t=0; returns
  // (bucket center, mean) pairs for plotting coarse series.
  [[nodiscard]] std::vector<std::pair<double, double>> downsample(
      double dt) const;

 private:
  std::string name_;
  std::vector<std::pair<double, double>> points_;
};

}  // namespace wasp
