// Minimal leveled logger.
//
// The simulator's control plane (adaptation decisions, migrations, failures)
// logs at Info so experiments can be traced; the default level is Warn so test
// and bench output stays clean. The logger is intentionally tiny: a global
// level and a stream-style macro-free API.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace wasp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace internal {
void emit(LogLevel level, const std::string& message);
}  // namespace internal

// Usage: wasp::log(LogLevel::kInfo, "scaled stage ", id, " to p=", p);
template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  internal::emit(level, os.str());
}

// Invariant check that stays armed in Release builds. Where assert() would
// compile away under NDEBUG and let the program limp on in a corrupt state,
// check() logs at Error and throws std::logic_error -- callers that can
// recover may catch it; everyone else fails loudly instead of silently.
template <typename... Args>
void check(bool ok, Args&&... args) {
  if (ok) [[likely]] {
    return;
  }
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  internal::emit(LogLevel::kError, os.str());
  throw std::logic_error(os.str());
}

}  // namespace wasp
