// Minimal leveled logger.
//
// The simulator's control plane (adaptation decisions, migrations, failures)
// logs at Info so experiments can be traced; the default level is Warn so test
// and bench output stays clean. The logger is intentionally tiny: a global
// level and a stream-style macro-free API.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace wasp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace internal {
void emit(LogLevel level, const std::string& message);
}  // namespace internal

// Usage: wasp::log(LogLevel::kInfo, "scaled stage ", id, " to p=", p);
template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  internal::emit(level, os.str());
}

}  // namespace wasp
