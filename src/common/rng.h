// Deterministic random number generation for the simulator.
//
// Every experiment in this repository is reproducible: all randomness flows
// from a single seeded `Rng`. We use xoshiro256** (public domain, Blackman &
// Vigna) seeded through splitmix64, which has excellent statistical quality
// and is cheap enough to sit on the simulator's hot path.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace wasp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Raw 64 random bits.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Standard normal via Box-Muller (one value per call; the pair's second
  // value is cached).
  double normal();

  // Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  // Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  // Log-normal such that the underlying normal has the given parameters.
  double lognormal(double mu, double sigma);

  // Zipf-distributed integer in [0, n) with skew parameter `s`. Used for
  // topic/campaign popularity. s = 0 degenerates to uniform.
  std::int64_t zipf(std::int64_t n, double s);

  // Picks an index in [0, weights.size()) proportionally to `weights`.
  // Non-positive total weight falls back to uniform choice.
  std::size_t weighted_index(const std::vector<double>& weights);

  // Derives an independent child generator; used so that sub-systems
  // (workload, network, failures) draw from decoupled streams and adding a
  // draw in one does not perturb the others.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace wasp
