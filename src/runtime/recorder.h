// Experiment metric recorder.
//
// Collects, per tick, the series the paper's figures plot -- delay,
// processing ratio, parallelism -- plus the event-weighted delay histogram
// (for CDFs / percentiles), cumulative event accounting (processed-events
// percentages, Fig. 12a), and a log of adaptation events with measured
// transition and stabilization times (the §8.7 overhead breakdown).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/ids.h"
#include "common/time_series.h"

namespace wasp::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace wasp::obs

namespace wasp::runtime {

struct AdaptationEvent {
  double decided_at = 0.0;
  double transition_end = -1.0;   // when the new deployment resumed
  double stabilized_at = -1.0;    // when backlog returned to steady state
  std::string kind;               // "re-assign", "scale-out", ...
  std::string reason;
  std::int64_t op = -1;           // target operator id; -1 for re-plans
  double estimated_transition_sec = 0.0;
  double migrated_mb = 0.0;
  // Transactional-migration outcome: set when the transition was aborted
  // mid-transfer (endpoint failed or its link partitioned).
  double aborted_at = -1.0;
  std::string abort_reason;
  int attempt = 0;  // 0 = first try; >0 = backoff retry number

  [[nodiscard]] bool aborted() const { return aborted_at >= 0.0; }

  [[nodiscard]] double transition_sec() const {
    return transition_end >= 0.0 ? transition_end - decided_at : 0.0;
  }
  [[nodiscard]] double stabilize_sec() const {
    return stabilized_at >= 0.0 && transition_end >= 0.0
               ? stabilized_at - transition_end
               : 0.0;
  }
};

// One entry in the failure-recovery log: the detector's state changes
// ("suspect", "confirm_failure", "trust"), the transition life-cycle under
// faults ("transition_abort", "retry", "abandon"), the recovery re-plan
// ("replan", "stabilized"), and the degrade fallback ("degrade_on",
// "degrade_off"). Together they give the `suspect -> confirm_failure ->
// replan -> stabilized` chain the chaos acceptance test asserts on.
struct RecoveryEvent {
  double t = 0.0;
  std::string kind;
  std::int64_t site = -1;    // subject site, when applicable
  std::int64_t op = -1;      // subject operator, when applicable
  int attempt = 0;           // retry number, for retry/abandon
  double backoff_sec = 0.0;  // wait before the retry fires
  std::string detail;
};

class Recorder {
 public:
  Recorder()
      : delay_("delay_s"),
        ratio_("processing_ratio"),
        parallelism_("parallelism_x"),
        backlog_("backlog_events") {}

  void record_tick(double t, double delay_sec, double ratio,
                   double parallelism_factor, double backlog_events,
                   double generated, double admitted, double dropped);

  // Mirrors every recorded tick into `registry` (runtime.* gauges/counters
  // and the runtime.delay_sec histogram), so external consumers read the
  // recorder's data through the shared registry instead of duplicating it.
  // Non-owning; pass nullptr to detach. Handles are resolved once here (the
  // registry's nodes are address-stable) so record_tick does no name lookups.
  void bind_metrics(obs::MetricsRegistry* registry);

  [[nodiscard]] const TimeSeries& delay() const { return delay_; }
  [[nodiscard]] const TimeSeries& ratio() const { return ratio_; }
  [[nodiscard]] const TimeSeries& parallelism() const { return parallelism_; }
  [[nodiscard]] const TimeSeries& backlog() const { return backlog_; }
  [[nodiscard]] const WeightedHistogram& delay_histogram() const {
    return delay_hist_;
  }

  [[nodiscard]] double total_generated() const { return total_generated_; }
  [[nodiscard]] double total_processed() const { return total_processed_; }
  [[nodiscard]] double total_dropped() const { return total_dropped_; }
  // Fraction of generated events the query actually processed (Fig. 12a).
  [[nodiscard]] double processed_fraction() const;

  std::vector<AdaptationEvent>& events() { return events_; }
  [[nodiscard]] const std::vector<AdaptationEvent>& events() const {
    return events_;
  }

  void record_recovery(RecoveryEvent event) {
    recovery_events_.push_back(std::move(event));
  }
  [[nodiscard]] const std::vector<RecoveryEvent>& recovery_events() const {
    return recovery_events_;
  }

 private:
  TimeSeries delay_;
  TimeSeries ratio_;
  TimeSeries parallelism_;
  TimeSeries backlog_;
  WeightedHistogram delay_hist_;
  double total_generated_ = 0.0;
  double total_processed_ = 0.0;
  double total_dropped_ = 0.0;
  std::vector<AdaptationEvent> events_;
  std::vector<RecoveryEvent> recovery_events_;
  obs::MetricsRegistry* metrics_ = nullptr;
  // Cached registry handles (resolved in bind_metrics; nullptr when
  // detached).
  obs::Gauge* m_delay_ = nullptr;
  obs::Gauge* m_ratio_ = nullptr;
  obs::Gauge* m_parallelism_ = nullptr;
  obs::Gauge* m_backlog_ = nullptr;
  obs::Counter* m_generated_ = nullptr;
  obs::Counter* m_processed_ = nullptr;
  obs::Counter* m_dropped_ = nullptr;
  WeightedHistogram* m_delay_hist_ = nullptr;
};

}  // namespace wasp::runtime
