// Declarative SLO watchdog (in-runtime, windowed).
//
// The runtime evaluates a small declarative SLO spec against the Recorder's
// series once per tick, over a sliding window:
//
//   delay_p99=5s    p99 of per-tick delay over the window must be <= 5 s
//   delay_p95=...   same at p95
//   delay_max=...   worst per-tick delay over the window
//   ratio_min=0.9   mean processing ratio over the window must be >= 0.9
//   window=30s      sliding-window width (default 30 s)
//
// Specs are comma-separated key=value pairs ("delay_p99=5s,ratio_min=0.9,
// window=30s", the wasp_sim --slo syntax). Seconds values accept an optional
// trailing "s"/"sec". A violation *episode* opens when any bound is breached
// and closes when every bound holds again; each episode is one
// "slo_violation" span (root) with flat "slo_violation_begin"/"_end" events
// nested inside, plus slo.* counters/gauges in the MetricsRegistry:
//   slo.violations          episodes opened
//   slo.violation_seconds   total time spent in violation
//   slo.in_violation        gauge: 1 while an episode is open
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "runtime/recorder.h"

namespace wasp::runtime {

struct SloSpec {
  // Bounds; negative = not set. At least one must be set for a valid spec.
  double delay_p99_sec = -1.0;
  double delay_p95_sec = -1.0;
  double delay_max_sec = -1.0;
  double ratio_min = -1.0;
  double window_sec = 30.0;

  [[nodiscard]] bool any() const {
    return delay_p99_sec >= 0.0 || delay_p95_sec >= 0.0 ||
           delay_max_sec >= 0.0 || ratio_min >= 0.0;
  }

  // Parses "delay_p99=5s,ratio_min=0.9,window=30s". Returns nullopt (and
  // fills *error when non-null) on unknown keys, malformed numbers, or a
  // spec with no bound at all.
  static std::optional<SloSpec> parse(std::string_view text,
                                      std::string* error = nullptr);

  // Canonical "key=value,..." rendering of the set fields.
  [[nodiscard]] std::string to_string() const;
};

class SloWatchdog {
 public:
  // `trace` and `metrics` are non-owning and may be null (no trace events /
  // no counters, evaluation still runs).
  SloWatchdog(SloSpec spec, obs::TraceEmitter* trace,
              obs::MetricsRegistry* metrics)
      : spec_(spec), trace_(trace), metrics_(metrics) {}

  // Evaluates the window ending at `now`; opens/closes the violation episode.
  void tick(double now, const Recorder& recorder);

  // Closes a still-open episode at end of run (status "unresolved").
  void finish(double now);

  [[nodiscard]] const SloSpec& spec() const { return spec_; }
  [[nodiscard]] bool in_violation() const { return violating_; }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }
  [[nodiscard]] double violation_seconds() const {
    return violation_seconds_;
  }

 private:
  void open_episode(double now, const std::string& reasons);
  void close_episode(double now, std::string_view status);

  SloSpec spec_;
  obs::TraceEmitter* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;

  bool violating_ = false;
  double violation_began_ = 0.0;
  std::uint64_t violation_span_ = obs::kNoSpan;
  std::uint64_t violations_ = 0;
  double violation_seconds_ = 0.0;
  std::string active_reasons_;
};

}  // namespace wasp::runtime
