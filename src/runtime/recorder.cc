#include "runtime/recorder.h"

namespace wasp::runtime {

void Recorder::record_tick(double t, double delay_sec, double ratio,
                           double parallelism_factor, double backlog_events,
                           double generated, double admitted, double dropped) {
  delay_.add(t, delay_sec);
  ratio_.add(t, ratio);
  parallelism_.add(t, parallelism_factor);
  backlog_.add(t, backlog_events);
  if (admitted > 0.0) delay_hist_.add(delay_sec, admitted);
  total_generated_ += generated;
  total_processed_ += admitted;
  total_dropped_ += dropped;
}

double Recorder::processed_fraction() const {
  return total_generated_ > 0.0 ? total_processed_ / total_generated_ : 1.0;
}

}  // namespace wasp::runtime
