#include "runtime/recorder.h"

#include "obs/metrics_registry.h"

namespace wasp::runtime {

void Recorder::record_tick(double t, double delay_sec, double ratio,
                           double parallelism_factor, double backlog_events,
                           double generated, double admitted, double dropped) {
  delay_.add(t, delay_sec);
  ratio_.add(t, ratio);
  parallelism_.add(t, parallelism_factor);
  backlog_.add(t, backlog_events);
  if (admitted > 0.0) delay_hist_.add(delay_sec, admitted);
  total_generated_ += generated;
  total_processed_ += admitted;
  total_dropped_ += dropped;

  if (metrics_ != nullptr) {
    metrics_->gauge("runtime.delay_sec").set(delay_sec);
    metrics_->gauge("runtime.processing_ratio").set(ratio);
    metrics_->gauge("runtime.parallelism_factor").set(parallelism_factor);
    metrics_->gauge("runtime.backlog_events").set(backlog_events);
    metrics_->counter("runtime.generated_events").inc(generated);
    metrics_->counter("runtime.processed_events").inc(admitted);
    metrics_->counter("runtime.dropped_events").inc(dropped);
    if (admitted > 0.0) {
      metrics_->histogram("runtime.delay_sec").add(delay_sec, admitted);
    }
  }
}

double Recorder::processed_fraction() const {
  return total_generated_ > 0.0 ? total_processed_ / total_generated_ : 1.0;
}

}  // namespace wasp::runtime
