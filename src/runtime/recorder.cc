#include "runtime/recorder.h"

#include "obs/metrics_registry.h"

namespace wasp::runtime {

void Recorder::record_tick(double t, double delay_sec, double ratio,
                           double parallelism_factor, double backlog_events,
                           double generated, double admitted, double dropped) {
  delay_.add(t, delay_sec);
  ratio_.add(t, ratio);
  parallelism_.add(t, parallelism_factor);
  backlog_.add(t, backlog_events);
  if (admitted > 0.0) delay_hist_.add(delay_sec, admitted);
  total_generated_ += generated;
  total_processed_ += admitted;
  total_dropped_ += dropped;

  if (metrics_ != nullptr) {
    m_delay_->set(delay_sec);
    m_ratio_->set(ratio);
    m_parallelism_->set(parallelism_factor);
    m_backlog_->set(backlog_events);
    m_generated_->inc(generated);
    m_processed_->inc(admitted);
    m_dropped_->inc(dropped);
    if (admitted > 0.0) m_delay_hist_->add(delay_sec, admitted);
  }
}

void Recorder::bind_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    m_delay_ = m_ratio_ = m_parallelism_ = m_backlog_ = nullptr;
    m_generated_ = m_processed_ = m_dropped_ = nullptr;
    m_delay_hist_ = nullptr;
    return;
  }
  m_delay_ = &registry->gauge("runtime.delay_sec");
  m_ratio_ = &registry->gauge("runtime.processing_ratio");
  m_parallelism_ = &registry->gauge("runtime.parallelism_factor");
  m_backlog_ = &registry->gauge("runtime.backlog_events");
  m_generated_ = &registry->counter("runtime.generated_events");
  m_processed_ = &registry->counter("runtime.processed_events");
  m_dropped_ = &registry->counter("runtime.dropped_events");
  m_delay_hist_ = &registry->histogram("runtime.delay_sec");
}

double Recorder::processed_fraction() const {
  return total_generated_ > 0.0 ? total_processed_ / total_generated_ : 1.0;
}

}  // namespace wasp::runtime
