#include "runtime/wasp_system.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/log.h"
#include "exec/thread_pool.h"
#include "physical/physical_plan.h"

namespace wasp::runtime {

const char* to_string(AdaptationMode mode) {
  switch (mode) {
    case AdaptationMode::kNoAdapt:
      return "no-adapt";
    case AdaptationMode::kDegrade:
      return "degrade";
    case AdaptationMode::kWasp:
      return "wasp";
    case AdaptationMode::kReassignOnly:
      return "re-assign";
    case AdaptationMode::kScaleOnly:
      return "scale";
    case AdaptationMode::kReplanOnly:
      return "re-plan";
    case AdaptationMode::kHybrid:
      return "hybrid";
  }
  return "?";
}

// The control plane's network view: bandwidth from the (noisy, periodically
// refreshed) WAN monitor, latency from the topology (stable, measured once),
// slots from live accounting minus failed sites.
class WaspSystem::MonitorView final : public physical::NetworkView {
 public:
  MonitorView(const WaspSystem& system) : system_(system) {}

  [[nodiscard]] std::size_t num_sites() const override {
    return system_.network_.topology().num_sites();
  }
  [[nodiscard]] double available_mbps(SiteId from, SiteId to) const override {
    return system_.wan_monitor_.available(from, to);
  }
  [[nodiscard]] double latency_ms(SiteId from, SiteId to) const override {
    return system_.network_.latency_ms(from, to);
  }
  [[nodiscard]] int available_slots(SiteId site) const override {
    const auto s = static_cast<std::size_t>(site.value());
    // Suspicion, not ground truth: the control plane withholds a site's
    // slots once the heartbeat detector distrusts it, and not before --
    // detection latency is part of the dynamics (the engine's failure flags
    // are never read here).
    if (!system_.detector_.trusted(site)) return 0;
    int used = 0;
    if (system_.engine_ != nullptr) {
      used = system_.engine_->slots_in_use()[s];
    }
    if (system_.config_.peer_slot_usage) {
      const auto peers = system_.config_.peer_slot_usage();
      if (s < peers.size()) used += peers[s];
    }
    // Hot-standby reservations: slots held warm for passive replicas are not
    // offered to the placement ILP, so adaptation can't double-book them.
    if (system_.standby_ != nullptr) {
      const auto& reserved = system_.standby_->reserved_slots();
      if (s < reserved.size()) used += reserved[s];
    }
    return system_.network_.topology().sites()[s].slots - used;
  }

 private:
  const WaspSystem& system_;
};

WaspSystem::WaspSystem(net::Network& network, workload::QuerySpec spec,
                       const workload::WorkloadPattern& pattern,
                       SystemConfig config)
    : network_(network),
      pattern_(pattern),
      config_(config),
      rng_(config.seed),
      wan_monitor_(network, config.wan_monitor, Rng(config.seed ^ 0x9E37)),
      detector_(network, config.detector),
      scheduler_(config.scheduler),
      planner_(),
      backoff_rng_(config.seed ^ 0xB0FF) {
  recovery_abandoned_.assign(network_.topology().num_sites(), false);
  // Map the adaptation mode onto the policy switches (§8.5 baselines).
  adapt::AdaptationPolicy::Config pc = config_.policy;
  switch (config_.mode) {
    case AdaptationMode::kNoAdapt:
    case AdaptationMode::kDegrade:
      pc.allow_reassign = pc.allow_scale = pc.allow_replan = false;
      break;
    case AdaptationMode::kWasp:
    case AdaptationMode::kHybrid:
      break;
    case AdaptationMode::kReassignOnly:
      pc.allow_scale = false;
      pc.allow_replan = false;
      break;
    case AdaptationMode::kScaleOnly:
      pc.allow_replan = false;
      break;
    case AdaptationMode::kReplanOnly:
      pc.allow_reassign = false;
      pc.allow_scale = false;
      break;
  }
  // Region decomposition (DESIGN.md §14) reads per-site failure-domain
  // labels; default them from the topology unless the caller overrode them.
  if (pc.site_domains.empty()) {
    for (const net::Site& s : network_.topology().sites()) {
      pc.site_domains.push_back(s.domain);
    }
  }
  policy_ = std::make_unique<adapt::AdaptationPolicy>(
      pc, scheduler_, planner_,
      state::MigrationPlanner(config_.migration, rng_.fork()),
      adapt::Diagnoser(config_.diagnoser));

  // Observability wiring: one emitter over the configured sink, shared (as a
  // raw pointer) by every layer. Recorder data flows through the registry
  // rather than being duplicated.
  if (config_.trace_sink != nullptr) {
    trace_ = obs::TraceEmitter(config_.trace_sink);
    network_.set_trace(&trace_);
  }
  policy_->set_trace(&trace_);
  detector_.set_trace(&trace_);
  scheduler_.set_trace(&trace_);  // deploy-time placement spans
  // Tick-phase profiler (DESIGN.md §13): enabled only by --profile; a
  // disabled profiler is a null hook everywhere it is wired.
  profiler_.set_enabled(config_.profile);
  scheduler_.set_profiler(&profiler_);
  policy_->set_profiler(&profiler_);
  recorder_.bind_metrics(&metrics_);
  if (config_.slo.has_value() && config_.slo->any()) {
    slo_watchdog_.emplace(*config_.slo, &trace_, &metrics_);
  }

  config_.engine.tick_sec = config_.tick_sec;
  config_.engine.degrade = config_.mode == AdaptationMode::kDegrade ||
                           config_.mode == AdaptationMode::kHybrid;
  config_.engine.slo_sec = config_.slo_sec;
  config_.engine.trace = &trace_;
  config_.engine.metrics = &metrics_;
  config_.engine.profiler = &profiler_;
  // Intra-run parallelism: one persistent pool shared by the engine's tick
  // regions and the network's per-link waterfills. The pool has threads-1
  // workers; the calling thread participates in every region, so total
  // concurrency is config_.threads.
  if (config_.threads > 1) {
    pool_ = std::make_unique<exec::ThreadPool>(config_.threads - 1);
    config_.engine.pool = pool_.get();
    network_.set_pool(pool_.get());
    // Busy-time clock reads in the pool are profile-gated; the event counts
    // themselves are always on (relaxed increments).
    if (config_.profile) pool_->set_stats_timing(true);
  }

  // Hot-standby replication: the manager plans replica placements in the
  // background and keeps them warm with delta syncs; the promotion decision
  // itself lives in maybe_recover (promote_standbys).
  if (config_.standby_replicas > 0) {
    config_.standby.replicas = config_.standby_replicas;
    standby_ =
        std::make_unique<resilience::StandbyManager>(network_, config_.standby);
    standby_->set_trace(&trace_);
    standby_->set_profiler(&profiler_);
  }

  for (OperatorId src : spec.plan.sources()) {
    pattern_source_ids_.emplace(spec.plan.op(src).name, src);
  }
  deploy(std::move(spec));
}

WaspSystem::~WaspSystem() {
  // Final profile flush: totals accumulated since the last periodic emit
  // must still reach the trace (interrupted runs included).
  if (profiler_.enabled() && trace_.enabled() &&
      tick_count_ > last_profile_emit_) {
    emit_profile_events();
  }
  if (slo_watchdog_.has_value()) slo_watchdog_->finish(now_);
  // Close every span the run left open so the emitted trace stays begin/end
  // balanced (wasp_trace validate asserts this). Must happen in the body:
  // trace_ is destroyed before detector_ by member ordering.
  if (trace_.enabled()) {
    if (transition_.has_value()) {
      for (std::uint64_t span : transition_->transfer_spans) {
        trace_.end_span(span).str("status", "unfinished");
      }
      trace_.end_span(transition_->root_span).str("status", "unfinished");
    }
    trace_.end_span(adaptation_span_).str("status", "unfinished");
    trace_.end_span(stabilize_span_).str("status", "unfinished");
    trace_.end_span(stabilizing_root_).str("status", "unfinished");
    detector_.close_open_spans(now_);
  }
  // The Network may be shared across systems (runtime::Cluster); only detach
  // the trace hook if it still points at this system's emitter.
  if (network_.trace() == &trace_) network_.set_trace(nullptr);
  // Detach the pool before it is destroyed: the Network outlives this system.
  if (pool_ != nullptr && network_.pool() == pool_.get()) {
    network_.set_pool(nullptr);
  }
}

void WaspSystem::deploy(workload::QuerySpec spec) {
  // Initial WAN measurement so the scheduler has bandwidth estimates.
  wan_monitor_.probe_now(0.0);
  const MonitorView view(*this);
  // One decision epoch for the joint plan/placement pricing: candidate
  // logical plans share many identical stage ILPs, which the scheduler's
  // placement cache dedupes within the epoch.
  scheduler_.begin_epoch();

  // Source rates at t = 0 drive the deployment-time cost model.
  auto source_rates_for = [&](const query::LogicalPlan& plan) {
    std::unordered_map<OperatorId, double> rates;
    for (OperatorId src : plan.sources()) {
      const auto it = pattern_source_ids_.find(plan.op(src).name);
      double total = 0.0;
      if (it != pattern_source_ids_.end()) {
        for (SiteId site : plan.op(src).pinned_sites) {
          total += pattern_.rate(it->second, site, 0.0);
        }
      }
      rates[src] = total;
    }
    return rates;
  };

  // Joint plan/placement optimization: price every candidate logical plan
  // and deploy the cheapest (Fig. 1 pipeline; §4.3).
  std::optional<query::LogicalPlan> best_logical;
  std::optional<physical::PlanPlacement> best_placed;
  double best_cost = 0.0;
  for (query::LogicalPlan& candidate : planner_.enumerate(spec.plan)) {
    const auto src_rates = source_rates_for(candidate);
    const auto rates = candidate.estimate_rates(src_rates);
    std::unordered_map<OperatorId, int> parallelism;  // default p = 1
    auto placed = physical::place_plan(candidate, rates, parallelism, view,
                                       scheduler_, config_.policy.p_max);
    if (!placed.has_value()) continue;
    const double cost =
        adapt::estimate_plan_cost(candidate, placed->plan, rates, view,
                                  scheduler_.config().alpha);
    if (!best_logical.has_value() || cost < best_cost) {
      best_cost = cost;
      best_logical = std::move(candidate);
      best_placed = std::move(placed);
    }
  }
  // Fall back to the original plan with greedy feasibility relaxation: place
  // every unpinned stage at the least-loaded data center.
  if (!best_logical.has_value()) {
    log(LogLevel::kWarn,
        "no WAN-feasible initial placement; using fallback deployment");
    physical::PhysicalPlan fallback;
    // Least-loaded site by slots.
    SiteId hub;
    int best_slots = -1;
    for (const auto& site : network_.topology().sites()) {
      if (site.slots > best_slots) {
        best_slots = site.slots;
        hub = site.id;
      }
    }
    for (OperatorId id : spec.plan.topological_order()) {
      const auto& op = spec.plan.op(id);
      physical::StagePlacement placement;
      placement.per_site.assign(network_.topology().num_sites(), 0);
      if (!op.pinned_sites.empty()) {
        for (SiteId s : op.pinned_sites) {
          ++placement.per_site[static_cast<std::size_t>(s.value())];
        }
      } else {
        placement.per_site[static_cast<std::size_t>(hub.value())] = 1;
      }
      fallback.add_stage(id, placement);
    }
    best_logical = std::move(spec.plan);
    best_placed = physical::PlanPlacement{std::move(fallback), 0.0, 0.0};
  }

  engine_ = std::make_unique<engine::Engine>(
      std::move(*best_logical), std::move(best_placed->plan), network_,
      config_.engine);
  initial_tasks_ = engine_->physical_plan().total_tasks();
  apply_workload();
}

void WaspSystem::apply_workload() {
  const query::LogicalPlan& plan = engine_->logical();
  for (OperatorId src : engine_->source_ids()) {
    const auto it = pattern_source_ids_.find(plan.op(src).name);
    if (it == pattern_source_ids_.end()) continue;
    for (SiteId site : plan.op(src).pinned_sites) {
      engine_->set_source_rate(src, site, pattern_.rate(it->second, site, now_));
    }
  }
}

std::vector<int> WaspSystem::free_slots() const {
  const auto used = engine_->slots_in_use();
  std::vector<int> free(used.size(), 0);
  for (std::size_t s = 0; s < used.size(); ++s) {
    free[s] = network_.topology().sites()[s].slots - used[s];
  }
  return free;
}

void WaspSystem::step(bool drive_network) {
  // Tick-phase accounting (DESIGN.md §13): a root "step" frame plus a chain
  // of top-level segments, one clock read per boundary. Pure observer: the
  // profiler touches nothing but its own accumulators.
  obs::Profiler::Scope profile_step(&profiler_, obs::Phase::kStep);
  obs::Profiler::Chain profile(&profiler_);
  now_ += config_.tick_sec;
  trace_.set_now(now_);
  profile.next(obs::Phase::kWorkload);
  apply_workload();
  wan_monitor_.tick(now_);
  profile.next(obs::Phase::kWaterfill);
  if (drive_network) network_.step(now_, config_.tick_sec);
  profile.close();  // the engine opens its own inclusive "engine" frame
  engine_->tick(now_);
  profile.next(obs::Phase::kMonitorExtract);
  metric_monitor_.observe(*engine_, now_);
  profile.next(obs::Phase::kControl);

  // The control plane (detector, adaptation, transition management) freezes
  // during an injected stall; the data plane above keeps running.
  if (!control_stalled()) {
    // The alive callback is a member: a capturing lambda wrapped into
    // std::function every tick would heap-allocate each time.
    if (!site_alive_) {
      site_alive_ = [this](SiteId s) { return !engine_->site_failed(s); };
    }
    detector_.tick(now_, site_alive_);
    for (const faults::HealthTransition& ht : detector_.take_transitions()) {
      const char* kind = ht.to == faults::SiteHealth::kTrusted
                             ? "trust"
                             : ht.to == faults::SiteHealth::kSuspected
                                   ? "suspect"
                                   : "confirm_failure";
      record_recovery(kind, ht.site.value(), /*op=*/-1, /*attempt=*/0,
                      /*backoff_sec=*/0.0, to_string(ht.from));
      if (ht.to == faults::SiteHealth::kConfirmedFailed) {
        // Anchor for the recovery time-to-stabilize metric: measured from
        // the *last* confirmation of the episode to stabilization.
        last_confirm_at_ = now_;
      }
      if (ht.to == faults::SiteHealth::kTrusted) {
        // A re-trusted site wipes its abandon flag: recovery may be
        // attempted afresh if it fails again later.
        recovery_abandoned_[static_cast<std::size_t>(ht.site.value())] =
            false;
        if (recovery_degrade_active_ &&
            std::none_of(recovery_abandoned_.begin(),
                         recovery_abandoned_.end(),
                         [](bool b) { return b; })) {
          recovery_degrade_active_ = false;
          if (config_.mode != AdaptationMode::kDegrade &&
              config_.mode != AdaptationMode::kHybrid) {
            engine_->set_degrade(false);
          }
          record_recovery("degrade_off", ht.site.value(), -1, 0, 0.0,
                          "all abandoned sites re-trusted");
        }
      }
    }

    // Standby upkeep runs with the rest of the control plane (and freezes
    // with it): pump sync flows, drop dead replicas, re-plan and re-sync at
    // the configured cadence. The trust predicate is a member for the same
    // no-per-tick-allocation reason as site_alive_.
    if (standby_ != nullptr) {
      if (!site_trusted_) {
        site_trusted_ = [this](SiteId s) { return detector_.trusted(s); };
      }
      const MonitorView view(*this);
      standby_->tick(now_, *engine_, scheduler_, view, site_trusted_);
    }

    if (transition_.has_value()) {
      std::string why;
      if (transition_compromised(&why)) {
        abort_transition(why);
      } else {
        // Migration complete when every bulk flow has drained and the
        // minimum redeploy pause elapsed.
        bool done = now_ - transition_->started_at >= config_.redeploy_sec;
        for (FlowId f : transition_->bulk_flows) {
          if (network_.has_flow(f) && !network_.flow(f).done) done = false;
        }
        if (done) finalize_transition();
      }
    } else if (pending_boundary_.has_value()) {
      // A boundary-aligned re-plan waits for the orphaned window's state to
      // re-initialize (§4.3).
      const double w = pending_boundary_->boundary_window_sec;
      if (std::fmod(now_, w) < config_.tick_sec) {
        std::vector<adapt::AdaptationAction> actions;
        actions.push_back(std::move(*pending_boundary_));
        pending_boundary_.reset();
        begin_transition(std::move(actions));
      }
    } else {
      maybe_recover();
      if (!transition_.has_value()) maybe_adapt();
    }
    watch_stabilization();
  }

  profile.next(obs::Phase::kRecord);
  const auto& m = engine_->last_tick();
  recorder_.record_tick(
      now_, m.delay_sec, m.processing_ratio,
      initial_tasks_ > 0
          ? static_cast<double>(engine_->total_parallelism()) / initial_tasks_
          : 1.0,
      engine_->source_backlog_events(), m.generated_eps * config_.tick_sec,
      m.admitted_eps * config_.tick_sec, m.dropped_eps * config_.tick_sec);
  if (slo_watchdog_.has_value()) slo_watchdog_->tick(now_, recorder_);
  profile.close();

  ++tick_count_;
  if (profiler_.enabled() && trace_.enabled() && config_.profile_every > 0 &&
      tick_count_ - last_profile_emit_ >=
          static_cast<std::uint64_t>(config_.profile_every)) {
    emit_profile_events();
  }
}

void WaspSystem::run_until(double t_end) {
  while (now_ + config_.tick_sec <= t_end + 1e-9) step();
}

void WaspSystem::maybe_adapt() {
  if (config_.mode == AdaptationMode::kNoAdapt ||
      config_.mode == AdaptationMode::kDegrade) {
    return;
  }
  if (now_ - last_decision_ < config_.monitoring_interval_sec) return;
  last_decision_ = now_;

  // Root span of the decision episode: diagnose/plan/solver spans nest under
  // it. Closed right away on a no-action round; otherwise it stays open
  // through the transition until stabilization (or abort).
  std::uint64_t root = obs::kNoSpan;
  if (trace_.enabled()) {
    trace_.begin_span_event("adaptation", &root, /*parent=*/obs::kNoSpan)
        .str("mode", to_string(config_.mode));
  }

  const MonitorView view(*this);
  policy_->set_now(now_);
  std::vector<adapt::AdaptationAction> actions;
  {
    obs::TraceEmitter::ParentScope in_episode(&trace_, root);
    {
      obs::Profiler::Scope profile_decide(&profiler_,
                                          obs::Phase::kPolicyDecide);
      actions = policy_->decide_all(*engine_, metric_monitor_, view);
    }

    // §6.2 long-term dynamics: with nothing broken, periodically check in the
    // background whether a different plan-placement pair now fits the (slowly
    // shifting) workload better.
    if (actions.empty() && config_.background_replan_interval_sec > 0.0 &&
        now_ - last_background_replan_ >=
            config_.background_replan_interval_sec) {
      last_background_replan_ = now_;
      adapt::AdaptationAction replan = policy_->consider_replan(
          *engine_, metric_monitor_, view, "periodic background re-evaluation");
      if (replan.kind != adapt::ActionKind::kNone) {
        actions.push_back(std::move(replan));
      }
    }
  }
  metric_monitor_.reset_window();
  if (actions.empty()) {
    trace_.end_span(root).str("status", "no-action");
    return;
  }
  adaptation_span_ = root;  // consumed by begin_transition (possibly later,
                            // when the action waits for a window boundary)
  for (const auto& action : actions) {
    log(LogLevel::kInfo, "t=", now_, " adaptation: ", to_string(action.kind),
        " (", action.reason, "), est transition ",
        action.estimated_transition_sec, "s");
  }
  if (actions.size() == 1 &&
      actions[0].kind == adapt::ActionKind::kReplan &&
      actions[0].boundary_window_sec > 0.0) {
    pending_boundary_ = std::move(actions[0]);
    return;
  }
  begin_transition(std::move(actions));
}

void WaspSystem::begin_transition(std::vector<adapt::AdaptationAction> actions,
                                  bool recovery) {
  assert(!actions.empty());
  Transition transition;
  transition.started_at = now_;
  transition.recovery = recovery;
  transition.attempt = retry_.attempts;
  pre_transition_delay_ = engine_->last_tick().delay_sec;

  // Adopt the decision episode's root span (opened by maybe_adapt /
  // maybe_recover / force_reassign); open a fresh root if the transition has
  // none yet. The flat adaptation events and transfer spans nest under it.
  transition.root_span = adaptation_span_;
  adaptation_span_ = obs::kNoSpan;
  if (transition.root_span == obs::kNoSpan && trace_.enabled()) {
    trace_
        .begin_span_event(recovery ? "recovery" : "adaptation",
                          &transition.root_span, /*parent=*/obs::kNoSpan)
        .str("mode", to_string(config_.mode));
  }
  obs::TraceEmitter::ParentScope in_episode(&trace_, transition.root_span);

  for (adapt::AdaptationAction& action : actions) {
    AdaptationEvent event;
    event.decided_at = now_;
    event.kind = to_string(action.kind);
    event.reason = action.reason;
    event.op = action.op.valid() ? action.op.value() : -1;
    event.estimated_transition_sec = action.estimated_transition_sec;
    event.attempt = retry_.attempts;
    for (const auto& move : action.migration.moves) {
      event.migrated_mb += move.size_mb;
    }
    recorder_.events().push_back(event);
    transition.event_indices.push_back(recorder_.events().size() - 1);

    // The canonical adaptation record: one trace event per recorder event,
    // same kind/op/timestamp (tests assert the one-to-one match).
    if (trace_.enabled()) {
      trace_.event("adaptation")
          .str("kind", event.kind)
          .num("op", static_cast<double>(event.op))
          .str("reason", event.reason)
          .num("estimated_transition_sec", event.estimated_transition_sec)
          .num("migrated_mb", event.migrated_mb);
    }
    metrics_.counter("runtime.adaptations").inc();

    // Halt the affected execution (§4.1 step 1) and launch the state
    // transfers as bulk flows that share the WAN with the data plane.
    if (action.kind == adapt::ActionKind::kReplan) {
      engine_->suspend_all();
    } else {
      engine_->suspend_stage(action.op);
    }
    for (const auto& move : action.migration.moves) {
      transition.bulk_flows.push_back(
          network_.add_bulk_flow(move.from, move.to, move.size_mb));
      // One "transfer" span per bulk flow, closed at finalize/abort.
      std::uint64_t span = obs::kNoSpan;
      if (trace_.enabled()) {
        trace_.begin_span_event("transfer", &span)
            .num("op", static_cast<double>(event.op))
            .num("from", static_cast<double>(move.from.value()))
            .num("to", static_cast<double>(move.to.value()))
            .num("size_mb", move.size_mb)
            .num("attempt", static_cast<double>(retry_.attempts));
      }
      transition.transfer_spans.push_back(span);
    }
  }
  transition.actions = std::move(actions);
  transition_ = std::move(transition);
}

void WaspSystem::finalize_transition() {
  assert(transition_.has_value());

  for (std::uint64_t span : transition_->transfer_spans) {
    trace_.end_span(span).str("status", "done");
  }
  for (FlowId f : transition_->bulk_flows) {
    if (network_.has_flow(f)) network_.remove_flow(f);
  }

  for (adapt::AdaptationAction& action : transition_->actions) {
    if (action.kind == adapt::ActionKind::kReplan) {
      // The new plan may reuse operator ids: remap the policy's per-operator
      // cooldowns before the engine consumes (moves) the new logical plan.
      policy_->on_replan_applied(engine_->logical(), *action.new_logical);
      engine_->apply_replan(std::move(*action.new_logical),
                            std::move(*action.new_physical));
      engine_->resume_all();
      // A re-plan renumbers operator ids: every replica keyed by the old ids
      // is garbage. Drop them all; the next sync boundary rebuilds.
      if (standby_ != nullptr) standby_->reset();
    } else {
      engine_->apply_placement(action.op, action.new_placement);
      engine_->resume_stage(action.op);
    }
  }

  for (std::size_t index : transition_->event_indices) {
    recorder_.events()[index].transition_end = now_;
    if (trace_.enabled()) {
      const AdaptationEvent& event = recorder_.events()[index];
      trace_.event("transition_end")
          .str("kind", event.kind)
          .num("op", static_cast<double>(event.op))
          .num("decided_at", event.decided_at)
          .num("transition_sec", event.transition_sec());
    }
  }
  // A new transition finishing supersedes any still-settling previous one
  // (stabilizing_event_ is overwritten below): close its spans first.
  if (stabilize_span_ != obs::kNoSpan) {
    trace_.end_span(stabilize_span_).str("status", "superseded");
    trace_.end_span(stabilizing_root_).str("status", "superseded");
    stabilize_span_ = stabilizing_root_ = obs::kNoSpan;
  }
  // The episode root stays open while the deployment settles, with a
  // "stabilize" child covering the settling window.
  stabilizing_root_ = transition_->root_span;
  if (trace_.enabled() && stabilizing_root_ != obs::kNoSpan) {
    trace_.begin_span_event("stabilize", &stabilize_span_,
                            /*parent=*/stabilizing_root_)
        .num("pre_transition_delay_sec", pre_transition_delay_);
  }
  stabilizing_event_ = transition_->event_indices.front();
  stabilizing_recovery_ = transition_->recovery;
  // A completed recovery / retried transition closes the retry episode.
  if (transition_->recovery || transition_->attempt > 0) {
    retry_ = RetryState{};
  }
  transition_.reset();
  metric_monitor_.reset_window();
  last_decision_ = now_;  // give the new deployment a full interval to settle
}

bool WaspSystem::transition_compromised(std::string* why) const {
  if (!transition_.has_value()) return false;
  // Network truth first: a transfer crossing a partitioned link (or touching
  // a down site) will never finish. Then the detector's view: once an
  // endpoint of an in-flight transfer is suspected, the coordinator stops
  // waiting -- wiring state into a possibly-dead site is worse than a
  // restart, and rollback is cheap (the placement only applies at
  // finalization).
  for (FlowId f : transition_->bulk_flows) {
    if (!network_.has_flow(f)) continue;
    const net::Flow& fl = network_.flow(f);
    if (fl.done) continue;
    if (network_.link_partitioned(fl.from, fl.to)) {
      *why = "bulk transfer link " + std::to_string(fl.from.value()) + "->" +
             std::to_string(fl.to.value()) + " partitioned";
      return true;
    }
    for (SiteId endpoint : {fl.from, fl.to}) {
      if (network_.site_down(endpoint) || !detector_.trusted(endpoint)) {
        *why = "bulk transfer endpoint site " +
               std::to_string(endpoint.value()) + " failed or suspected";
        return true;
      }
    }
  }
  // Even a flow-less action is compromised when a destination site of its
  // new placement is confirmed dead: finalizing would wire tasks into it.
  for (const adapt::AdaptationAction& action : transition_->actions) {
    if (action.kind == adapt::ActionKind::kReplan) continue;
    for (SiteId s : action.new_placement.sites()) {
      if (network_.site_down(s) || detector_.confirmed_failed(s)) {
        *why = "destination site " + std::to_string(s.value()) + " failed";
        return true;
      }
    }
  }
  return false;
}

void WaspSystem::abort_transition(const std::string& why) {
  assert(transition_.has_value());
  // Cancel the orphaned transfers and resume the suspended execution.
  // Rollback is trivial by construction: placements and re-plans only apply
  // at finalization, so the pre-transition deployment is still live.
  for (std::uint64_t span : transition_->transfer_spans) {
    trace_.end_span(span).str("status", "aborted").str("reason", why);
  }
  for (FlowId f : transition_->bulk_flows) {
    if (network_.has_flow(f)) network_.remove_flow(f);
  }
  std::int64_t first_op = -1;
  for (const adapt::AdaptationAction& action : transition_->actions) {
    if (action.kind == adapt::ActionKind::kReplan) {
      engine_->resume_all();
    } else {
      engine_->resume_stage(action.op);
      if (first_op < 0) first_op = action.op.value();
    }
  }
  for (std::size_t index : transition_->event_indices) {
    AdaptationEvent& event = recorder_.events()[index];
    event.aborted_at = now_;
    event.abort_reason = why;
    if (trace_.enabled()) {
      trace_.event("transition_abort")
          .str("kind", event.kind)
          .num("op", static_cast<double>(event.op))
          .str("reason", why)
          .num("attempt", static_cast<double>(event.attempt));
    }
  }
  metrics_.counter("runtime.transition_aborts").inc();
  record_recovery("transition_abort", /*site=*/-1, first_op,
                  transition_->attempt, 0.0, why);
  trace_.end_span(transition_->root_span)
      .str("status", "aborted")
      .str("reason", why)
      .num("attempt", static_cast<double>(transition_->attempt));
  transition_.reset();
  metric_monitor_.reset_window();
  last_decision_ = now_;
  schedule_retry(why);
}

void WaspSystem::schedule_retry(const std::string& why) {
  ++retry_.attempts;
  if (retry_.attempts > config_.transition_retry_budget) {
    // Budget exhausted: explicitly abandon. Sites still confirmed dead keep
    // an abandoned flag so recovery is not re-attempted until they come
    // back; a later re-trust wipes the flag.
    bool flagged = false;
    for (std::size_t s = 0; s < recovery_abandoned_.size(); ++s) {
      const SiteId site(static_cast<std::int64_t>(s));
      if (detector_.confirmed_failed(site) && !recovery_abandoned_[s]) {
        recovery_abandoned_[s] = true;
        record_recovery("abandon", site.value(), -1, retry_.attempts - 1, 0.0,
                        why);
        flagged = true;
      }
    }
    if (!flagged) {
      record_recovery("abandon", -1, -1, retry_.attempts - 1, 0.0, why);
    }
    log(LogLevel::kWarn, "t=", now_, " recovery abandoned after ",
        retry_.attempts - 1, " retries (", why, ")");
    metrics_.counter("runtime.recovery_abandoned").inc();
    retry_ = RetryState{};
    if (config_.shed_on_recovery_stall && !engine_->degrade_enabled()) {
      engine_->set_degrade(true);
      recovery_degrade_active_ = true;
      record_recovery("degrade_on", -1, -1, 0, 0.0,
                      "shedding past the SLO while recovery is stalled");
    }
    return;
  }
  retry_.backoff_sec =
      retry_.attempts == 1
          ? config_.transition_backoff_initial_sec
          : std::min(config_.transition_backoff_max_sec,
                     2.0 * retry_.backoff_sec);
  // The doubling chain above stays un-jittered (so caps are exact); only the
  // actual wait is spread, desynchronizing retries that a shared fault
  // aborted in the same tick.
  const double wait = state::jittered_backoff_sec(
      retry_.backoff_sec, config_.transition_backoff_jitter_frac,
      backoff_rng_);
  retry_.next_attempt_at = now_ + wait;
  retry_.pending = true;
  record_recovery("retry", -1, -1, retry_.attempts, wait, why);
  metrics_.counter("runtime.transition_retries").inc();
}

void WaspSystem::maybe_recover() {
  if (config_.mode == AdaptationMode::kNoAdapt ||
      config_.mode == AdaptationMode::kDegrade) {
    return;
  }
  if (transition_.has_value() || pending_boundary_.has_value()) return;
  if (retry_.pending && now_ < retry_.next_attempt_at) return;

  // Confirmed-dead sites still hosting tasks need a recovery re-plan;
  // abandoned ones wait for the site to come back. The slot census (which
  // allocates) is only taken once some site is actually confirmed dead --
  // the overwhelmingly common healthy tick returns without it.
  std::vector<SiteId> dead;
  bool any_confirmed = false;
  for (std::size_t s = 0; s < recovery_abandoned_.size(); ++s) {
    const SiteId site(static_cast<std::int64_t>(s));
    if (detector_.confirmed_failed(site) && !recovery_abandoned_[s]) {
      any_confirmed = true;
      break;
    }
  }
  if (any_confirmed) {
    const auto used = engine_->slots_in_use();
    for (std::size_t s = 0; s < used.size(); ++s) {
      const SiteId site(static_cast<std::int64_t>(s));
      if (detector_.confirmed_failed(site) && !recovery_abandoned_[s] &&
          used[s] > 0) {
        dead.push_back(site);
      }
    }
  }
  if (dead.empty()) {
    if (retry_.pending) {
      // The abort's cause cleared before the retry fired (site restored,
      // partition healed): let the regular policy round re-decide now.
      retry_.pending = false;
      last_decision_ = now_ - config_.monitoring_interval_sec;
    }
    return;
  }

  // Fast path first: promote warm standbys where one exists (pure lookup +
  // pointer surgery, no solver). Sites fully evacuated this way drop out of
  // `dead`; only the remainder pays for a recovery re-plan.
  promote_standbys(dead);
  if (dead.empty()) return;

  // Failure recovery bypasses the monitoring interval: stranded tasks are
  // re-placed as soon as the failure is confirmed.
  std::uint64_t root = obs::kNoSpan;
  if (trace_.enabled()) {
    trace_.begin_span_event("recovery", &root, /*parent=*/obs::kNoSpan)
        .num("dead_sites", static_cast<double>(dead.size()))
        .num("attempt", static_cast<double>(retry_.attempts));
  }
  const MonitorView view(*this);
  policy_->set_now(now_);
  std::vector<adapt::AdaptationAction> actions;
  {
    obs::TraceEmitter::ParentScope in_episode(&trace_, root);
    actions = policy_->plan_recovery(*engine_, metric_monitor_, view, dead);
  }
  if (actions.empty()) {
    trace_.end_span(root).str("status", "infeasible");
    schedule_retry("recovery placement infeasible with sites " +
                   std::to_string(dead.front().value()) + "+ down");
    return;
  }
  adaptation_span_ = root;  // begin_transition adopts it below
  retry_.pending = false;
  if (trace_.enabled()) {
    // Recovery-path selection record (DESIGN.md §12): no viable standby, so
    // this failure pays for the full re-plan. The fast path emits the same
    // event with mode="standby" from promote_standbys.
    trace_.event("failover")
        .str("mode", "replan")
        .num("dead_sites", static_cast<double>(dead.size()));
  }
  for (SiteId s : dead) {
    record_recovery("replan", s.value(), -1, retry_.attempts, 0.0,
                    actions.front().reason);
  }
  log(LogLevel::kInfo, "t=", now_, " failure recovery: re-placing ",
      actions.size(), " stage(s) off ", dead.size(), " dead site(s)");
  begin_transition(std::move(actions), /*recovery=*/true);
}

void WaspSystem::promote_standbys(std::vector<SiteId>& dead) {
  if (standby_ == nullptr) return;
  if (!site_trusted_) {
    site_trusted_ = [this](SiteId s) { return detector_.trusted(s); };
  }

  // Census first, mutate after: viable_standby is a pure lookup, and the
  // per-primary sync snapshots stay valid across earlier promotions in the
  // same tick (promoting op X off site A does not touch site B's group).
  struct Candidate {
    OperatorId op;
    SiteId failed;
    resilience::StandbyManager::Promotion promo;
  };
  std::vector<Candidate> candidates;
  for (SiteId site : dead) {
    const auto s = static_cast<std::size_t>(site.value());
    for (const query::LogicalOperator& lop : engine_->logical().operators()) {
      const physical::StagePlacement& placement = engine_->placement(lop.id);
      if (s >= placement.per_site.size() || placement.per_site[s] == 0) {
        continue;
      }
      auto promo = standby_->viable_standby(lop.id, site, now_, site_trusted_);
      if (promo.has_value()) {
        candidates.push_back(Candidate{lop.id, site, *promo});
      }
    }
  }
  if (candidates.empty()) return;

  // One "failover" episode root covers every promotion this tick, mirroring
  // the re-plan path's "recovery" root; after the promotions it stays open
  // (as stabilizing_root_) with a "stabilize" child until the deployment
  // settles, so wasp_trace sees the same span shape on both recovery paths.
  std::uint64_t root = obs::kNoSpan;
  if (trace_.enabled()) {
    trace_.begin_span_event("failover", &root, /*parent=*/obs::kNoSpan)
        .str("mode", "standby")
        .num("promotions", static_cast<double>(candidates.size()));
  }
  obs::TraceEmitter::ParentScope in_episode(&trace_, root);
  pre_transition_delay_ = engine_->last_tick().delay_sec;

  std::optional<std::size_t> first_event;
  for (const Candidate& c : candidates) {
    const engine::Engine::PromotionResult result = engine_->promote_standby(
        c.op, c.failed, c.promo.standby_site, c.promo.synced_window_events);
    standby_->consume(c.op, c.promo.standby_site);
    if (result.moved_tasks == 0) continue;

    AdaptationEvent event;
    event.decided_at = now_;
    event.transition_end = now_;  // promotion is a pointer swap: no transfer
    event.kind = "failover";
    event.reason = "standby promotion off failed site " +
                   std::to_string(c.failed.value());
    event.op = c.op.value();
    recorder_.events().push_back(event);
    if (!first_event.has_value()) {
      first_event = recorder_.events().size() - 1;
    }

    if (trace_.enabled()) {
      trace_.event("failover")
          .str("mode", "standby")
          .num("op", static_cast<double>(c.op.value()))
          .num("site", static_cast<double>(c.failed.value()))
          .num("standby_site", static_cast<double>(c.promo.standby_site.value()))
          .num("staleness_sec", c.promo.staleness_sec)
          .num("moved_tasks", static_cast<double>(result.moved_tasks))
          .num("installed_window_events", result.installed_window_events)
          .num("replayed_source_units", result.replayed_source_units);
    }
    record_recovery("failover", c.failed.value(), c.op.value(), /*attempt=*/0,
                    /*backoff_sec=*/0.0,
                    "promoted standby at site " +
                        std::to_string(c.promo.standby_site.value()));
    log(LogLevel::kInfo, "t=", now_, " failover: promoted standby of op ",
        c.op.value(), " at site ", c.promo.standby_site.value(),
        " (staleness ", c.promo.staleness_sec, "s, replay ",
        result.replayed_source_units, " source events)");
    metrics_.counter("runtime.failovers").inc();
    metrics_.histogram("failover.staleness_sec").add(c.promo.staleness_sec);
    metrics_.histogram("failover.replayed_source_units")
        .add(result.replayed_source_units);
  }

  if (!first_event.has_value()) {
    trace_.end_span(root).str("status", "no-op");
  } else {
    // Same supersede-then-settle dance as finalize_transition: a new episode
    // overwrites stabilizing_event_, so close the previous spans first.
    if (stabilize_span_ != obs::kNoSpan) {
      trace_.end_span(stabilize_span_).str("status", "superseded");
      trace_.end_span(stabilizing_root_).str("status", "superseded");
      stabilize_span_ = stabilizing_root_ = obs::kNoSpan;
    }
    stabilizing_root_ = root;
    if (trace_.enabled() && stabilizing_root_ != obs::kNoSpan) {
      trace_.begin_span_event("stabilize", &stabilize_span_,
                              /*parent=*/stabilizing_root_)
          .num("pre_transition_delay_sec", pre_transition_delay_);
    }
    stabilizing_event_ = *first_event;
    stabilizing_recovery_ = true;
    retry_ = RetryState{};
    metric_monitor_.reset_window();
    last_decision_ = now_;
  }

  // Re-census: sites fully evacuated by promotions exit the re-plan path.
  const auto used = engine_->slots_in_use();
  std::vector<SiteId> remaining;
  for (SiteId site : dead) {
    if (used[static_cast<std::size_t>(site.value())] > 0) {
      remaining.push_back(site);
    }
  }
  dead.swap(remaining);
}

void WaspSystem::record_recovery(const std::string& kind, std::int64_t site,
                                 std::int64_t op, int attempt,
                                 double backoff_sec,
                                 const std::string& detail) {
  RecoveryEvent event;
  event.t = now_;
  event.kind = kind;
  event.site = site;
  event.op = op;
  event.attempt = attempt;
  event.backoff_sec = backoff_sec;
  event.detail = detail;
  recorder_.record_recovery(std::move(event));
  metrics_.counter("runtime.recovery_events").inc();
  // Detector state changes already carry their own trace events; everything
  // else gets a "recovery" event so the trace holds the full chain too.
  if (trace_.enabled() && kind != "suspect" && kind != "confirm_failure" &&
      kind != "trust") {
    trace_.event("recovery")
        .str("kind", kind)
        .num("site", static_cast<double>(site))
        .num("op", static_cast<double>(op))
        .num("attempt", static_cast<double>(attempt))
        .num("backoff_sec", backoff_sec)
        .str("detail", detail);
  }
}

void WaspSystem::watch_stabilization() {
  if (!stabilizing_event_.has_value()) return;
  // Stable when (a) the events queued during the transition have been
  // consumed (source backlog below one tick of generation) and (b) the
  // delay is back in the neighbourhood of its pre-transition level.
  const double backlog = engine_->source_backlog_events();
  const double per_tick =
      engine_->last_tick().generated_eps * config_.tick_sec;
  const double delay_target =
      std::max(1.0, 2.0 * pre_transition_delay_);
  if (backlog <= std::max(per_tick, 1.0) &&
      engine_->last_tick().delay_sec <= delay_target) {
    AdaptationEvent& event = recorder_.events()[*stabilizing_event_];
    event.stabilized_at = now_;
    if (trace_.enabled()) {
      trace_.event("stabilized")
          .str("kind", event.kind)
          .num("op", static_cast<double>(event.op))
          .num("decided_at", event.decided_at)
          .num("stabilize_sec", event.stabilize_sec());
    }
    if (stabilizing_recovery_) {
      record_recovery("stabilized", -1, event.op, event.attempt, 0.0,
                      event.reason);
      // Time-to-stabilize: last failure confirmation -> settled. The CI
      // chaos matrix compares this across --standby-replicas settings.
      if (last_confirm_at_ >= 0.0) {
        metrics_.histogram("recovery.time_to_stabilize_sec")
            .add(now_ - last_confirm_at_);
        last_confirm_at_ = -1.0;
      }
      stabilizing_recovery_ = false;
    }
    trace_.end_span(stabilize_span_)
        .str("status", "stabilized")
        .num("stabilize_sec", event.stabilize_sec());
    trace_.end_span(stabilizing_root_)
        .str("status", "stabilized")
        .str("kind", event.kind)
        .num("op", static_cast<double>(event.op));
    stabilize_span_ = stabilizing_root_ = obs::kNoSpan;
    stabilizing_event_.reset();
  }
}

void WaspSystem::fail_sites(const std::vector<SiteId>& sites) {
  for (SiteId s : sites) {
    engine_->fail_site(s);
    // The Network-level flag stalls every flow touching the site -- stream
    // and bulk alike. An in-flight migration to/from it stops making
    // progress immediately and is aborted (not silently "delivered") by the
    // next control tick's compromise check.
    network_.set_site_down(s, true);
  }
}

void WaspSystem::fail_all_sites() {
  for (const auto& site : network_.topology().sites()) {
    engine_->fail_site(site.id);
    network_.set_site_down(site.id, true);
  }
}

void WaspSystem::restore_sites(const std::vector<SiteId>& sites) {
  for (SiteId s : sites) {
    engine_->restore_site(s);
    network_.set_site_down(s, false);
  }
}

void WaspSystem::restore_all_sites() {
  for (const auto& site : network_.topology().sites()) {
    if (engine_->site_failed(site.id)) engine_->restore_site(site.id);
    network_.set_site_down(site.id, false);
  }
}

void WaspSystem::stall_control_for(double sec) {
  control_stalled_until_ = std::max(control_stalled_until_, now_ + sec);
  if (trace_.enabled()) {
    trace_.event("control_stall").num("until", control_stalled_until_);
  }
}

void WaspSystem::force_reassign(OperatorId op,
                                const physical::StagePlacement& placement) {
  assert(!transition_.has_value());
  const MonitorView view(*this);
  state::MigrationPlanner planner(config_.migration, rng_.fork());
  planner.set_trace(&trace_);

  // Forced reassignments get an episode root too, so their migration-planning
  // and transfer spans nest like a policy-decided adaptation's.
  std::uint64_t root = obs::kNoSpan;
  if (trace_.enabled()) {
    trace_.begin_span_event("adaptation", &root, /*parent=*/obs::kNoSpan)
        .str("mode", "forced");
  }
  obs::TraceEmitter::ParentScope in_episode(&trace_, root);

  // Build the source/destination state inventory exactly as the policy does.
  adapt::AdaptationAction action;
  action.kind = adapt::ActionKind::kReassign;
  action.op = op;
  action.new_placement = placement;
  const physical::StagePlacement& from = engine_->placement(op);
  const double total_state = engine_->total_state_mb(op);
  const int p_to = placement.parallelism();
  if (total_state > 1e-9 && p_to > 0) {
    std::vector<state::StateSource> sources;
    std::vector<state::StateDestination> destinations;
    for (std::size_t s = 0; s < from.per_site.size(); ++s) {
      const SiteId site(static_cast<std::int64_t>(s));
      const double here = engine_->state_mb(op, site);
      const double target = total_state * placement.per_site[s] / p_to;
      if (here > target + 1e-9) {
        sources.push_back(state::StateSource{site, here - target});
      } else if (target > here + 1e-9) {
        destinations.push_back(state::StateDestination{site, target - here});
      }
    }
    action.migration = planner.plan(sources, destinations, view);
    action.estimated_transition_sec =
        action.migration.estimated_transition_sec;
  }
  action.reason = "forced re-assignment (experiment)";
  std::vector<adapt::AdaptationAction> actions;
  actions.push_back(std::move(action));
  adaptation_span_ = root;
  begin_transition(std::move(actions));
}

void WaspSystem::emit_profile_events() {
  if (!profiler_.enabled() || !trace_.enabled()) return;
  last_profile_emit_ = tick_count_;
  // One cumulative line per phase that ever ran. `ticks` and `calls` are
  // deterministic (pure functions of the simulated control flow); every
  // timing field is wall_*-prefixed so the diff/golden machinery skips it.
  const auto& accums = profiler_.accums();
  for (std::size_t i = 0; i < accums.size(); ++i) {
    const obs::PhaseAccum& accum = accums[i];
    if (accum.calls == 0) continue;
    trace_.event("profile")
        .str("phase", obs::phase_name(static_cast<obs::Phase>(i)))
        .num("ticks", static_cast<double>(tick_count_))
        .num("calls", static_cast<double>(accum.calls))
        .num("wall_total_us", static_cast<double>(accum.total_ns) / 1000.0)
        .num("wall_self_us", static_cast<double>(accum.self_ns) / 1000.0);
  }
  // One pool line (threads > 1 only): totals are deterministic, busy time
  // and the queue high-water mark are scheduling facts and stay wall_*.
  if (pool_ != nullptr) {
    const exec::ThreadPool::PoolStats stats = pool_->stats();
    std::uint64_t busy_min = 0;
    std::uint64_t busy_max = 0;
    for (const auto& t : stats.per_thread) {
      busy_min = busy_min == 0 ? t.busy_ns : std::min(busy_min, t.busy_ns);
      busy_max = std::max(busy_max, t.busy_ns);
    }
    trace_.event("profile")
        .str("phase", "pool")
        .num("ticks", static_cast<double>(tick_count_))
        .num("threads", static_cast<double>(pool_->workers() + 1))
        .num("tasks", static_cast<double>(stats.tasks))
        .num("chunks", static_cast<double>(stats.chunks))
        .num("regions", static_cast<double>(stats.regions))
        .num("wall_busy_us", static_cast<double>(stats.busy_ns) / 1000.0)
        .num("wall_busy_min_us", static_cast<double>(busy_min) / 1000.0)
        .num("wall_busy_max_us", static_cast<double>(busy_max) / 1000.0)
        .num("wall_queue_peak", static_cast<double>(stats.queue_peak));
  }
}

void WaspSystem::export_profiler_metrics() {
  if (!profiler_.enabled()) return;
  const auto& accums = profiler_.accums();
  for (std::size_t i = 0; i < accums.size(); ++i) {
    const obs::PhaseAccum& accum = accums[i];
    if (accum.calls == 0) continue;
    const std::string base =
        std::string("profiler.") + obs::phase_name(static_cast<obs::Phase>(i));
    metrics_.gauge(base + ".calls").set(static_cast<double>(accum.calls));
    metrics_.gauge(base + ".wall_total_us")
        .set(static_cast<double>(accum.total_ns) / 1000.0);
    metrics_.gauge(base + ".wall_self_us")
        .set(static_cast<double>(accum.self_ns) / 1000.0);
  }
  if (pool_ != nullptr) {
    const exec::ThreadPool::PoolStats stats = pool_->stats();
    metrics_.gauge("pool.threads")
        .set(static_cast<double>(pool_->workers() + 1));
    metrics_.gauge("pool.tasks").set(static_cast<double>(stats.tasks));
    metrics_.gauge("pool.chunks").set(static_cast<double>(stats.chunks));
    metrics_.gauge("pool.regions").set(static_cast<double>(stats.regions));
    metrics_.gauge("pool.wall_busy_us")
        .set(static_cast<double>(stats.busy_ns) / 1000.0);
    metrics_.gauge("pool.wall_queue_peak")
        .set(static_cast<double>(stats.queue_peak));
  }
}

}  // namespace wasp::runtime
