#include "runtime/slo_watchdog.h"

#include <cstdio>
#include <cstdlib>

namespace wasp::runtime {
namespace {

// Parses a positive number with an optional "s"/"sec" suffix ("5", "5s",
// "5.5sec"). Returns false on anything else.
bool parse_value(std::string_view text, double* out) {
  if (text.empty()) return false;
  std::string buf(text);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str()) return false;
  std::string_view rest(end);
  if (!rest.empty() && rest != "s" && rest != "sec") return false;
  if (v < 0.0) return false;
  *out = v;
  return true;
}

void append_bound(std::string& out, const char* key, double value) {
  if (value < 0.0) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%s=%g", out.empty() ? "" : ",", key,
                value);
  out += buf;
}

}  // namespace

std::optional<SloSpec> SloSpec::parse(std::string_view text,
                                      std::string* error) {
  SloSpec spec;
  auto fail = [&](const std::string& why) -> std::optional<SloSpec> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view part = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (part.empty()) continue;
    const std::size_t eq = part.find('=');
    if (eq == std::string_view::npos) {
      return fail("expected key=value, got '" + std::string(part) + "'");
    }
    const std::string_view key = part.substr(0, eq);
    const std::string_view value = part.substr(eq + 1);
    double v = 0.0;
    if (!parse_value(value, &v)) {
      return fail("bad value '" + std::string(value) + "' for '" +
                  std::string(key) + "'");
    }
    if (key == "delay_p99") {
      spec.delay_p99_sec = v;
    } else if (key == "delay_p95") {
      spec.delay_p95_sec = v;
    } else if (key == "delay_max") {
      spec.delay_max_sec = v;
    } else if (key == "ratio_min") {
      spec.ratio_min = v;
    } else if (key == "window") {
      if (v <= 0.0) return fail("window must be positive");
      spec.window_sec = v;
    } else {
      return fail("unknown SLO key '" + std::string(key) + "'");
    }
  }
  if (!spec.any()) {
    return fail(
        "no SLO bound set (need delay_p99/delay_p95/delay_max/ratio_min)");
  }
  return spec;
}

std::string SloSpec::to_string() const {
  std::string out;
  append_bound(out, "delay_p99", delay_p99_sec);
  append_bound(out, "delay_p95", delay_p95_sec);
  append_bound(out, "delay_max", delay_max_sec);
  append_bound(out, "ratio_min", ratio_min);
  append_bound(out, "window", window_sec);
  return out;
}

void SloWatchdog::tick(double now, const Recorder& recorder) {
  const double t0 = now - spec_.window_sec;
  const double t1 = now + 1e-9;  // include the tick recorded at `now`

  std::string reasons;
  auto breach = [&](const char* key, double observed, double bound) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s%s=%.3g>%.3g",
                  reasons.empty() ? "" : ",", key, observed, bound);
    reasons += buf;
  };

  if (spec_.delay_p99_sec >= 0.0) {
    const double p99 = recorder.delay().percentile_over(t0, t1, 99.0);
    if (p99 > spec_.delay_p99_sec) {
      breach("delay_p99", p99, spec_.delay_p99_sec);
    }
  }
  if (spec_.delay_p95_sec >= 0.0) {
    const double p95 = recorder.delay().percentile_over(t0, t1, 95.0);
    if (p95 > spec_.delay_p95_sec) {
      breach("delay_p95", p95, spec_.delay_p95_sec);
    }
  }
  if (spec_.delay_max_sec >= 0.0) {
    const double worst = recorder.delay().max_over(t0, t1);
    if (worst > spec_.delay_max_sec) {
      breach("delay_max", worst, spec_.delay_max_sec);
    }
  }
  if (spec_.ratio_min >= 0.0 && !recorder.ratio().empty()) {
    const double mean = recorder.ratio().mean_over(t0, t1);
    if (mean < spec_.ratio_min) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%sratio_min=%.3g<%.3g",
                    reasons.empty() ? "" : ",", mean, spec_.ratio_min);
      reasons += buf;
    }
  }

  const bool breached = !reasons.empty();
  if (breached && !violating_) {
    open_episode(now, reasons);
  } else if (!breached && violating_) {
    close_episode(now, "resolved");
  } else if (violating_) {
    active_reasons_ = reasons;  // episode continues; remember latest breach
  }
  if (metrics_ != nullptr) {
    metrics_->gauge("slo.in_violation").set(violating_ ? 1.0 : 0.0);
  }
}

void SloWatchdog::finish(double now) {
  if (violating_) close_episode(now, "unresolved");
  if (metrics_ != nullptr) metrics_->gauge("slo.in_violation").set(0.0);
}

void SloWatchdog::open_episode(double now, const std::string& reasons) {
  violating_ = true;
  violation_began_ = now;
  active_reasons_ = reasons;
  ++violations_;
  if (metrics_ != nullptr) metrics_->counter("slo.violations").inc();
  if (trace_ != nullptr && trace_->enabled()) {
    trace_
        ->begin_span_event("slo_violation", &violation_span_,
                           /*parent=*/obs::kNoSpan)
        .str("reasons", reasons);
    obs::TraceEmitter::ParentScope in_episode(trace_, violation_span_);
    trace_->event("slo_violation_begin").str("reasons", reasons);
  }
}

void SloWatchdog::close_episode(double now, std::string_view status) {
  const double duration = now - violation_began_;
  violation_seconds_ += duration;
  violating_ = false;
  if (metrics_ != nullptr) {
    metrics_->counter("slo.violation_seconds").inc(duration);
  }
  if (trace_ != nullptr && trace_->enabled()) {
    {
      obs::TraceEmitter::ParentScope in_episode(trace_, violation_span_);
      trace_->event("slo_violation_end")
          .str("status", status)
          .num("duration_sec", duration)
          .str("reasons", active_reasons_);
    }
    trace_->end_span(violation_span_)
        .str("status", status)
        .num("duration_sec", duration)
        .str("reasons", active_reasons_);
  }
  violation_span_ = obs::kNoSpan;
  active_reasons_.clear();
}

}  // namespace wasp::runtime
