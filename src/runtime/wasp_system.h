// WaspSystem: the deployed system facade (paper Fig. 3).
//
// Owns the whole control plane of one wide-area query:
//   - the Job Manager's deployment step: Query Planner enumerates logical
//     plans, the Scheduler prices a WAN-aware placement for each, and the
//     cheapest plan-placement pair is deployed (§8.1);
//   - the WAN Monitor (periodic noisy bandwidth probes);
//   - the Global Metric Monitor and the adaptation policy, evaluated every
//     monitoring interval (§8.2: 40 s);
//   - the Reconfiguration Manager: executes a decided action as a multi-tick
//     transition -- suspend the affected stage(s), push checkpointed state
//     across the WAN as bulk flows that compete with the data plane, then
//     re-wire and resume (§5);
//   - failure injection and recovery;
//   - the experiment recorder.
//
// The adaptation mode selects the paper's baselines: NoAdapt, Degrade (shed
// events past the SLO), full WASP, or the single-technique variants of §8.5.
//
// Lifecycle: construction deploys the query (planner -> scheduler -> engine)
// over the caller's Network; step()/run_until() advance simulated time; the
// destructor closes any episode still open (transition, stabilization, SLO
// violation) so emitted traces stay span-balanced even when a run is
// truncated mid-adaptation. The Network must outlive the system, and the
// WorkloadPattern must outlive every step() call.
//
// Threading: a WaspSystem is single-threaded ("tick-thread-only") -- every
// member, including the Recorder, MetricsRegistry and TraceEmitter it owns,
// must be touched only by the thread driving step()/run_until(), and
// accessors (recorder(), metrics(), engine(), detector()) are safe to read
// only while that thread is not inside step(). Parallelism across *runs* is
// the supported model: the sweep harness (src/exec, DESIGN.md §9) builds one
// fully private Network + WaspSystem + sinks per grid cell and joins the
// worker before reading results. The one shared-state exception is
// SystemConfig::trace_sink: a FileSink may be shared across concurrently
// running systems (its writes are line-atomic), everything else must be
// per-system.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "adapt/monitor.h"
#include "adapt/policy.h"
#include "common/ids.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "faults/failure_detector.h"
#include "net/network.h"
#include "net/wan_monitor.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "physical/scheduler.h"
#include "query/planner.h"
#include "resilience/standby.h"
#include "runtime/recorder.h"
#include "runtime/slo_watchdog.h"
#include "state/migration.h"
#include "workload/patterns.h"
#include "workload/queries.h"

namespace wasp::runtime {

enum class AdaptationMode {
  kNoAdapt,
  kDegrade,
  kWasp,          // full policy (re-assign + scale + re-plan)
  kReassignOnly,  // §8.5 "Re-assign"
  kScaleOnly,     // §8.5 "Scale" (re-assign first, scale as needed)
  kReplanOnly,    // §8.5 "Re-plan"
  // §7 "Re-optimize or degrade?": degradation as a stopgap *while* the
  // re-optimization machinery works -- events past the SLO are shed only
  // until the adapted deployment catches up, bounding the delay through
  // transitions at a small quality cost.
  kHybrid,
};

[[nodiscard]] const char* to_string(AdaptationMode mode);

struct SystemConfig {
  AdaptationMode mode = AdaptationMode::kWasp;
  double tick_sec = 1.0;
  double monitoring_interval_sec = 40.0;
  double slo_sec = 10.0;  // Degrade's SLO
  // Minimum transition pause even with nothing to migrate (task teardown/
  // deploy round-trips).
  double redeploy_sec = 2.0;
  // §6.2 long-term dynamics: re-evaluate the query plan in the background
  // every this many seconds, even without a diagnosed bottleneck (for
  // predictable shifts like diurnal workloads). 0 disables.
  double background_replan_interval_sec = 0.0;
  adapt::AdaptationPolicy::Config policy;
  adapt::Diagnoser::Config diagnoser;
  physical::Scheduler::Config scheduler;
  engine::EngineConfig engine;
  net::WanMonitor::Config wan_monitor;
  state::MigrationStrategy migration = state::MigrationStrategy::kNetworkAware;
  // Heartbeat failure detection: the control plane learns about failures
  // through this detector (fed by the network's delivery truth), never by
  // reading the engine's failure flags directly.
  faults::FailureDetector::Config detector;
  // Transactional migrations: an in-flight transition whose bulk-transfer
  // endpoint fails (or whose link partitions) is aborted and retried with
  // capped exponential backoff, up to this many retries before the action is
  // abandoned.
  int transition_retry_budget = 4;
  double transition_backoff_initial_sec = 5.0;
  double transition_backoff_max_sec = 60.0;
  // Seeded retry desynchronization: each backoff wait is jittered uniformly
  // by +/- this fraction (state::jittered_backoff_sec) from a dedicated RNG
  // stream, so retries aborted by one shared fault don't re-collide. 0
  // disables (pure capped-exponential, the pre-jitter behavior).
  double transition_backoff_jitter_frac = 0.25;
  // Hot-standby replication (DESIGN.md §12): K passive replicas per
  // protected stateful stage, placed in distinct failure domains and kept
  // warm by periodic delta syncs. On a confirmed failure a fresh replica is
  // promoted instead of running the recovery ILP. 0 disables (replan-only
  // recovery, the paper's §8.6 behavior).
  int standby_replicas = 0;
  resilience::StandbyConfig standby;
  // Graceful degradation: when recovery placement is infeasible (or the
  // retry budget is exhausted) with sites suspected, shed events past the
  // SLO until the sites re-trust. Off by default: modes other than Degrade/
  // Hybrid promise lossless processing.
  bool shed_on_recovery_stall = false;
  std::uint64_t seed = 42;
  // Intra-run parallelism: worker threads sharing one run's tick work
  // (engine kernel sweeps, per-site update loops, per-link waterfills).
  // 1 = serial (no pool). Results and traces are bit-identical for any
  // value (DESIGN.md §11); this trades cores for wall-clock only. Compose
  // with sweep-level --jobs carefully: jobs x threads should not exceed the
  // machine's cores.
  int threads = 1;
  // Multi-tenant slot accounting: when set, reports the computing slots
  // per site used by *other* queries sharing the deployment; this query's
  // scheduler subtracts them from availability. Wired by runtime::Cluster.
  std::function<std::vector<int>()> peer_slot_usage;
  // Observability: when set, the system wires a TraceEmitter over this sink
  // through every layer (engine, network, policy, migration planner) and
  // emits its own "adaptation"/"transition_end"/"stabilized" events. Null
  // (the default) disables tracing entirely. See DESIGN.md §6.
  std::shared_ptr<obs::TraceSink> trace_sink;
  // Declarative SLO watchdog (wasp_sim --slo): evaluated over the recorder's
  // series each tick; violation episodes become "slo_violation" spans and
  // slo.* metrics. Unset (or a spec with no bound) disables the watchdog.
  std::optional<SloSpec> slo;
  // Tick-phase profiler (wasp_sim --profile, DESIGN.md §13): times every
  // step phase (waterfill, engine sub-phases, monitor extraction, control
  // plane, solver calls, standby syncs) plus the thread pool, and emits
  // cumulative "profile" events into the trace every `profile_every` ticks
  // (plus once at shutdown). All timing fields are wall_*-prefixed, so
  // `wasp_trace diff` and the golden byte-identity harness ignore them; the
  // profiler itself is a pure observer and cannot change any simulated
  // byte (tests/profiler_test.cc:ProfilingIsAPureObserver).
  bool profile = false;
  int profile_every = 60;
};

class WaspSystem {
 public:
  // Deploys `spec` over `network` (which the system advances; one system per
  // network instance). The workload `pattern` outlives the system.
  WaspSystem(net::Network& network, workload::QuerySpec spec,
             const workload::WorkloadPattern& pattern, SystemConfig config);
  ~WaspSystem();

  WaspSystem(const WaspSystem&) = delete;
  WaspSystem& operator=(const WaspSystem&) = delete;

  // Advances one tick (network -> engine -> monitors -> adaptation). Pass
  // `drive_network = false` when an external driver (runtime::Cluster)
  // already advanced the shared Network for this tick.
  void step(bool drive_network = true);

  // Runs until simulated time `t_end`.
  void run_until(double t_end);

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] const engine::Engine& engine() const { return *engine_; }
  [[nodiscard]] engine::Engine& mutable_engine() { return *engine_; }
  [[nodiscard]] const Recorder& recorder() const { return recorder_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }
  [[nodiscard]] obs::TraceEmitter& trace() { return trace_; }
  [[nodiscard]] const net::WanMonitor& wan_monitor() const {
    return wan_monitor_;
  }
  [[nodiscard]] int initial_total_tasks() const { return initial_tasks_; }
  [[nodiscard]] bool transition_in_progress() const {
    return transition_.has_value();
  }
  [[nodiscard]] const faults::FailureDetector& detector() const {
    return detector_;
  }
  // Null when no SLO spec was configured.
  [[nodiscard]] const SloWatchdog* slo_watchdog() const {
    return slo_watchdog_.has_value() ? &*slo_watchdog_ : nullptr;
  }
  // Null unless standby_replicas > 0 was configured.
  [[nodiscard]] const resilience::StandbyManager* standby() const {
    return standby_.get();
  }
  // The tick-phase profiler (disabled unless SystemConfig::profile).
  [[nodiscard]] const obs::Profiler& profiler() const { return profiler_; }
  // Copies the profiler's phase totals and the thread pool's counters into
  // the MetricsRegistry (profiler.* / pool.* entries). Deliberately NOT done
  // during the run: the registry's content must be bit-identical with
  // profiling on or off until the caller explicitly asks for the export
  // (wasp_sim does, right before --metrics-out). No-op when profiling is
  // disabled.
  void export_profiler_metrics();

  // Failure injection: fails the site in the engine AND marks it down in
  // the Network, so flows touching it stall instead of silently draining.
  // The control plane only learns about it through the heartbeat detector.
  void fail_sites(const std::vector<SiteId>& sites);
  void fail_all_sites();
  void restore_sites(const std::vector<SiteId>& sites);
  void restore_all_sites();

  // Control-plane stall (chaos): for `sec` seconds the coordinator freezes
  // -- no detector updates, no adaptation decisions, no transition
  // management. The data plane keeps running. Heartbeats that arrived while
  // frozen are processed on resume, so long stalls surface as brief false
  // suspicion followed by re-trust.
  void stall_control_for(double sec);
  [[nodiscard]] bool control_stalled() const {
    return now_ < control_stalled_until_;
  }

  // Force a one-off migration of `op` to `placement` (used by the §8.7
  // controlled-overhead experiments). Uses the configured migration
  // strategy; bypasses the policy.
  void force_reassign(OperatorId op, const physical::StagePlacement& placement);

 private:
  struct Transition {
    // One or more concurrent actions on distinct operators (a re-plan is
    // always alone).
    std::vector<adapt::AdaptationAction> actions;
    std::vector<FlowId> bulk_flows;
    double started_at = 0.0;
    std::vector<std::size_t> event_indices;  // one recorder event per action
    bool recovery = false;  // a failure-recovery re-plan (records the chain)
    int attempt = 0;        // retry number (0 = first try)
    // Root span of this adaptation/recovery episode and the per-bulk-flow
    // "transfer" child spans (parallel to bulk_flows). Closed at finalize
    // ("done"), abort ("aborted"), or shutdown ("unfinished").
    std::uint64_t root_span = obs::kNoSpan;
    std::vector<std::uint64_t> transfer_spans;
  };

  // Capped-exponential-backoff retry state shared by transition aborts and
  // infeasible recovery attempts.
  struct RetryState {
    int attempts = 0;
    double backoff_sec = 0.0;
    double next_attempt_at = -1.0;
    bool pending = false;
  };

  // NetworkView backed by the WAN monitor + free-slot accounting.
  class MonitorView;

  void deploy(workload::QuerySpec spec);
  void apply_workload();
  void maybe_adapt();
  void begin_transition(std::vector<adapt::AdaptationAction> actions,
                        bool recovery = false);
  void finalize_transition();
  // Transactional-migration guard: true (with a reason) when an in-flight
  // bulk transfer's endpoint is dead/suspected or its link is partitioned.
  [[nodiscard]] bool transition_compromised(std::string* why) const;
  void abort_transition(const std::string& why);
  // Escalates the retry state after an abort / infeasible recovery; abandons
  // (and optionally degrades) past the budget.
  void schedule_retry(const std::string& why);
  // Detector-driven recovery: re-plans stages stranded on confirmed-failed
  // sites, and fires pending backoff retries.
  void maybe_recover();
  // Fast recovery path: promotes viable hot standbys for the stages stranded
  // on `dead` sites (no ILP in the hot path). Sites fully recovered this way
  // are removed from `dead`; the remainder falls through to the re-plan path.
  void promote_standbys(std::vector<SiteId>& dead);
  void record_recovery(const std::string& kind, std::int64_t site,
                       std::int64_t op, int attempt, double backoff_sec,
                       const std::string& detail);
  void watch_stabilization();
  // Emits cumulative "profile" events (one per active phase, plus one pool
  // line) into the trace. Called every profile_every ticks and once from the
  // destructor so the final totals always reach the trace.
  void emit_profile_events();
  [[nodiscard]] std::vector<int> free_slots() const;

  net::Network& network_;
  const workload::WorkloadPattern& pattern_;
  SystemConfig config_;
  Rng rng_;
  net::WanMonitor wan_monitor_;
  faults::FailureDetector detector_;
  std::function<bool(SiteId)> site_alive_;  // built once, reused per tick
  std::function<bool(SiteId)> site_trusted_;  // detector-trusted predicate
  physical::Scheduler scheduler_;
  query::QueryPlanner planner_;
  // Declared before policy_/engine_: both hold raw pointers into these and
  // must be destroyed first.
  obs::MetricsRegistry metrics_;
  obs::TraceEmitter trace_;
  // Tick-phase profiler (DESIGN.md §13). Declared before policy_/engine_:
  // the engine and scheduler hold raw pointers into it.
  obs::Profiler profiler_;
  adapt::GlobalMetricMonitor metric_monitor_;
  // Intra-run worker pool (config_.threads > 1 only). Declared before
  // policy_/engine_ so it is destroyed after them: the engine holds a raw
  // pointer and might, in principle, touch it until destruction.
  std::unique_ptr<exec::ThreadPool> pool_;
  std::unique_ptr<adapt::AdaptationPolicy> policy_;
  std::unique_ptr<engine::Engine> engine_;
  // Null unless config.standby_replicas > 0.
  std::unique_ptr<resilience::StandbyManager> standby_;
  Recorder recorder_;
  std::optional<SloWatchdog> slo_watchdog_;

  // Original source ids by name: workload patterns are keyed by the ids of
  // the query spec as built; re-planning renumbers operators.
  std::unordered_map<std::string, OperatorId> pattern_source_ids_;

  double now_ = 0.0;
  double last_decision_ = 0.0;
  double last_background_replan_ = 0.0;
  std::uint64_t tick_count_ = 0;          // steps taken (profile cadence)
  std::uint64_t last_profile_emit_ = 0;   // tick_count_ at last profile emit
  int initial_tasks_ = 0;
  std::optional<Transition> transition_;
  // A re-plan that must wait for a tumbling-window boundary (§4.3).
  std::optional<adapt::AdaptationAction> pending_boundary_;
  std::optional<std::size_t> stabilizing_event_;
  double pre_transition_delay_ = 0.0;  // baseline for stabilization
  bool stabilizing_recovery_ = false;  // stabilizing event is a recovery

  // Causal-span bookkeeping (schema v2, DESIGN.md §6). `adaptation_span_` is
  // a decision-episode root opened by maybe_adapt/maybe_recover and handed to
  // begin_transition (it outlives the decision scope when an action waits for
  // a window boundary). After finalize the episode root moves to
  // `stabilizing_root_` with a "stabilize" child span until the deployment
  // settles. All of these are closed by the destructor if the run ends
  // mid-episode, so traces stay begin/end balanced.
  std::uint64_t adaptation_span_ = obs::kNoSpan;
  std::uint64_t stabilizing_root_ = obs::kNoSpan;
  std::uint64_t stabilize_span_ = obs::kNoSpan;

  double control_stalled_until_ = -1.0;
  RetryState retry_;
  // Dedicated stream for backoff jitter: never forked from rng_, whose draw
  // order downstream components depend on (same rule as the WAN monitor).
  Rng backoff_rng_;
  // Time of the most recent confirm_failure, for the recovery
  // time-to-stabilize histogram observed when the episode stabilizes.
  double last_confirm_at_ = -1.0;
  // Sites whose recovery was abandoned after the retry budget; cleared when
  // the detector re-trusts them.
  std::vector<bool> recovery_abandoned_;
  bool recovery_degrade_active_ = false;  // we enabled engine degrade
};

}  // namespace wasp::runtime
