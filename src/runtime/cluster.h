// Cluster: several queries sharing one wide-area deployment.
//
// The paper's Job Manager "provides an interface for query submission, and
// it optimizes and deploys queries across multiple sites" (§2.1) -- plural.
// A Cluster owns the shared Network and hosts one WaspSystem per submitted
// query, with two pieces of cross-query coordination the single-query facade
// cannot provide:
//
//  - shared slot accounting: each query's scheduler sees the slots taken by
//    *every* query, so two adaptations never double-book a computing slot;
//  - shared bandwidth: all queries' stream (and migration) flows ride the
//    same Network, so they compete for links exactly as co-located tenants
//    do -- and each query's WAN monitor measures availability net of the
//    others' traffic.
//
// The Cluster drives the global tick (network first, then every query), so
// a query joined to a Cluster must be stepped through the Cluster, not
// directly.
#pragma once

#include <memory>
#include <vector>

#include "net/network.h"
#include "runtime/wasp_system.h"

namespace wasp::runtime {

class Cluster {
 public:
  explicit Cluster(net::Network& network) : network_(network) {}

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Registers the *pinned* slot demand of a query that will be submitted
  // later (its chained edge pre-processing and sinks). Reservation keeps
  // earlier tenants' schedulers from squatting on slots a later tenant's
  // pinned stages cannot do without -- call it for every planned query
  // before the first submit when deploying a batch.
  void reserve_pinned(const workload::QuerySpec& spec);

  // Deploys a query. The returned reference stays valid for the Cluster's
  // lifetime. Deployment sees the slots already taken by earlier queries
  // plus any outstanding reservations (its own reservation, if it was
  // registered, is released first).
  WaspSystem& submit(workload::QuerySpec spec,
                     const workload::WorkloadPattern& pattern,
                     SystemConfig config);

  // Advances the shared network by one tick, then every query.
  void step();
  void run_until(double t_end);

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] std::size_t num_queries() const { return systems_.size(); }
  [[nodiscard]] WaspSystem& query(std::size_t index) {
    return *systems_[index];
  }
  [[nodiscard]] const WaspSystem& query(std::size_t index) const {
    return *systems_[index];
  }

  // Slots in use across all queries, per site.
  [[nodiscard]] std::vector<int> slots_in_use() const;

  // Cluster-wide failure injection: marks the site down in the shared
  // Network (stalling every tenant's flows touching it) and fails it in
  // every query's engine. restore_site reverses both.
  void fail_site(SiteId site);
  void restore_site(SiteId site);

 private:
  // Pinned slot demand of `spec` per site (sources excluded -- they take no
  // slot).
  [[nodiscard]] std::vector<int> pinned_demand(
      const workload::QuerySpec& spec) const;

  net::Network& network_;
  std::vector<std::unique_ptr<WaspSystem>> systems_;
  std::vector<int> reserved_;  // outstanding pinned reservations per site
  double now_ = 0.0;
};

}  // namespace wasp::runtime
