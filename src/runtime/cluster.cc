#include "runtime/cluster.h"

#include <cassert>

namespace wasp::runtime {

std::vector<int> Cluster::pinned_demand(
    const workload::QuerySpec& spec) const {
  std::vector<int> demand(network_.topology().num_sites(), 0);
  for (const auto& op : spec.plan.operators()) {
    if (op.is_source()) continue;  // sources take no slot
    for (SiteId s : op.pinned_sites) {
      ++demand[static_cast<std::size_t>(s.value())];
    }
  }
  return demand;
}

void Cluster::reserve_pinned(const workload::QuerySpec& spec) {
  const auto demand = pinned_demand(spec);
  reserved_.resize(network_.topology().num_sites(), 0);
  for (std::size_t s = 0; s < demand.size(); ++s) reserved_[s] += demand[s];
}

WaspSystem& Cluster::submit(workload::QuerySpec spec,
                            const workload::WorkloadPattern& pattern,
                            SystemConfig config) {
  // Release this query's own reservation (if registered): its deployment
  // is about to claim the real slots.
  if (!reserved_.empty()) {
    const auto demand = pinned_demand(spec);
    for (std::size_t s = 0; s < demand.size(); ++s) {
      reserved_[s] = std::max(0, reserved_[s] - demand[s]);
    }
  }

  // Each query sees the slots the *other* queries hold plus outstanding
  // reservations. The lambda walks the sibling list at call time, so
  // queries submitted later are counted too.
  const std::size_t my_index = systems_.size();
  config.tick_sec = 1.0;  // the Cluster drives a shared 1 s global tick
  config.peer_slot_usage = [this, my_index] {
    std::vector<int> used(network_.topology().num_sites(), 0);
    for (std::size_t i = 0; i < systems_.size(); ++i) {
      if (i == my_index) continue;
      const auto theirs = systems_[i]->engine().slots_in_use();
      for (std::size_t s = 0; s < used.size(); ++s) used[s] += theirs[s];
    }
    for (std::size_t s = 0; s < reserved_.size() && s < used.size(); ++s) {
      used[s] += reserved_[s];
    }
    return used;
  };
  systems_.push_back(std::make_unique<WaspSystem>(network_, std::move(spec),
                                                  pattern, std::move(config)));
  return *systems_.back();
}

void Cluster::step() {
  assert(!systems_.empty());
  const double tick = 1.0;  // all queries share the global 1 s tick
  now_ += tick;
  network_.step(now_, tick);
  for (auto& system : systems_) {
    system->step(/*drive_network=*/false);
  }
}

void Cluster::run_until(double t_end) {
  while (now_ + 1.0 <= t_end + 1e-9) step();
}

void Cluster::fail_site(SiteId site) {
  network_.set_site_down(site, true);
  for (auto& system : systems_) system->mutable_engine().fail_site(site);
}

void Cluster::restore_site(SiteId site) {
  network_.set_site_down(site, false);
  for (auto& system : systems_) system->mutable_engine().restore_site(site);
}

std::vector<int> Cluster::slots_in_use() const {
  std::vector<int> used(network_.topology().num_sites(), 0);
  for (const auto& system : systems_) {
    const auto theirs = system->engine().slots_in_use();
    for (std::size_t s = 0; s < used.size(); ++s) used[s] += theirs[s];
  }
  return used;
}

}  // namespace wasp::runtime
