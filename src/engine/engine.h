// Fluid-level stream-engine simulator (the Flink substitute).
//
// The engine executes one deployed query -- a logical plan plus a physical
// placement -- over the WAN substrate, at a fixed tick (default 1 s of
// simulated time). It is a *fluid* model: event populations are real-valued
// rates and queue levels, not individual records. That is exactly the
// granularity WASP's adaptation layer observes (per-operator rates, queues,
// backpressure flags, state sizes; §3.2), so every control-plane code path
// of the paper is exercised faithfully while whole experiments run in
// milliseconds.
//
// Faithfulness notes (see DESIGN.md for the full substitution table):
//  - Tasks of a stage co-located at a site are aggregated into one "group"
//    (they are symmetric under balanced partitioning, §7).
//  - Channels connect (stage, site) groups along logical edges. Cross-site
//    channels ride Network stream flows and share link capacity with other
//    traffic (including state-migration bulk flows). Intra-site channels are
//    unconstrained.
//  - Buffers are bounded (per-channel and per-input-queue), so sustained
//    bottlenecks propagate backpressure up to the sources, where backlog
//    accumulates -- mirroring Flink's credit-based flow control feeding
//    from a replayable source.
//  - Event-time latency is recovered from cumulative curves at the sources
//    (head-of-backlog age) plus per-hop sojourn times downstream.
//  - Degrade mode implements the paper's baseline: events whose latency
//    would exceed the SLO are shed at the sources (§8.4's "drop late
//    events"), trading processing ratio for delay.
//
// Internals are data-oriented (structure-of-arrays): per-(stage,site) group
// state and per-channel state live in flat parallel arrays indexed by dense
// ids, with CSR-style adjacency indexes rebuilt only when the channel set
// changes. The per-tick loops walk contiguous memory; the ordered floating-
// point reductions (group sums in site order, channel sums in channel-id
// order) are preserved exactly, so the SoA engine is bit-identical to the
// legacy per-object implementation. See DESIGN.md "Engine internals".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "engine/delay_tracker.h"
#include "engine/metrics.h"
#include "net/network.h"
#include "physical/physical_plan.h"
#include "query/logical_plan.h"

namespace wasp::obs {
class Counter;
class Gauge;
class MetricsRegistry;
class Profiler;
class TraceEmitter;
}  // namespace wasp::obs

namespace wasp::exec {
class ThreadPool;
}  // namespace wasp::exec

namespace wasp::engine {

struct EngineConfig {
  double tick_sec = 1.0;
  // Bounded buffers. A channel accepts new output only while its queue is
  // below `channel_buffer_sec` seconds of its observed drain rate plus a
  // floor -- like Flink's byte-bounded network buffers, scaled to what the
  // link actually sustains. An input queue absorbs up to one tick of the
  // group's processing capacity plus a floor. Sustained bottlenecks
  // therefore propagate backpressure to the sources within seconds, and the
  // overload backlog accumulates in the replayable source, where its age
  // drives the event-time delay -- exactly as in the paper's prototype.
  double channel_buffer_sec = 2.0;
  double channel_buffer_floor_events = 5'000.0;
  double input_buffer_floor_events = 10'000.0;
  // Degrade baseline: shed source events older than the SLO.
  bool degrade = false;
  double slo_sec = 10.0;
  // Local checkpoint restore throughput (MB/s) after a failure (§5:
  // localized checkpointing makes restore a local, fast operation).
  double local_restore_mb_per_sec = 200.0;
  double checkpoint_interval_sec = 30.0;
  // Tiered checkpoints: every Nth checkpoint is a full snapshot; the ones
  // between record only dirty-group deltas, so checkpoint cost scales with
  // the change rate instead of total state size (DESIGN.md §12). 1 = every
  // checkpoint is full (the pre-tiered behavior).
  int full_checkpoint_every = 5;
  // When false, the vectorization-annotated per-tick kernels are swapped for
  // their scalar reference twins (src/engine/kernels.h). The two are
  // bit-identical by contract -- this switch exists so tests can prove it on
  // whole simulations, not for production use.
  bool use_fast_kernels = true;
  // Optional observability hooks (non-owning; may be null). The trace
  // receives tick/placement/replan/failure/checkpoint events; the registry
  // receives engine.* counters and gauges. See DESIGN.md §6.
  obs::TraceEmitter* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  // Optional tick-phase profiler (non-owning; may be null = untimed). A pure
  // observer by contract: it reads the steady clock and nothing else, so it
  // cannot move a byte of any trace or metric (DESIGN.md §13).
  obs::Profiler* profiler = nullptr;
  // Optional intra-run executor (non-owning; may be null = serial). When set,
  // the per-tick element sweeps and per-site update loops are chunked across
  // the pool. Chunk boundaries are fixed by the data layout -- never by the
  // worker count -- and every cross-chunk floating-point reduction is
  // recombined serially in the legacy operand order, so results (and traces)
  // are bit-identical to the serial engine for any thread count
  // (DESIGN.md §11).
  exec::ThreadPool* pool = nullptr;
};

class Engine {
 public:
  Engine(query::LogicalPlan logical, physical::PhysicalPlan physical,
         net::Network& network, EngineConfig config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- workload ------------------------------------------------------------

  // Sets the generation rate (events/s) of `source` at `site`. Persists
  // until changed. The site must be one of the source's pinned sites.
  void set_source_rate(OperatorId source, SiteId site, double eps);

  // --- simulation ----------------------------------------------------------

  // Advances one tick ending at time `t`. The caller must have advanced the
  // Network to `t` first (flow allocations are read, new demands written).
  void tick(double t);

  // --- adaptation control (used by the WASP runtime) ------------------------

  void suspend_stage(OperatorId op);
  void resume_stage(OperatorId op);
  void suspend_all();
  void resume_all();
  [[nodiscard]] bool stage_suspended(OperatorId op) const;

  // Replaces the placement of one stage. Queued events and window state are
  // redistributed to the new task groups (the physical state transfer is
  // priced and sequenced by the migration planner, not here).
  void apply_placement(OperatorId op, const physical::StagePlacement& placement);

  // Replaces the whole plan (query re-planning, §4.3). Stateful operators
  // and sources whose signatures match carry their state/backlog over;
  // everything else starts fresh. Delay-metric state of the previous
  // execution (degrade budget, pending replay) is reset, and source delay
  // trackers whose signature no longer names a live source are pruned.
  void apply_replan(query::LogicalPlan logical,
                    physical::PhysicalPlan physical);

  // Failure injection: a failed site contributes no processing capacity and
  // accepts no deliveries until restored. Restoration replays the local
  // checkpoint (a restore pause proportional to state size).
  // fail_site on an already-failed site is a no-op; restore_site on a
  // healthy site is a no-op (a spurious restore must not roll live state
  // back to the checkpoint). Neither touches straggler factors: a slow
  // machine is still slow after it recovers from a crash.
  void fail_site(SiteId site);
  void restore_site(SiteId site);
  [[nodiscard]] bool site_failed(SiteId site) const;

  // Hot-standby promotion (DESIGN.md §12): moves the (op, failed_site) task
  // group onto `standby_site`, which already holds a replica of the group's
  // window synced up to `synced_window_events`. The synced prefix is
  // installed at the standby with no restore pause (the replica is warm);
  // only the delta the primary accumulated after the last sync -- plus the
  // queued-but-unprocessed input -- is lost and replayed from the sources.
  // No solver runs here: the standby site was chosen ahead of time.
  struct PromotionResult {
    int moved_tasks = 0;
    double installed_window_events = 0.0;
    double replayed_source_units = 0.0;
  };
  PromotionResult promote_standby(OperatorId op, SiteId failed_site,
                                  SiteId standby_site,
                                  double synced_window_events);

  // Toggles the degrade baseline (shed source events older than the SLO) at
  // runtime; the control plane flips this on as a graceful fallback when
  // recovery placement is infeasible.
  void set_degrade(bool enabled) { config_.degrade = enabled; }
  [[nodiscard]] bool degrade_enabled() const { return config_.degrade; }

  // Pins the total state of `op` to a fixed size (controlled-state
  // experiments, §8.7); negative clears the override.
  void set_state_override_mb(OperatorId op, double mb);

  // Straggler injection (§1: "stragglers and failures are inevitable"):
  // scales the processing capacity of every task at `site` by `factor`
  // (e.g. 0.1 = a 10x slowdown). 1.0 restores full speed.
  void set_straggler(SiteId site, double factor);
  [[nodiscard]] double straggler_factor(SiteId site) const;

  // Key-skew injection (probing §7's balanced-partitioning assumption):
  // hash routing into `op` weights one hosting site's tasks by `hot_factor`
  // (>1 = hot keys concentrate there). The hot site is *pinned* to the
  // lowest-indexed hosting site at call time and stays put across
  // migrations that reorder or extend the placement (hot keys do not follow
  // rebalancing); if a later placement removes the pinned site entirely,
  // the skew re-anchors to the new lowest-indexed hosting site. 1.0
  // restores balance. Ignored on forward-partitioned edges.
  void set_partition_skew(OperatorId op, double hot_factor);
  // The site the hot key is currently pinned to; -1 when unskewed.
  [[nodiscard]] std::int32_t partition_skew_site(OperatorId op) const {
    return stage_skew_site_[static_cast<std::size_t>(op.value())];
  }

  // --- introspection --------------------------------------------------------

  [[nodiscard]] const query::LogicalPlan& logical() const { return logical_; }
  // Source operator ids of the current plan, cached at (re)build time so
  // per-tick callers avoid logical().sources()'s allocation.
  [[nodiscard]] const std::vector<OperatorId>& source_ids() const {
    return source_ids_;
  }
  [[nodiscard]] const physical::PhysicalPlan& physical_plan() const {
    return physical_;
  }
  [[nodiscard]] const physical::StagePlacement& placement(OperatorId op) const;
  // Total task count across all stages; equals physical_plan().total_tasks()
  // but reads the engine's flat parallelism mirror instead of walking the
  // plan's stage map.
  [[nodiscard]] int total_parallelism() const {
    int total = 0;
    for (const std::int32_t p : stage_parallelism_) total += p;
    return total;
  }

  // Last tick's per-operator metrics. The _into form reuses the caller's
  // vectors (placement, state_mb_per_site) so a per-tick monitoring loop
  // performs no allocation after warm-up. Pass include_state = false to skip
  // the costliest fields when the caller only consumes rates/queues/
  // backpressure: the per-site state-size fill and the placement copy are
  // both omitted (state_mb_per_site is left empty, placement untouched --
  // read parallelism via stage_parallelism() instead).
  [[nodiscard]] OperatorMetrics op_metrics(OperatorId op) const;
  void op_metrics_into(OperatorId op, OperatorMetrics& m,
                       bool include_state = true) const;
  // Current parallelism of `op`'s stage (flat-array read).
  [[nodiscard]] int stage_parallelism(OperatorId op) const {
    return stage_parallelism_[static_cast<std::size_t>(op.value())];
  }
  // Last tick's inbound channels of `op`.
  [[nodiscard]] std::vector<ChannelMetrics> channels_into(OperatorId op) const;
  // Last tick's whole-query metrics.
  [[nodiscard]] const QueryTickMetrics& last_tick() const { return last_; }

  // Current state size of `op` at `site` / across all sites (MB).
  [[nodiscard]] double state_mb(OperatorId op, SiteId site) const;
  [[nodiscard]] double total_state_mb(OperatorId op) const;

  // Open-window contents (events) of `op`'s group at `site`; what a standby
  // replica snapshots when it syncs.
  [[nodiscard]] double window_events(OperatorId op, SiteId site) const;

  // Size (MB) actually written by the most recent checkpoint: the full state
  // for a full checkpoint, the dirty-group delta for an incremental one.
  // Standby sync flows are priced off the same delta.
  [[nodiscard]] double last_checkpoint_written_mb() const {
    return last_checkpoint_written_mb_;
  }
  // Checkpoint-replay deadline of `op`'s group at `site` (simulated seconds;
  // <= now means no replay in progress). Exposed for the fail-during-replay
  // regression tests.
  [[nodiscard]] double restore_until(OperatorId op, SiteId site) const;

  // The *actual* workload: current generation rate of `source` (events/s),
  // independent of backpressure (§3.3's λ_O[src]).
  [[nodiscard]] double source_generation_eps(OperatorId source) const;

  // Total events waiting in source backlogs (source-time units).
  [[nodiscard]] double source_backlog_events() const;

  // Slots in use per site (for slot accounting by the scheduler view).
  [[nodiscard]] std::vector<int> slots_in_use() const;

  // Allocated stream bandwidth (Mbps) per directed link, keyed
  // from*num_sites+to, for channels adjacent to `op`'s stage. The adaptation
  // layer adds this back onto the monitor's availability estimates when
  // re-placing that stage (its own traffic moves with it).
  [[nodiscard]] std::unordered_map<std::int64_t, double> adjacent_link_mbps(
      OperatorId op) const;

  // Same, over every channel of the query (used when re-planning: the whole
  // execution vacates its links).
  [[nodiscard]] std::unordered_map<std::int64_t, double> all_link_mbps() const;

  // Tick-accounting internals, exposed for regression tests: the previous
  // tick's delay (the degrade admission budget), events pending their
  // one-time fold into generated_eps after a replay, and the number of live
  // per-source delay trackers (stale ones are pruned on re-plan).
  [[nodiscard]] double degrade_budget_delay_sec() const {
    return prev_delay_sec_;
  }
  [[nodiscard]] double replay_pending_events() const {
    return replay_pending_events_;
  }
  [[nodiscard]] std::size_t num_source_trackers() const {
    return source_trackers_.size();
  }

 private:
  // --- data-oriented layout ------------------------------------------------
  //
  // Stage index == operator id (stages are dense and aligned with the
  // logical plan's ids). Group id: gid = stage * num_sites_ + site. Channels
  // are parallel arrays indexed by a dense channel id whose order is the
  // construction order (rebuilds keep survivors' relative order and append
  // replacements) -- the same order the legacy std::vector<Channel> had, so
  // every ordered FP reduction over channels visits identical sequences.
  //
  // Immutable-per-rebuild channel descriptor; the mutable per-tick state
  // (queue/offered/delivered/...) lives in the c_* arrays alongside.
  struct ChannelDesc {
    std::int32_t from_stage = 0;
    std::int32_t to_stage = 0;
    std::int32_t from_site = 0;
    std::int32_t to_site = 0;
    double event_bytes = 100.0;
    FlowId flow;  // invalid for intra-site channels
  };

  [[nodiscard]] std::size_t stage_index(OperatorId op) const;
  [[nodiscard]] std::size_t gid(std::size_t stage, std::size_t site) const {
    return stage * num_sites_ + site;
  }
  [[nodiscard]] double group_capacity_eps(std::size_t stage,
                                          std::size_t site) const;

  void build_runtime();
  void teardown_channels();
  // Appends one channel (creating its network flow when cross-site) to the
  // parallel arrays. Indexes are stale until rebuild_channel_indexes().
  void append_channel(std::size_t from_stage, std::size_t to_stage, SiteId su,
                      SiteId sd, double event_bytes, double queue,
                      double delivered, double delivered_prev);
  // Rebuilds the CSR adjacency indexes, cached flow pointers, and the
  // precomputed routing shares after any change to the channel set.
  void rebuild_channel_indexes();
  // Recomputes c_share_ only (placement/skew changed, channels did not).
  void recompute_channel_shares();
  [[nodiscard]] double compute_channel_share(std::size_t ci) const;
  // (Re)creates the per-source delay trackers and dense rate mirror, prunes
  // trackers whose signature no longer names a live source, and refreshes
  // the per-stage tracker pointer cache.
  void refresh_source_runtime();
  // Rebuilds all channels adjacent to `stage_idx`, preserving aggregate
  // queued events per logical edge.
  void rebuild_adjacent_channels(std::size_t stage_idx);
  void apply_degrade_drops(double t);
  void emit_tick_trace(double t, double dt);
  // Re-injects `units` source-time events at the replayable sources
  // (rate-proportional shares across sources, equal split across each
  // source's hosting sites) -- the common tail of restore_site, replan
  // replay, and standby promotion.
  void replay_at_sources(double units);
  void set_flow_demands(double dt);
  void update_delay_metric(double t);
  [[nodiscard]] double stage_total_state_mb(std::size_t stage) const;
  [[nodiscard]] double group_state_mb(std::size_t stage,
                                      std::size_t site) const;

  query::LogicalPlan logical_;
  physical::PhysicalPlan physical_;
  net::Network& network_;
  EngineConfig config_;

  std::size_t num_stages_ = 0;
  std::size_t num_sites_ = 0;
  std::vector<std::size_t> topo_order_;  // stage indices, sources first
  std::vector<OperatorId> source_ids_;   // cached logical_.sources()

  // Plan-constant per-stage operator properties (rebuilt with the plan).
  std::vector<double> stage_eps_per_slot_;
  std::vector<double> stage_selectivity_;
  std::vector<double> stage_window_len_;
  std::vector<double> stage_base_mb_;
  std::vector<double> stage_mb_per_kevent_;
  std::vector<double> stage_fixed_mb_;
  std::vector<char> stage_is_source_;
  std::vector<char> stage_is_sink_;
  std::vector<char> stage_stateful_;
  std::vector<char> stage_windowed_;
  std::vector<char> stage_forward_;  // output partitioning == kForward

  // Mutable per-stage runtime state.
  std::vector<physical::StagePlacement> stage_placement_;
  std::vector<std::int32_t> stage_parallelism_;
  std::vector<char> stage_suspended_;
  std::vector<char> stage_backpressured_;
  std::vector<double> stage_state_override_;
  std::vector<double> stage_skew_;            // hot-key weight factor
  std::vector<std::int32_t> stage_skew_site_; // pinned hot site; -1 = none
  std::vector<double> stage_processed_;
  std::vector<double> stage_emitted_;
  std::vector<double> stage_arrived_;
  std::vector<DelayTracker*> stage_tracker_;  // null for non-sources

  // Per-group state, indexed by gid = stage * num_sites_ + site.
  std::vector<std::int32_t> g_tasks_;
  std::vector<double> g_input_queue_;   // events awaiting processing
  std::vector<double> g_window_events_; // events in the open window
  std::vector<double> g_restore_until_; // checkpoint replay deadline
  std::vector<double> g_processed_prev_;
  std::vector<double> g_source_rate_;   // dense mirror of source_rates_
  // group_capacity_eps() snapshot taken at tick start. Its inputs (tasks,
  // per-slot rate, straggler factor, failure flags) only change between
  // ticks, so every in-tick consumer reads the same value the live function
  // would return -- one multiply per group per tick instead of one per call.
  std::vector<double> g_capacity_;

  // Per-channel state (parallel arrays; see ChannelDesc above).
  std::vector<ChannelDesc> chan_;
  std::vector<double> c_queue_;     // events awaiting transfer (sender side)
  std::vector<double> c_offered_;
  std::vector<double> c_delivered_;
  // Previous tick's delivery (events): the drain rate that sizes the
  // channel's buffer for backpressure purposes.
  std::vector<double> c_delivered_prev_;
  std::vector<double> c_event_bytes_;  // mirror of chan_[i].event_bytes
  std::vector<double> c_share_;        // precomputed routing share
  std::vector<const net::Flow*> c_flow_;  // null for intra-site channels
  std::vector<std::int32_t> c_to_stage_;  // mirror for the reset kernel

  // Hosting sites per stage (ascending site index), rebuilt with every
  // placement change. Loops guarded by "tasks > 0" iterate these instead of
  // all sites; capacity sums over them are FP-exact shortcuts because the
  // skipped groups contribute exact zeros.
  std::vector<std::uint32_t> ss_off_, ss_ids_;
  void rebuild_stage_sites();

  // CSR adjacency indexes over channel ids; each bucket lists ids in
  // ascending order (== the order a filtered scan of the channel vector
  // would visit, which the ordered FP sums rely on).
  std::vector<std::uint32_t> in_off_, in_ids_;     // by (to_stage, to_site)
  std::vector<std::uint32_t> out_off_, out_ids_;   // by (from_stage, from_site)
  std::vector<std::uint32_t> edge_off_, edge_ids_; // by (from_stage, to_stage)
  std::vector<std::uint32_t> sin_off_, sin_ids_;   // by to_stage

  // Per-tick scratch (no allocation after warm-up).
  std::vector<double> lat_scratch_;
  std::vector<double> demand_scratch_;
  // Per-tick memo of link capacity and headroom (capacity - allocated),
  // keyed by from*num_sites+to. Both inputs are fixed for the duration of a
  // tick -- network_.step() runs before Engine::tick() and allocations only
  // change there -- so channels sharing a link reuse the first computation
  // bit-for-bit instead of re-querying the network.
  struct LinkMemo {
    double capacity = 0.0;
    double headroom = 0.0;
  };
  std::unordered_map<std::int64_t, LinkMemo> link_memo_;
  const LinkMemo& link_memo(std::int32_t from_site, std::int32_t to_site);
  // Read-only lookup of an entry prefill_link_memo() already inserted; safe
  // from parallel chunks (no mutation, no rehash).
  [[nodiscard]] const LinkMemo& link_memo_at(std::int32_t from_site,
                                             std::int32_t to_site) const;
  // Inserts the memo entry of every channel's link (serial, at tick start),
  // so in-tick consumers -- including parallel chunks -- only ever read.
  void prefill_link_memo();

  // --- intra-run parallelism (DESIGN.md §11) -------------------------------
  //
  // Chunk boundaries are functions of the data layout alone (fixed channel
  // strides, one chunk per hosting site), never of the worker count, and all
  // cross-chunk FP reductions are recombined serially in legacy operand
  // order -- so any thread count, including the no-pool serial path, yields
  // bit-identical state and traces.
  //
  // Runs fn(0..n-1) on the pool, or inline (in index order) without one.
  void run_region(std::size_t n, const std::function<void(std::size_t)>& fn);
  // Region chunk bodies. Each is shared-nothing across its index domain;
  // `par_stage_` carries the stage index into per-site chunks so the region
  // lambdas capture only `this` (no allocation per region).
  void phase_reset_chunk(std::size_t i);   // channel resets + capacity rows
  void stage_site_chunk(std::size_t k);    // fused deliver+process, one site
  void flow_demand_chunk(std::size_t chunk);  // demand kernel + flow writes
  void delay_pre_chunk(std::size_t chunk); // per-channel delay-metric terms
  std::size_t par_chan_chunks_ = 0;  // channel-chunk count of this tick
  std::size_t par_stage_ = 0;        // stage whose sites are being processed

  // Per-gid / per-channel scratch written by parallel chunks and recombined
  // serially (see tick()). want_by_channel_ replaces the dense want_scratch_
  // indexing inside deliver: per-channel slots make the deliver chunks
  // shared-nothing.
  std::vector<double> want_by_channel_;
  std::vector<double> proc_scratch_;  // per-gid processed events this tick
  std::vector<char> bp_scratch_;      // per-gid backpressure flag
  std::vector<double> d_qexcess_;     // per-channel max(0, queue - offered)
  std::vector<double> d_weight_;      // per-channel latency weight
  std::vector<double> d_wlat_;        // per-channel weighted latency (ms)
  std::vector<double> d_linkeps_;     // per-channel link drain bound (eps)

  // Cached metric handles (stable node addresses inside the registry);
  // resolved once so the per-tick emit path performs no name lookups.
  struct MetricHandles {
    obs::Counter* ticks = nullptr;
    obs::Gauge* delay_sec = nullptr;
    obs::Gauge* generated_eps = nullptr;
    obs::Gauge* admitted_eps = nullptr;
    obs::Gauge* sink_eps = nullptr;
    obs::Gauge* processing_ratio = nullptr;
    obs::Gauge* source_backlog = nullptr;
    obs::Gauge* backpressured_stages = nullptr;
    obs::Counter* dropped_events = nullptr;
    obs::Counter* checkpoints = nullptr;
  };
  MetricHandles mh_;

  std::unordered_map<std::int64_t, double> source_rates_;  // (op,site) -> eps
  // char, not bool: the capacity-row kernel reads it as a raw array.
  std::vector<char> failed_sites_;
  std::vector<double> straggler_factor_;  // per-site capacity multiplier

  // Per-source delay tracking; key is the source's signature so trackers
  // survive re-planning. Entries whose signature stops matching a live
  // source are pruned on re-plan.
  std::unordered_map<std::string, DelayTracker> source_trackers_;

  QueryTickMetrics last_;
  double prev_delay_sec_ = 0.0;  // previous tick's delay (degrade budget)
  double replay_pending_events_ = 0.0;  // re-injected by the last re-plan
  double now_ = 0.0;  // end time of the latest tick
  double last_checkpoint_ = 0.0;
  int checkpoint_seq_ = 0;  // full when seq % full_checkpoint_every == 0
  double last_checkpoint_written_mb_ = 0.0;
  // Per-group state size / open-window contents at the last checkpoint,
  // indexed by gid. restore_site() rolls a recovered group's window back to
  // this snapshot and re-injects the lost delta at the replayable sources.
  std::vector<double> checkpointed_state_;
  std::vector<double> checkpointed_window_;
};

}  // namespace wasp::engine
