// Fluid-level stream-engine simulator (the Flink substitute).
//
// The engine executes one deployed query -- a logical plan plus a physical
// placement -- over the WAN substrate, at a fixed tick (default 1 s of
// simulated time). It is a *fluid* model: event populations are real-valued
// rates and queue levels, not individual records. That is exactly the
// granularity WASP's adaptation layer observes (per-operator rates, queues,
// backpressure flags, state sizes; §3.2), so every control-plane code path
// of the paper is exercised faithfully while whole experiments run in
// milliseconds.
//
// Faithfulness notes (see DESIGN.md for the full substitution table):
//  - Tasks of a stage co-located at a site are aggregated into one "group"
//    (they are symmetric under balanced partitioning, §7).
//  - Channels connect (stage, site) groups along logical edges. Cross-site
//    channels ride Network stream flows and share link capacity with other
//    traffic (including state-migration bulk flows). Intra-site channels are
//    unconstrained.
//  - Buffers are bounded (per-channel and per-input-queue), so sustained
//    bottlenecks propagate backpressure up to the sources, where backlog
//    accumulates -- mirroring Flink's credit-based flow control feeding
//    from a replayable source.
//  - Event-time latency is recovered from cumulative curves at the sources
//    (head-of-backlog age) plus per-hop sojourn times downstream.
//  - Degrade mode implements the paper's baseline: events whose latency
//    would exceed the SLO are shed at the sources (§8.4's "drop late
//    events"), trading processing ratio for delay.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "engine/delay_tracker.h"
#include "engine/metrics.h"
#include "net/network.h"
#include "physical/physical_plan.h"
#include "query/logical_plan.h"

namespace wasp::obs {
class MetricsRegistry;
class TraceEmitter;
}  // namespace wasp::obs

namespace wasp::engine {

struct EngineConfig {
  double tick_sec = 1.0;
  // Bounded buffers. A channel accepts new output only while its queue is
  // below `channel_buffer_sec` seconds of its observed drain rate plus a
  // floor -- like Flink's byte-bounded network buffers, scaled to what the
  // link actually sustains. An input queue absorbs up to one tick of the
  // group's processing capacity plus a floor. Sustained bottlenecks
  // therefore propagate backpressure to the sources within seconds, and the
  // overload backlog accumulates in the replayable source, where its age
  // drives the event-time delay -- exactly as in the paper's prototype.
  double channel_buffer_sec = 2.0;
  double channel_buffer_floor_events = 5'000.0;
  double input_buffer_floor_events = 10'000.0;
  // Degrade baseline: shed source events older than the SLO.
  bool degrade = false;
  double slo_sec = 10.0;
  // Local checkpoint restore throughput (MB/s) after a failure (§5:
  // localized checkpointing makes restore a local, fast operation).
  double local_restore_mb_per_sec = 200.0;
  double checkpoint_interval_sec = 30.0;
  // Optional observability hooks (non-owning; may be null). The trace
  // receives tick/placement/replan/failure/checkpoint events; the registry
  // receives engine.* counters and gauges. See DESIGN.md §6.
  obs::TraceEmitter* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

class Engine {
 public:
  Engine(query::LogicalPlan logical, physical::PhysicalPlan physical,
         net::Network& network, EngineConfig config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- workload ------------------------------------------------------------

  // Sets the generation rate (events/s) of `source` at `site`. Persists
  // until changed. The site must be one of the source's pinned sites.
  void set_source_rate(OperatorId source, SiteId site, double eps);

  // --- simulation ----------------------------------------------------------

  // Advances one tick ending at time `t`. The caller must have advanced the
  // Network to `t` first (flow allocations are read, new demands written).
  void tick(double t);

  // --- adaptation control (used by the WASP runtime) ------------------------

  void suspend_stage(OperatorId op);
  void resume_stage(OperatorId op);
  void suspend_all();
  void resume_all();
  [[nodiscard]] bool stage_suspended(OperatorId op) const;

  // Replaces the placement of one stage. Queued events and window state are
  // redistributed to the new task groups (the physical state transfer is
  // priced and sequenced by the migration planner, not here).
  void apply_placement(OperatorId op, const physical::StagePlacement& placement);

  // Replaces the whole plan (query re-planning, §4.3). Stateful operators
  // and sources whose signatures match carry their state/backlog over;
  // everything else starts fresh.
  void apply_replan(query::LogicalPlan logical,
                    physical::PhysicalPlan physical);

  // Failure injection: a failed site contributes no processing capacity and
  // accepts no deliveries until restored. Restoration replays the local
  // checkpoint (a restore pause proportional to state size).
  // fail_site on an already-failed site is a no-op; restore_site on a
  // healthy site is a no-op (a spurious restore must not roll live state
  // back to the checkpoint). Neither touches straggler factors: a slow
  // machine is still slow after it recovers from a crash.
  void fail_site(SiteId site);
  void restore_site(SiteId site);
  [[nodiscard]] bool site_failed(SiteId site) const;

  // Toggles the degrade baseline (shed source events older than the SLO) at
  // runtime; the control plane flips this on as a graceful fallback when
  // recovery placement is infeasible.
  void set_degrade(bool enabled) { config_.degrade = enabled; }
  [[nodiscard]] bool degrade_enabled() const { return config_.degrade; }

  // Pins the total state of `op` to a fixed size (controlled-state
  // experiments, §8.7); negative clears the override.
  void set_state_override_mb(OperatorId op, double mb);

  // Straggler injection (§1: "stragglers and failures are inevitable"):
  // scales the processing capacity of every task at `site` by `factor`
  // (e.g. 0.1 = a 10x slowdown). 1.0 restores full speed.
  void set_straggler(SiteId site, double factor);
  [[nodiscard]] double straggler_factor(SiteId site) const;

  // Key-skew injection (probing §7's balanced-partitioning assumption):
  // hash routing into `op` weights its lowest-indexed hosting site's tasks
  // by `hot_factor` (>1 = hot keys concentrate there). 1.0 restores
  // balance. Ignored on forward-partitioned edges.
  void set_partition_skew(OperatorId op, double hot_factor);

  // --- introspection --------------------------------------------------------

  [[nodiscard]] const query::LogicalPlan& logical() const { return logical_; }
  [[nodiscard]] const physical::PhysicalPlan& physical_plan() const {
    return physical_;
  }
  [[nodiscard]] const physical::StagePlacement& placement(OperatorId op) const;

  // Last tick's per-operator metrics.
  [[nodiscard]] OperatorMetrics op_metrics(OperatorId op) const;
  // Last tick's inbound channels of `op`.
  [[nodiscard]] std::vector<ChannelMetrics> channels_into(OperatorId op) const;
  // Last tick's whole-query metrics.
  [[nodiscard]] const QueryTickMetrics& last_tick() const { return last_; }

  // Current state size of `op` at `site` / across all sites (MB).
  [[nodiscard]] double state_mb(OperatorId op, SiteId site) const;
  [[nodiscard]] double total_state_mb(OperatorId op) const;

  // The *actual* workload: current generation rate of `source` (events/s),
  // independent of backpressure (§3.3's λ_O[src]).
  [[nodiscard]] double source_generation_eps(OperatorId source) const;

  // Total events waiting in source backlogs (source-time units).
  [[nodiscard]] double source_backlog_events() const;

  // Slots in use per site (for slot accounting by the scheduler view).
  [[nodiscard]] std::vector<int> slots_in_use() const;

  // Allocated stream bandwidth (Mbps) per directed link, keyed
  // from*num_sites+to, for channels adjacent to `op`'s stage. The adaptation
  // layer adds this back onto the monitor's availability estimates when
  // re-placing that stage (its own traffic moves with it).
  [[nodiscard]] std::unordered_map<std::int64_t, double> adjacent_link_mbps(
      OperatorId op) const;

  // Same, over every channel of the query (used when re-planning: the whole
  // execution vacates its links).
  [[nodiscard]] std::unordered_map<std::int64_t, double> all_link_mbps() const;

 private:
  struct Group {
    int tasks = 0;
    double input_queue = 0.0;    // events awaiting processing
    double window_events = 0.0;  // events in the open window (state driver)
    double restore_until = -1.0; // checkpoint replay deadline after failure
    double processed_prev = 0.0; // events processed last tick (buffer sizing)
  };

  struct StageRt {
    OperatorId op;
    physical::StagePlacement placement;
    std::vector<Group> groups;  // indexed by site
    bool suspended = false;
    double state_override_mb = -1.0;
    double partition_skew = 1.0;  // hot-key weight on the first hosting site
    // Tick observations.
    double processed = 0.0;
    double emitted = 0.0;
    double arrived = 0.0;
    bool backpressured = false;
  };

  struct Channel {
    std::size_t from_stage;  // index into stages_
    std::size_t to_stage;
    SiteId from;
    SiteId to;
    double queue = 0.0;  // events on the sender side awaiting transfer
    FlowId flow;         // network flow; invalid for intra-site channels
    double event_bytes = 100.0;
    // Tick observations.
    double offered = 0.0;
    double delivered = 0.0;
    // Previous tick's delivery (events): the drain rate that sizes the
    // channel's buffer for backpressure purposes.
    double delivered_prev = 0.0;
  };

  [[nodiscard]] std::size_t stage_index(OperatorId op) const;
  [[nodiscard]] StageRt& stage_rt(OperatorId op);
  [[nodiscard]] const StageRt& stage_rt(OperatorId op) const;
  [[nodiscard]] double group_capacity_eps(const StageRt& stage,
                                          std::size_t site) const;

  void build_runtime();
  void teardown_channels();
  // Rebuilds all channels adjacent to `stage_idx`, preserving aggregate
  // queued events per logical edge.
  void rebuild_adjacent_channels(std::size_t stage_idx);
  void apply_degrade_drops(double t);
  void deliver_into(std::size_t stage_idx, double dt);
  void process_stage(std::size_t stage_idx, double t, double dt);
  void emit_tick_trace(double t, double dt);
  void set_flow_demands(double dt);
  void update_delay_metric(double t);
  [[nodiscard]] double stage_total_state_mb(const StageRt& stage) const;
  [[nodiscard]] double group_state_mb(const StageRt& stage,
                                      std::size_t site) const;

  query::LogicalPlan logical_;
  physical::PhysicalPlan physical_;
  net::Network& network_;
  EngineConfig config_;

  std::vector<StageRt> stages_;                   // aligned with logical op ids
  std::vector<std::size_t> topo_order_;           // stage indices, sources first
  std::vector<Channel> channels_;
  std::unordered_map<std::int64_t, double> source_rates_;  // (op,site) -> eps
  std::vector<bool> failed_sites_;
  std::vector<double> straggler_factor_;  // per-site capacity multiplier

  // Per-source delay tracking; key is the source's signature so trackers
  // survive re-planning.
  std::unordered_map<std::string, DelayTracker> source_trackers_;

  QueryTickMetrics last_;
  double prev_delay_sec_ = 0.0;  // previous tick's delay (degrade budget)
  double replay_pending_events_ = 0.0;  // re-injected by the last re-plan
  double now_ = 0.0;  // end time of the latest tick
  double last_checkpoint_ = 0.0;
  // Per-stage, per-site state size at the last checkpoint (MB).
  std::vector<std::vector<double>> checkpointed_state_;
  // Per-stage, per-site open-window contents at the last checkpoint
  // (events). restore_site() rolls a recovered group's window back to this
  // snapshot and re-injects the lost delta at the replayable sources.
  std::vector<std::vector<double>> checkpointed_window_;
};

}  // namespace wasp::engine
