// Runtime metric records exposed by the engine.
//
// These are the quantities WASP's monitoring layer consumes (§3.2): per-
// operator processing/output/arrival rates, selectivity, backpressure, queue
// depths, state sizes, and per-channel network telemetry. The engine fills
// them every tick; the Local/Global Metric Monitors aggregate them over the
// monitoring interval.
#pragma once

#include <vector>

#include "common/ids.h"
#include "physical/placement.h"

namespace wasp::engine {

// One cross- or intra-site channel of a logical edge, as observed this tick.
struct ChannelMetrics {
  OperatorId from_op;
  OperatorId to_op;
  SiteId from;
  SiteId to;
  double offered_eps = 0.0;    // events/s the sender pushed at the channel
  double delivered_eps = 0.0;  // events/s that crossed this tick
  double queue_events = 0.0;   // backlog waiting on the sender side
};

// Per-operator aggregate over all its tasks, for one tick.
struct OperatorMetrics {
  OperatorId op;
  double processed_eps = 0.0;  // λ_P: events/s processed
  double emitted_eps = 0.0;    // λ_O: events/s emitted downstream
  double arrived_eps = 0.0;    // λ_I: events/s arriving at input queues
  double selectivity = 1.0;    // σ = λ_O / λ_P (1 when idle)
  bool backpressured = false;  // output throttled by full channels
  double input_queue_events = 0.0;
  double channel_backlog_events = 0.0;  // events queued in inbound channels
  std::vector<double> state_mb_per_site;
  physical::StagePlacement placement;
};

// Whole-query metrics for one tick.
struct QueryTickMetrics {
  double generated_eps = 0.0;  // actual source workload λ_O[src]
  double admitted_eps = 0.0;   // events sources pushed into the pipeline
  double dropped_eps = 0.0;    // events shed (degrade mode)
  double sink_eps = 0.0;       // events emitted at sinks
  double delay_sec = 0.0;      // avg end-to-end event latency estimate
  double processing_ratio = 0.0;
};

}  // namespace wasp::engine
