#include "engine/delay_tracker.h"

#include <algorithm>
#include <cassert>

namespace wasp::engine {

void DelayTracker::record_generated(double t, double events) {
  assert(events >= 0.0);
  generated_ += events;
  if (!history_.empty()) {
    assert(t >= history_.back().first);
  }
  history_.emplace_back(t, generated_);
  prune();
}

void DelayTracker::record_consumed(double events) {
  assert(events >= -1e-9);
  consumed_ = std::min(generated_, consumed_ + std::max(0.0, events));
  prune();
}

double DelayTracker::generation_time(double cum, double t) const {
  if (history_.empty()) return t;
  // Find the first history point with G >= cum; interpolate from its
  // predecessor. Events in a tick are spread uniformly over the tick.
  const auto it = std::lower_bound(
      history_.begin(), history_.end(), cum,
      [](const std::pair<double, double>& p, double c) { return p.second < c; });
  if (it == history_.end()) return t;  // cum beyond generated: "now"
  if (it == history_.begin()) return it->first;
  const auto& [t1, g1] = *std::prev(it);
  const auto& [t2, g2] = *it;
  if (g2 <= g1) return t2;
  const double frac = (cum - g1) / (g2 - g1);
  return t1 + frac * (t2 - t1);
}

double DelayTracker::generated_at(double t) const {
  if (history_.empty()) return generated_;
  if (t <= history_.front().first) return history_.front().second;
  if (t >= history_.back().first) return generated_;
  const auto it = std::lower_bound(
      history_.begin(), history_.end(), t,
      [](const std::pair<double, double>& p, double x) { return p.first < x; });
  const auto& [t2, g2] = *it;
  const auto& [t1, g1] = *std::prev(it);
  if (t2 <= t1) return g2;
  return g1 + (g2 - g1) * (t - t1) / (t2 - t1);
}

double DelayTracker::queueing_delay(double t) const {
  if (consumed_ >= generated_) return 0.0;
  return std::max(0.0, t - generation_time(consumed_, t));
}

void DelayTracker::prune() {
  // Drop history entries fully below the consumed watermark, keeping one
  // point at or below it so interpolation still works.
  while (history_.size() > 1 && history_[1].second <= consumed_) {
    history_.pop_front();
  }
}

}  // namespace wasp::engine
