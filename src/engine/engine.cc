#include "engine/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/log.h"
#include "common/units.h"
#include "engine/kernels.h"
#include "exec/thread_pool.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace wasp::engine {
namespace {

// Delay estimates are capped so a fully stalled pipeline reports "hours",
// not infinity (keeps CDFs and log-scale plots well-behaved).
constexpr double kMaxDelaySec = 1e5;

// Channels per parallel-region chunk. A layout constant, deliberately not a
// function of the worker count: chunk boundaries (and therefore which data
// each chunk touches) must be identical for --threads 1 and --threads N.
constexpr std::size_t kChanChunk = 512;

}  // namespace

Engine::Engine(query::LogicalPlan logical, physical::PhysicalPlan physical,
               net::Network& network, EngineConfig config)
    : logical_(std::move(logical)),
      physical_(std::move(physical)),
      network_(network),
      config_(config) {
  check(logical_.validate().empty(),
        "engine: constructed with an invalid logical plan");
  failed_sites_.assign(network_.topology().num_sites(), false);
  straggler_factor_.assign(network_.topology().num_sites(), 1.0);
  build_runtime();
  refresh_source_runtime();
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *config_.metrics;
    mh_.ticks = &reg.counter("engine.ticks");
    mh_.delay_sec = &reg.gauge("engine.delay_sec");
    mh_.generated_eps = &reg.gauge("engine.generated_eps");
    mh_.admitted_eps = &reg.gauge("engine.admitted_eps");
    mh_.sink_eps = &reg.gauge("engine.sink_eps");
    mh_.processing_ratio = &reg.gauge("engine.processing_ratio");
    mh_.source_backlog = &reg.gauge("engine.source_backlog_events");
    mh_.backpressured_stages = &reg.gauge("engine.backpressured_stages");
    mh_.dropped_events = &reg.counter("engine.dropped_events");
    mh_.checkpoints = &reg.counter("engine.checkpoints");
  }
}

Engine::~Engine() { teardown_channels(); }

void Engine::build_runtime() {
  num_sites_ = network_.topology().num_sites();
  num_stages_ = logical_.num_operators();
  const std::size_t num_groups = num_stages_ * num_sites_;

  stage_eps_per_slot_.assign(num_stages_, 0.0);
  stage_selectivity_.assign(num_stages_, 1.0);
  stage_window_len_.assign(num_stages_, 0.0);
  stage_base_mb_.assign(num_stages_, 0.0);
  stage_mb_per_kevent_.assign(num_stages_, 0.0);
  stage_fixed_mb_.assign(num_stages_, -1.0);
  stage_is_source_.assign(num_stages_, 0);
  stage_is_sink_.assign(num_stages_, 0);
  stage_stateful_.assign(num_stages_, 0);
  stage_windowed_.assign(num_stages_, 0);
  stage_forward_.assign(num_stages_, 0);

  stage_placement_.assign(num_stages_, physical::StagePlacement{});
  stage_parallelism_.assign(num_stages_, 0);
  stage_suspended_.assign(num_stages_, 0);
  stage_backpressured_.assign(num_stages_, 0);
  stage_state_override_.assign(num_stages_, -1.0);
  stage_skew_.assign(num_stages_, 1.0);
  stage_skew_site_.assign(num_stages_, -1);
  stage_processed_.assign(num_stages_, 0.0);
  stage_emitted_.assign(num_stages_, 0.0);
  stage_arrived_.assign(num_stages_, 0.0);
  stage_tracker_.assign(num_stages_, nullptr);

  g_tasks_.assign(num_groups, 0);
  g_input_queue_.assign(num_groups, 0.0);
  g_window_events_.assign(num_groups, 0.0);
  g_restore_until_.assign(num_groups, -1.0);
  g_processed_prev_.assign(num_groups, 0.0);
  g_source_rate_.assign(num_groups, 0.0);
  g_capacity_.assign(num_groups, 0.0);
  proc_scratch_.assign(num_groups, 0.0);
  bp_scratch_.assign(num_groups, 0);

  for (const auto& op : logical_.operators()) {
    const auto i = static_cast<std::size_t>(op.id.value());
    stage_eps_per_slot_[i] = op.events_per_sec_per_slot;
    stage_selectivity_[i] = op.selectivity;
    stage_window_len_[i] = op.window.length_sec;
    stage_base_mb_[i] = op.state.base_mb;
    stage_mb_per_kevent_[i] = op.state.mb_per_kevent;
    stage_fixed_mb_[i] = op.state.fixed_mb;
    stage_is_source_[i] = op.is_source() ? 1 : 0;
    stage_is_sink_[i] = op.is_sink() ? 1 : 0;
    stage_stateful_[i] = op.stateful() ? 1 : 0;
    stage_windowed_[i] = op.window.windowed() ? 1 : 0;
    stage_forward_[i] =
        op.output_partitioning == query::Partitioning::kForward ? 1 : 0;

    const physical::StagePlacement& placement =
        physical_.stage_for(op.id).placement;
    stage_placement_[i] = placement;
    stage_parallelism_[i] = placement.parallelism();
    for (std::size_t s = 0; s < num_sites_; ++s) {
      g_tasks_[gid(i, s)] = placement.per_site[s];
    }
  }

  topo_order_.clear();
  for (OperatorId id : logical_.topological_order()) {
    topo_order_.push_back(static_cast<std::size_t>(id.value()));
  }
  source_ids_ = logical_.sources();

  teardown_channels();
  for (const auto& op : logical_.operators()) {
    const auto from_idx = static_cast<std::size_t>(op.id.value());
    for (OperatorId d : logical_.downstream(op.id)) {
      const auto to_idx = static_cast<std::size_t>(d.value());
      for (SiteId su : stage_placement_[from_idx].sites()) {
        for (SiteId sd : stage_placement_[to_idx].sites()) {
          append_channel(from_idx, to_idx, su, sd, op.output_event_bytes, 0.0,
                         0.0, 0.0);
        }
      }
    }
  }
  rebuild_channel_indexes();

  checkpointed_state_.assign(num_groups, 0.0);
  checkpointed_window_.assign(num_groups, 0.0);
  rebuild_stage_sites();
}

void Engine::rebuild_stage_sites() {
  ss_off_.assign(num_stages_ + 1, 0);
  ss_ids_.clear();
  for (std::size_t i = 0; i < num_stages_; ++i) {
    for (std::size_t s = 0; s < num_sites_; ++s) {
      if (g_tasks_[gid(i, s)] > 0) {
        ss_ids_.push_back(static_cast<std::uint32_t>(s));
      }
    }
    ss_off_[i + 1] = static_cast<std::uint32_t>(ss_ids_.size());
  }
}

void Engine::teardown_channels() {
  for (const ChannelDesc& c : chan_) {
    if (c.flow.valid() && network_.has_flow(c.flow)) {
      network_.remove_flow(c.flow);
    }
  }
  chan_.clear();
  c_queue_.clear();
  c_offered_.clear();
  c_delivered_.clear();
  c_delivered_prev_.clear();
  c_event_bytes_.clear();
  c_share_.clear();
  c_flow_.clear();
  c_to_stage_.clear();
}

void Engine::append_channel(std::size_t from_stage, std::size_t to_stage,
                            SiteId su, SiteId sd, double event_bytes,
                            double queue, double delivered,
                            double delivered_prev) {
  ChannelDesc c;
  c.from_stage = static_cast<std::int32_t>(from_stage);
  c.to_stage = static_cast<std::int32_t>(to_stage);
  c.from_site = static_cast<std::int32_t>(su.value());
  c.to_site = static_cast<std::int32_t>(sd.value());
  c.event_bytes = event_bytes;
  if (su != sd) c.flow = network_.add_stream_flow(su, sd);
  chan_.push_back(c);
  c_queue_.push_back(queue);
  c_offered_.push_back(0.0);
  c_delivered_.push_back(delivered);
  c_delivered_prev_.push_back(delivered_prev);
  c_event_bytes_.push_back(event_bytes);
  c_share_.push_back(0.0);
  c_flow_.push_back(nullptr);
  c_to_stage_.push_back(c.to_stage);
}

void Engine::rebuild_channel_indexes() {
  const std::size_t n = chan_.size();
  want_by_channel_.assign(n, 0.0);
  d_qexcess_.assign(n, 0.0);
  d_weight_.assign(n, 0.0);
  d_wlat_.assign(n, 0.0);
  d_linkeps_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    c_to_stage_[i] = chan_[i].to_stage;
    c_flow_[i] = chan_[i].flow.valid() ? &network_.flow(chan_[i].flow)
                                       : nullptr;
  }

  // Counting-sort CSR build: bucket lists come out in ascending channel-id
  // order, the order a filtered scan of the channel vector visits.
  const auto build_csr = [n](std::vector<std::uint32_t>& off,
                             std::vector<std::uint32_t>& ids,
                             std::size_t num_buckets, auto&& key_of) {
    off.assign(num_buckets + 1, 0);
    for (std::size_t i = 0; i < n; ++i) ++off[key_of(i) + 1];
    for (std::size_t b = 0; b < num_buckets; ++b) off[b + 1] += off[b];
    ids.resize(n);
    std::vector<std::uint32_t> cursor(off.begin(), off.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      ids[cursor[key_of(i)]++] = static_cast<std::uint32_t>(i);
    }
  };
  build_csr(in_off_, in_ids_, num_stages_ * num_sites_, [this](std::size_t i) {
    return static_cast<std::size_t>(chan_[i].to_stage) * num_sites_ +
           static_cast<std::size_t>(chan_[i].to_site);
  });
  build_csr(out_off_, out_ids_, num_stages_ * num_sites_,
            [this](std::size_t i) {
              return static_cast<std::size_t>(chan_[i].from_stage) *
                         num_sites_ +
                     static_cast<std::size_t>(chan_[i].from_site);
            });
  build_csr(edge_off_, edge_ids_, num_stages_ * num_stages_,
            [this](std::size_t i) {
              return static_cast<std::size_t>(chan_[i].from_stage) *
                         num_stages_ +
                     static_cast<std::size_t>(chan_[i].to_stage);
            });
  build_csr(sin_off_, sin_ids_, num_stages_, [this](std::size_t i) {
    return static_cast<std::size_t>(chan_[i].to_stage);
  });

  recompute_channel_shares();
}

double Engine::compute_channel_share(std::size_t ci) const {
  // Share of the sending group's output routed through channel `ci`:
  // task-local for forward partitioning (when a co-located downstream group
  // exists), hash partitioning otherwise -- balanced by task count, except
  // that an injected key skew over-weights the pinned hot site.
  const ChannelDesc& c = chan_[ci];
  const auto down = static_cast<std::size_t>(c.to_stage);
  const physical::StagePlacement& dp = stage_placement_[down];
  const int p_down = stage_parallelism_[down];
  if (p_down == 0) return 0.0;
  const auto from_site = static_cast<std::size_t>(c.from_site);
  if (stage_forward_[static_cast<std::size_t>(c.from_stage)] != 0 &&
      dp.per_site[from_site] > 0) {
    return c.to_site == c.from_site ? 1.0 : 0.0;
  }
  // Hot site: the pinned skew site while it still hosts tasks, else the
  // lowest-indexed hosting site (also the unpinned default, which matches
  // the neutral skew of 1.0 exactly).
  std::int32_t hot = stage_skew_site_[down];
  if (hot < 0 || dp.per_site[static_cast<std::size_t>(hot)] == 0) {
    hot = -1;
    for (std::size_t sd = 0; sd < dp.per_site.size(); ++sd) {
      if (dp.per_site[sd] > 0) {
        hot = static_cast<std::int32_t>(sd);
        break;
      }
    }
  }
  double total = 0.0;
  double my_weight = 0.0;
  for (std::size_t sd = 0; sd < dp.per_site.size(); ++sd) {
    if (dp.per_site[sd] == 0) continue;
    const double w =
        static_cast<double>(dp.per_site[sd]) *
        (static_cast<std::int32_t>(sd) == hot ? stage_skew_[down] : 1.0);
    if (sd == static_cast<std::size_t>(c.to_site)) my_weight = w;
    total += w;
  }
  return total > 0.0 ? my_weight / total : 0.0;
}

void Engine::recompute_channel_shares() {
  for (std::size_t ci = 0; ci < chan_.size(); ++ci) {
    c_share_[ci] = compute_channel_share(ci);
  }
}

void Engine::refresh_source_runtime() {
  // Dense mirror of source_rates_ for the per-tick generation loop (the map
  // itself stays authoritative: source_generation_eps() sums it in map
  // order).
  g_source_rate_.assign(num_stages_ * num_sites_, 0.0);
  const auto n = static_cast<std::int64_t>(num_sites_);
  for (const auto& [key, eps] : source_rates_) {
    g_source_rate_[static_cast<std::size_t>(key / n) * num_sites_ +
                   static_cast<std::size_t>(key % n)] = eps;
  }

  // Eagerly create one tracker per live source and prune entries whose
  // signature no longer names a live source (a re-plan that removed a
  // source must not keep its stale cumulative curves around).
  stage_tracker_.assign(num_stages_, nullptr);
  for (OperatorId src : logical_.sources()) {
    const std::size_t i = stage_index(src);
    stage_tracker_[i] = &source_trackers_[logical_.signature(src)];
  }
  for (auto it = source_trackers_.begin(); it != source_trackers_.end();) {
    bool live = false;
    for (DelayTracker* t : stage_tracker_) {
      if (t == &it->second) {
        live = true;
        break;
      }
    }
    it = live ? std::next(it) : source_trackers_.erase(it);
  }
}

std::size_t Engine::stage_index(OperatorId op) const {
  const auto i = static_cast<std::size_t>(op.value());
  assert(i < num_stages_);
  return i;
}

double Engine::group_capacity_eps(std::size_t stage, std::size_t site) const {
  if (failed_sites_[site]) return 0.0;
  return g_tasks_[gid(stage, site)] * stage_eps_per_slot_[stage] *
         straggler_factor_[site];
}

void Engine::set_straggler(SiteId site, double factor) {
  check(factor >= 0.0, "engine: negative straggler factor ", factor,
        " for site ", site.value());
  straggler_factor_[static_cast<std::size_t>(site.value())] = factor;
}

double Engine::straggler_factor(SiteId site) const {
  return straggler_factor_[static_cast<std::size_t>(site.value())];
}

void Engine::set_source_rate(OperatorId source, SiteId site, double eps) {
  check(logical_.op(source).is_source(), "engine: set_source_rate on operator ",
        source.value(), ", which is not a source");
  const auto n = static_cast<std::int64_t>(num_sites_);
  const double clamped = std::max(0.0, eps);
  source_rates_[source.value() * n + site.value()] = clamped;
  g_source_rate_[gid(stage_index(source),
                     static_cast<std::size_t>(site.value()))] = clamped;
}

double Engine::source_generation_eps(OperatorId source) const {
  const auto n = static_cast<std::int64_t>(num_sites_);
  double total = 0.0;
  for (const auto& [key, eps] : source_rates_) {
    if (key / n == source.value()) total += eps;
  }
  return total;
}

double Engine::source_backlog_events() const {
  double total = 0.0;
  for (const std::size_t idx : topo_order_) {
    if (stage_is_source_[idx] == 0) continue;
    for (std::size_t s = 0; s < num_sites_; ++s) {
      total += g_input_queue_[gid(idx, s)];
    }
  }
  return total;
}

void Engine::apply_degrade_drops(double t) {
  const double dt = config_.tick_sec;
  for (const std::size_t idx : topo_order_) {
    if (stage_is_source_[idx] == 0) continue;
    DelayTracker& tracker = *stage_tracker_[idx];
    // Shed the backlog prefix that cannot meet the SLO (paper §8.4: Degrade
    // drops late events to hold the delay at the SLO). An event admitted
    // now still incurs the pipeline's downstream queueing, so the admission
    // age budget is the SLO minus the observed downstream delay.
    const double source_age = tracker.queueing_delay(t);
    const double downstream = std::max(0.0, prev_delay_sec_ - source_age);
    const double age_budget =
        std::max(0.5, config_.slo_sec - downstream);
    if (source_age <= age_budget) continue;
    double drop = std::max(0.0, tracker.generated_at(t - age_budget) -
                                    tracker.consumed_cum());
    double backlog = 0.0;
    for (std::size_t s = 0; s < num_sites_; ++s) {
      backlog += g_input_queue_[gid(idx, s)];
    }
    drop = std::min(drop, backlog);
    if (drop <= 0.0) continue;
    for (std::size_t s = 0; s < num_sites_; ++s) {
      if (backlog <= 0.0) break;
      const std::size_t gi = gid(idx, s);
      const double share = drop * (g_input_queue_[gi] / backlog);
      g_input_queue_[gi] -= share;
    }
    tracker.record_consumed(drop);
    last_.dropped_eps += drop / dt;
  }
}

void Engine::run_region(std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
  if (config_.pool != nullptr) {
    config_.pool->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

// Fused deliver+process for one hosting site of `par_stage_` -- the region
// chunk of the per-stage pass. Legally reordered from the legacy
// "deliver_into(all sites) then process_stage(all sites)" sequence: a site's
// process step reads only state its own deliver step (or earlier topo
// stages) wrote -- in-channel and out-channel sets of one stage are disjoint
// (the plan is a DAG, no self-loops) and every per-gid array is touched only
// by its own site's chunk -- so fusing per site changes no value, and chunks
// for different sites are shared-nothing. Cross-site accumulators
// (stage_arrived_/stage_emitted_/total processed/backpressure) are NOT
// updated here; tick() recombines them serially in legacy operand order from
// c_delivered_ / proc_scratch_ / bp_scratch_.
void Engine::stage_site_chunk(std::size_t k) {
  const std::size_t stage_idx = par_stage_;
  const double t = now_;
  const double dt = config_.tick_sec;
  const std::size_t s = ss_ids_[ss_off_[stage_idx] + k];
  const std::size_t gi = gid(stage_idx, s);
  proc_scratch_[gi] = 0.0;
  bp_scratch_[gi] = 0;

  // --- deliver: ration the receiver's free input-buffer space over its
  // inbound channels, proportionally to what each channel can ship. ---
  const double capacity = g_capacity_[gi];
  const std::uint32_t ib = in_off_[gi];
  const std::uint32_t ie = in_off_[gi + 1];
  if (ib != ie && capacity > 0.0 && !(g_restore_until_[gi] > t)) {
    // The group accepts one tick's worth of processing capacity plus a
    // small floor: deliveries never throttle a keeping-up stage (nor slow a
    // post-adaptation catch-up burst), while an overloaded stage parks at
    // most ~one second of capacity before backpressure walks upstream to
    // the sources.
    const double input_cap =
        config_.input_buffer_floor_events + capacity * dt;
    const double space = std::max(0.0, input_cap - g_input_queue_[gi]);
    if (space > 0.0) {
      double total_want = 0.0;
      for (std::uint32_t k2 = ib; k2 < ie; ++k2) {
        const std::size_t ci = in_ids_[k2];
        double transferable = c_queue_[ci];
        if (c_flow_[ci] != nullptr) {
          const double mbps = c_flow_[ci]->allocated_mbps;
          transferable =
              std::min(transferable,
                       events_per_sec_over(mbps, c_event_bytes_[ci]) * dt);
        }
        want_by_channel_[ci] = transferable;
        total_want += transferable;
      }
      if (total_want > 0.0) {
        const double factor = std::min(1.0, space / total_want);
        for (std::uint32_t k2 = ib; k2 < ie; ++k2) {
          const std::size_t ci = in_ids_[k2];
          const double moved = want_by_channel_[ci] * factor;
          c_queue_[ci] -= moved;
          c_delivered_[ci] += moved;
          g_input_queue_[gi] += moved;
        }
      }
    }
  }

  // --- process ---
  if (g_restore_until_[gi] > t) return;  // still replaying checkpoint
  g_restore_until_[gi] = -1.0;
  if (capacity <= 0.0) return;
  const double sel = stage_selectivity_[stage_idx];

  double proc = std::min(g_input_queue_[gi], capacity * dt);

  // Backpressure: output must fit the free space of every outbound
  // channel (CSR bucket of this group's channels, precomputed shares).
  const std::uint32_t ob = out_off_[gi];
  const std::uint32_t oe = out_off_[gi + 1];
  for (std::uint32_t k2 = ob; k2 < oe; ++k2) {
    const std::size_t ci = out_ids_[k2];
    const double share = c_share_[ci];
    if (share <= 0.0 || sel <= 0.0) continue;
    // A dead receiver (failed site) blocks its channels entirely. The
    // buffer bound scales with what the channel can actually drain: the
    // receiver's processing capacity for intra-site channels, the link's
    // current fair-share allocation for WAN channels. Both are exogenous
    // to the sender's own throttling, so backpressure releases as soon as
    // the underlying constraint does (no stop-go limit cycle).
    const auto down = static_cast<std::size_t>(chan_[ci].to_stage);
    const auto down_site = static_cast<std::size_t>(chan_[ci].to_site);
    const double down_capacity = g_capacity_[gid(down, down_site)];
    double chan_cap = 0.0;
    if (down_capacity > 0.0) {
      // The channel drains at the slower of the link's current allocation
      // and the receiver's processing capacity; a suspended receiver
      // drains nothing (execution halted -> only the floor buffers).
      double drain_eps = stage_suspended_[down] != 0 ? 0.0 : down_capacity;
      if (stage_suspended_[down] == 0 && c_flow_[ci] != nullptr) {
        // What the channel could drain next tick: its current allocation
        // plus the link's unused headroom (demand-driven allocations
        // under-report a lightly-loaded link's potential, which would
        // otherwise self-limit backlog draining).
        const double headroom =
            link_memo_at(chan_[ci].from_site, chan_[ci].to_site).headroom;
        // A freshly (re)built flow has allocated_mbps = 0 and, on a busy
        // link, near-zero headroom -- but the channel demonstrably drained
        // at delivered_prev last tick, so never estimate below that.
        const double link_eps = std::max(
            events_per_sec_over(c_flow_[ci]->allocated_mbps + headroom,
                                c_event_bytes_[ci]),
            c_delivered_prev_[ci] / dt);
        drain_eps = std::min(drain_eps, link_eps);
      }
      chan_cap = config_.channel_buffer_floor_events +
                 config_.channel_buffer_sec * drain_eps;
    }
    const double space = std::max(0.0, chan_cap - c_queue_[ci]);
    const double max_proc = space / (sel * share);
    if (max_proc < proc) {
      proc = max_proc;
      bp_scratch_[gi] = 1;
    }
  }
  proc = std::max(0.0, proc);

  g_input_queue_[gi] -= proc;
  g_processed_prev_[gi] = proc;
  proc_scratch_[gi] = proc;

  // Window bookkeeping: state resets at tumbling-window boundaries.
  if (stage_windowed_[stage_idx] != 0) {
    const double w = stage_window_len_[stage_idx];
    if (std::fmod(t, w) < dt) g_window_events_[gi] = 0.0;
    g_window_events_[gi] += proc;
  } else if (stage_stateful_[stage_idx] != 0) {
    g_window_events_[gi] += proc;  // running state driver (joins w/o window)
  }

  // Emit.
  const double out = proc * sel;
  for (std::uint32_t k2 = ob; k2 < oe; ++k2) {
    const std::size_t ci = out_ids_[k2];
    const double pushed = out * c_share_[ci];
    if (pushed <= 0.0) continue;
    c_queue_[ci] += pushed;
    c_offered_[ci] += pushed;
  }
}

const Engine::LinkMemo& Engine::link_memo(std::int32_t from_site,
                                          std::int32_t to_site) {
  const std::int64_t key = static_cast<std::int64_t>(from_site) *
                               static_cast<std::int64_t>(num_sites_) +
                           to_site;
  const auto [hit, inserted] = link_memo_.try_emplace(key);
  if (inserted) {
    const SiteId from(from_site);
    const SiteId to(to_site);
    hit->second.capacity = network_.capacity(from, to, now_);
    // headroom is only ever consulted for channels backed by a flow, which
    // are cross-site by construction; intra-site keys skip the allocation
    // query entirely.
    if (from_site != to_site) {
      hit->second.headroom = std::max(
          0.0, hit->second.capacity - network_.link_allocated(from, to));
    }
  }
  return hit->second;
}

const Engine::LinkMemo& Engine::link_memo_at(std::int32_t from_site,
                                             std::int32_t to_site) const {
  const std::int64_t key = static_cast<std::int64_t>(from_site) *
                               static_cast<std::int64_t>(num_sites_) +
                           to_site;
  const auto hit = link_memo_.find(key);
  assert(hit != link_memo_.end());  // prefill_link_memo() covered every link
  return hit->second;
}

void Engine::prefill_link_memo() {
  // Insert the memo entry of every channel's link up front (serial). Each
  // entry is a pure function of (from, to, now_) and the network state fixed
  // for this tick, so eager vs. lazy computation yields identical bits; with
  // every key present, the parallel chunks only ever do read-only lookups.
  for (const ChannelDesc& c : chan_) {
    link_memo(c.from_site, c.to_site);
  }
}

void Engine::flow_demand_chunk(std::size_t chunk) {
  const std::size_t n = chan_.size();
  const std::size_t begin = chunk * kChanChunk;
  const std::size_t end = std::min(n, begin + kChanChunk);
  const std::size_t len = end - begin;
  const double dt = config_.tick_sec;
  if (config_.use_fast_kernels) {
    kernels::flow_demand_mbps(len, c_queue_.data() + begin,
                              c_event_bytes_.data() + begin, dt,
                              demand_scratch_.data() + begin);
  } else {
    kernels::flow_demand_mbps_scalar(len, c_queue_.data() + begin,
                                     c_event_bytes_.data() + begin, dt,
                                     demand_scratch_.data() + begin);
  }
  // Each channel owns a distinct flow (1:1 at append_channel), so the writes
  // are shared-nothing; set_stream_demand is a lookup in a map no one
  // mutates mid-tick plus a field store on that flow.
  for (std::size_t i = begin; i < end; ++i) {
    if (!chan_[i].flow.valid()) continue;
    network_.set_stream_demand(chan_[i].flow, demand_scratch_[i]);
  }
}

void Engine::set_flow_demands(double /*dt*/) {
  const std::size_t n = chan_.size();
  demand_scratch_.resize(n);
  run_region((n + kChanChunk - 1) / kChanChunk,
             [this](std::size_t chunk) { flow_demand_chunk(chunk); });
}

void Engine::delay_pre_chunk(std::size_t chunk) {
  // Per-channel terms of update_delay_metric's edge aggregations, computed
  // with the exact expressions the serial DP used inline; the DP then sums
  // the precomputed terms in the identical (ascending channel id) order.
  const std::size_t n = chan_.size();
  const std::size_t begin = chunk * kChanChunk;
  const std::size_t end = std::min(n, begin + kChanChunk);
  for (std::size_t ci = begin; ci < end; ++ci) {
    d_qexcess_[ci] = std::max(0.0, c_queue_[ci] - c_offered_[ci]);
    const double w = c_delivered_[ci] + c_offered_[ci] + 1e-9;
    d_weight_[ci] = w;
    d_wlat_[ci] = w * network_.latency_ms(SiteId(chan_[ci].from_site),
                                          SiteId(chan_[ci].to_site));
    d_linkeps_[ci] = events_per_sec_over(
        link_memo_at(chan_[ci].from_site, chan_[ci].to_site).capacity,
        c_event_bytes_[ci]);
  }
}

void Engine::update_delay_metric(double t) {
  // Sojourn-time DP over the DAG: the delay a marker event entering now
  // would see, assuming current rates persist. Sources contribute the age
  // of the backlog head (exact, from the cumulative curves); each hop adds
  // channel-queue drain time plus link latency; each stage adds its input-
  // queue drain time. The per-channel terms (queue excess, latency weights,
  // link drain bounds) are precomputed in parallel chunks; the DP itself --
  // all the ordered reductions -- stays serial.
  run_region((chan_.size() + kChanChunk - 1) / kChanChunk,
             [this](std::size_t chunk) { delay_pre_chunk(chunk); });
  lat_scratch_.assign(num_stages_, 0.0);
  double sink_delay = 0.0;
  for (const std::size_t idx : topo_order_) {
    const OperatorId op_id(static_cast<std::int64_t>(idx));
    double d = 0.0;
    if (stage_is_source_[idx] != 0) {
      const DelayTracker* tracker = stage_tracker_[idx];
      d = tracker != nullptr ? tracker->queueing_delay(t) : 0.0;
    } else {
      // Per upstream stage: aggregate its channels into this stage. One tick
      // of offered traffic is in transit by construction; only the excess
      // counts as queueing backlog.
      for (OperatorId u : logical_.upstream(op_id)) {
        const std::size_t from_idx = stage_index(u);
        const std::uint32_t eb = edge_off_[from_idx * num_stages_ + idx];
        const std::uint32_t ee = edge_off_[from_idx * num_stages_ + idx + 1];
        double queue = 0.0, delivered = 0.0, latency_weight = 0.0,
               weighted_latency_ms = 0.0;
        for (std::uint32_t k = eb; k < ee; ++k) {
          const std::size_t ci = edge_ids_[k];
          queue += d_qexcess_[ci];
          delivered += c_delivered_[ci];
          weighted_latency_ms += d_wlat_[ci];
          latency_weight += d_weight_[ci];
        }
        const double hop_latency_sec =
            latency_weight > 0.0 ? weighted_latency_ms / latency_weight / 1e3
                                 : 0.0;
        // Drain estimate: the observed delivery rate. With no deliveries
        // this tick (suspension, rewiring, or a dead link) estimate what the
        // links and the receiver could sustain -- a dead link keeps the
        // estimate near zero and the delay correctly explodes, while a
        // suspended-but-healthy path reports the post-resume drain rate.
        double drain_rate = delivered / config_.tick_sec;
        if (drain_rate < 1.0) {
          double link_eps = 0.0;
          for (std::uint32_t k = eb; k < ee; ++k) {
            link_eps += d_linkeps_[edge_ids_[k]];
          }
          double capacity = 0.0;
          for (std::uint32_t sk = ss_off_[idx]; sk < ss_off_[idx + 1]; ++sk) {
            capacity += g_capacity_[gid(idx, ss_ids_[sk])];
          }
          drain_rate = std::min(link_eps, std::max(capacity, 1.0));
        }
        drain_rate = std::max(drain_rate, 1e-3);
        const double queue_delay =
            queue > 0.0 ? std::min(kMaxDelaySec, queue / drain_rate) : 0.0;
        d = std::max(d, lat_scratch_[from_idx] + queue_delay + hop_latency_sec);
      }
      // Own input queue drain time. The queue sum walks every site (events
      // can be stranded where the stage no longer runs); the capacity sum
      // only needs hosting sites -- the rest are exact zeros.
      double input_queue = 0.0, capacity = 0.0;
      for (std::size_t s = 0; s < num_sites_; ++s) {
        input_queue += g_input_queue_[gid(idx, s)];
      }
      for (std::uint32_t sk = ss_off_[idx]; sk < ss_off_[idx + 1]; ++sk) {
        capacity += g_capacity_[gid(idx, ss_ids_[sk])];
      }
      // Queued input drains at the stage's capacity once it runs (even if
      // currently suspended for a transition).
      const double service =
          std::max({stage_processed_[idx], capacity, 1.0});
      if (input_queue > 0.0) {
        d += std::min(kMaxDelaySec, input_queue / service);
      }
    }
    lat_scratch_[idx] = std::min(kMaxDelaySec, d);
    if (stage_is_sink_[idx] != 0) {
      sink_delay = std::max(sink_delay, lat_scratch_[idx]);
    }
  }
  last_.delay_sec = sink_delay;
}

void Engine::phase_reset_chunk(std::size_t i) {
  if (i < par_chan_chunks_) {
    // Channel-state roll on one fixed slice. The kernels are elementwise
    // (subrange-safe, see kernels.h), so chunked calls match one full-range
    // call bit for bit.
    const std::size_t n = chan_.size();
    const std::size_t begin = i * kChanChunk;
    const std::size_t len = std::min(n, begin + kChanChunk) - begin;
    if (config_.use_fast_kernels) {
      kernels::reset_channel_tick(
          len, c_to_stage_.data() + begin, stage_suspended_.data(),
          c_delivered_prev_.data() + begin, c_delivered_.data() + begin,
          c_offered_.data() + begin);
    } else {
      kernels::reset_channel_tick_scalar(
          len, c_to_stage_.data() + begin, stage_suspended_.data(),
          c_delivered_prev_.data() + begin, c_delivered_.data() + begin,
          c_offered_.data() + begin);
    }
    return;
  }
  // Group-capacity snapshot for one stage's row of the gid array. The dense
  // row equals the legacy "fill zero + hosting-sites loop" exactly: a
  // non-hosting group has tasks == 0, and 0 * eps * straggler is the same
  // +0.0 the fill wrote (see kernels.h).
  const std::size_t stage = i - par_chan_chunks_;
  if (config_.use_fast_kernels) {
    kernels::group_capacity_row(
        num_sites_, g_tasks_.data() + stage * num_sites_,
        stage_eps_per_slot_[stage], failed_sites_.data(),
        straggler_factor_.data(), g_capacity_.data() + stage * num_sites_);
  } else {
    kernels::group_capacity_row_scalar(
        num_sites_, g_tasks_.data() + stage * num_sites_,
        stage_eps_per_slot_[stage], failed_sites_.data(),
        straggler_factor_.data(), g_capacity_.data() + stage * num_sites_);
  }
}

void Engine::tick(double t) {
  const double dt = config_.tick_sec;
  now_ = t;

  // Tick-phase accounting (DESIGN.md §13): one inclusive "engine" frame,
  // then a chain of sibling segments -- each boundary costs one clock read,
  // and a null/disabled profiler reduces every line to a predictable branch.
  obs::Profiler::Scope profile_tick(config_.profiler, obs::Phase::kEngine);
  obs::Profiler::Chain profile(config_.profiler);
  profile.next(obs::Phase::kEngineReset);

  // delivered_prev is the channel's last *live* drain rate: while the
  // receiver is suspended (mid-transition), delivery skips it and
  // `delivered` decays to zero, which must not erase the drain estimate
  // the post-transition backpressure bound depends on.
  if (config_.use_fast_kernels) {
    kernels::reset_stage_tick(num_stages_, stage_processed_.data(),
                              stage_emitted_.data(), stage_arrived_.data(),
                              stage_backpressured_.data());
  } else {
    kernels::reset_stage_tick_scalar(num_stages_, stage_processed_.data(),
                                     stage_emitted_.data(),
                                     stage_arrived_.data(),
                                     stage_backpressured_.data());
  }
  // One region fuses the channel resets (fixed slices) with the per-stage
  // capacity rows -- disjoint arrays, so the fusion is free parallelism.
  par_chan_chunks_ = (chan_.size() + kChanChunk - 1) / kChanChunk;
  run_region(par_chan_chunks_ + num_stages_,
             [this](std::size_t i) { phase_reset_chunk(i); });
  prev_delay_sec_ = last_.delay_sec;
  last_ = QueryTickMetrics{};
  link_memo_.clear();
  prefill_link_memo();

  if (config_.degrade) apply_degrade_drops(t);

  // Per-stage pass in topological order (stages are sequential: downstream
  // consumes what upstream emitted this tick). Within a stage, the hosting
  // sites are independent -- one region chunk per site -- and the cross-site
  // reductions below recombine the per-site partials serially in the exact
  // operand order the legacy per-object loops used.
  profile.next(obs::Phase::kEngineStage);
  for (const std::size_t idx : topo_order_) {
    // Sources generate regardless of suspension: the external stream does
    // not pause for us; events accumulate in the (replayable) source
    // backlog. Serial: trackers and last_ are whole-engine state.
    if (stage_is_source_[idx] != 0) {
      double generated = 0.0;
      for (std::size_t s = 0; s < num_sites_; ++s) {
        const std::size_t gi = gid(idx, s);
        const double events = g_source_rate_[gi] * dt;
        g_input_queue_[gi] += events;
        generated += events;
      }
      stage_tracker_[idx]->record_generated(t, generated);
      last_.generated_eps += generated / dt;
    }
    if (stage_suspended_[idx] != 0) continue;  // halted mid-transition

    par_stage_ = idx;
    const std::uint32_t sb = ss_off_[idx];
    const std::uint32_t se = ss_off_[idx + 1];
    run_region(se - sb, [this](std::size_t k) { stage_site_chunk(k); });

    // Recombine (serial, legacy operand order; skipped sites contribute the
    // exact +0.0 the legacy loop's `continue` never added -- x += 0.0 is the
    // identity for these non-negative accumulators).
    const double sel = stage_selectivity_[idx];
    double total_processed = 0.0;
    for (std::uint32_t sk = sb; sk < se; ++sk) {
      const std::size_t gi = gid(idx, ss_ids_[sk]);
      // Arrived: each in-channel's delivered count equals its moved amount
      // (delivered was reset to zero this tick and written once, by the
      // receiving site's chunk).
      for (std::uint32_t k = in_off_[gi]; k < in_off_[gi + 1]; ++k) {
        stage_arrived_[idx] += c_delivered_[in_ids_[k]] / dt;
      }
      total_processed += proc_scratch_[gi];
      stage_emitted_[idx] += proc_scratch_[gi] * sel / dt;
      if (bp_scratch_[gi] != 0) stage_backpressured_[idx] = 1;
    }
    stage_processed_[idx] += total_processed / dt;
    if (stage_is_source_[idx] != 0) {
      stage_tracker_[idx]->record_consumed(total_processed);
      last_.admitted_eps += total_processed / dt;
    }
    if (stage_is_sink_[idx] != 0) {
      last_.sink_eps += total_processed / dt;
    }
  }
  profile.next(obs::Phase::kEngineChannel);
  set_flow_demands(dt);

  // Periodic localized checkpoint (§5), tiered (DESIGN.md §12): every Nth
  // interval takes a full snapshot; the intervals between record only the
  // groups whose state moved since the last snapshot, so the written size
  // (and the standby-sync traffic priced off it) scales with the change
  // rate, not the total state. Either way the snapshot arrays end up
  // identical -- clean groups already match -- so restore semantics do not
  // depend on the tier.
  profile.next(obs::Phase::kEngineCheckpoint);
  if (t - last_checkpoint_ >= config_.checkpoint_interval_sec) {
    const int every = std::max(1, config_.full_checkpoint_every);
    const bool full = checkpoint_seq_ % every == 0;
    ++checkpoint_seq_;
    double checkpointed_mb = 0.0;
    double written_mb = 0.0;
    int dirty_groups = 0;
    for (std::size_t i = 0; i < num_stages_; ++i) {
      for (std::size_t s = 0; s < num_sites_; ++s) {
        const std::size_t gi = gid(i, s);
        const double state = group_state_mb(i, s);
        checkpointed_mb += state;
        const bool dirty = state != checkpointed_state_[gi] ||
                           g_window_events_[gi] != checkpointed_window_[gi];
        if (dirty) {
          ++dirty_groups;
          if (!full) written_mb += std::abs(state - checkpointed_state_[gi]);
          checkpointed_state_[gi] = state;
          checkpointed_window_[gi] = g_window_events_[gi];
        }
      }
    }
    if (full) written_mb = checkpointed_mb;
    last_checkpoint_ = t;
    last_checkpoint_written_mb_ = written_mb;
    if (config_.trace != nullptr && config_.trace->enabled()) {
      config_.trace->event_at(t, "checkpoint")
          .str("kind", full ? "full" : "delta")
          .num("state_mb", checkpointed_mb)
          .num("written_mb", written_mb)
          .num("dirty_groups", static_cast<double>(dirty_groups));
    }
    if (config_.metrics != nullptr) mh_.checkpoints->inc();
  }

  profile.next(obs::Phase::kEngineDelay);
  update_delay_metric(t);
  if (replay_pending_events_ > 0.0) {
    last_.generated_eps += replay_pending_events_ / dt;
    replay_pending_events_ = 0.0;
  }
  last_.processing_ratio =
      last_.generated_eps > 0.0 ? last_.admitted_eps / last_.generated_eps
                                : 1.0;

  profile.next(obs::Phase::kEngineEmit);
  emit_tick_trace(t, dt);
}

void Engine::emit_tick_trace(double t, double dt) {
  if (config_.metrics != nullptr) {
    mh_.ticks->inc();
    mh_.delay_sec->set(last_.delay_sec);
    mh_.generated_eps->set(last_.generated_eps);
    mh_.admitted_eps->set(last_.admitted_eps);
    mh_.sink_eps->set(last_.sink_eps);
    mh_.processing_ratio->set(last_.processing_ratio);
    mh_.source_backlog->set(source_backlog_events());
    int backpressured = 0;
    for (std::size_t i = 0; i < num_stages_; ++i) {
      if (stage_backpressured_[i] != 0) ++backpressured;
    }
    mh_.backpressured_stages->set(backpressured);
    if (last_.dropped_eps > 0.0) {
      mh_.dropped_events->inc(last_.dropped_eps * dt);
    }
  }

  if (config_.trace == nullptr || !config_.trace->enabled()) return;
  obs::TraceEmitter& trace = *config_.trace;

  trace.event_at(t, "tick")
      .num("delay_sec", last_.delay_sec)
      .num("generated_eps", last_.generated_eps)
      .num("admitted_eps", last_.admitted_eps)
      .num("sink_eps", last_.sink_eps)
      .num("dropped_eps", last_.dropped_eps)
      .num("processing_ratio", last_.processing_ratio);

  for (std::size_t i = 0; i < num_stages_; ++i) {
    // Idle, unsuspended stages with empty queues carry no information; skip
    // them to keep the stream proportional to activity.
    double input_queue = 0.0;
    for (std::size_t s = 0; s < num_sites_; ++s) {
      input_queue += g_input_queue_[gid(i, s)];
    }
    if (stage_processed_[i] <= 0.0 && stage_arrived_[i] <= 0.0 &&
        input_queue <= 0.0 && stage_backpressured_[i] == 0 &&
        stage_suspended_[i] == 0) {
      continue;
    }
    trace.event_at(t, "op_tick")
        .num("op", static_cast<double>(i))
        .str("name", logical_.op(OperatorId(static_cast<std::int64_t>(i))).name)
        .num("processed_eps", stage_processed_[i])
        .num("emitted_eps", stage_emitted_[i])
        .num("arrived_eps", stage_arrived_[i])
        .num("input_queue_events", input_queue)
        .num("state_mb", stage_total_state_mb(i))
        .flag("backpressured", stage_backpressured_[i] != 0)
        .flag("suspended", stage_suspended_[i] != 0);
  }

  for (std::size_t ci = 0; ci < chan_.size(); ++ci) {
    if (c_offered_[ci] <= 0.0 && c_delivered_[ci] <= 0.0 &&
        c_queue_[ci] <= 0.0) {
      continue;
    }
    const ChannelDesc& c = chan_[ci];
    auto event = trace.event_at(t, "channel_tick");
    event.num("from_op", static_cast<double>(c.from_stage))
        .num("to_op", static_cast<double>(c.to_stage))
        .num("from_site", static_cast<double>(c.from_site))
        .num("to_site", static_cast<double>(c.to_site))
        .num("offered_eps", c_offered_[ci] / dt)
        .num("delivered_eps", c_delivered_[ci] / dt)
        .num("queue_events", c_queue_[ci]);
    if (c.flow.valid() && network_.has_flow(c.flow)) {
      event.num("allocated_mbps", network_.flow(c.flow).allocated_mbps);
    }
  }
}

void Engine::suspend_stage(OperatorId op) {
  stage_suspended_[stage_index(op)] = 1;
}
void Engine::resume_stage(OperatorId op) {
  stage_suspended_[stage_index(op)] = 0;
}

void Engine::suspend_all() {
  std::fill(stage_suspended_.begin(), stage_suspended_.end(), char{1});
}

void Engine::resume_all() {
  std::fill(stage_suspended_.begin(), stage_suspended_.end(), char{0});
}

bool Engine::stage_suspended(OperatorId op) const {
  return stage_suspended_[stage_index(op)] != 0;
}

const physical::StagePlacement& Engine::placement(OperatorId op) const {
  return stage_placement_[stage_index(op)];
}

void Engine::apply_placement(OperatorId op,
                             const physical::StagePlacement& placement) {
  const std::size_t i = stage_index(op);
  const int new_p = placement.parallelism();
  check(new_p > 0, "engine: apply_placement with zero parallelism for operator ",
        op.value());

  double total_queue = 0.0, total_window = 0.0;
  for (std::size_t s = 0; s < num_sites_; ++s) {
    total_queue += g_input_queue_[gid(i, s)];
    total_window += g_window_events_[gid(i, s)];
  }

  stage_placement_[i] = placement;
  stage_parallelism_[i] = new_p;
  physical_.mutable_stage_for(op).placement = placement;
  for (std::size_t s = 0; s < num_sites_; ++s) {
    const std::size_t gi = gid(i, s);
    const double share =
        static_cast<double>(placement.per_site[s]) / static_cast<double>(new_p);
    g_tasks_[gi] = placement.per_site[s];
    g_input_queue_[gi] = total_queue * share;
    g_window_events_[gi] = total_window * share;
    // A group mid-way through replaying its checkpoint keeps the pause if it
    // still hosts tasks here -- re-placement does not speed up recovery.
    if (!(g_restore_until_[gi] > now_ && placement.per_site[s] > 0)) {
      g_restore_until_[gi] = -1.0;
    }
  }
  // The pinned hot-key site survives reorderings of the placement's site
  // list; only losing the site entirely re-anchors the skew.
  if (stage_skew_site_[i] >= 0 &&
      placement.per_site[static_cast<std::size_t>(stage_skew_site_[i])] == 0) {
    stage_skew_site_[i] = -1;
    for (std::size_t s = 0; s < num_sites_; ++s) {
      if (placement.per_site[s] > 0) {
        stage_skew_site_[i] = static_cast<std::int32_t>(s);
        break;
      }
    }
  }
  rebuild_stage_sites();
  rebuild_adjacent_channels(i);

  if (config_.trace != nullptr && config_.trace->enabled()) {
    auto event = config_.trace->event("placement");
    event.num("op", static_cast<double>(op.value()))
        .str("name", logical_.op(op).name)
        .num("parallelism", new_p);
    for (SiteId site : placement.sites()) {
      event.num("tasks_at_site_" + std::to_string(site.value()),
                placement.at(site));
    }
  }
  if (config_.metrics != nullptr) {
    config_.metrics->counter("engine.placements_applied").inc();
  }
}

void Engine::rebuild_adjacent_channels(std::size_t stage_idx) {
  // Collect queued events and the aggregate drain rate per logical edge
  // touching this stage, drop those channels, then recreate them against the
  // new placement and redistribute both by traffic share. Seeding the drain
  // (delivered_prev) matters: a fresh channel with delivered_prev = 0 on a
  // busy link would see its buffer cap collapse to the floor and signal
  // spurious backpressure for the first post-migration tick.
  struct EdgeKey {
    std::size_t from, to;
    bool operator==(const EdgeKey&) const = default;
  };
  struct EdgeCarry {
    double queue = 0.0;
    double drain = 0.0;  // summed delivered(_prev) of the replaced channels
  };
  std::vector<std::pair<EdgeKey, EdgeCarry>> edge_carry;
  auto carry_of = [&](EdgeKey key) -> EdgeCarry& {
    for (auto& [k, c] : edge_carry) {
      if (k == key) return c;
    }
    edge_carry.emplace_back(key, EdgeCarry{});
    return edge_carry.back().second;
  };

  // Carry + compaction pass: survivors keep their relative order (and thus
  // the channel-id order every filtered FP sum visits).
  std::size_t kept = 0;
  for (std::size_t ci = 0; ci < chan_.size(); ++ci) {
    const auto from_stage = static_cast<std::size_t>(chan_[ci].from_stage);
    const auto to_stage = static_cast<std::size_t>(chan_[ci].to_stage);
    if (from_stage == stage_idx || to_stage == stage_idx) {
      EdgeCarry& carry = carry_of({from_stage, to_stage});
      carry.queue += c_queue_[ci];
      // `delivered` holds the just-completed tick's delivery (freshest for a
      // live receiver); delivered_prev is the retained live rate when the
      // receiver spent the last tick suspended mid-transition.
      carry.drain += std::max(c_delivered_[ci], c_delivered_prev_[ci]);
      if (chan_[ci].flow.valid() && network_.has_flow(chan_[ci].flow)) {
        network_.remove_flow(chan_[ci].flow);
      }
    } else {
      chan_[kept] = chan_[ci];
      c_queue_[kept] = c_queue_[ci];
      c_offered_[kept] = c_offered_[ci];
      c_delivered_[kept] = c_delivered_[ci];
      c_delivered_prev_[kept] = c_delivered_prev_[ci];
      c_event_bytes_[kept] = c_event_bytes_[ci];
      ++kept;
    }
  }
  chan_.resize(kept);
  c_queue_.resize(kept);
  c_offered_.resize(kept);
  c_delivered_.resize(kept);
  c_delivered_prev_.resize(kept);
  c_event_bytes_.resize(kept);
  c_share_.resize(kept);
  c_flow_.resize(kept);
  c_to_stage_.resize(kept);

  auto make_edge = [&](std::size_t from_idx, std::size_t to_idx) {
    const physical::StagePlacement& fp = stage_placement_[from_idx];
    const physical::StagePlacement& tp = stage_placement_[to_idx];
    const EdgeCarry carry = carry_of({from_idx, to_idx});
    const int p_from = fp.parallelism();
    const int p_to = tp.parallelism();
    if (p_from == 0 || p_to == 0) return;
    const double event_bytes =
        logical_.op(OperatorId(static_cast<std::int64_t>(from_idx)))
            .output_event_bytes;
    for (SiteId su : fp.sites()) {
      for (SiteId sd : tp.sites()) {
        const double share =
            (static_cast<double>(fp.at(su)) / p_from) *
            (static_cast<double>(tp.at(sd)) / p_to);
        // Seed both delivery fields: tick() derives delivered_prev from
        // `delivered` at the start of the next tick when the receiver is
        // live (so a seed in delivered_prev alone would be clobbered by the
        // fresh channel's zero), while a still-suspended receiver skips that
        // update and reads delivered_prev directly.
        append_channel(from_idx, to_idx, su, sd, event_bytes,
                       carry.queue * share, carry.drain * share,
                       carry.drain * share);
      }
    }
  };

  const OperatorId op(static_cast<std::int64_t>(stage_idx));
  for (OperatorId u : logical_.upstream(op)) {
    make_edge(stage_index(u), stage_idx);
  }
  for (OperatorId d : logical_.downstream(op)) {
    make_edge(stage_idx, stage_index(d));
  }
  rebuild_channel_indexes();
}

void Engine::apply_replan(query::LogicalPlan logical,
                          physical::PhysicalPlan physical) {
  // 1. Carry-over inventory from the old execution.
  struct Carried {
    double window_events = 0.0;
    double state_override = -1.0;
  };
  std::unordered_map<std::string, Carried> carried;          // stateful ops
  std::unordered_map<std::string, double> source_backlogs;   // source units
  // Injected key skews follow the operator's signature across the re-plan
  // (the hot key exists in the data, not in the plan).
  std::unordered_map<std::string, std::pair<double, std::int32_t>> skews;
  double inflight_source_units = 0.0;

  // Rates to convert mid-pipeline events back into source units.
  std::unordered_map<OperatorId, double> src_rates;
  double total_src_eps = 0.0;
  for (OperatorId src : logical_.sources()) {
    const double eps = source_generation_eps(src);
    src_rates.emplace(src, eps);
    total_src_eps += eps;
  }
  const auto rates = logical_.estimate_rates(src_rates);

  for (std::size_t i = 0; i < num_stages_; ++i) {
    const OperatorId op_id(static_cast<std::int64_t>(i));
    double queue = 0.0, window = 0.0;
    for (std::size_t s = 0; s < num_sites_; ++s) {
      queue += g_input_queue_[gid(i, s)];
      window += g_window_events_[gid(i, s)];
    }
    if (stage_skew_[i] != 1.0) {
      skews[logical_.signature(op_id)] = {stage_skew_[i], stage_skew_site_[i]};
    }
    if (stage_is_source_[i] != 0) {
      source_backlogs[logical_.signature(op_id)] = queue;
      continue;
    }
    if (stage_stateful_[i] != 0) {
      Carried c;
      c.window_events = window;
      c.state_override = stage_state_override_[i];
      carried[logical_.signature(op_id)] = c;
    }
    // In-flight events at non-source operators are replayed from the source
    // checkpoints: convert to source units via the expected-rate ratio.
    double inbound_channels = 0.0;
    for (std::size_t ci = 0; ci < chan_.size(); ++ci) {
      if (static_cast<std::size_t>(chan_[ci].to_stage) == i) {
        inbound_channels += c_queue_[ci];
      }
    }
    const double op_eps = rates.at(op_id).input_eps;
    if (op_eps > 0.0 && total_src_eps > 0.0) {
      inflight_source_units +=
          (queue + inbound_channels) * (total_src_eps / op_eps);
    }
  }

  // 2. Capture per-site source rates keyed by source *name* (names identify
  // the external stream and are stable across plan candidates).
  const auto n = static_cast<std::int64_t>(network_.topology().num_sites());
  std::unordered_map<std::string, std::vector<double>> rates_by_name;
  for (OperatorId src : logical_.sources()) {
    std::vector<double> per_site(static_cast<std::size_t>(n), 0.0);
    for (std::int64_t s = 0; s < n; ++s) {
      const auto it = source_rates_.find(src.value() * n + s);
      if (it != source_rates_.end()) {
        per_site[static_cast<std::size_t>(s)] = it->second;
      }
    }
    rates_by_name[logical_.op(src).name] = std::move(per_site);
  }

  // 3. Swap in the new plan and rebuild the runtime.
  logical_ = std::move(logical);
  physical_ = std::move(physical);
  check(logical_.validate().empty(),
        "engine: apply_replan with an invalid logical plan");
  build_runtime();

  // The previous execution's delay must not leak into the new one: the
  // degrade budget (prev_delay_sec_, re-primed from last_.delay_sec at the
  // next tick) and any not-yet-folded replay credit start from zero.
  prev_delay_sec_ = 0.0;
  last_.delay_sec = 0.0;
  replay_pending_events_ = 0.0;

  // 4a. Re-key source rates to the new operator ids and restore backlogs.
  source_rates_.clear();
  for (OperatorId new_src : logical_.sources()) {
    const auto rit = rates_by_name.find(logical_.op(new_src).name);
    if (rit != rates_by_name.end()) {
      for (std::int64_t s = 0; s < n; ++s) {
        const double eps = rit->second[static_cast<std::size_t>(s)];
        if (eps > 0.0) source_rates_[new_src.value() * n + s] = eps;
      }
    }
    const auto bl = source_backlogs.find(logical_.signature(new_src));
    const std::size_t i = stage_index(new_src);
    if (bl != source_backlogs.end() && bl->second > 0.0) {
      int active_sites = 0;
      for (std::size_t s = 0; s < num_sites_; ++s) {
        if (g_tasks_[gid(i, s)] > 0) ++active_sites;
      }
      if (active_sites > 0) {
        for (std::size_t s = 0; s < num_sites_; ++s) {
          const std::size_t gi = gid(i, s);
          if (g_tasks_[gi] > 0) g_input_queue_[gi] = bl->second / active_sites;
        }
      }
    }
  }
  // Dense rate mirror + tracker creation for the new sources; trackers whose
  // signature no longer names a live source are pruned here.
  refresh_source_runtime();

  // 4b. Restore carried state into matching stateful operators.
  for (const auto& op : logical_.operators()) {
    if (!op.stateful()) continue;
    const auto it = carried.find(logical_.signature(op.id));
    if (it == carried.end()) continue;
    const std::size_t i = stage_index(op.id);
    stage_state_override_[i] = it->second.state_override;
    const int p = stage_parallelism_[i];
    if (p == 0) continue;
    for (std::size_t s = 0; s < num_sites_; ++s) {
      const double share =
          static_cast<double>(stage_placement_[i].per_site[s]) /
          static_cast<double>(p);
      g_window_events_[gid(i, s)] = it->second.window_events * share;
    }
  }

  // 4c. Restore carried skews (re-anchoring if the pinned site no longer
  // hosts the operator).
  for (const auto& op : logical_.operators()) {
    const auto it = skews.find(logical_.signature(op.id));
    if (it == skews.end()) continue;
    const std::size_t i = stage_index(op.id);
    stage_skew_[i] = it->second.first;
    std::int32_t site = it->second.second;
    if (site >= 0 &&
        stage_placement_[i].per_site[static_cast<std::size_t>(site)] == 0) {
      site = -1;
      for (std::size_t s = 0; s < num_sites_; ++s) {
        if (stage_placement_[i].per_site[s] > 0) {
          site = static_cast<std::int32_t>(s);
          break;
        }
      }
    }
    stage_skew_site_[i] = site;
  }
  recompute_channel_shares();

  // 5. Re-inject in-flight events as replayed source work.
  if (inflight_source_units > 0.0) {
    double total_rate = 0.0;
    for (OperatorId src : logical_.sources()) {
      total_rate += source_generation_eps(src);
    }
    for (OperatorId src : logical_.sources()) {
      const std::size_t i = stage_index(src);
      const double rate = source_generation_eps(src);
      const double share =
          total_rate > 0.0
              ? rate / total_rate
              : 1.0 / static_cast<double>(logical_.sources().size());
      const double units = inflight_source_units * share;
      int active_sites = 0;
      for (std::size_t s = 0; s < num_sites_; ++s) {
        if (g_tasks_[gid(i, s)] > 0) ++active_sites;
      }
      if (active_sites == 0) continue;
      for (std::size_t s = 0; s < num_sites_; ++s) {
        const std::size_t gi = gid(i, s);
        if (g_tasks_[gi] > 0) g_input_queue_[gi] += units / active_sites;
      }
      // Replayed events re-enter the generation curve "now"; their original
      // generation times are unknown to the new execution (documented
      // approximation -- slightly undercounts delay during the transition).
      stage_tracker_[i]->record_generated(now_, units);
      // The replayed events will be admitted a second time; surface them as
      // generated work too so cumulative processed/generated accounting
      // stays balanced.
      replay_pending_events_ += units;
    }
  }

  if (config_.trace != nullptr && config_.trace->enabled()) {
    config_.trace->event("replan")
        .num("num_operators", static_cast<double>(logical_.num_operators()))
        .num("replayed_source_units", inflight_source_units);
  }
  if (config_.metrics != nullptr) {
    config_.metrics->counter("engine.replans_applied").inc();
  }
}

void Engine::fail_site(SiteId site) {
  if (failed_sites_[static_cast<std::size_t>(site.value())]) return;
  failed_sites_[static_cast<std::size_t>(site.value())] = true;
  if (config_.trace != nullptr && config_.trace->enabled()) {
    config_.trace->event("site_failed")
        .num("site", static_cast<double>(site.value()));
  }
  if (config_.metrics != nullptr) {
    config_.metrics->counter("engine.site_failures").inc();
  }
}

void Engine::restore_site(SiteId site) {
  const auto s = static_cast<std::size_t>(site.value());
  if (!failed_sites_[s]) return;
  failed_sites_[s] = false;

  // Rates to convert events lost at an operator back into source units, the
  // same way apply_replan re-injects in-flight work.
  std::unordered_map<OperatorId, double> src_rates;
  double total_src_eps = 0.0;
  for (OperatorId src : logical_.sources()) {
    const double eps = source_generation_eps(src);
    src_rates.emplace(src, eps);
    total_src_eps += eps;
  }
  const auto rates = logical_.estimate_rates(src_rates);

  // Groups at the site replay their local checkpoint before processing
  // resumes; the pause is proportional to the checkpointed state size (§5).
  // The failure destroyed everything the group accumulated since that
  // checkpoint: its state rolls back to the snapshot, and the delta (window
  // growth since the checkpoint plus the queued-but-unprocessed input) is
  // lost and must be replayed from the sources' durable logs.
  double restore_mb = 0.0;
  double max_restore_sec = 0.0;
  double lost_source_units = 0.0;
  for (std::size_t i = 0; i < num_stages_; ++i) {
    const std::size_t gi = gid(i, s);
    if (g_tasks_[gi] == 0) continue;
    const double restore_sec =
        checkpointed_state_[gi] / config_.local_restore_mb_per_sec;
    // A replay already in progress (back-to-back failures) composes with the
    // new one -- the group must finish the earlier replay and then this one;
    // resetting to now_ + restore_sec would silently discount work.
    g_restore_until_[gi] = std::max(g_restore_until_[gi], now_) + restore_sec;
    restore_mb += checkpointed_state_[gi];
    max_restore_sec = std::max(max_restore_sec, restore_sec);

    // Sources model the durable external stream: their backlog survives the
    // failure (the log retains it), so only operator groups roll back.
    if (stage_is_source_[i] != 0) continue;
    const double lost =
        std::max(0.0, g_window_events_[gi] - checkpointed_window_[gi]) +
        g_input_queue_[gi];
    g_window_events_[gi] = checkpointed_window_[gi];
    g_input_queue_[gi] = 0.0;
    const double op_eps =
        rates.at(OperatorId(static_cast<std::int64_t>(i))).input_eps;
    if (lost > 0.0 && op_eps > 0.0 && total_src_eps > 0.0) {
      lost_source_units += lost * (total_src_eps / op_eps);
    }
  }

  // Re-inject the lost delta at the replayable sources (rate-proportional
  // shares, mirroring apply_replan's in-flight replay).
  if (lost_source_units > 0.0) replay_at_sources(lost_source_units);

  if (config_.trace != nullptr && config_.trace->enabled()) {
    config_.trace->event("site_restored")
        .num("site", static_cast<double>(site.value()))
        .num("checkpoint_mb", restore_mb)
        .num("restore_sec", max_restore_sec)
        .num("replayed_source_units", lost_source_units);
  }
  if (config_.metrics != nullptr) {
    config_.metrics->counter("engine.site_restores").inc();
  }
}

void Engine::replay_at_sources(double units) {
  if (units <= 0.0) return;
  double total_src_eps = 0.0;
  for (OperatorId src : logical_.sources()) {
    total_src_eps += source_generation_eps(src);
  }
  for (OperatorId src : logical_.sources()) {
    const std::size_t i = stage_index(src);
    const double rate = source_generation_eps(src);
    const double share =
        total_src_eps > 0.0
            ? rate / total_src_eps
            : 1.0 / static_cast<double>(logical_.sources().size());
    const double src_units = units * share;
    if (src_units <= 0.0) continue;
    int active_sites = 0;
    for (std::size_t st = 0; st < num_sites_; ++st) {
      if (g_tasks_[gid(i, st)] > 0) ++active_sites;
    }
    if (active_sites == 0) continue;
    for (std::size_t st = 0; st < num_sites_; ++st) {
      const std::size_t gi = gid(i, st);
      if (g_tasks_[gi] > 0) g_input_queue_[gi] += src_units / active_sites;
    }
    stage_tracker_[i]->record_generated(now_, src_units);
    replay_pending_events_ += src_units;
  }
}

Engine::PromotionResult Engine::promote_standby(OperatorId op,
                                                SiteId failed_site,
                                                SiteId standby_site,
                                                double synced_window_events) {
  PromotionResult result;
  const std::size_t i = stage_index(op);
  const auto sd = static_cast<std::size_t>(failed_site.value());
  const auto sb = static_cast<std::size_t>(standby_site.value());
  const std::size_t gd = gid(i, sd);
  const std::size_t gs = gid(i, sb);
  const int moved_tasks = g_tasks_[gd];
  if (moved_tasks == 0 || sd == sb || failed_sites_[sb]) return result;

  // The standby holds the window as of its last sync. Installing more than
  // the primary actually had would fabricate events, so the effective
  // replica is capped at the live window; everything past it -- post-sync
  // window growth plus the queued-but-unprocessed input -- died with the
  // primary and replays from the sources' durable logs.
  const double live_window = g_window_events_[gd];
  const double installed = std::min(synced_window_events, live_window);
  const double lost = (live_window - installed) + g_input_queue_[gd];

  g_tasks_[gd] = 0;
  g_input_queue_[gd] = 0.0;
  g_window_events_[gd] = 0.0;
  g_restore_until_[gd] = -1.0;
  checkpointed_state_[gd] = 0.0;
  checkpointed_window_[gd] = 0.0;
  g_tasks_[gs] += moved_tasks;
  g_window_events_[gs] += installed;
  // The replica is warm: no checkpoint-scan pause at the standby
  // (g_restore_until_[gs] untouched).

  physical::StagePlacement placement = stage_placement_[i];
  placement.per_site[sb] += placement.per_site[sd];
  placement.per_site[sd] = 0;
  stage_placement_[i] = placement;
  physical_.mutable_stage_for(op).placement = placement;
  // Parallelism is unchanged: tasks moved, none were added or removed.

  // Losing the hot-key site re-anchors partition skew, as in
  // apply_placement.
  if (stage_skew_site_[i] == static_cast<std::int32_t>(sd)) {
    stage_skew_site_[i] = -1;
    for (std::size_t s = 0; s < num_sites_; ++s) {
      if (placement.per_site[s] > 0) {
        stage_skew_site_[i] = static_cast<std::int32_t>(s);
        break;
      }
    }
  }

  double lost_source_units = 0.0;
  if (lost > 0.0) {
    std::unordered_map<OperatorId, double> src_rates;
    double total_src_eps = 0.0;
    for (OperatorId src : logical_.sources()) {
      const double eps = source_generation_eps(src);
      src_rates.emplace(src, eps);
      total_src_eps += eps;
    }
    const auto rates = logical_.estimate_rates(src_rates);
    const double op_eps = rates.at(op).input_eps;
    if (op_eps > 0.0 && total_src_eps > 0.0) {
      lost_source_units = lost * (total_src_eps / op_eps);
      replay_at_sources(lost_source_units);
    }
  }

  rebuild_stage_sites();
  rebuild_adjacent_channels(i);

  result.moved_tasks = moved_tasks;
  result.installed_window_events = installed;
  result.replayed_source_units = lost_source_units;
  if (config_.trace != nullptr && config_.trace->enabled()) {
    config_.trace->event("standby_promoted")
        .num("op", static_cast<double>(op.value()))
        .str("name", logical_.op(op).name)
        .num("from_site", static_cast<double>(failed_site.value()))
        .num("to_site", static_cast<double>(standby_site.value()))
        .num("tasks", static_cast<double>(moved_tasks))
        .num("installed_window_events", installed)
        .num("replayed_source_units", lost_source_units);
  }
  if (config_.metrics != nullptr) {
    config_.metrics->counter("engine.standby_promotions").inc();
  }
  return result;
}

bool Engine::site_failed(SiteId site) const {
  return failed_sites_[static_cast<std::size_t>(site.value())];
}

void Engine::set_state_override_mb(OperatorId op, double mb) {
  stage_state_override_[stage_index(op)] = mb;
}

void Engine::set_partition_skew(OperatorId op, double hot_factor) {
  check(hot_factor > 0.0, "engine: set_partition_skew with non-positive factor ",
        hot_factor, " for operator ", op.value());
  const std::size_t i = stage_index(op);
  stage_skew_[i] = hot_factor;
  if (hot_factor == 1.0) {
    stage_skew_site_[i] = -1;  // balance restored; nothing to pin
  } else {
    // Pin the hot key to the lowest-indexed hosting site *at call time*; it
    // stays there across later placement changes (see header comment).
    stage_skew_site_[i] = -1;
    for (std::size_t s = 0; s < num_sites_; ++s) {
      if (stage_placement_[i].per_site[s] > 0) {
        stage_skew_site_[i] = static_cast<std::int32_t>(s);
        break;
      }
    }
  }
  recompute_channel_shares();
}

double Engine::group_state_mb(std::size_t stage, std::size_t site) const {
  const std::size_t gi = gid(stage, site);
  const int p = stage_parallelism_[stage];
  if (p == 0 || g_tasks_[gi] == 0) return 0.0;
  const double share =
      static_cast<double>(g_tasks_[gi]) / static_cast<double>(p);
  if (stage_state_override_[stage] >= 0.0) {
    return stage_state_override_[stage] * share;
  }
  if (stage_stateful_[stage] == 0) return 0.0;
  if (stage_fixed_mb_[stage] >= 0.0) return stage_fixed_mb_[stage] * share;
  return stage_base_mb_[stage] * share +
         stage_mb_per_kevent_[stage] * g_window_events_[gi] / 1e3;
}

double Engine::stage_total_state_mb(std::size_t stage) const {
  double total = 0.0;
  for (std::size_t s = 0; s < num_sites_; ++s) {
    total += group_state_mb(stage, s);
  }
  return total;
}

double Engine::state_mb(OperatorId op, SiteId site) const {
  return group_state_mb(stage_index(op),
                        static_cast<std::size_t>(site.value()));
}

double Engine::total_state_mb(OperatorId op) const {
  return stage_total_state_mb(stage_index(op));
}

double Engine::window_events(OperatorId op, SiteId site) const {
  return g_window_events_[gid(stage_index(op),
                              static_cast<std::size_t>(site.value()))];
}

double Engine::restore_until(OperatorId op, SiteId site) const {
  return g_restore_until_[gid(stage_index(op),
                              static_cast<std::size_t>(site.value()))];
}

void Engine::op_metrics_into(OperatorId op, OperatorMetrics& m,
                             bool include_state) const {
  const std::size_t i = stage_index(op);
  m.op = op;
  m.processed_eps = stage_processed_[i];
  m.emitted_eps = stage_emitted_[i];
  m.arrived_eps = stage_arrived_[i];
  m.selectivity = stage_processed_[i] > 0.0
                      ? stage_emitted_[i] / stage_processed_[i]
                      : 1.0;
  m.backpressured = stage_backpressured_[i] != 0;
  // The monitoring fast path (include_state == false) skips the fields the
  // window accumulator never reads: per-site state sizes and the placement
  // copy (parallelism is available via stage_parallelism()).
  if (include_state) m.placement = stage_placement_[i];
  m.input_queue_events = 0.0;
  m.state_mb_per_site.clear();
  for (std::size_t s = 0; s < num_sites_; ++s) {
    m.input_queue_events += g_input_queue_[gid(i, s)];
    if (include_state) m.state_mb_per_site.push_back(group_state_mb(i, s));
  }
  m.channel_backlog_events = 0.0;
  for (std::uint32_t k = sin_off_[i]; k < sin_off_[i + 1]; ++k) {
    // One tick of offered traffic is always in transit in this pipeline
    // model; only the excess is genuine backlog.
    const std::size_t ci = sin_ids_[k];
    m.channel_backlog_events += std::max(0.0, c_queue_[ci] - c_offered_[ci]);
  }
}

OperatorMetrics Engine::op_metrics(OperatorId op) const {
  OperatorMetrics m;
  op_metrics_into(op, m);
  return m;
}

std::vector<ChannelMetrics> Engine::channels_into(OperatorId op) const {
  std::vector<ChannelMetrics> out;
  const std::size_t idx = stage_index(op);
  const double dt = config_.tick_sec;
  for (std::uint32_t k = sin_off_[idx]; k < sin_off_[idx + 1]; ++k) {
    const std::size_t ci = sin_ids_[k];
    ChannelMetrics m;
    m.from_op = OperatorId(static_cast<std::int64_t>(chan_[ci].from_stage));
    m.to_op = op;
    m.from = SiteId(chan_[ci].from_site);
    m.to = SiteId(chan_[ci].to_site);
    m.offered_eps = c_offered_[ci] / dt;
    m.delivered_eps = c_delivered_[ci] / dt;
    m.queue_events = c_queue_[ci];
    out.push_back(m);
  }
  return out;
}

std::unordered_map<std::int64_t, double> Engine::adjacent_link_mbps(
    OperatorId op) const {
  std::unordered_map<std::int64_t, double> out;
  const std::size_t idx = stage_index(op);
  const auto n = static_cast<std::int64_t>(num_sites_);
  for (std::size_t ci = 0; ci < chan_.size(); ++ci) {
    const ChannelDesc& c = chan_[ci];
    if (static_cast<std::size_t>(c.from_stage) != idx &&
        static_cast<std::size_t>(c.to_stage) != idx) {
      continue;
    }
    if (!c.flow.valid() || !network_.has_flow(c.flow)) continue;
    out[c.from_site * n + c.to_site] += network_.flow(c.flow).allocated_mbps;
  }
  return out;
}

std::unordered_map<std::int64_t, double> Engine::all_link_mbps() const {
  std::unordered_map<std::int64_t, double> out;
  const auto n = static_cast<std::int64_t>(num_sites_);
  for (std::size_t ci = 0; ci < chan_.size(); ++ci) {
    const ChannelDesc& c = chan_[ci];
    if (!c.flow.valid() || !network_.has_flow(c.flow)) continue;
    out[c.from_site * n + c.to_site] += network_.flow(c.flow).allocated_mbps;
  }
  return out;
}

std::vector<int> Engine::slots_in_use() const {
  // Sources are adapters onto the external streams (Kafka-style readers at
  // the data's site) and do not occupy computing slots; every other task
  // takes one.
  std::vector<int> used(num_sites_, 0);
  for (std::size_t i = 0; i < num_stages_; ++i) {
    if (stage_is_source_[i] != 0) continue;
    for (std::size_t s = 0; s < num_sites_; ++s) {
      used[s] += g_tasks_[gid(i, s)];
    }
  }
  return used;
}

}  // namespace wasp::engine
