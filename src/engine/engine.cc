#include "engine/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/log.h"
#include "common/units.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace wasp::engine {
namespace {

// Delay estimates are capped so a fully stalled pipeline reports "hours",
// not infinity (keeps CDFs and log-scale plots well-behaved).
constexpr double kMaxDelaySec = 1e5;

}  // namespace

Engine::Engine(query::LogicalPlan logical, physical::PhysicalPlan physical,
               net::Network& network, EngineConfig config)
    : logical_(std::move(logical)),
      physical_(std::move(physical)),
      network_(network),
      config_(config) {
  assert(logical_.validate().empty());
  failed_sites_.assign(network_.topology().num_sites(), false);
  straggler_factor_.assign(network_.topology().num_sites(), 1.0);
  build_runtime();
  // Source trackers are created lazily per source signature in tick().
}

Engine::~Engine() { teardown_channels(); }

void Engine::build_runtime() {
  const std::size_t num_sites = network_.topology().num_sites();
  stages_.clear();
  stages_.resize(logical_.num_operators());
  for (const auto& op : logical_.operators()) {
    StageRt& rt = stages_[static_cast<std::size_t>(op.id.value())];
    rt.op = op.id;
    rt.placement = physical_.stage_for(op.id).placement;
    rt.groups.assign(num_sites, Group{});
    for (std::size_t s = 0; s < num_sites; ++s) {
      rt.groups[s].tasks = rt.placement.per_site[s];
    }
  }
  topo_order_.clear();
  for (OperatorId id : logical_.topological_order()) {
    topo_order_.push_back(static_cast<std::size_t>(id.value()));
  }

  teardown_channels();
  for (const auto& op : logical_.operators()) {
    const std::size_t from_idx = static_cast<std::size_t>(op.id.value());
    for (OperatorId d : logical_.downstream(op.id)) {
      const std::size_t to_idx = static_cast<std::size_t>(d.value());
      for (SiteId su : stages_[from_idx].placement.sites()) {
        for (SiteId sd : stages_[to_idx].placement.sites()) {
          Channel c;
          c.from_stage = from_idx;
          c.to_stage = to_idx;
          c.from = su;
          c.to = sd;
          c.event_bytes = op.output_event_bytes;
          if (su != sd) c.flow = network_.add_stream_flow(su, sd);
          channels_.push_back(c);
        }
      }
    }
  }

  checkpointed_state_.assign(stages_.size(),
                             std::vector<double>(num_sites, 0.0));
  checkpointed_window_.assign(stages_.size(),
                              std::vector<double>(num_sites, 0.0));
}

void Engine::teardown_channels() {
  for (const Channel& c : channels_) {
    if (c.flow.valid() && network_.has_flow(c.flow)) {
      network_.remove_flow(c.flow);
    }
  }
  channels_.clear();
}

std::size_t Engine::stage_index(OperatorId op) const {
  const auto i = static_cast<std::size_t>(op.value());
  assert(i < stages_.size());
  return i;
}

Engine::StageRt& Engine::stage_rt(OperatorId op) {
  return stages_[stage_index(op)];
}

const Engine::StageRt& Engine::stage_rt(OperatorId op) const {
  return stages_[stage_index(op)];
}

double Engine::group_capacity_eps(const StageRt& stage,
                                  std::size_t site) const {
  if (failed_sites_[site]) return 0.0;
  const auto& op = logical_.op(stage.op);
  return stage.groups[site].tasks * op.events_per_sec_per_slot *
         straggler_factor_[site];
}

void Engine::set_straggler(SiteId site, double factor) {
  assert(factor >= 0.0);
  straggler_factor_[static_cast<std::size_t>(site.value())] = factor;
}

double Engine::straggler_factor(SiteId site) const {
  return straggler_factor_[static_cast<std::size_t>(site.value())];
}

void Engine::set_source_rate(OperatorId source, SiteId site, double eps) {
  assert(logical_.op(source).is_source());
  const auto n = static_cast<std::int64_t>(network_.topology().num_sites());
  source_rates_[source.value() * n + site.value()] = std::max(0.0, eps);
}

double Engine::source_generation_eps(OperatorId source) const {
  const auto n = static_cast<std::int64_t>(network_.topology().num_sites());
  double total = 0.0;
  for (const auto& [key, eps] : source_rates_) {
    if (key / n == source.value()) total += eps;
  }
  return total;
}

double Engine::source_backlog_events() const {
  double total = 0.0;
  for (const std::size_t idx : topo_order_) {
    const StageRt& stage = stages_[idx];
    if (!logical_.op(stage.op).is_source()) continue;
    for (const Group& g : stage.groups) total += g.input_queue;
  }
  return total;
}

void Engine::apply_degrade_drops(double t) {
  const double dt = config_.tick_sec;
  for (const std::size_t idx : topo_order_) {
    StageRt& stage = stages_[idx];
    const auto& op = logical_.op(stage.op);
    if (!op.is_source()) continue;
    auto it = source_trackers_.find(logical_.signature(stage.op));
    if (it == source_trackers_.end()) continue;
    DelayTracker& tracker = it->second;
    // Shed the backlog prefix that cannot meet the SLO (paper §8.4: Degrade
    // drops late events to hold the delay at the SLO). An event admitted
    // now still incurs the pipeline's downstream queueing, so the admission
    // age budget is the SLO minus the observed downstream delay.
    const double source_age = tracker.queueing_delay(t);
    const double downstream = std::max(0.0, prev_delay_sec_ - source_age);
    const double age_budget =
        std::max(0.5, config_.slo_sec - downstream);
    if (source_age <= age_budget) continue;
    double drop = std::max(0.0, tracker.generated_at(t - age_budget) -
                                    tracker.consumed_cum());
    double backlog = 0.0;
    for (const Group& g : stage.groups) backlog += g.input_queue;
    drop = std::min(drop, backlog);
    if (drop <= 0.0) continue;
    for (Group& g : stage.groups) {
      if (backlog <= 0.0) break;
      const double share = drop * (g.input_queue / backlog);
      g.input_queue -= share;
    }
    tracker.record_consumed(drop);
    last_.dropped_eps += drop / dt;
  }
}

void Engine::deliver_into(std::size_t stage_idx, double dt) {
  StageRt& stage = stages_[stage_idx];
  if (stage.suspended) return;

  // Group inbound channels by destination site, then ration the receiver's
  // free input-buffer space proportionally to what each channel can ship.
  const std::size_t num_sites = stage.groups.size();
  std::vector<std::vector<Channel*>> by_site(num_sites);
  for (Channel& c : channels_) {
    if (c.to_stage == stage_idx) {
      by_site[static_cast<std::size_t>(c.to.value())].push_back(&c);
    }
  }

  for (std::size_t s = 0; s < num_sites; ++s) {
    if (by_site[s].empty()) continue;
    Group& g = stage.groups[s];
    const double capacity = group_capacity_eps(stage, s);
    if (capacity <= 0.0) continue;        // failed or empty group
    if (g.restore_until > now_) continue;  // replaying checkpoint
    // The group accepts one tick's worth of processing capacity plus a
    // small floor: deliveries never throttle a keeping-up stage (nor slow a
    // post-adaptation catch-up burst), while an overloaded stage parks at
    // most ~one second of capacity before backpressure walks upstream to
    // the sources.
    const double input_cap =
        config_.input_buffer_floor_events + capacity * dt;
    const double space = std::max(0.0, input_cap - g.input_queue);
    if (space <= 0.0) continue;

    double total_want = 0.0;
    std::vector<double> want(by_site[s].size(), 0.0);
    for (std::size_t k = 0; k < by_site[s].size(); ++k) {
      Channel& c = *by_site[s][k];
      double transferable = c.queue;
      if (c.flow.valid()) {
        const double mbps = network_.flow(c.flow).allocated_mbps;
        transferable =
            std::min(transferable,
                     events_per_sec_over(mbps, c.event_bytes) * dt);
      }
      want[k] = transferable;
      total_want += transferable;
    }
    if (total_want <= 0.0) continue;
    const double factor = std::min(1.0, space / total_want);
    for (std::size_t k = 0; k < by_site[s].size(); ++k) {
      Channel& c = *by_site[s][k];
      const double moved = want[k] * factor;
      c.queue -= moved;
      c.delivered += moved;
      g.input_queue += moved;
      stage.arrived += moved / dt;
    }
  }
}

void Engine::process_stage(std::size_t stage_idx, double t, double dt) {
  StageRt& stage = stages_[stage_idx];
  const auto& op = logical_.op(stage.op);
  const std::size_t num_sites = stage.groups.size();
  const auto n = static_cast<std::int64_t>(num_sites);

  // Sources generate regardless of suspension: the external stream does not
  // pause for us; events accumulate in the (replayable) source backlog.
  if (op.is_source()) {
    DelayTracker& tracker = source_trackers_[logical_.signature(stage.op)];
    double generated = 0.0;
    for (std::size_t s = 0; s < num_sites; ++s) {
      const auto it = source_rates_.find(stage.op.value() * n +
                                         static_cast<std::int64_t>(s));
      if (it == source_rates_.end()) continue;
      const double events = it->second * dt;
      stage.groups[s].input_queue += events;
      generated += events;
    }
    tracker.record_generated(t, generated);
    last_.generated_eps += generated / dt;
  }

  if (stage.suspended) return;

  // Outbound channels of this stage, grouped per source site.
  std::vector<std::vector<Channel*>> out_by_site(num_sites);
  for (Channel& c : channels_) {
    if (c.from_stage == stage_idx) {
      out_by_site[static_cast<std::size_t>(c.from.value())].push_back(&c);
    }
  }

  // Share of this group's output routed through channel `c`: task-local for
  // forward partitioning (when a co-located downstream group exists),
  // hash partitioning otherwise -- balanced by task count, except that an
  // injected key skew over-weights the receiver's first hosting site.
  const auto channel_share = [&](std::size_t from_site,
                                 const Channel& c) -> double {
    const StageRt& down = stages_[c.to_stage];
    const int p_down = down.placement.parallelism();
    if (p_down == 0) return 0.0;
    if (op.output_partitioning == query::Partitioning::kForward &&
        down.placement.per_site[from_site] > 0) {
      return static_cast<std::size_t>(c.to.value()) == from_site ? 1.0 : 0.0;
    }
    const auto weight_of = [&](std::size_t site, bool is_first) {
      return static_cast<double>(down.placement.per_site[site]) *
             (is_first ? down.partition_skew : 1.0);
    };
    double total = 0.0;
    bool first = true;
    double my_weight = 0.0;
    for (std::size_t sd = 0; sd < down.placement.per_site.size(); ++sd) {
      if (down.placement.per_site[sd] == 0) continue;
      const double w = weight_of(sd, first);
      if (sd == static_cast<std::size_t>(c.to.value())) my_weight = w;
      total += w;
      first = false;
    }
    return total > 0.0 ? my_weight / total : 0.0;
  };

  double total_processed = 0.0;
  for (std::size_t s = 0; s < num_sites; ++s) {
    Group& g = stage.groups[s];
    if (g.tasks == 0) continue;
    if (g.restore_until > t) continue;  // still replaying checkpoint
    g.restore_until = -1.0;
    const double capacity = group_capacity_eps(stage, s);
    if (capacity <= 0.0) continue;

    double proc = std::min(g.input_queue, capacity * dt);

    // Backpressure: output must fit the free space of every outbound
    // channel.
    for (Channel* c : out_by_site[s]) {
      const StageRt& down = stages_[c->to_stage];
      const double share = channel_share(s, *c);
      if (share <= 0.0 || op.selectivity <= 0.0) continue;
      // A dead receiver (failed site) blocks its channels entirely. The
      // buffer bound scales with what the channel can actually drain: the
      // receiver's processing capacity for intra-site channels, the link's
      // current fair-share allocation for WAN channels. Both are exogenous
      // to the sender's own throttling, so backpressure releases as soon as
      // the underlying constraint does (no stop-go limit cycle).
      const double down_capacity =
          group_capacity_eps(down, static_cast<std::size_t>(c->to.value()));
      double chan_cap = 0.0;
      if (down_capacity > 0.0) {
        // The channel drains at the slower of the link's current allocation
        // and the receiver's processing capacity; a suspended receiver
        // drains nothing (execution halted -> only the floor buffers).
        double drain_eps = down.suspended ? 0.0 : down_capacity;
        if (!down.suspended && c->flow.valid()) {
          // What the channel could drain next tick: its current allocation
          // plus the link's unused headroom (demand-driven allocations
          // under-report a lightly-loaded link's potential, which would
          // otherwise self-limit backlog draining).
          const double headroom =
              std::max(0.0, network_.capacity(c->from, c->to, now_) -
                                network_.link_allocated(c->from, c->to));
          // A freshly (re)built flow has allocated_mbps = 0 and, on a busy
          // link, near-zero headroom -- but the channel demonstrably drained
          // at delivered_prev last tick, so never estimate below that.
          const double link_eps = std::max(
              events_per_sec_over(
                  network_.flow(c->flow).allocated_mbps + headroom,
                  c->event_bytes),
              c->delivered_prev / dt);
          drain_eps = std::min(drain_eps, link_eps);
        }
        chan_cap = config_.channel_buffer_floor_events +
                   config_.channel_buffer_sec * drain_eps;
      }
      const double space = std::max(0.0, chan_cap - c->queue);
      const double max_proc = space / (op.selectivity * share);
      if (max_proc < proc) {
        proc = max_proc;
        stage.backpressured = true;
      }
    }
    proc = std::max(0.0, proc);

    g.input_queue -= proc;
    g.processed_prev = proc;
    total_processed += proc;

    // Window bookkeeping: state resets at tumbling-window boundaries.
    if (op.window.windowed()) {
      const double w = op.window.length_sec;
      if (std::fmod(t, w) < dt) g.window_events = 0.0;
      g.window_events += proc;
    } else if (op.stateful()) {
      g.window_events += proc;  // running state driver (joins w/o window)
    }

    // Emit.
    const double out = proc * op.selectivity;
    for (Channel* c : out_by_site[s]) {
      const double pushed = out * channel_share(s, *c);
      if (pushed <= 0.0) continue;
      c->queue += pushed;
      c->offered += pushed;
    }
    stage.emitted += out / dt;
  }

  stage.processed += total_processed / dt;
  if (op.is_source()) {
    DelayTracker& tracker = source_trackers_[logical_.signature(stage.op)];
    tracker.record_consumed(total_processed);
    last_.admitted_eps += total_processed / dt;
  }
  if (op.is_sink()) {
    last_.sink_eps += total_processed / dt;
  }
}

void Engine::set_flow_demands(double dt) {
  for (const Channel& c : channels_) {
    if (!c.flow.valid()) continue;
    network_.set_stream_demand(c.flow,
                               stream_mbps(c.queue / dt, c.event_bytes));
  }
}

void Engine::update_delay_metric(double t) {
  // Sojourn-time DP over the DAG: the delay a marker event entering now
  // would see, assuming current rates persist. Sources contribute the age
  // of the backlog head (exact, from the cumulative curves); each hop adds
  // channel-queue drain time plus link latency; each stage adds its input-
  // queue drain time.
  std::vector<double> lat(stages_.size(), 0.0);
  double sink_delay = 0.0;
  for (const std::size_t idx : topo_order_) {
    const StageRt& stage = stages_[idx];
    const auto& op = logical_.op(stage.op);
    double d = 0.0;
    if (op.is_source()) {
      const auto it = source_trackers_.find(logical_.signature(stage.op));
      d = it != source_trackers_.end() ? it->second.queueing_delay(t) : 0.0;
    } else {
      // Per upstream stage: aggregate its channels into this stage. One tick
      // of offered traffic is in transit by construction; only the excess
      // counts as queueing backlog.
      for (OperatorId u : logical_.upstream(stage.op)) {
        const std::size_t from_idx = stage_index(u);
        double queue = 0.0, delivered = 0.0, latency_weight = 0.0,
               weighted_latency_ms = 0.0;
        for (const Channel& c : channels_) {
          if (c.from_stage != from_idx || c.to_stage != idx) continue;
          queue += std::max(0.0, c.queue - c.offered);
          delivered += c.delivered;
          const double w = c.delivered + c.offered + 1e-9;
          weighted_latency_ms += w * network_.latency_ms(c.from, c.to);
          latency_weight += w;
        }
        const double hop_latency_sec =
            latency_weight > 0.0 ? weighted_latency_ms / latency_weight / 1e3
                                 : 0.0;
        // Drain estimate: the observed delivery rate. With no deliveries
        // this tick (suspension, rewiring, or a dead link) estimate what the
        // links and the receiver could sustain -- a dead link keeps the
        // estimate near zero and the delay correctly explodes, while a
        // suspended-but-healthy path reports the post-resume drain rate.
        double drain_rate = delivered / config_.tick_sec;
        if (drain_rate < 1.0) {
          double link_eps = 0.0;
          for (const Channel& c : channels_) {
            if (c.from_stage != from_idx || c.to_stage != idx) continue;
            link_eps += events_per_sec_over(
                network_.capacity(c.from, c.to, now_), c.event_bytes);
          }
          double capacity = 0.0;
          for (std::size_t s = 0; s < stage.groups.size(); ++s) {
            capacity += group_capacity_eps(stage, s);
          }
          drain_rate = std::min(link_eps, std::max(capacity, 1.0));
        }
        drain_rate = std::max(drain_rate, 1e-3);
        const double queue_delay =
            queue > 0.0 ? std::min(kMaxDelaySec, queue / drain_rate) : 0.0;
        d = std::max(d, lat[from_idx] + queue_delay + hop_latency_sec);
      }
      // Own input queue drain time.
      double input_queue = 0.0, capacity = 0.0;
      for (std::size_t s = 0; s < stage.groups.size(); ++s) {
        input_queue += stage.groups[s].input_queue;
        capacity += group_capacity_eps(stage, s);
      }
      // Queued input drains at the stage's capacity once it runs (even if
      // currently suspended for a transition).
      const double service = std::max({stage.processed, capacity, 1.0});
      if (input_queue > 0.0) {
        d += std::min(kMaxDelaySec, input_queue / service);
      }
    }
    lat[idx] = std::min(kMaxDelaySec, d);
    if (op.is_sink()) sink_delay = std::max(sink_delay, lat[idx]);
  }
  last_.delay_sec = sink_delay;
}

void Engine::tick(double t) {
  const double dt = config_.tick_sec;
  now_ = t;

  for (StageRt& stage : stages_) {
    stage.processed = stage.emitted = stage.arrived = 0.0;
    stage.backpressured = false;
  }
  for (Channel& c : channels_) {
    // delivered_prev is the channel's last *live* drain rate: while the
    // receiver is suspended (mid-transition), deliver_into() skips it and
    // `delivered` decays to zero, which must not erase the drain estimate
    // the post-transition backpressure bound depends on.
    if (!stages_[c.to_stage].suspended) c.delivered_prev = c.delivered;
    c.offered = c.delivered = 0.0;
  }
  prev_delay_sec_ = last_.delay_sec;
  last_ = QueryTickMetrics{};

  if (config_.degrade) apply_degrade_drops(t);

  for (const std::size_t idx : topo_order_) {
    deliver_into(idx, dt);
    process_stage(idx, t, dt);
  }
  set_flow_demands(dt);

  // Periodic localized checkpoint (§5): record state sizes per group.
  if (t - last_checkpoint_ >= config_.checkpoint_interval_sec) {
    double checkpointed_mb = 0.0;
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      for (std::size_t s = 0; s < stages_[i].groups.size(); ++s) {
        checkpointed_state_[i][s] = group_state_mb(stages_[i], s);
        checkpointed_window_[i][s] = stages_[i].groups[s].window_events;
        checkpointed_mb += checkpointed_state_[i][s];
      }
    }
    last_checkpoint_ = t;
    if (config_.trace != nullptr && config_.trace->enabled()) {
      config_.trace->event_at(t, "checkpoint").num("state_mb", checkpointed_mb);
    }
    if (config_.metrics != nullptr) {
      config_.metrics->counter("engine.checkpoints").inc();
    }
  }

  update_delay_metric(t);
  if (replay_pending_events_ > 0.0) {
    last_.generated_eps += replay_pending_events_ / dt;
    replay_pending_events_ = 0.0;
  }
  last_.processing_ratio =
      last_.generated_eps > 0.0 ? last_.admitted_eps / last_.generated_eps
                                : 1.0;

  emit_tick_trace(t, dt);
}

void Engine::emit_tick_trace(double t, double dt) {
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *config_.metrics;
    reg.counter("engine.ticks").inc();
    reg.gauge("engine.delay_sec").set(last_.delay_sec);
    reg.gauge("engine.generated_eps").set(last_.generated_eps);
    reg.gauge("engine.admitted_eps").set(last_.admitted_eps);
    reg.gauge("engine.sink_eps").set(last_.sink_eps);
    reg.gauge("engine.processing_ratio").set(last_.processing_ratio);
    reg.gauge("engine.source_backlog_events").set(source_backlog_events());
    int backpressured = 0;
    for (const StageRt& stage : stages_) {
      if (stage.backpressured) ++backpressured;
    }
    reg.gauge("engine.backpressured_stages").set(backpressured);
    if (last_.dropped_eps > 0.0) {
      reg.counter("engine.dropped_events").inc(last_.dropped_eps * dt);
    }
  }

  if (config_.trace == nullptr || !config_.trace->enabled()) return;
  obs::TraceEmitter& trace = *config_.trace;

  trace.event_at(t, "tick")
      .num("delay_sec", last_.delay_sec)
      .num("generated_eps", last_.generated_eps)
      .num("admitted_eps", last_.admitted_eps)
      .num("sink_eps", last_.sink_eps)
      .num("dropped_eps", last_.dropped_eps)
      .num("processing_ratio", last_.processing_ratio);

  for (const StageRt& stage : stages_) {
    // Idle, unsuspended stages with empty queues carry no information; skip
    // them to keep the stream proportional to activity.
    double input_queue = 0.0;
    for (const Group& g : stage.groups) input_queue += g.input_queue;
    if (stage.processed <= 0.0 && stage.arrived <= 0.0 && input_queue <= 0.0 &&
        !stage.backpressured && !stage.suspended) {
      continue;
    }
    trace.event_at(t, "op_tick")
        .num("op", static_cast<double>(stage.op.value()))
        .str("name", logical_.op(stage.op).name)
        .num("processed_eps", stage.processed)
        .num("emitted_eps", stage.emitted)
        .num("arrived_eps", stage.arrived)
        .num("input_queue_events", input_queue)
        .num("state_mb", stage_total_state_mb(stage))
        .flag("backpressured", stage.backpressured)
        .flag("suspended", stage.suspended);
  }

  for (const Channel& c : channels_) {
    if (c.offered <= 0.0 && c.delivered <= 0.0 && c.queue <= 0.0) continue;
    auto event = trace.event_at(t, "channel_tick");
    event.num("from_op", static_cast<double>(stages_[c.from_stage].op.value()))
        .num("to_op", static_cast<double>(stages_[c.to_stage].op.value()))
        .num("from_site", static_cast<double>(c.from.value()))
        .num("to_site", static_cast<double>(c.to.value()))
        .num("offered_eps", c.offered / dt)
        .num("delivered_eps", c.delivered / dt)
        .num("queue_events", c.queue);
    if (c.flow.valid() && network_.has_flow(c.flow)) {
      event.num("allocated_mbps", network_.flow(c.flow).allocated_mbps);
    }
  }
}

void Engine::suspend_stage(OperatorId op) { stage_rt(op).suspended = true; }
void Engine::resume_stage(OperatorId op) { stage_rt(op).suspended = false; }

void Engine::suspend_all() {
  for (StageRt& s : stages_) s.suspended = true;
}

void Engine::resume_all() {
  for (StageRt& s : stages_) s.suspended = false;
}

bool Engine::stage_suspended(OperatorId op) const {
  return stage_rt(op).suspended;
}

const physical::StagePlacement& Engine::placement(OperatorId op) const {
  return stage_rt(op).placement;
}

void Engine::apply_placement(OperatorId op,
                             const physical::StagePlacement& placement) {
  StageRt& stage = stage_rt(op);
  const int new_p = placement.parallelism();
  assert(new_p > 0);

  double total_queue = 0.0, total_window = 0.0;
  for (const Group& g : stage.groups) {
    total_queue += g.input_queue;
    total_window += g.window_events;
  }

  stage.placement = placement;
  physical_.mutable_stage_for(op).placement = placement;
  for (std::size_t s = 0; s < stage.groups.size(); ++s) {
    Group& g = stage.groups[s];
    const double share =
        static_cast<double>(placement.per_site[s]) / static_cast<double>(new_p);
    g.tasks = placement.per_site[s];
    g.input_queue = total_queue * share;
    g.window_events = total_window * share;
    // A group mid-way through replaying its checkpoint keeps the pause if it
    // still hosts tasks here -- re-placement does not speed up recovery.
    if (!(g.restore_until > now_ && placement.per_site[s] > 0)) {
      g.restore_until = -1.0;
    }
  }
  rebuild_adjacent_channels(stage_index(op));

  if (config_.trace != nullptr && config_.trace->enabled()) {
    auto event = config_.trace->event("placement");
    event.num("op", static_cast<double>(op.value()))
        .str("name", logical_.op(op).name)
        .num("parallelism", new_p);
    for (SiteId site : placement.sites()) {
      event.num("tasks_at_site_" + std::to_string(site.value()),
                placement.at(site));
    }
  }
  if (config_.metrics != nullptr) {
    config_.metrics->counter("engine.placements_applied").inc();
  }
}

void Engine::rebuild_adjacent_channels(std::size_t stage_idx) {
  // Collect queued events and the aggregate drain rate per logical edge
  // touching this stage, drop those channels, then recreate them against the
  // new placement and redistribute both by traffic share. Seeding the drain
  // (delivered_prev) matters: a fresh channel with delivered_prev = 0 on a
  // busy link would see its buffer cap collapse to the floor and signal
  // spurious backpressure for the first post-migration tick.
  struct EdgeKey {
    std::size_t from, to;
    bool operator==(const EdgeKey&) const = default;
  };
  struct EdgeCarry {
    double queue = 0.0;
    double drain = 0.0;  // summed delivered_prev of the replaced channels
  };
  std::vector<std::pair<EdgeKey, EdgeCarry>> edge_carry;
  auto carry_of = [&](EdgeKey key) -> EdgeCarry& {
    for (auto& [k, c] : edge_carry) {
      if (k == key) return c;
    }
    edge_carry.emplace_back(key, EdgeCarry{});
    return edge_carry.back().second;
  };

  std::vector<Channel> kept;
  kept.reserve(channels_.size());
  for (Channel& c : channels_) {
    if (c.from_stage == stage_idx || c.to_stage == stage_idx) {
      EdgeCarry& carry = carry_of({c.from_stage, c.to_stage});
      carry.queue += c.queue;
      // `delivered` holds the just-completed tick's delivery (freshest for a
      // live receiver); delivered_prev is the retained live rate when the
      // receiver spent the last tick suspended mid-transition.
      carry.drain += std::max(c.delivered, c.delivered_prev);
      if (c.flow.valid() && network_.has_flow(c.flow)) {
        network_.remove_flow(c.flow);
      }
    } else {
      kept.push_back(c);
    }
  }
  channels_ = std::move(kept);

  auto make_edge = [&](std::size_t from_idx, std::size_t to_idx) {
    const StageRt& from = stages_[from_idx];
    const StageRt& to = stages_[to_idx];
    const EdgeCarry carry = carry_of({from_idx, to_idx});
    const int p_from = from.placement.parallelism();
    const int p_to = to.placement.parallelism();
    if (p_from == 0 || p_to == 0) return;
    for (SiteId su : from.placement.sites()) {
      for (SiteId sd : to.placement.sites()) {
        Channel c;
        c.from_stage = from_idx;
        c.to_stage = to_idx;
        c.from = su;
        c.to = sd;
        c.event_bytes = logical_.op(from.op).output_event_bytes;
        const double share =
            (static_cast<double>(from.placement.at(su)) / p_from) *
            (static_cast<double>(to.placement.at(sd)) / p_to);
        c.queue = carry.queue * share;
        // Seed both delivery fields: tick() derives delivered_prev from
        // `delivered` at the start of the next tick when the receiver is
        // live (so a seed in delivered_prev alone would be clobbered by the
        // fresh channel's zero), while a still-suspended receiver skips that
        // update and reads delivered_prev directly.
        c.delivered = carry.drain * share;
        c.delivered_prev = carry.drain * share;
        if (su != sd) c.flow = network_.add_stream_flow(su, sd);
        channels_.push_back(c);
      }
    }
  };

  const OperatorId op = stages_[stage_idx].op;
  for (OperatorId u : logical_.upstream(op)) {
    make_edge(stage_index(u), stage_idx);
  }
  for (OperatorId d : logical_.downstream(op)) {
    make_edge(stage_idx, stage_index(d));
  }
}

void Engine::apply_replan(query::LogicalPlan logical,
                          physical::PhysicalPlan physical) {
  // 1. Carry-over inventory from the old execution.
  struct Carried {
    double window_events = 0.0;
    double state_override = -1.0;
  };
  std::unordered_map<std::string, Carried> carried;          // stateful ops
  std::unordered_map<std::string, double> source_backlogs;   // source units
  double inflight_source_units = 0.0;

  // Rates to convert mid-pipeline events back into source units.
  std::unordered_map<OperatorId, double> src_rates;
  double total_src_eps = 0.0;
  for (OperatorId src : logical_.sources()) {
    const double eps = source_generation_eps(src);
    src_rates.emplace(src, eps);
    total_src_eps += eps;
  }
  const auto rates = logical_.estimate_rates(src_rates);

  for (const StageRt& stage : stages_) {
    const auto& op = logical_.op(stage.op);
    double queue = 0.0, window = 0.0;
    for (const Group& g : stage.groups) {
      queue += g.input_queue;
      window += g.window_events;
    }
    if (op.is_source()) {
      source_backlogs[logical_.signature(stage.op)] = queue;
      continue;
    }
    if (op.stateful()) {
      Carried c;
      c.window_events = window;
      c.state_override = stage.state_override_mb;
      carried[logical_.signature(stage.op)] = c;
    }
    // In-flight events at non-source operators are replayed from the source
    // checkpoints: convert to source units via the expected-rate ratio.
    double inbound_channels = 0.0;
    for (const Channel& c : channels_) {
      if (stages_[c.to_stage].op == stage.op) inbound_channels += c.queue;
    }
    const double op_eps = rates.at(stage.op).input_eps;
    if (op_eps > 0.0 && total_src_eps > 0.0) {
      inflight_source_units +=
          (queue + inbound_channels) * (total_src_eps / op_eps);
    }
  }

  // 2. Capture per-site source rates keyed by source *name* (names identify
  // the external stream and are stable across plan candidates).
  const auto n = static_cast<std::int64_t>(network_.topology().num_sites());
  std::unordered_map<std::string, std::vector<double>> rates_by_name;
  for (OperatorId src : logical_.sources()) {
    std::vector<double> per_site(static_cast<std::size_t>(n), 0.0);
    for (std::int64_t s = 0; s < n; ++s) {
      const auto it = source_rates_.find(src.value() * n + s);
      if (it != source_rates_.end()) {
        per_site[static_cast<std::size_t>(s)] = it->second;
      }
    }
    rates_by_name[logical_.op(src).name] = std::move(per_site);
  }

  // 3. Swap in the new plan and rebuild the runtime.
  logical_ = std::move(logical);
  physical_ = std::move(physical);
  assert(logical_.validate().empty());
  build_runtime();

  // 4a. Re-key source rates to the new operator ids and restore backlogs.
  source_rates_.clear();
  for (OperatorId new_src : logical_.sources()) {
    const auto rit = rates_by_name.find(logical_.op(new_src).name);
    if (rit != rates_by_name.end()) {
      for (std::int64_t s = 0; s < n; ++s) {
        const double eps = rit->second[static_cast<std::size_t>(s)];
        if (eps > 0.0) source_rates_[new_src.value() * n + s] = eps;
      }
    }
    const auto bl = source_backlogs.find(logical_.signature(new_src));
    StageRt& stage = stage_rt(new_src);
    if (bl != source_backlogs.end() && bl->second > 0.0) {
      int active_sites = 0;
      for (const Group& g : stage.groups) {
        if (g.tasks > 0) ++active_sites;
      }
      if (active_sites > 0) {
        for (Group& g : stage.groups) {
          if (g.tasks > 0) g.input_queue = bl->second / active_sites;
        }
      }
    }
  }

  // 4b. Restore carried state into matching stateful operators.
  for (const auto& op : logical_.operators()) {
    if (!op.stateful()) continue;
    const auto it = carried.find(logical_.signature(op.id));
    if (it == carried.end()) continue;
    StageRt& stage = stage_rt(op.id);
    stage.state_override_mb = it->second.state_override;
    const int p = stage.placement.parallelism();
    if (p == 0) continue;
    for (std::size_t s = 0; s < stage.groups.size(); ++s) {
      const double share = static_cast<double>(stage.placement.per_site[s]) /
                           static_cast<double>(p);
      stage.groups[s].window_events = it->second.window_events * share;
    }
  }

  // 5. Re-inject in-flight events as replayed source work.
  if (inflight_source_units > 0.0) {
    double total_rate = 0.0;
    for (OperatorId src : logical_.sources()) {
      total_rate += source_generation_eps(src);
    }
    for (OperatorId src : logical_.sources()) {
      StageRt& stage = stage_rt(src);
      const double rate = source_generation_eps(src);
      const double share =
          total_rate > 0.0
              ? rate / total_rate
              : 1.0 / static_cast<double>(logical_.sources().size());
      const double units = inflight_source_units * share;
      int active_sites = 0;
      for (const Group& g : stage.groups) {
        if (g.tasks > 0) ++active_sites;
      }
      if (active_sites == 0) continue;
      for (Group& g : stage.groups) {
        if (g.tasks > 0) g.input_queue += units / active_sites;
      }
      // Replayed events re-enter the generation curve "now"; their original
      // generation times are unknown to the new execution (documented
      // approximation -- slightly undercounts delay during the transition).
      source_trackers_[logical_.signature(src)].record_generated(now_, units);
      // The replayed events will be admitted a second time; surface them as
      // generated work too so cumulative processed/generated accounting
      // stays balanced.
      replay_pending_events_ += units;
    }
  }

  if (config_.trace != nullptr && config_.trace->enabled()) {
    config_.trace->event("replan")
        .num("num_operators", static_cast<double>(logical_.num_operators()))
        .num("replayed_source_units", inflight_source_units);
  }
  if (config_.metrics != nullptr) {
    config_.metrics->counter("engine.replans_applied").inc();
  }
}

void Engine::fail_site(SiteId site) {
  if (failed_sites_[static_cast<std::size_t>(site.value())]) return;
  failed_sites_[static_cast<std::size_t>(site.value())] = true;
  if (config_.trace != nullptr && config_.trace->enabled()) {
    config_.trace->event("site_failed")
        .num("site", static_cast<double>(site.value()));
  }
  if (config_.metrics != nullptr) {
    config_.metrics->counter("engine.site_failures").inc();
  }
}

void Engine::restore_site(SiteId site) {
  const auto s = static_cast<std::size_t>(site.value());
  if (!failed_sites_[s]) return;
  failed_sites_[s] = false;

  // Rates to convert events lost at an operator back into source units, the
  // same way apply_replan re-injects in-flight work.
  std::unordered_map<OperatorId, double> src_rates;
  double total_src_eps = 0.0;
  for (OperatorId src : logical_.sources()) {
    const double eps = source_generation_eps(src);
    src_rates.emplace(src, eps);
    total_src_eps += eps;
  }
  const auto rates = logical_.estimate_rates(src_rates);

  // Groups at the site replay their local checkpoint before processing
  // resumes; the pause is proportional to the checkpointed state size (§5).
  // The failure destroyed everything the group accumulated since that
  // checkpoint: its state rolls back to the snapshot, and the delta (window
  // growth since the checkpoint plus the queued-but-unprocessed input) is
  // lost and must be replayed from the sources' durable logs.
  double restore_mb = 0.0;
  double max_restore_sec = 0.0;
  double lost_source_units = 0.0;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    Group& g = stages_[i].groups[s];
    if (g.tasks == 0) continue;
    const double restore_sec =
        checkpointed_state_[i][s] / config_.local_restore_mb_per_sec;
    g.restore_until = now_ + restore_sec;
    restore_mb += checkpointed_state_[i][s];
    max_restore_sec = std::max(max_restore_sec, restore_sec);

    // Sources model the durable external stream: their backlog survives the
    // failure (the log retains it), so only operator groups roll back.
    if (logical_.op(stages_[i].op).is_source()) continue;
    const double lost =
        std::max(0.0, g.window_events - checkpointed_window_[i][s]) +
        g.input_queue;
    g.window_events = checkpointed_window_[i][s];
    g.input_queue = 0.0;
    const double op_eps = rates.at(stages_[i].op).input_eps;
    if (lost > 0.0 && op_eps > 0.0 && total_src_eps > 0.0) {
      lost_source_units += lost * (total_src_eps / op_eps);
    }
  }

  // Re-inject the lost delta at the replayable sources (rate-proportional
  // shares, mirroring apply_replan's in-flight replay).
  if (lost_source_units > 0.0) {
    for (OperatorId src : logical_.sources()) {
      StageRt& stage = stage_rt(src);
      const double rate = source_generation_eps(src);
      const double share =
          total_src_eps > 0.0
              ? rate / total_src_eps
              : 1.0 / static_cast<double>(logical_.sources().size());
      const double units = lost_source_units * share;
      if (units <= 0.0) continue;
      int active_sites = 0;
      for (const Group& g : stage.groups) {
        if (g.tasks > 0) ++active_sites;
      }
      if (active_sites == 0) continue;
      for (Group& g : stage.groups) {
        if (g.tasks > 0) g.input_queue += units / active_sites;
      }
      source_trackers_[logical_.signature(src)].record_generated(now_, units);
      replay_pending_events_ += units;
    }
  }

  if (config_.trace != nullptr && config_.trace->enabled()) {
    config_.trace->event("site_restored")
        .num("site", static_cast<double>(site.value()))
        .num("checkpoint_mb", restore_mb)
        .num("restore_sec", max_restore_sec)
        .num("replayed_source_units", lost_source_units);
  }
  if (config_.metrics != nullptr) {
    config_.metrics->counter("engine.site_restores").inc();
  }
}

bool Engine::site_failed(SiteId site) const {
  return failed_sites_[static_cast<std::size_t>(site.value())];
}

void Engine::set_state_override_mb(OperatorId op, double mb) {
  stage_rt(op).state_override_mb = mb;
}

void Engine::set_partition_skew(OperatorId op, double hot_factor) {
  assert(hot_factor > 0.0);
  stage_rt(op).partition_skew = hot_factor;
}

double Engine::group_state_mb(const StageRt& stage, std::size_t site) const {
  const auto& op = logical_.op(stage.op);
  const int p = stage.placement.parallelism();
  if (p == 0 || stage.groups[site].tasks == 0) return 0.0;
  const double share = static_cast<double>(stage.groups[site].tasks) /
                       static_cast<double>(p);
  if (stage.state_override_mb >= 0.0) return stage.state_override_mb * share;
  if (!op.stateful()) return 0.0;
  if (op.state.fixed_mb >= 0.0) return op.state.fixed_mb * share;
  return op.state.base_mb * share +
         op.state.mb_per_kevent * stage.groups[site].window_events / 1e3;
}

double Engine::stage_total_state_mb(const StageRt& stage) const {
  double total = 0.0;
  for (std::size_t s = 0; s < stage.groups.size(); ++s) {
    total += group_state_mb(stage, s);
  }
  return total;
}

double Engine::state_mb(OperatorId op, SiteId site) const {
  return group_state_mb(stage_rt(op), static_cast<std::size_t>(site.value()));
}

double Engine::total_state_mb(OperatorId op) const {
  return stage_total_state_mb(stage_rt(op));
}

OperatorMetrics Engine::op_metrics(OperatorId op) const {
  const StageRt& stage = stage_rt(op);
  OperatorMetrics m;
  m.op = op;
  m.processed_eps = stage.processed;
  m.emitted_eps = stage.emitted;
  m.arrived_eps = stage.arrived;
  m.selectivity =
      stage.processed > 0.0 ? stage.emitted / stage.processed : 1.0;
  m.backpressured = stage.backpressured;
  m.placement = stage.placement;
  for (std::size_t s = 0; s < stage.groups.size(); ++s) {
    m.input_queue_events += stage.groups[s].input_queue;
    m.state_mb_per_site.push_back(group_state_mb(stage, s));
  }
  const std::size_t idx = stage_index(op);
  for (const Channel& c : channels_) {
    // One tick of offered traffic is always in transit in this pipeline
    // model; only the excess is genuine backlog.
    if (c.to_stage == idx) {
      m.channel_backlog_events += std::max(0.0, c.queue - c.offered);
    }
  }
  return m;
}

std::vector<ChannelMetrics> Engine::channels_into(OperatorId op) const {
  std::vector<ChannelMetrics> out;
  const std::size_t idx = stage_index(op);
  const double dt = config_.tick_sec;
  for (const Channel& c : channels_) {
    if (c.to_stage != idx) continue;
    ChannelMetrics m;
    m.from_op = stages_[c.from_stage].op;
    m.to_op = op;
    m.from = c.from;
    m.to = c.to;
    m.offered_eps = c.offered / dt;
    m.delivered_eps = c.delivered / dt;
    m.queue_events = c.queue;
    out.push_back(m);
  }
  return out;
}

std::unordered_map<std::int64_t, double> Engine::adjacent_link_mbps(
    OperatorId op) const {
  std::unordered_map<std::int64_t, double> out;
  const std::size_t idx = stage_index(op);
  const auto n = static_cast<std::int64_t>(network_.topology().num_sites());
  for (const Channel& c : channels_) {
    if (c.from_stage != idx && c.to_stage != idx) continue;
    if (!c.flow.valid() || !network_.has_flow(c.flow)) continue;
    out[c.from.value() * n + c.to.value()] +=
        network_.flow(c.flow).allocated_mbps;
  }
  return out;
}

std::unordered_map<std::int64_t, double> Engine::all_link_mbps() const {
  std::unordered_map<std::int64_t, double> out;
  const auto n = static_cast<std::int64_t>(network_.topology().num_sites());
  for (const Channel& c : channels_) {
    if (!c.flow.valid() || !network_.has_flow(c.flow)) continue;
    out[c.from.value() * n + c.to.value()] +=
        network_.flow(c.flow).allocated_mbps;
  }
  return out;
}

std::vector<int> Engine::slots_in_use() const {
  // Sources are adapters onto the external streams (Kafka-style readers at
  // the data's site) and do not occupy computing slots; every other task
  // takes one.
  std::vector<int> used(network_.topology().num_sites(), 0);
  for (const StageRt& stage : stages_) {
    if (logical_.op(stage.op).is_source()) continue;
    for (std::size_t s = 0; s < stage.groups.size(); ++s) {
      used[s] += stage.groups[s].tasks;
    }
  }
  return used;
}

}  // namespace wasp::engine
