// Per-tick SoA kernels for the fluid engine's hot loops.
//
// Each kernel exists twice: a `*_scalar` reference (plain loop, the
// semantic definition) and an unsuffixed fast variant annotated for
// vectorization. The determinism contract is 0 ULP: both variants apply the
// *identical per-element operation sequence* -- kernels are elementwise
// only, never reassociated reductions -- so vectorizing them cannot change
// a single bit of any result. The engine's ordered FP reductions (group
// sums, channel-bucket sums) stay scalar in engine.cc; only the
// embarrassingly-parallel per-element updates live here.
//
// EngineConfig::use_fast_kernels selects the variant at runtime; the
// property tests in engine_kernels_test.cc fuzz both against each other,
// and engine_test.cc runs whole simulations both ways and compares traces.
//
// All kernels are subrange-safe: because every kernel is elementwise, calling
// it on [begin, end) slices of the same arrays (any partition, any order)
// produces bit-identical results to one full-range call. That is what lets
// the engine chunk these sweeps across a thread pool (DESIGN.md §11) without
// touching the determinism contract; engine_kernels_test.cc fuzzes the
// chunked-vs-whole property too.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/units.h"

#if defined(__GNUC__) && !defined(__clang__)
#define WASP_VECTORIZE_LOOP _Pragma("GCC ivdep")
#elif defined(__clang__)
#define WASP_VECTORIZE_LOOP _Pragma("clang loop vectorize(enable)")
#else
#define WASP_VECTORIZE_LOOP
#endif

namespace wasp::engine::kernels {

// Start-of-tick channel state roll: a channel whose receiver is live latches
// last tick's delivery as its drain estimate (delivered_prev); a suspended
// receiver keeps the previous live estimate. Both counters then reset.
// Branchless select so the loop vectorizes.
inline void reset_channel_tick_scalar(std::size_t n,
                                      const std::int32_t* to_stage,
                                      const char* stage_suspended,
                                      double* delivered_prev,
                                      double* delivered, double* offered) {
  for (std::size_t i = 0; i < n; ++i) {
    const bool live = stage_suspended[to_stage[i]] == 0;
    delivered_prev[i] = live ? delivered[i] : delivered_prev[i];
    delivered[i] = 0.0;
    offered[i] = 0.0;
  }
}

inline void reset_channel_tick(std::size_t n, const std::int32_t* to_stage,
                               const char* stage_suspended,
                               double* __restrict delivered_prev,
                               double* __restrict delivered,
                               double* __restrict offered) {
  WASP_VECTORIZE_LOOP
  for (std::size_t i = 0; i < n; ++i) {
    const bool live = stage_suspended[to_stage[i]] == 0;
    delivered_prev[i] = live ? delivered[i] : delivered_prev[i];
    delivered[i] = 0.0;
    offered[i] = 0.0;
  }
}

// Per-channel stream bandwidth demand: stream_mbps(queue / dt, event_bytes),
// with the exact same operation order as the scalar expression the engine
// historically evaluated per channel.
inline void flow_demand_mbps_scalar(std::size_t n, const double* queue,
                                    const double* event_bytes, double dt,
                                    double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = stream_mbps(queue[i] / dt, event_bytes[i]);
  }
}

inline void flow_demand_mbps(std::size_t n, const double* __restrict queue,
                             const double* __restrict event_bytes, double dt,
                             double* __restrict out) {
  WASP_VECTORIZE_LOOP
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = stream_mbps(queue[i] / dt, event_bytes[i]);
  }
}

// End-of-tick stage observation reset (processed/emitted/arrived rates and
// the backpressure flag).
inline void reset_stage_tick_scalar(std::size_t n, double* processed,
                                    double* emitted, double* arrived,
                                    char* backpressured) {
  for (std::size_t i = 0; i < n; ++i) {
    processed[i] = 0.0;
    emitted[i] = 0.0;
    arrived[i] = 0.0;
    backpressured[i] = 0;
  }
}

inline void reset_stage_tick(std::size_t n, double* __restrict processed,
                             double* __restrict emitted,
                             double* __restrict arrived,
                             char* __restrict backpressured) {
  WASP_VECTORIZE_LOOP
  for (std::size_t i = 0; i < n; ++i) {
    processed[i] = 0.0;
    emitted[i] = 0.0;
    arrived[i] = 0.0;
    backpressured[i] = 0;
  }
}

// Start-of-tick group-capacity snapshot for one stage's row of the gid
// array: capacity = failed ? 0 : tasks * eps_per_slot * straggler. Evaluating
// the row densely equals the legacy "fill zero + hosting-sites loop" exactly:
// a non-hosting group has tasks == 0 and 0 * x * y is +0.0 for the finite
// non-negative factors involved, the same +0.0 the fill wrote.
inline void group_capacity_row_scalar(std::size_t n_sites,
                                      const std::int32_t* tasks,
                                      double eps_per_slot, const char* failed,
                                      const double* straggler, double* out) {
  for (std::size_t s = 0; s < n_sites; ++s) {
    out[s] =
        failed[s] != 0 ? 0.0 : tasks[s] * eps_per_slot * straggler[s];
  }
}

inline void group_capacity_row(std::size_t n_sites,
                               const std::int32_t* __restrict tasks,
                               double eps_per_slot,
                               const char* __restrict failed,
                               const double* __restrict straggler,
                               double* __restrict out) {
  WASP_VECTORIZE_LOOP
  for (std::size_t s = 0; s < n_sites; ++s) {
    out[s] =
        failed[s] != 0 ? 0.0 : tasks[s] * eps_per_slot * straggler[s];
  }
}

}  // namespace wasp::engine::kernels
