#include "state/migration.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <unordered_map>

#include "common/units.h"
#include "lp/simplex.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace wasp::state {
namespace {

// Source x destination pair count at which plan_network_aware switches from
// the dense makespan LP to the bottleneck binary-search + max-flow path. The
// LP is byte-identical below the threshold (existing plans and goldens);
// above it the LP's superlinear pivot cost is the BM_MigrationMinMaxLp
// blow-up this path fixes. 48 keeps the paper testbed's migrations (a
// handful of drained/filled sites) on the LP.
constexpr std::size_t kBottleneckPairThreshold = 48;

// Dinic max flow over doubles, sized for the tiny tripartite graphs the
// bottleneck path probes (super-source -> sources -> destinations -> sink).
class DinicMaxFlow {
 public:
  static constexpr double kInf = 1e300;

  explicit DinicMaxFlow(int n) : head_(n, -1), level_(n), it_(n) {}

  // Adds a directed edge u -> v and its zero-capacity reverse; returns the
  // forward edge index (query residuals via flow_on after run()).
  int add_edge(int u, int v, double cap) {
    edges_.push_back(Edge{v, head_[u], cap});
    head_[u] = static_cast<int>(edges_.size()) - 1;
    edges_.push_back(Edge{u, head_[v], 0.0});
    head_[v] = static_cast<int>(edges_.size()) - 1;
    return static_cast<int>(edges_.size()) - 2;
  }

  double run(int s, int t) {
    double flow = 0.0;
    while (bfs(s, t)) {
      it_ = head_;
      double pushed;
      while ((pushed = dfs(s, t, kInf)) > kFlowEps) flow += pushed;
    }
    return flow;
  }

  // Flow routed over forward edge `e` (the reverse edge's residual).
  [[nodiscard]] double flow_on(int e) const {
    return edges_[static_cast<std::size_t>(e) ^ 1].cap;
  }

 private:
  static constexpr double kFlowEps = 1e-11;

  struct Edge {
    int to;
    int next;
    double cap;
  };

  bool bfs(int s, int t) {
    std::fill(level_.begin(), level_.end(), -1);
    queue_.clear();
    queue_.push_back(s);
    level_[s] = 0;
    for (std::size_t q = 0; q < queue_.size(); ++q) {
      const int u = queue_[q];
      for (int e = head_[u]; e != -1; e = edges_[e].next) {
        if (edges_[e].cap > kFlowEps && level_[edges_[e].to] < 0) {
          level_[edges_[e].to] = level_[u] + 1;
          queue_.push_back(edges_[e].to);
        }
      }
    }
    return level_[t] >= 0;
  }

  double dfs(int u, int t, double limit) {
    if (u == t) return limit;
    for (int& e = it_[u]; e != -1; e = edges_[e].next) {
      const int v = edges_[e].to;
      if (edges_[e].cap > kFlowEps && level_[v] == level_[u] + 1) {
        const double pushed = dfs(v, t, std::min(limit, edges_[e].cap));
        if (pushed > kFlowEps) {
          edges_[e].cap -= pushed;
          edges_[static_cast<std::size_t>(e) ^ 1].cap += pushed;
          return pushed;
        }
      }
    }
    level_[u] = -1;  // dead end: prune for the rest of this phase
    return 0.0;
  }

  std::vector<Edge> edges_;
  std::vector<int> head_;
  std::vector<int> level_;
  std::vector<int> it_;
  std::vector<int> queue_;
};

}  // namespace

const char* to_string(MigrationStrategy strategy) {
  switch (strategy) {
    case MigrationStrategy::kNetworkAware:
      return "network-aware";
    case MigrationStrategy::kRandom:
      return "random";
    case MigrationStrategy::kDistant:
      return "distant";
    case MigrationStrategy::kNone:
      return "none";
  }
  return "?";
}

double MigrationPlanner::estimate_makespan(const std::vector<Move>& moves,
                                           const physical::NetworkView& view) {
  // Same-link volumes serialize; distinct links run in parallel. Volumes are
  // accumulated per link in move order (one map pass instead of the old
  // O(moves^2) rescan, which dominated large bottleneck-flow plans), so the
  // per-link sums -- and therefore the result -- are bit-identical to the
  // quadratic version.
  std::unordered_map<std::uint64_t, double> link_mb;
  link_mb.reserve(moves.size());
  auto link_key = [](const Move& m) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.from.value()))
            << 32) |
           static_cast<std::uint32_t>(m.to.value());
  };
  for (const Move& m : moves) link_mb[link_key(m)] += m.size_mb;
  double worst = 0.0;
  for (const Move& m : moves) {
    const double mbps = view.available_mbps(m.from, m.to);
    worst = std::max(worst, transfer_seconds(link_mb[link_key(m)], mbps));
  }
  return worst;
}

MigrationPlan MigrationPlanner::plan(
    const std::vector<StateSource>& sources,
    const std::vector<StateDestination>& destinations,
    const physical::NetworkView& view) {
  obs::Profiler::Scope profile_solve(profiler_,
                                     obs::Phase::kSolverMigration);
  MigrationPlan out;
  if (strategy_ == MigrationStrategy::kNone) return out;

  // Drop empty endpoints; nothing to move is a valid no-op.
  std::vector<StateSource> srcs;
  for (const auto& s : sources) {
    if (s.state_mb > 1e-9) srcs.push_back(s);
  }
  std::vector<StateDestination> dsts;
  for (const auto& d : destinations) {
    if (d.share_mb > 1e-9) dsts.push_back(d);
  }
  if (srcs.empty() || dsts.empty()) return out;

  // Normalize destination shares to match the source total.
  const double total_src = std::accumulate(
      srcs.begin(), srcs.end(), 0.0,
      [](double acc, const StateSource& s) { return acc + s.state_mb; });
  double total_dst = std::accumulate(
      dsts.begin(), dsts.end(), 0.0,
      [](double acc, const StateDestination& d) { return acc + d.share_mb; });
  assert(total_dst > 0.0);
  for (auto& d : dsts) d.share_mb *= total_src / total_dst;

  const bool tracing = trace_ != nullptr && trace_->enabled();
  obs::TraceEmitter::SpanScope span(tracing ? trace_ : nullptr, "migration_lp");
  if (tracing) {
    span.str("strategy", to_string(strategy_))
        .num("sources", static_cast<double>(srcs.size()))
        .num("destinations", static_cast<double>(dsts.size()));
  }
  std::size_t lp_iterations = 0;
  switch (strategy_) {
    case MigrationStrategy::kNetworkAware:
      out = plan_network_aware(srcs, dsts, view, &lp_iterations);
      break;
    case MigrationStrategy::kRandom:
      out = plan_greedy(srcs, dsts, view, /*prefer_slow_links=*/false);
      break;
    case MigrationStrategy::kDistant:
      out = plan_greedy(srcs, dsts, view, /*prefer_slow_links=*/true);
      break;
    case MigrationStrategy::kNone:
      break;
  }

  if (tracing) {
    double total_mb = 0.0;
    for (const Move& m : out.moves) total_mb += m.size_mb;
    span.num("lp_iterations", static_cast<double>(lp_iterations))
        .num("num_moves", static_cast<double>(out.moves.size()))
        .num("total_mb", total_mb)
        .num("estimated_transition_sec", out.estimated_transition_sec);
    // Flat summary event kept for older consumers; nests inside the span.
    trace_->event("migration_plan")
        .str("strategy", to_string(strategy_))
        .num("num_moves", static_cast<double>(out.moves.size()))
        .num("total_mb", total_mb)
        .num("estimated_transition_sec", out.estimated_transition_sec);
  }
  return out;
}

MigrationPlan MigrationPlanner::plan_network_aware(
    const std::vector<StateSource>& sources,
    const std::vector<StateDestination>& destinations,
    const physical::NetworkView& view, std::size_t* lp_iterations) const {
  const std::size_t ns = sources.size();
  const std::size_t nd = destinations.size();
  if (ns * nd >= kBottleneckPairThreshold) {
    // Large instance: the dense LP's pivot count blows up superlinearly in
    // pairs; the bottleneck-flow path computes the same minimal makespan in
    // near-linear time (DESIGN.md §14). `lp_iterations` stays untouched
    // (there is no simplex on this path).
    return plan_bottleneck_flow(sources, destinations, view);
  }

  // LP: minimize T subject to flow balance and x_ij <= T * r_ij, where r_ij
  // is the link's estimated rate in MB/s. Links with no capacity get x = 0.
  lp::Problem problem(lp::Sense::kMinimize);
  // Variables: x_ij (objective 0), then T (objective 1).
  std::vector<std::size_t> x(ns * nd);
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < nd; ++j) {
      x[i * nd + j] = problem.add_variable(0.0);
    }
  }
  const std::size_t t_var = problem.add_variable(1.0);

  for (std::size_t i = 0; i < ns; ++i) {
    lp::Constraint row;
    row.type = lp::RowType::kEq;
    row.rhs = sources[i].state_mb;
    for (std::size_t j = 0; j < nd; ++j) {
      row.vars.push_back(x[i * nd + j]);
      row.coeffs.push_back(1.0);
    }
    problem.add_constraint(std::move(row));
  }
  for (std::size_t j = 0; j < nd; ++j) {
    lp::Constraint row;
    row.type = lp::RowType::kEq;
    row.rhs = destinations[j].share_mb;
    for (std::size_t i = 0; i < ns; ++i) {
      row.vars.push_back(x[i * nd + j]);
      row.coeffs.push_back(1.0);
    }
    problem.add_constraint(std::move(row));
  }
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < nd; ++j) {
      const double rate_mb_per_sec = mbps_to_mb_per_sec(
          view.available_mbps(sources[i].site, destinations[j].site));
      if (rate_mb_per_sec <= 1e-9) {
        // Dead link: forbid it (unless src == dst, which is free).
        if (sources[i].site != destinations[j].site) {
          problem.set_bounds(x[i * nd + j], 0.0, 0.0);
        }
        continue;
      }
      if (sources[i].site == destinations[j].site) continue;  // local: free
      lp::Constraint row;  // x_ij - T * r_ij <= 0
      row.type = lp::RowType::kLe;
      row.rhs = 0.0;
      row.vars = {x[i * nd + j], t_var};
      row.coeffs = {1.0, -rate_mb_per_sec};
      problem.add_constraint(std::move(row));
    }
  }

  const lp::Solution sol = lp::solve(problem);
  if (lp_iterations != nullptr) *lp_iterations = sol.iterations;
  MigrationPlan out;
  if (!sol.optimal()) {
    // No feasible routing (e.g. all links dead): fall back to a greedy plan
    // so the caller still gets a (slow) assignment to execute.
    MigrationPlanner greedy(MigrationStrategy::kRandom, Rng(1));
    return greedy.plan(sources, destinations, view);
  }
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < nd; ++j) {
      const double mb = sol.values[x[i * nd + j]];
      if (mb > 1e-6 && sources[i].site != destinations[j].site) {
        out.moves.push_back(Move{sources[i].site, destinations[j].site, mb});
      }
    }
  }
  out.estimated_transition_sec = estimate_makespan(out.moves, view);
  return out;
}

MigrationPlan MigrationPlanner::plan_bottleneck_flow(
    const std::vector<StateSource>& sources,
    const std::vector<StateDestination>& destinations,
    const physical::NetworkView& view) const {
  const std::size_t ns = sources.size();
  const std::size_t nd = destinations.size();
  // Node layout: 0 = super source, 1..ns = sources, ns+1..ns+nd =
  // destinations, ns+nd+1 = sink.
  const int super = 0;
  const int sink = static_cast<int>(ns + nd) + 1;
  auto src_node = [](std::size_t i) { return static_cast<int>(i) + 1; };
  auto dst_node = [ns](std::size_t j) { return static_cast<int>(ns + j) + 1; };

  double total_mb = 0.0;
  for (const StateSource& s : sources) total_mb += s.state_mb;
  const double feas_tol = 1e-9 * std::max(1.0, total_mb);

  // Link rates in MB/s; local (src == dst) transfers cost nothing and get
  // infinite capacity, dead links get no edge at all -- both matching the LP
  // formulation's free/forbidden variables.
  std::vector<double> rate(ns * nd, 0.0);
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < nd; ++j) {
      if (sources[i].site == destinations[j].site) {
        rate[i * nd + j] = DinicMaxFlow::kInf;
      } else {
        rate[i * nd + j] = mbps_to_mb_per_sec(
            view.available_mbps(sources[i].site, destinations[j].site));
      }
    }
  }

  // Builds the graph for makespan T and returns the achieved flow; fills
  // `x_edges` (forward edge index per pair, -1 for dead links) so the final
  // probe can read the routed volumes back.
  std::vector<int> x_edges(ns * nd, -1);
  auto probe = [&](double t, DinicMaxFlow* out) {
    DinicMaxFlow graph(static_cast<int>(ns + nd) + 2);
    for (std::size_t i = 0; i < ns; ++i) {
      graph.add_edge(super, src_node(i), sources[i].state_mb);
    }
    for (std::size_t i = 0; i < ns; ++i) {
      for (std::size_t j = 0; j < nd; ++j) {
        const double r = rate[i * nd + j];
        if (r <= 1e-9) continue;  // dead link: no edge
        const double cap = r >= DinicMaxFlow::kInf ? DinicMaxFlow::kInf : t * r;
        x_edges[i * nd + j] = graph.add_edge(src_node(i), dst_node(j), cap);
      }
    }
    for (std::size_t j = 0; j < nd; ++j) {
      graph.add_edge(dst_node(j), sink, destinations[j].share_mb);
    }
    const double flow = graph.run(super, sink);
    if (out != nullptr) *out = std::move(graph);
    return flow;
  };
  auto feasible = [&](double t) { return probe(t, nullptr) >= total_mb - feas_tol; };

  // Bracket the minimal makespan: analytic lower bound (each endpoint must
  // drain/fill through its aggregate rate), then doubling until feasible.
  double lo = 0.0;
  for (std::size_t i = 0; i < ns; ++i) {
    double out_rate = 0.0;
    for (std::size_t j = 0; j < nd; ++j) out_rate += rate[i * nd + j];
    if (out_rate < DinicMaxFlow::kInf) {
      lo = std::max(lo, out_rate > 1e-12 ? sources[i].state_mb / out_rate
                                         : DinicMaxFlow::kInf);
    }
  }
  for (std::size_t j = 0; j < nd; ++j) {
    double in_rate = 0.0;
    for (std::size_t i = 0; i < ns; ++i) in_rate += rate[i * nd + j];
    if (in_rate < DinicMaxFlow::kInf) {
      lo = std::max(lo, in_rate > 1e-12 ? destinations[j].share_mb / in_rate
                                        : DinicMaxFlow::kInf);
    }
  }
  if (lo >= DinicMaxFlow::kInf) {
    // Some endpoint has no usable links at any makespan: same fallback as
    // the LP path's infeasible case.
    MigrationPlanner greedy(MigrationStrategy::kRandom, Rng(1));
    return greedy.plan(sources, destinations, view);
  }
  double hi = std::max(lo, 1e-3);
  bool bracketed = feasible(hi);
  for (int d = 0; d < 64 && !bracketed; ++d) {
    hi *= 2.0;
    bracketed = feasible(hi);
  }
  if (!bracketed) {
    MigrationPlanner greedy(MigrationStrategy::kRandom, Rng(1));
    return greedy.plan(sources, destinations, view);
  }

  // Bisect to the minimal feasible T. ~55 halvings reach double precision;
  // the relative cutoff usually stops far earlier.
  for (int iter = 0; iter < 55 && hi - lo > 1e-9 * std::max(1.0, hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }

  // Extract the routing at the minimal feasible T.
  DinicMaxFlow graph(0);
  probe(hi, &graph);
  MigrationPlan out;
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < nd; ++j) {
      const int e = x_edges[i * nd + j];
      if (e < 0 || sources[i].site == destinations[j].site) continue;
      const double mb = graph.flow_on(e);
      if (mb > 1e-6) {
        out.moves.push_back(Move{sources[i].site, destinations[j].site, mb});
      }
    }
  }
  out.estimated_transition_sec = estimate_makespan(out.moves, view);
  return out;
}

MigrationPlan MigrationPlanner::plan_greedy(
    const std::vector<StateSource>& sources,
    const std::vector<StateDestination>& destinations,
    const physical::NetworkView& view, bool prefer_slow_links) {
  // Fill destinations one source at a time. Random: destinations in random
  // order. Distant: destinations sorted by ascending bandwidth from the
  // source (worst link first) -- the adversarial WAN-agnostic baseline.
  MigrationPlan out;
  std::vector<double> remaining(destinations.size());
  for (std::size_t j = 0; j < destinations.size(); ++j) {
    remaining[j] = destinations[j].share_mb;
  }
  for (const StateSource& src : sources) {
    double left = src.state_mb;
    std::vector<std::size_t> order(destinations.size());
    std::iota(order.begin(), order.end(), 0);
    if (prefer_slow_links) {
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return view.available_mbps(src.site, destinations[a].site) <
               view.available_mbps(src.site, destinations[b].site);
      });
    } else {
      // Fisher-Yates with the planner's rng.
      for (std::size_t k = order.size(); k > 1; --k) {
        const auto r = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(k) - 1));
        std::swap(order[k - 1], order[r]);
      }
    }
    for (std::size_t j : order) {
      if (left <= 1e-9) break;
      if (remaining[j] <= 1e-9) continue;
      const double mb = std::min(left, remaining[j]);
      left -= mb;
      remaining[j] -= mb;
      if (src.site != destinations[j].site) {
        out.moves.push_back(Move{src.site, destinations[j].site, mb});
      }
    }
  }
  out.estimated_transition_sec = estimate_makespan(out.moves, view);
  return out;
}

}  // namespace wasp::state
