#include "state/migration.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/units.h"
#include "lp/simplex.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace wasp::state {

const char* to_string(MigrationStrategy strategy) {
  switch (strategy) {
    case MigrationStrategy::kNetworkAware:
      return "network-aware";
    case MigrationStrategy::kRandom:
      return "random";
    case MigrationStrategy::kDistant:
      return "distant";
    case MigrationStrategy::kNone:
      return "none";
  }
  return "?";
}

double MigrationPlanner::estimate_makespan(const std::vector<Move>& moves,
                                           const physical::NetworkView& view) {
  // Same-link volumes serialize; distinct links run in parallel.
  double worst = 0.0;
  for (std::size_t i = 0; i < moves.size(); ++i) {
    double link_mb = 0.0;
    for (const Move& m : moves) {
      if (m.from == moves[i].from && m.to == moves[i].to) link_mb += m.size_mb;
    }
    const double mbps = view.available_mbps(moves[i].from, moves[i].to);
    worst = std::max(worst, transfer_seconds(link_mb, mbps));
  }
  return worst;
}

MigrationPlan MigrationPlanner::plan(
    const std::vector<StateSource>& sources,
    const std::vector<StateDestination>& destinations,
    const physical::NetworkView& view) {
  obs::Profiler::Scope profile_solve(profiler_,
                                     obs::Phase::kSolverMigration);
  MigrationPlan out;
  if (strategy_ == MigrationStrategy::kNone) return out;

  // Drop empty endpoints; nothing to move is a valid no-op.
  std::vector<StateSource> srcs;
  for (const auto& s : sources) {
    if (s.state_mb > 1e-9) srcs.push_back(s);
  }
  std::vector<StateDestination> dsts;
  for (const auto& d : destinations) {
    if (d.share_mb > 1e-9) dsts.push_back(d);
  }
  if (srcs.empty() || dsts.empty()) return out;

  // Normalize destination shares to match the source total.
  const double total_src = std::accumulate(
      srcs.begin(), srcs.end(), 0.0,
      [](double acc, const StateSource& s) { return acc + s.state_mb; });
  double total_dst = std::accumulate(
      dsts.begin(), dsts.end(), 0.0,
      [](double acc, const StateDestination& d) { return acc + d.share_mb; });
  assert(total_dst > 0.0);
  for (auto& d : dsts) d.share_mb *= total_src / total_dst;

  const bool tracing = trace_ != nullptr && trace_->enabled();
  obs::TraceEmitter::SpanScope span(tracing ? trace_ : nullptr, "migration_lp");
  if (tracing) {
    span.str("strategy", to_string(strategy_))
        .num("sources", static_cast<double>(srcs.size()))
        .num("destinations", static_cast<double>(dsts.size()));
  }
  std::size_t lp_iterations = 0;
  switch (strategy_) {
    case MigrationStrategy::kNetworkAware:
      out = plan_network_aware(srcs, dsts, view, &lp_iterations);
      break;
    case MigrationStrategy::kRandom:
      out = plan_greedy(srcs, dsts, view, /*prefer_slow_links=*/false);
      break;
    case MigrationStrategy::kDistant:
      out = plan_greedy(srcs, dsts, view, /*prefer_slow_links=*/true);
      break;
    case MigrationStrategy::kNone:
      break;
  }

  if (tracing) {
    double total_mb = 0.0;
    for (const Move& m : out.moves) total_mb += m.size_mb;
    span.num("lp_iterations", static_cast<double>(lp_iterations))
        .num("num_moves", static_cast<double>(out.moves.size()))
        .num("total_mb", total_mb)
        .num("estimated_transition_sec", out.estimated_transition_sec);
    // Flat summary event kept for older consumers; nests inside the span.
    trace_->event("migration_plan")
        .str("strategy", to_string(strategy_))
        .num("num_moves", static_cast<double>(out.moves.size()))
        .num("total_mb", total_mb)
        .num("estimated_transition_sec", out.estimated_transition_sec);
  }
  return out;
}

MigrationPlan MigrationPlanner::plan_network_aware(
    const std::vector<StateSource>& sources,
    const std::vector<StateDestination>& destinations,
    const physical::NetworkView& view, std::size_t* lp_iterations) const {
  const std::size_t ns = sources.size();
  const std::size_t nd = destinations.size();

  // LP: minimize T subject to flow balance and x_ij <= T * r_ij, where r_ij
  // is the link's estimated rate in MB/s. Links with no capacity get x = 0.
  lp::Problem problem(lp::Sense::kMinimize);
  // Variables: x_ij (objective 0), then T (objective 1).
  std::vector<std::size_t> x(ns * nd);
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < nd; ++j) {
      x[i * nd + j] = problem.add_variable(0.0);
    }
  }
  const std::size_t t_var = problem.add_variable(1.0);

  for (std::size_t i = 0; i < ns; ++i) {
    lp::Constraint row;
    row.type = lp::RowType::kEq;
    row.rhs = sources[i].state_mb;
    for (std::size_t j = 0; j < nd; ++j) {
      row.vars.push_back(x[i * nd + j]);
      row.coeffs.push_back(1.0);
    }
    problem.add_constraint(std::move(row));
  }
  for (std::size_t j = 0; j < nd; ++j) {
    lp::Constraint row;
    row.type = lp::RowType::kEq;
    row.rhs = destinations[j].share_mb;
    for (std::size_t i = 0; i < ns; ++i) {
      row.vars.push_back(x[i * nd + j]);
      row.coeffs.push_back(1.0);
    }
    problem.add_constraint(std::move(row));
  }
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < nd; ++j) {
      const double rate_mb_per_sec = mbps_to_mb_per_sec(
          view.available_mbps(sources[i].site, destinations[j].site));
      if (rate_mb_per_sec <= 1e-9) {
        // Dead link: forbid it (unless src == dst, which is free).
        if (sources[i].site != destinations[j].site) {
          problem.set_bounds(x[i * nd + j], 0.0, 0.0);
        }
        continue;
      }
      if (sources[i].site == destinations[j].site) continue;  // local: free
      lp::Constraint row;  // x_ij - T * r_ij <= 0
      row.type = lp::RowType::kLe;
      row.rhs = 0.0;
      row.vars = {x[i * nd + j], t_var};
      row.coeffs = {1.0, -rate_mb_per_sec};
      problem.add_constraint(std::move(row));
    }
  }

  const lp::Solution sol = lp::solve(problem);
  if (lp_iterations != nullptr) *lp_iterations = sol.iterations;
  MigrationPlan out;
  if (!sol.optimal()) {
    // No feasible routing (e.g. all links dead): fall back to a greedy plan
    // so the caller still gets a (slow) assignment to execute.
    MigrationPlanner greedy(MigrationStrategy::kRandom, Rng(1));
    return greedy.plan(sources, destinations, view);
  }
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < nd; ++j) {
      const double mb = sol.values[x[i * nd + j]];
      if (mb > 1e-6 && sources[i].site != destinations[j].site) {
        out.moves.push_back(Move{sources[i].site, destinations[j].site, mb});
      }
    }
  }
  out.estimated_transition_sec = estimate_makespan(out.moves, view);
  return out;
}

MigrationPlan MigrationPlanner::plan_greedy(
    const std::vector<StateSource>& sources,
    const std::vector<StateDestination>& destinations,
    const physical::NetworkView& view, bool prefer_slow_links) {
  // Fill destinations one source at a time. Random: destinations in random
  // order. Distant: destinations sorted by ascending bandwidth from the
  // source (worst link first) -- the adversarial WAN-agnostic baseline.
  MigrationPlan out;
  std::vector<double> remaining(destinations.size());
  for (std::size_t j = 0; j < destinations.size(); ++j) {
    remaining[j] = destinations[j].share_mb;
  }
  for (const StateSource& src : sources) {
    double left = src.state_mb;
    std::vector<std::size_t> order(destinations.size());
    std::iota(order.begin(), order.end(), 0);
    if (prefer_slow_links) {
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return view.available_mbps(src.site, destinations[a].site) <
               view.available_mbps(src.site, destinations[b].site);
      });
    } else {
      // Fisher-Yates with the planner's rng.
      for (std::size_t k = order.size(); k > 1; --k) {
        const auto r = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(k) - 1));
        std::swap(order[k - 1], order[r]);
      }
    }
    for (std::size_t j : order) {
      if (left <= 1e-9) break;
      if (remaining[j] <= 1e-9) continue;
      const double mb = std::min(left, remaining[j]);
      left -= mb;
      remaining[j] -= mb;
      if (src.site != destinations[j].site) {
        out.moves.push_back(Move{src.site, destinations[j].site, mb});
      }
    }
  }
  out.estimated_transition_sec = estimate_makespan(out.moves, view);
  return out;
}

}  // namespace wasp::state
