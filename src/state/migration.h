// Network-aware state migration planning (paper §5, §8.7).
//
// When tasks of a stateful operator move between sites, their checkpointed
// state must cross the WAN before the execution can resume, and the overall
// adaptation overhead is dominated by the *slowest* transfer. WASP therefore
// chooses the mapping from drained sites (S - S') to filled sites (S' - S)
// by minimizing the maximum per-link transfer time:
//
//   minmax ( |state_s1| / B_{s1 -> s2} )
//
// We solve the fluid generalization exactly as a linear program with the
// in-repo simplex: variables x_ij (MB moved from drain site i to fill site
// j) and T (the makespan), minimizing T subject to
//   Σ_j x_ij = S_i      (all of i's state leaves)
//   Σ_i x_ij = D_j      (j receives its balanced share)
//   x_ij <= T · r_ij    (a transfer of x MB over r MB/s takes <= T seconds)
// Transfers on distinct links run in parallel; same-link volume serializes.
//
// The dense LP's simplex cost grows superlinearly in source x destination
// pairs (it was the BM_MigrationMinMaxLp blow-up: 2.5 µs at 2 flows, 427 µs
// at 8). Past a pair-count threshold the planner switches to an equivalent
// bottleneck formulation -- binary search on the makespan T with a max-flow
// (Dinic) feasibility check over capacities T·r_ij -- whose cost stays
// near-linear in pairs (DESIGN.md §14). Small instances keep the LP path
// byte-identical to preserve existing plans and golden traces.
//
// The WAN-agnostic baselines of §8.7.1 are also provided: Random (ignore
// bandwidth), Distant (adversarial: prefer the slowest links), and None
// (drop the state -- the lossy NoMigrate baseline).
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "physical/placement.h"

namespace wasp::obs {
class Profiler;
class TraceEmitter;
}  // namespace wasp::obs

namespace wasp::state {

enum class MigrationStrategy { kNetworkAware, kRandom, kDistant, kNone };

[[nodiscard]] const char* to_string(MigrationStrategy strategy);

// One directed transfer of operator state.
struct Move {
  SiteId from;
  SiteId to;
  double size_mb = 0.0;
};

struct MigrationPlan {
  std::vector<Move> moves;
  // Estimated transition time: max over links of (volume / estimated
  // bandwidth), per the monitor's view at planning time.
  double estimated_transition_sec = 0.0;
};

// Deterministic seeded jitter for migration/transition retry backoff. A bare
// capped-exponential backoff synchronizes every retry that a shared fault
// (e.g. a healed partition) aborted at the same instant -- they all come back
// together and collide again. Spreading each wait uniformly over
// [base · (1 - frac), base · (1 + frac)] desynchronizes them; drawing from a
// dedicated stream forked off the run seed (never the run's main Rng, whose
// consumption order other components depend on) keeps replays byte-identical.
[[nodiscard]] inline double jittered_backoff_sec(double base_sec, double frac,
                                                 Rng& jitter_rng) {
  if (frac <= 0.0 || base_sec <= 0.0) return base_sec;
  return base_sec * jitter_rng.uniform(1.0 - frac, 1.0 + frac);
}

// State leaving a site / share of state a site must receive.
struct StateSource {
  SiteId site;
  double state_mb = 0.0;
};
struct StateDestination {
  SiteId site;
  double share_mb = 0.0;  // balanced share this site must end up holding
};

class MigrationPlanner {
 public:
  MigrationPlanner(MigrationStrategy strategy, Rng rng)
      : strategy_(strategy), rng_(rng) {}

  [[nodiscard]] MigrationStrategy strategy() const { return strategy_; }

  // Optional trace hook (non-owning; may be null): plan() emits one
  // "migration_plan" event summarizing the chosen move set.
  void set_trace(obs::TraceEmitter* trace) { trace_ = trace; }

  // Tick-phase profiler hook (DESIGN.md §13): plan() runs under the
  // control.solver.migration phase. Null (the default) disables.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

  // Plans the transfer of all `sources` state to `destinations`. The
  // destination shares must sum to the source total (fluid balance); minor
  // mismatches are normalized. Returns an empty plan for kNone.
  [[nodiscard]] MigrationPlan plan(const std::vector<StateSource>& sources,
                                   const std::vector<StateDestination>& destinations,
                                   const physical::NetworkView& view);

  // Estimated makespan of an explicit move set under `view`.
  [[nodiscard]] static double estimate_makespan(
      const std::vector<Move>& moves, const physical::NetworkView& view);

 private:
  // `lp_iterations` (optional) receives the simplex pivot count of the
  // makespan LP, for trace cost attribution; untouched on the greedy
  // fallback path.
  [[nodiscard]] MigrationPlan plan_network_aware(
      const std::vector<StateSource>& sources,
      const std::vector<StateDestination>& destinations,
      const physical::NetworkView& view,
      std::size_t* lp_iterations = nullptr) const;

  [[nodiscard]] MigrationPlan plan_greedy(
      const std::vector<StateSource>& sources,
      const std::vector<StateDestination>& destinations,
      const physical::NetworkView& view, bool prefer_slow_links);

  // Bottleneck-flow path for large instances (see header comment): binary
  // search on T, Dinic max-flow feasibility per probe. Falls back to the
  // greedy plan when no finite T routes the state (disconnected links),
  // matching the LP path's infeasibility fallback.
  [[nodiscard]] MigrationPlan plan_bottleneck_flow(
      const std::vector<StateSource>& sources,
      const std::vector<StateDestination>& destinations,
      const physical::NetworkView& view) const;

  MigrationStrategy strategy_;
  Rng rng_;
  obs::TraceEmitter* trace_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
};

}  // namespace wasp::state
