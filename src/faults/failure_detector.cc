#include "faults/failure_detector.h"

#include <cassert>

#include "obs/trace.h"

namespace wasp::faults {
namespace {

constexpr double kCapacityEps = 1e-9;

}  // namespace

const char* to_string(SiteHealth health) {
  switch (health) {
    case SiteHealth::kTrusted:
      return "trusted";
    case SiteHealth::kSuspected:
      return "suspected";
    case SiteHealth::kConfirmedFailed:
      return "confirmed_failed";
  }
  return "?";
}

FailureDetector::FailureDetector(const net::Network& network, Config config)
    : network_(network), config_(config) {
  const std::size_t n = network_.topology().num_sites();
  assert(n > 0);
  assert(config_.heartbeat_interval_sec > 0.0);
  assert(config_.suspect_timeout_sec >= config_.heartbeat_interval_sec);
  assert(config_.confirm_timeout_sec >= config_.suspect_timeout_sec);
  if (config_.coordinator.valid()) {
    coordinator_ = config_.coordinator;
  } else {
    // Deterministic leader stand-in: the site with the most slots, lowest id
    // breaking ties.
    int best_slots = -1;
    for (const net::Site& site : network_.topology().sites()) {
      if (site.slots > best_slots) {
        best_slots = site.slots;
        coordinator_ = site.id;
      }
    }
  }
  assert(static_cast<std::size_t>(coordinator_.value()) < n);
  health_.assign(n, SiteHealth::kTrusted);
  last_heartbeat_.assign(n, 0.0);
  next_send_.assign(n, config_.heartbeat_interval_sec);
  suspicion_span_.assign(n, obs::kNoSpan);
  suspicion_since_.assign(n, 0.0);
}

void FailureDetector::tick(double t, const std::function<bool(SiteId)>& alive) {
  now_ = t;
  const std::size_t n = health_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const SiteId site(static_cast<std::int64_t>(i));
    if (site == coordinator_) {
      last_heartbeat_[i] = t;
      continue;
    }
    // Timeout checks run against the table as of the *previous* deliveries:
    // a coordinator that was stalled (or simply did not hear anything) first
    // consults its stale view, then processes whatever arrives this tick.
    // That ordering is what makes post-stall false suspicion observable.
    // Escalation is at most one level per tick: a site is only *confirmed*
    // failed if it stayed suspected across a full tick with its gap past the
    // confirm timeout. A coordinator waking from a long stall therefore
    // suspects everyone, then re-trusts as the backlog of heartbeats lands,
    // instead of declaring the whole fleet dead off one stale table.
    const double gap = t - last_heartbeat_[i];
    if (gap >= config_.confirm_timeout_sec &&
        health_[i] == SiteHealth::kSuspected) {
      transition(t, site, SiteHealth::kConfirmedFailed);
    } else if (gap >= config_.suspect_timeout_sec &&
               health_[i] == SiteHealth::kTrusted) {
      transition(t, site, SiteHealth::kSuspected);
    }

    if (t >= next_send_[i]) {
      const bool delivered =
          alive(site) && network_.capacity(site, coordinator_, t) > kCapacityEps;
      next_send_[i] = t + config_.heartbeat_interval_sec;
      if (delivered) {
        last_heartbeat_[i] = t;
        if (health_[i] != SiteHealth::kTrusted) {
          transition(t, site, SiteHealth::kTrusted);
        }
      }
    }
  }
}

SiteHealth FailureDetector::health(SiteId site) const {
  const auto i = static_cast<std::size_t>(site.value());
  assert(i < health_.size());
  return health_[i];
}

double FailureDetector::heartbeat_gap(SiteId site) const {
  const auto i = static_cast<std::size_t>(site.value());
  assert(i < last_heartbeat_.size());
  return now_ - last_heartbeat_[i];
}

std::vector<HealthTransition> FailureDetector::take_transitions() {
  std::vector<HealthTransition> out = std::move(pending_);
  pending_.clear();
  return out;
}

void FailureDetector::close_open_spans(double t) {
  if (trace_ == nullptr || !trace_->enabled()) return;
  for (std::size_t i = 0; i < suspicion_span_.size(); ++i) {
    if (suspicion_span_[i] == obs::kNoSpan) continue;
    trace_->end_span_at(t, suspicion_span_[i])
        .str("status", "unresolved")
        .num("site", static_cast<double>(i))
        .num("duration_sec", t - suspicion_since_[i]);
    suspicion_span_[i] = obs::kNoSpan;
  }
}

void FailureDetector::transition(double t, SiteId site, SiteHealth to) {
  const auto i = static_cast<std::size_t>(site.value());
  const SiteHealth from = health_[i];
  health_[i] = to;
  pending_.push_back(HealthTransition{t, site, from, to});
  if (trace_ != nullptr && trace_->enabled()) {
    // A suspicion episode is a span (root: detector activity is causally
    // independent of any in-flight adaptation): opened at trusted->suspected,
    // held open through confirmation, closed at re-trust. The flat
    // suspect/confirm_failure/trust events nest inside it.
    if (from == SiteHealth::kTrusted && to == SiteHealth::kSuspected) {
      trace_
          ->begin_span_event_at(t, "suspicion", &suspicion_span_[i],
                                /*parent=*/obs::kNoSpan)
          .num("site", static_cast<double>(site.value()));
      suspicion_since_[i] = t;
    }
    const char* type = to == SiteHealth::kTrusted          ? "trust"
                       : to == SiteHealth::kSuspected      ? "suspect"
                                                           : "confirm_failure";
    obs::TraceEmitter::ParentScope in_episode(trace_, suspicion_span_[i]);
    trace_->event_at(t, type)
        .num("site", static_cast<double>(site.value()))
        .num("gap_sec", t - last_heartbeat_[i])
        .str("from_state", to_string(from));
    if (to == SiteHealth::kTrusted && suspicion_span_[i] != obs::kNoSpan) {
      const char* status = from == SiteHealth::kSuspected ? "false_alarm"
                                                          : "recovered";
      trace_->end_span_at(t, suspicion_span_[i])
          .str("status", status)
          .num("site", static_cast<double>(site.value()))
          .num("duration_sec", t - suspicion_since_[i]);
      suspicion_span_[i] = obs::kNoSpan;
    }
  }
}

}  // namespace wasp::faults
