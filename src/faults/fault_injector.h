// FaultInjector: replays a FaultSchedule against the running system.
//
// Link-level faults (partition / heal, plus the partition trains a `flap`
// entry expands into) are applied directly on the Network, which is where
// partitions live as first-class state. Site crash/restore, stragglers and
// control-plane stalls go through driver-bound hooks so the injector does not
// depend on the engine or runtime: the driver (wasp_sim, tests) wires them to
// `WaspSystem::fail_sites` & friends.
//
// Flap expansion draws its half-period jitter from the injector's own Rng
// (forked from the experiment seed), so a chaos run is bit-reproducible:
// same schedule + same seed -> identical injection times -> identical
// recorder / trace logs.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "faults/fault_schedule.h"
#include "net/network.h"

namespace wasp::obs {
class TraceEmitter;
}  // namespace wasp::obs

namespace wasp::faults {

class FaultInjector {
 public:
  struct Hooks {
    std::function<void(SiteId)> crash_site;
    std::function<void(SiteId)> restore_site;
    std::function<void(SiteId, double)> set_straggler;  // factor; >=1 clears
    std::function<void(double)> stall_control;          // duration seconds
  };

  FaultInjector(net::Network& network, FaultSchedule schedule, Rng rng);

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }
  void set_trace(obs::TraceEmitter* trace) { trace_ = trace; }

  // Applies every not-yet-applied event with time <= now, in order.
  void tick(double now);

  [[nodiscard]] std::size_t applied() const { return next_; }
  [[nodiscard]] bool done() const { return next_ >= events_.size(); }
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }

 private:
  void apply(const FaultEvent& event);

  net::Network& network_;
  Rng rng_;
  Hooks hooks_;
  std::vector<FaultEvent> events_;  // flap entries pre-expanded, time-sorted
  std::size_t next_ = 0;
  obs::TraceEmitter* trace_ = nullptr;
};

}  // namespace wasp::faults
