#include "faults/fault_injector.h"

#include <algorithm>

#include "obs/trace.h"

namespace wasp::faults {

FaultInjector::FaultInjector(net::Network& network, FaultSchedule schedule,
                             Rng rng)
    : network_(network), rng_(rng) {
  // Expand flap entries into alternating partition / heal trains. Each
  // half-period is jittered by +/-20% so flaps from different schedule lines
  // desynchronize, but the jitter comes from the forked Rng: the expansion
  // is a pure function of (schedule, seed).
  for (const FaultEvent& e : schedule.events()) {
    if (e.kind != FaultKind::kLinkFlap) {
      events_.push_back(e);
      if (e.kind == FaultKind::kLinkPartition && e.duration_sec > 0.0) {
        FaultEvent heal = e;
        heal.kind = FaultKind::kLinkHeal;
        heal.t = e.t + e.duration_sec;
        events_.push_back(heal);
      }
      continue;
    }
    const double end = e.t + e.duration_sec;
    double cursor = e.t;
    bool partitioned = true;
    while (cursor < end) {
      FaultEvent phase = e;
      phase.kind =
          partitioned ? FaultKind::kLinkPartition : FaultKind::kLinkHeal;
      phase.t = cursor;
      events_.push_back(phase);
      partitioned = !partitioned;
      cursor += 0.5 * e.period_sec * rng_.uniform(0.8, 1.2);
    }
    FaultEvent heal = e;  // a flap always leaves the link healed
    heal.kind = FaultKind::kLinkHeal;
    heal.t = end;
    events_.push_back(heal);
  }
  std::stable_sort(
      events_.begin(), events_.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.t < b.t; });
}

void FaultInjector::tick(double now) {
  while (next_ < events_.size() && events_[next_].t <= now) {
    apply(events_[next_]);
    ++next_;
  }
}

void FaultInjector::apply(const FaultEvent& event) {
  if (trace_ != nullptr && trace_->enabled()) {
    auto ev = trace_->event_at(event.t, "fault_injected");
    ev.str("kind", to_string(event.kind));
    if (event.site.valid()) {
      ev.num("site", static_cast<double>(event.site.value()));
    }
    if (event.from.valid()) {
      ev.num("from_site", static_cast<double>(event.from.value()))
          .num("to_site", static_cast<double>(event.to.value()));
    }
    if (event.kind == FaultKind::kStraggler) ev.num("factor", event.factor);
    if (event.kind == FaultKind::kControlStall) {
      ev.num("duration_sec", event.duration_sec);
    }
    if (event.kind == FaultKind::kDomainDown ||
        event.kind == FaultKind::kDomainRestore) {
      ev.num("domain", static_cast<double>(event.domain));
    }
  }
  switch (event.kind) {
    case FaultKind::kSiteCrash:
      if (hooks_.crash_site) hooks_.crash_site(event.site);
      break;
    case FaultKind::kSiteRestore:
      if (hooks_.restore_site) hooks_.restore_site(event.site);
      break;
    case FaultKind::kLinkPartition:
      network_.set_link_partitioned(event.from, event.to, true);
      break;
    case FaultKind::kLinkHeal:
      network_.set_link_partitioned(event.from, event.to, false);
      break;
    case FaultKind::kLinkFlap:
      break;  // expanded at construction
    case FaultKind::kStraggler:
      if (hooks_.set_straggler) hooks_.set_straggler(event.site, event.factor);
      break;
    case FaultKind::kControlStall:
      if (hooks_.stall_control) hooks_.stall_control(event.duration_sec);
      break;
    case FaultKind::kDomainDown:
    case FaultKind::kDomainRestore: {
      // A domain fault is a correlated burst of per-site faults: every site
      // labeled with the domain crashes (or restores) at the same instant,
      // in dense site-id order so replays are deterministic.
      const bool down = event.kind == FaultKind::kDomainDown;
      for (SiteId s : network_.topology().sites_in_domain(event.domain)) {
        if (down) {
          if (hooks_.crash_site) hooks_.crash_site(s);
        } else {
          if (hooks_.restore_site) hooks_.restore_site(s);
        }
      }
      break;
    }
  }
}

}  // namespace wasp::faults
