#include "faults/fault_schedule.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace wasp::faults {
namespace {

// key=value tokens collected per line.
struct KeyValues {
  std::vector<std::pair<std::string, std::string>> kv;

  [[nodiscard]] const std::string* find(const std::string& key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

bool parse_double(const std::string& s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_site(const KeyValues& kvs, const std::string& key, SiteId* out,
                std::string* error) {
  const std::string* raw = kvs.find(key);
  if (raw == nullptr) {
    *error = "missing " + key + "=";
    return false;
  }
  double v = 0.0;
  if (!parse_double(*raw, &v) || v < 0.0 || v != static_cast<int>(v)) {
    *error = "bad site id in " + key + "=" + *raw;
    return false;
  }
  *out = SiteId(static_cast<std::int64_t>(v));
  return true;
}

bool parse_num(const KeyValues& kvs, const std::string& key, bool required,
               double* out, std::string* error) {
  const std::string* raw = kvs.find(key);
  if (raw == nullptr) {
    if (required) *error = "missing " + key + "=";
    return !required;
  }
  if (!parse_double(*raw, out)) {
    *error = "bad number in " + key + "=" + *raw;
    return false;
  }
  return true;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSiteCrash:
      return "crash";
    case FaultKind::kSiteRestore:
      return "restore";
    case FaultKind::kLinkPartition:
      return "partition";
    case FaultKind::kLinkHeal:
      return "heal";
    case FaultKind::kLinkFlap:
      return "flap";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kControlStall:
      return "stall";
    case FaultKind::kDomainDown:
      return "domain_down";
    case FaultKind::kDomainRestore:
      return "domain_restore";
  }
  return "?";
}

bool FaultSchedule::parse(std::istream& in, FaultSchedule* out,
                          std::string* error) {
  FaultSchedule result;
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "fault schedule line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string time_tok;
    if (!(tokens >> time_tok)) continue;  // blank / comment-only line

    FaultEvent event;
    if (!parse_double(time_tok, &event.t) || event.t < 0.0) {
      return fail("bad time '" + time_tok + "'");
    }
    std::string kind_tok;
    if (!(tokens >> kind_tok)) return fail("missing event kind");

    KeyValues kvs;
    std::string tok;
    while (tokens >> tok) {
      const auto eq = tok.find('=');
      if (eq == std::string::npos || eq == 0) {
        return fail("expected key=value, got '" + tok + "'");
      }
      kvs.kv.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
    }

    std::string why;
    if (kind_tok == "crash" || kind_tok == "restore") {
      event.kind = kind_tok == "crash" ? FaultKind::kSiteCrash
                                       : FaultKind::kSiteRestore;
      if (!parse_site(kvs, "site", &event.site, &why)) return fail(why);
    } else if (kind_tok == "partition" || kind_tok == "heal") {
      event.kind = kind_tok == "partition" ? FaultKind::kLinkPartition
                                           : FaultKind::kLinkHeal;
      if (!parse_site(kvs, "from", &event.from, &why)) return fail(why);
      if (!parse_site(kvs, "to", &event.to, &why)) return fail(why);
      if (event.kind == FaultKind::kLinkPartition &&
          !parse_num(kvs, "duration", false, &event.duration_sec, &why)) {
        return fail(why);
      }
    } else if (kind_tok == "flap") {
      event.kind = FaultKind::kLinkFlap;
      if (!parse_site(kvs, "from", &event.from, &why)) return fail(why);
      if (!parse_site(kvs, "to", &event.to, &why)) return fail(why);
      if (!parse_num(kvs, "period", true, &event.period_sec, &why)) {
        return fail(why);
      }
      if (!parse_num(kvs, "duration", true, &event.duration_sec, &why)) {
        return fail(why);
      }
      if (event.period_sec <= 0.0 || event.duration_sec <= 0.0) {
        return fail("flap needs period > 0 and duration > 0");
      }
    } else if (kind_tok == "straggler") {
      event.kind = FaultKind::kStraggler;
      if (!parse_site(kvs, "site", &event.site, &why)) return fail(why);
      if (!parse_num(kvs, "factor", true, &event.factor, &why)) {
        return fail(why);
      }
      if (event.factor <= 0.0) return fail("straggler factor must be > 0");
    } else if (kind_tok == "domain_down" || kind_tok == "domain_restore") {
      event.kind = kind_tok == "domain_down" ? FaultKind::kDomainDown
                                             : FaultKind::kDomainRestore;
      double v = 0.0;
      if (!parse_num(kvs, "domain", true, &v, &why)) return fail(why);
      if (v < 0.0 || v != static_cast<int>(v)) {
        return fail("bad domain id in domain=");
      }
      event.domain = static_cast<int>(v);
    } else if (kind_tok == "stall") {
      event.kind = FaultKind::kControlStall;
      if (!parse_num(kvs, "duration", true, &event.duration_sec, &why)) {
        return fail(why);
      }
      if (event.duration_sec <= 0.0) return fail("stall duration must be > 0");
    } else {
      return fail("unknown event kind '" + kind_tok + "'");
    }
    result.add(event);
  }
  *out = std::move(result);
  return true;
}

bool FaultSchedule::parse_file(const std::string& path, FaultSchedule* out,
                               std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    if (error != nullptr) *error = "cannot open fault schedule: " + path;
    return false;
  }
  return parse(in, out, error);
}

void FaultSchedule::add(FaultEvent event) {
  events_.push_back(event);
  std::stable_sort(
      events_.begin(), events_.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.t < b.t; });
}

}  // namespace wasp::faults
