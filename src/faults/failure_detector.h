// Heartbeat-timeout failure detection for the control plane.
//
// WASP assumes failures are detected, not known (§1, §7): the coordinator
// does not get to read the engine's ground-truth failure flag. Each site
// sends a heartbeat to the coordinator every `heartbeat_interval_sec`; a
// heartbeat is delivered in a tick iff the site is alive *and* the directed
// link site -> coordinator has non-zero capacity. The detector tracks, per
// site, the time since the last delivered heartbeat:
//
//   gap >= suspect_timeout_sec  -> kSuspected       (trace "suspect")
//   gap >= confirm_timeout_sec  -> kConfirmedFailed (trace "confirm_failure")
//   a delivery at any state     -> kTrusted         (trace "trust")
//
// This makes detection latency, false suspicion on partitioned/stalled links,
// and re-trust on recovery observable dynamics instead of implementation
// shortcuts. The detector is deliberately RNG-free and depends only on the
// network's capacity view, so same-seed replays produce identical state
// transition sequences.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.h"
#include "net/network.h"

namespace wasp::obs {
class TraceEmitter;
}  // namespace wasp::obs

namespace wasp::faults {

enum class SiteHealth {
  kTrusted,
  kSuspected,
  kConfirmedFailed,
};

[[nodiscard]] const char* to_string(SiteHealth health);

// One detector state change, drained via take_transitions() so the runtime
// can mirror detector activity into its recorder.
struct HealthTransition {
  double t = 0.0;
  SiteId site{-1};
  SiteHealth from = SiteHealth::kTrusted;
  SiteHealth to = SiteHealth::kTrusted;
};

class FailureDetector {
 public:
  struct Config {
    double heartbeat_interval_sec = 2.0;
    // Gap after which a site is suspected (slots withheld from placement).
    double suspect_timeout_sec = 6.0;
    // Gap after which the failure is confirmed (recovery re-plan triggers).
    double confirm_timeout_sec = 20.0;
    // Coordinator site; -1 picks the site with the most slots (lowest id
    // breaking ties), a deterministic stand-in for leader election.
    SiteId coordinator{-1};
  };

  FailureDetector(const net::Network& network, Config config);

  // Advances the detector to time `t`. `alive(site)` is the data-plane truth
  // the heartbeats sample: typically `!engine.site_failed(site)`. The
  // coordinator trusts itself unconditionally.
  void tick(double t, const std::function<bool(SiteId)>& alive);

  [[nodiscard]] SiteHealth health(SiteId site) const;
  [[nodiscard]] bool trusted(SiteId site) const {
    return health(site) == SiteHealth::kTrusted;
  }
  [[nodiscard]] bool confirmed_failed(SiteId site) const {
    return health(site) == SiteHealth::kConfirmedFailed;
  }
  [[nodiscard]] SiteId coordinator() const { return coordinator_; }
  [[nodiscard]] const Config& config() const { return config_; }

  // Seconds since `site`'s last delivered heartbeat, as of the last tick().
  [[nodiscard]] double heartbeat_gap(SiteId site) const;

  // Returns and clears the state changes accumulated since the last call,
  // in detection order.
  std::vector<HealthTransition> take_transitions();

  void set_trace(obs::TraceEmitter* trace) { trace_ = trace; }

  // Closes any suspicion spans still open (status "unresolved") -- the
  // runtime calls this at shutdown so traces stay begin/end balanced even
  // when the run ends mid-suspicion.
  void close_open_spans(double t);

 private:
  void transition(double t, SiteId site, SiteHealth to);

  const net::Network& network_;
  Config config_;
  SiteId coordinator_{-1};
  std::vector<SiteHealth> health_;
  std::vector<double> last_heartbeat_;  // delivery time, per site
  std::vector<double> next_send_;       // next heartbeat send time, per site
  std::vector<HealthTransition> pending_;
  // Open "suspicion" span per site (0 = none): opened at trusted->suspected,
  // closed at re-trust or close_open_spans(). `suspicion_since_` is the span
  // open time, for the episode duration on close.
  std::vector<std::uint64_t> suspicion_span_;
  std::vector<double> suspicion_since_;
  double now_ = 0.0;
  obs::TraceEmitter* trace_ = nullptr;
};

}  // namespace wasp::faults
