// Scripted fault schedules (chaos scripts).
//
// A schedule is a time-ordered list of fault events parsed from a small
// line-oriented text format -- one event per line, `#` starts a comment:
//
//   TIME KIND key=value ...
//
//   120 crash site=3
//   240 restore site=3
//   300 partition from=2 to=0 duration=60     # heals itself at t=360
//   360 heal from=2 to=0                      # or heal explicitly
//   100 flap from=1 to=0 period=12 duration=90
//   400 straggler site=5 factor=0.2           # factor=1 clears
//   600 stall duration=30                     # control plane freezes 30 s
//   500 domain_down domain=2                  # every site in domain 2 crashes
//   620 domain_restore domain=2
//
// The schedule itself is pure data; the FaultInjector turns it into calls on
// the Network / engine hooks at the right simulated times, with any jitter
// (flapping) drawn from the injector's forked Rng so replays are
// deterministic given the seed (§8.6's failure experiments depend on this).
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "common/ids.h"

namespace wasp::faults {

enum class FaultKind {
  kSiteCrash,      // site=S
  kSiteRestore,    // site=S
  kLinkPartition,  // from=A to=B [duration=D]
  kLinkHeal,       // from=A to=B
  kLinkFlap,       // from=A to=B period=P duration=D
  kStraggler,      // site=S factor=F  (factor >= 1 clears)
  kControlStall,   // duration=D
  kDomainDown,     // domain=D  (crashes every site labeled with the domain)
  kDomainRestore,  // domain=D
};

struct FaultEvent {
  double t = 0.0;
  FaultKind kind = FaultKind::kSiteCrash;
  SiteId site{-1};
  SiteId from{-1};
  SiteId to{-1};
  double duration_sec = 0.0;
  double period_sec = 0.0;
  double factor = 1.0;
  int domain = -1;
};

[[nodiscard]] const char* to_string(FaultKind kind);

class FaultSchedule {
 public:
  // Parses the text format above. On success returns true and fills the
  // schedule (sorted by time, stable for ties); on failure returns false and
  // writes a one-line diagnostic (with line number) into *error.
  static bool parse(std::istream& in, FaultSchedule* out, std::string* error);
  static bool parse_file(const std::string& path, FaultSchedule* out,
                         std::string* error);

  void add(FaultEvent event);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace wasp::faults
