#include "physical/placement_cache.h"

#include <cstring>

#include "physical/scheduler.h"

namespace wasp::physical {
namespace {

void append_double(std::string& out, double v) {
  char buf[sizeof(double)];
  std::memcpy(buf, &v, sizeof(double));
  out.append(buf, sizeof(double));
}

void append_int(std::string& out, std::int64_t v) {
  char buf[sizeof(std::int64_t)];
  std::memcpy(buf, &v, sizeof(std::int64_t));
  out.append(buf, sizeof(std::int64_t));
}

// One traffic endpoint plus everything the ILP reads from the view about it:
// the latency from/to every site and the bandwidth on every link the
// endpoint's traffic would cross.
void append_endpoint(std::string& out, const TrafficEndpoint& ep,
                     const NetworkView& view, bool upstream) {
  append_int(out, ep.site.value());
  append_double(out, ep.events_per_sec);
  append_double(out, ep.event_bytes);
  const std::size_t m = view.num_sites();
  for (std::size_t s = 0; s < m; ++s) {
    const SiteId site(static_cast<std::int64_t>(s));
    if (upstream) {
      append_double(out, view.latency_ms(ep.site, site));
      append_double(out, view.available_mbps(ep.site, site));
    } else {
      append_double(out, view.latency_ms(site, ep.site));
      append_double(out, view.available_mbps(site, ep.site));
    }
  }
}

}  // namespace

std::string placement_cache_key(const StageContext& context,
                                const NetworkView& view, double alpha,
                                const std::vector<int>& extra_slots) {
  std::string key;
  placement_cache_key(key, context, view, alpha, extra_slots);
  return key;
}

void placement_cache_key(std::string& key, const StageContext& context,
                         const NetworkView& view, double alpha,
                         const std::vector<int>& extra_slots) {
  const std::size_t m = view.num_sites();
  key.clear();
  key.reserve(64 + 8 * m * (2 * (context.upstream.size() +
                                 context.downstream.size()) + 2));
  append_double(key, alpha);
  append_int(key, context.parallelism);
  append_int(key, static_cast<std::int64_t>(m));
  for (std::size_t s = 0; s < m; ++s) {
    const SiteId site(static_cast<std::int64_t>(s));
    int slots = view.available_slots(site);
    if (s < extra_slots.size()) slots += extra_slots[s];
    append_int(key, slots);
    append_int(key, s < context.min_per_site.size() ? context.min_per_site[s]
                                                    : 0);
    // -1 = uncapped (the default), matching solve_ilp's reading of
    // max_per_site; the sentinel keeps capped and uncapped contexts distinct.
    append_int(key, s < context.max_per_site.size() ? context.max_per_site[s]
                                                    : -1);
  }
  append_int(key, static_cast<std::int64_t>(context.upstream.size()));
  for (const TrafficEndpoint& u : context.upstream) {
    append_endpoint(key, u, view, /*upstream=*/true);
  }
  append_int(key, static_cast<std::int64_t>(context.downstream.size()));
  for (const TrafficEndpoint& d : context.downstream) {
    append_endpoint(key, d, view, /*upstream=*/false);
  }
  // Anti-affinity is a solver input like any other: two contexts differing
  // only in exclusions must never collide (exact-byte key contract).
  append_int(key, static_cast<std::int64_t>(context.excluded_sites.size()));
  for (SiteId ex : context.excluded_sites) append_int(key, ex.value());
}

const std::optional<PlacementOutcome>* PlacementCache::find(
    const std::string& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

void PlacementCache::insert(std::string key,
                            std::optional<PlacementOutcome> outcome) {
  map_.emplace(std::move(key), std::move(outcome));
}

std::pair<std::optional<PlacementOutcome>*, bool> PlacementCache::find_or_reserve(
    const std::string& key, bool allow_prev) {
  const auto [it, inserted] = map_.try_emplace(key);
  if (!inserted) {
    ++stats_.hits;
    return {&it->second, true};
  }
  if (allow_prev) {
    const auto prev_it = prev_.find(key);
    if (prev_it != prev_.end()) {
      // Promote the previous-generation entry so repeat lookups this epoch
      // stay single-hash.
      it->second = prev_it->second;
      ++stats_.hits;
      return {&it->second, true};
    }
  }
  ++stats_.misses;
  return {&it->second, false};
}

}  // namespace wasp::physical
