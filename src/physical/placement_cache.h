// Memoization for the Eq. 1-5 placement ILP.
//
// Every adaptation decision re-prices placements: `place_with_min_parallelism`
// sweeps candidate parallelisms, and the planner prices every candidate
// logical plan, so within one decision epoch the same (stage, parallelism,
// network snapshot) ILP is solved many times. The cache keys a solve by the
// exact bytes of everything the ILP reads -- alpha, parallelism, per-site
// floors and extra slots, the traffic endpoints, and the slots/latency/
// bandwidth the view reports for those endpoints -- so a hit is guaranteed to
// return the bit-identical outcome the solver would have produced. Exact keys
// (rather than quantized ones) trade a few extra misses for that guarantee.
//
// The cache is cleared at the start of each decision epoch
// (`Scheduler::begin_epoch`); network measurements change between epochs, so
// stale entries would only be dead weight.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "physical/placement.h"

namespace wasp::physical {

struct StageContext;

// Exact byte key covering every input `solve_ilp` reads. Two calls with equal
// keys are guaranteed to produce identical outcomes.
[[nodiscard]] std::string placement_cache_key(
    const StageContext& context, const NetworkView& view, double alpha,
    const std::vector<int>& extra_slots);

// Allocation-free variant for the hot path: rebuilds the key into `key`
// (cleared first; capacity is reused across calls).
void placement_cache_key(std::string& key, const StageContext& context,
                         const NetworkView& view, double alpha,
                         const std::vector<int>& extra_slots);

class PlacementCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
  };

  // Returns the cached outcome for `key`, or nullptr on a miss. Infeasible
  // results (nullopt outcomes) are cached too.
  [[nodiscard]] const std::optional<PlacementOutcome>* find(
      const std::string& key);

  void insert(std::string key, std::optional<PlacementOutcome> outcome);

  // Single-hash find-or-insert: returns {slot, hit}. On a hit the slot holds
  // the memoized outcome; on a miss a default (nullopt) slot was reserved and
  // the caller must fill it with the solved outcome. When `allow_prev` is
  // set, a current-generation miss also consults the previous generation
  // (see begin_epoch); a hit there is promoted into the current generation.
  // Exact-byte keys make previous-generation reuse safe: equal keys mean the
  // solver would read identical bytes and produce the identical outcome.
  [[nodiscard]] std::pair<std::optional<PlacementOutcome>*, bool>
  find_or_reserve(const std::string& key, bool allow_prev = false);

  // Epoch rotation: the current generation becomes the previous one (the old
  // previous generation is dropped). Callers that never pass `allow_prev`
  // observe exactly the semantics of the old clear() -- an empty cache.
  void begin_epoch() {
    prev_ = std::move(map_);
    map_.clear();
  }

  void clear() {
    map_.clear();
    prev_.clear();
  }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  std::unordered_map<std::string, std::optional<PlacementOutcome>> map_;
  std::unordered_map<std::string, std::optional<PlacementOutcome>> prev_;
  Stats stats_;
};

}  // namespace wasp::physical
