#include "physical/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/units.h"
#include "ilp/branch_and_bound.h"
#include "lp/problem.h"

namespace wasp::physical {
namespace {

// Builds and solves the Eq. 1-5 ILP. One integer variable per site. When
// `stats` is non-null (tracing) it receives the raw solver result for
// cost-attribution fields; early infeasibility leaves it default-initialized.
std::optional<PlacementOutcome> solve_ilp(const StageContext& ctx,
                                          const NetworkView& view,
                                          double alpha,
                                          const std::vector<int>& extra_slots,
                                          const ilp::IlpOptions& ilp_options,
                                          ilp::IlpResult* stats = nullptr) {
  const std::size_t m = view.num_sites();
  const double p = static_cast<double>(ctx.parallelism);
  assert(ctx.parallelism >= 1);

  lp::Problem problem(lp::Sense::kMinimize);

  // Objective: Σ_s p[s] · (Σ_u w_u ℓ_su + Σ_d w_d ℓ_ds), with endpoint
  // weights proportional to the traffic they exchange with the stage
  // (Eq. 1, traffic-weighted).
  double total_up = 0.0, total_down = 0.0;
  for (const auto& u : ctx.upstream) total_up += u.events_per_sec;
  for (const auto& d : ctx.downstream) total_down += d.events_per_sec;

  std::vector<std::size_t> vars;
  for (std::size_t s = 0; s < m; ++s) {
    const SiteId site(static_cast<std::int64_t>(s));
    double cost = 0.0;
    for (const auto& u : ctx.upstream) {
      const double w = total_up > 0.0 ? u.events_per_sec / total_up : 1.0;
      cost += w * view.latency_ms(u.site, site);
    }
    for (const auto& d : ctx.downstream) {
      const double w = total_down > 0.0 ? d.events_per_sec / total_down : 1.0;
      cost += w * view.latency_ms(site, d.site);
    }
    int slots = view.available_slots(site);
    if (s < extra_slots.size()) slots += extra_slots[s];
    // Anti-affinity: an excluded site contributes zero capacity (Eq. 4 with
    // A[s] forced to 0), regardless of its actual slots.
    for (SiteId ex : ctx.excluded_sites) {
      if (ex == site) {
        slots = 0;
        break;
      }
    }
    const int lo = s < ctx.min_per_site.size() ? ctx.min_per_site[s] : 0;
    // Constraint (4): lo <= p[s] <= A[s].
    if (lo > slots) return std::nullopt;  // pinned floor exceeds capacity
    vars.push_back(problem.add_variable(cost, lo, std::max(0, slots)));
  }

  // Constraint (5): Σ p[s] = p.
  {
    lp::Constraint total;
    total.type = lp::RowType::kEq;
    total.rhs = p;
    for (std::size_t s = 0; s < m; ++s) {
      total.vars.push_back(vars[s]);
      total.coeffs.push_back(1.0);
    }
    problem.add_constraint(std::move(total));
  }

  // Constraints (2) and (3): per (site, neighbor-site) bandwidth caps. Each
  // becomes an upper bound on p[s]:
  //   p[s]/p · traffic(u) < α · B(u -> s)   =>   p[s] < p·α·B / traffic.
  // We fold all caps for a site into the tightest one and tighten the
  // variable's upper bound, which keeps the ILP small.
  for (std::size_t s = 0; s < m; ++s) {
    const SiteId site(static_cast<std::int64_t>(s));
    double cap = static_cast<double>(ctx.parallelism);
    auto apply = [&](double traffic_eps, double event_bytes, double bw_mbps) {
      const double demand = stream_mbps(traffic_eps, event_bytes);
      if (demand <= 0.0) return;
      if (bw_mbps <= 0.0) {
        cap = 0.0;
        return;
      }
      // Strict inequality in the paper; emulate with a tiny epsilon.
      cap = std::min(cap, p * alpha * bw_mbps / demand - 1e-9);
    };
    for (const auto& u : ctx.upstream) {
      if (u.site == site) continue;  // co-located: no WAN traffic
      apply(u.events_per_sec, u.event_bytes,
            view.available_mbps(u.site, site));
    }
    for (const auto& d : ctx.downstream) {
      if (d.site == site) continue;
      apply(d.events_per_sec, d.event_bytes,
            view.available_mbps(site, d.site));
    }
    if (cap < static_cast<double>(ctx.parallelism)) {
      const double hi = std::max(0.0, std::floor(cap));
      const double existing_lo = problem.lower_bounds()[vars[s]];
      const double existing_hi = problem.upper_bounds()[vars[s]];
      const double new_hi = std::min(existing_hi, hi);
      if (new_hi < existing_lo) return std::nullopt;  // floor unsatisfiable
      problem.set_bounds(vars[s], existing_lo, new_hi);
    }
  }

  const ilp::IlpResult result = ilp::solve(problem, vars, ilp_options);
  if (stats != nullptr) *stats = result;
  if (!result.optimal()) return std::nullopt;

  PlacementOutcome outcome;
  outcome.placement.per_site.resize(m, 0);
  for (std::size_t s = 0; s < m; ++s) {
    outcome.placement.per_site[s] =
        static_cast<int>(std::lround(result.values[vars[s]]));
  }
  outcome.objective = result.objective;
  return outcome;
}

// ILP options for the reference (pre-optimization) solver stack: rescan
// pricing in the simplex and the copy-per-node branch & bound.
ilp::IlpOptions reference_ilp_options() {
  ilp::IlpOptions opts;
  opts.algorithm = ilp::IlpOptions::Algorithm::kReference;
  opts.lp_options.pricing = lp::SimplexOptions::Pricing::kRescan;
  return opts;
}

}  // namespace

std::optional<PlacementOutcome> Scheduler::place_stage(
    const StageContext& context, const NetworkView& view,
    const std::vector<int>& extra_slots) const {
  obs::Profiler::Scope profile_solve(profiler_,
                                     obs::Phase::kSolverPlacement);
  if (!context.pinned_sites.empty()) {
    // Pinned stages (sources/sinks) bypass the ILP: one task per pin.
    PlacementOutcome outcome;
    outcome.placement.per_site.resize(view.num_sites(), 0);
    for (SiteId s : context.pinned_sites) {
      ++outcome.placement.per_site[static_cast<std::size_t>(s.value())];
    }
    return outcome;
  }
  const bool tracing = trace_ != nullptr && trace_->enabled();
  obs::TraceEmitter::SpanScope span(tracing ? trace_ : nullptr,
                                    "placement_ilp");
  if (tracing) span.num("parallelism", context.parallelism);
  auto record = [&](const std::optional<PlacementOutcome>& outcome,
                    bool cache_hit, const ilp::IlpResult& stats) {
    if (!tracing) return;
    span.flag("cache_hit", cache_hit)
        .flag("feasible", outcome.has_value())
        .num("bb_nodes", static_cast<double>(stats.nodes_explored))
        .num("lp_iterations", static_cast<double>(stats.lp_iterations));
    if (outcome.has_value()) span.num("objective", outcome->objective);
  };
  if (config_.use_reference_solvers) {
    ilp::IlpResult stats;
    auto outcome = solve_ilp(context, view, config_.alpha, extra_slots,
                             reference_ilp_options(),
                             tracing ? &stats : nullptr);
    record(outcome, /*cache_hit=*/false, stats);
    return outcome;
  }
  placement_cache_key(key_scratch_, context, view, config_.alpha, extra_slots);
  const auto [slot, hit] = cache_.find_or_reserve(key_scratch_);
  if (hit) {
    record(*slot, /*cache_hit=*/true, ilp::IlpResult{});
    return *slot;
  }
  ilp::IlpResult stats;
  *slot = solve_ilp(context, view, config_.alpha, extra_slots,
                    ilp::IlpOptions{}, tracing ? &stats : nullptr);
  record(*slot, /*cache_hit=*/false, stats);
  return *slot;
}

std::optional<PlacementOutcome> Scheduler::place_with_min_parallelism(
    const StageContext& context, const NetworkView& view, int min_parallelism,
    int max_parallelism, const std::vector<int>& extra_slots) const {
  StageContext ctx = context;
  for (int p = std::max(1, min_parallelism); p <= max_parallelism; ++p) {
    ctx.parallelism = p;
    if (auto outcome = place_stage(ctx, view, extra_slots)) return outcome;
  }
  return std::nullopt;
}

}  // namespace wasp::physical
