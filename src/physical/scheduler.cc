#include "physical/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "common/units.h"
#include "ilp/branch_and_bound.h"
#include "lp/problem.h"

namespace wasp::physical {
namespace {

// The Eq. 1-5 placement program, built once and handed to whichever solve
// path (exact B&B, direct greedy, budgeted B&B, LP rounding) the scheduler
// picks. `vars[s]` is the problem variable for site s.
struct BuiltIlp {
  lp::Problem problem;
  std::vector<std::size_t> vars;
};

// Builds the Eq. 1-5 ILP: one integer variable per site, bandwidth caps
// folded into variable upper bounds, one total-parallelism equality row.
// Returns nullopt when the bounds alone are unsatisfiable.
std::optional<BuiltIlp> build_placement_ilp(
    const StageContext& ctx, const NetworkView& view, double alpha,
    const std::vector<int>& extra_slots) {
  const std::size_t m = view.num_sites();
  const double p = static_cast<double>(ctx.parallelism);
  assert(ctx.parallelism >= 1);

  lp::Problem problem(lp::Sense::kMinimize);

  // Objective: Σ_s p[s] · (Σ_u w_u ℓ_su + Σ_d w_d ℓ_ds), with endpoint
  // weights proportional to the traffic they exchange with the stage
  // (Eq. 1, traffic-weighted).
  double total_up = 0.0, total_down = 0.0;
  for (const auto& u : ctx.upstream) total_up += u.events_per_sec;
  for (const auto& d : ctx.downstream) total_down += d.events_per_sec;

  std::vector<std::size_t> vars;
  for (std::size_t s = 0; s < m; ++s) {
    const SiteId site(static_cast<std::int64_t>(s));
    double cost = 0.0;
    for (const auto& u : ctx.upstream) {
      const double w = total_up > 0.0 ? u.events_per_sec / total_up : 1.0;
      cost += w * view.latency_ms(u.site, site);
    }
    for (const auto& d : ctx.downstream) {
      const double w = total_down > 0.0 ? d.events_per_sec / total_down : 1.0;
      cost += w * view.latency_ms(site, d.site);
    }
    int slots = view.available_slots(site);
    if (s < extra_slots.size()) slots += extra_slots[s];
    // Anti-affinity: an excluded site contributes zero capacity (Eq. 4 with
    // A[s] forced to 0), regardless of its actual slots.
    for (SiteId ex : ctx.excluded_sites) {
      if (ex == site) {
        slots = 0;
        break;
      }
    }
    // Decomposition cap: max_per_site pins out-of-region sites to their
    // current count (-1 entries are uncapped); tighter than slots wins.
    if (s < ctx.max_per_site.size() && ctx.max_per_site[s] >= 0) {
      slots = std::min(slots, ctx.max_per_site[s]);
    }
    const int lo = s < ctx.min_per_site.size() ? ctx.min_per_site[s] : 0;
    // Constraint (4): lo <= p[s] <= A[s].
    if (lo > slots) return std::nullopt;  // pinned floor exceeds capacity
    vars.push_back(problem.add_variable(cost, lo, std::max(0, slots)));
  }

  // Constraint (5): Σ p[s] = p.
  {
    lp::Constraint total;
    total.type = lp::RowType::kEq;
    total.rhs = p;
    for (std::size_t s = 0; s < m; ++s) {
      total.vars.push_back(vars[s]);
      total.coeffs.push_back(1.0);
    }
    problem.add_constraint(std::move(total));
  }

  // Constraints (2) and (3): per (site, neighbor-site) bandwidth caps. Each
  // becomes an upper bound on p[s]:
  //   p[s]/p · traffic(u) < α · B(u -> s)   =>   p[s] < p·α·B / traffic.
  // We fold all caps for a site into the tightest one and tighten the
  // variable's upper bound, which keeps the ILP small.
  for (std::size_t s = 0; s < m; ++s) {
    const SiteId site(static_cast<std::int64_t>(s));
    double cap = static_cast<double>(ctx.parallelism);
    auto apply = [&](double traffic_eps, double event_bytes, double bw_mbps) {
      const double demand = stream_mbps(traffic_eps, event_bytes);
      if (demand <= 0.0) return;
      if (bw_mbps <= 0.0) {
        cap = 0.0;
        return;
      }
      // Strict inequality in the paper; emulate with a tiny epsilon.
      cap = std::min(cap, p * alpha * bw_mbps / demand - 1e-9);
    };
    for (const auto& u : ctx.upstream) {
      if (u.site == site) continue;  // co-located: no WAN traffic
      apply(u.events_per_sec, u.event_bytes,
            view.available_mbps(u.site, site));
    }
    for (const auto& d : ctx.downstream) {
      if (d.site == site) continue;
      apply(d.events_per_sec, d.event_bytes,
            view.available_mbps(site, d.site));
    }
    if (cap < static_cast<double>(ctx.parallelism)) {
      const double hi = std::max(0.0, std::floor(cap));
      const double existing_lo = problem.lower_bounds()[vars[s]];
      const double existing_hi = problem.upper_bounds()[vars[s]];
      const double new_hi = std::min(existing_hi, hi);
      if (new_hi < existing_lo) return std::nullopt;  // floor unsatisfiable
      problem.set_bounds(vars[s], existing_lo, new_hi);
    }
  }

  return BuiltIlp{std::move(problem), std::move(vars)};
}

// Builds and solves the Eq. 1-5 ILP via branch & bound. When `stats` is
// non-null it receives the raw solver result (trace cost attribution and
// budget-trip detection); early infeasibility leaves it default-initialized.
std::optional<PlacementOutcome> solve_ilp(const StageContext& ctx,
                                          const NetworkView& view,
                                          double alpha,
                                          const std::vector<int>& extra_slots,
                                          const ilp::IlpOptions& ilp_options,
                                          ilp::IlpResult* stats = nullptr) {
  const auto built = build_placement_ilp(ctx, view, alpha, extra_slots);
  if (!built.has_value()) return std::nullopt;
  const std::size_t m = view.num_sites();

  const ilp::IlpResult result =
      ilp::solve(built->problem, built->vars, ilp_options);
  if (stats != nullptr) *stats = result;
  if (!result.optimal()) return std::nullopt;

  PlacementOutcome outcome;
  outcome.placement.per_site.resize(m, 0);
  for (std::size_t s = 0; s < m; ++s) {
    outcome.placement.per_site[s] =
        static_cast<int>(std::lround(result.values[built->vars[s]]));
  }
  outcome.objective = result.objective;
  return outcome;
}

// Exact direct solve for the folded program's structure (DESIGN.md §14).
// After bandwidth caps fold into variable bounds, the ILP is
//   min Σ cost[s]·x[s]  s.t.  Σ x[s] = p,  lo[s] <= x[s] <= hi[s], integer,
// whose optimum is the greedy fill: start every site at its floor, then
// hand remaining tasks to sites in ascending (cost, index) order. Integral
// bounds make the greedy solution integral, so no branching is needed.
std::optional<PlacementOutcome> solve_direct(const BuiltIlp& built,
                                             int parallelism) {
  const std::vector<double>& cost = built.problem.objective();
  const std::vector<double>& lo = built.problem.lower_bounds();
  const std::vector<double>& hi = built.problem.upper_bounds();
  const std::size_t m = built.vars.size();

  PlacementOutcome outcome;
  outcome.method = PlacementOutcome::Method::kDirect;
  outcome.placement.per_site.resize(m, 0);
  long long remaining = parallelism;
  for (std::size_t s = 0; s < m; ++s) {
    const int floor_s = static_cast<int>(std::lround(lo[built.vars[s]]));
    outcome.placement.per_site[s] = floor_s;
    remaining -= floor_s;
  }
  if (remaining < 0) return std::nullopt;  // floors alone exceed p

  std::vector<std::size_t> order(m);
  for (std::size_t s = 0; s < m; ++s) order[s] = s;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ca = cost[built.vars[a]];
    const double cb = cost[built.vars[b]];
    return ca != cb ? ca < cb : a < b;
  });
  for (std::size_t s : order) {
    if (remaining == 0) break;
    const long long headroom =
        static_cast<long long>(std::lround(hi[built.vars[s]])) -
        outcome.placement.per_site[s];
    const long long take = std::min(remaining, headroom);
    if (take > 0) {
      outcome.placement.per_site[s] += static_cast<int>(take);
      remaining -= take;
    }
  }
  if (remaining > 0) return std::nullopt;  // Σ hi < p: infeasible

  for (std::size_t s = 0; s < m; ++s) {
    outcome.objective += cost[built.vars[s]] * outcome.placement.per_site[s];
  }
  return outcome;
}

// LP-rounding fallback for a tripped node budget (DESIGN.md §14): solve the
// relaxation, floor the per-site counts, then hand the deficit to sites by
// (largest fractional part, lowest cost, lowest index) within their upper
// bounds. LP feasibility implies Σ hi >= p, so the rounding always lands on
// a feasible integral point; it may be suboptimal, which the `rounded`
// trace field and PlacementOutcome::Method::kRounded record.
std::optional<PlacementOutcome> solve_rounded(
    const BuiltIlp& built, int parallelism,
    const lp::SimplexOptions& lp_options) {
  const lp::Solution relax = lp::solve(built.problem, lp_options);
  if (!relax.optimal()) return std::nullopt;

  const std::vector<double>& cost = built.problem.objective();
  const std::vector<double>& hi = built.problem.upper_bounds();
  const std::size_t m = built.vars.size();

  PlacementOutcome outcome;
  outcome.method = PlacementOutcome::Method::kRounded;
  outcome.placement.per_site.resize(m, 0);
  long long remaining = parallelism;
  std::vector<double> frac(m, 0.0);
  for (std::size_t s = 0; s < m; ++s) {
    const double v = relax.values[built.vars[s]];
    const int floor_s = static_cast<int>(std::floor(v + 1e-9));
    outcome.placement.per_site[s] = floor_s;
    frac[s] = v - floor_s;
    remaining -= floor_s;
  }
  std::vector<std::size_t> order(m);
  for (std::size_t s = 0; s < m; ++s) order[s] = s;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (frac[a] != frac[b]) return frac[a] > frac[b];
    const double ca = cost[built.vars[a]];
    const double cb = cost[built.vars[b]];
    return ca != cb ? ca < cb : a < b;
  });
  // First pass hands units to fractional sites (rounding up); if the floors
  // left a deeper deficit, later passes spill into any site with headroom.
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t s : order) {
      if (remaining == 0) break;
      if (outcome.placement.per_site[s] <
          static_cast<int>(std::lround(hi[built.vars[s]]))) {
        ++outcome.placement.per_site[s];
        --remaining;
        progressed = true;
      }
    }
    if (!progressed) return std::nullopt;  // Σ hi < p (LP was near-infeasible)
  }
  for (std::size_t s = 0; s < m; ++s) {
    outcome.objective += cost[built.vars[s]] * outcome.placement.per_site[s];
  }
  return outcome;
}

void append_sig_int(std::string& out, std::int64_t v) {
  char buf[sizeof(std::int64_t)];
  std::memcpy(buf, &v, sizeof(std::int64_t));
  out.append(buf, sizeof(std::int64_t));
}

// Warm-basis signature: everything that determines the tableau *structure*
// (and cost geometry) of the placement LP, but none of the network values --
// a basis from last epoch's slightly different network still installs, which
// is the entire point of warm-starting.
void warm_signature(std::string& sig, const StageContext& ctx,
                    std::size_t num_sites) {
  sig.clear();
  append_sig_int(sig, static_cast<std::int64_t>(num_sites));
  append_sig_int(sig, ctx.parallelism);
  append_sig_int(sig, static_cast<std::int64_t>(ctx.upstream.size()));
  for (const TrafficEndpoint& u : ctx.upstream) append_sig_int(sig, u.site.value());
  append_sig_int(sig, static_cast<std::int64_t>(ctx.downstream.size()));
  for (const TrafficEndpoint& d : ctx.downstream) append_sig_int(sig, d.site.value());
  append_sig_int(sig, static_cast<std::int64_t>(ctx.excluded_sites.size()));
  for (SiteId ex : ctx.excluded_sites) append_sig_int(sig, ex.value());
}

// ILP options for the reference (pre-optimization) solver stack: rescan
// pricing in the simplex and the copy-per-node branch & bound.
ilp::IlpOptions reference_ilp_options() {
  ilp::IlpOptions opts;
  opts.algorithm = ilp::IlpOptions::Algorithm::kReference;
  opts.lp_options.pricing = lp::SimplexOptions::Pricing::kRescan;
  return opts;
}

}  // namespace

std::optional<PlacementOutcome> Scheduler::place_stage(
    const StageContext& context, const NetworkView& view,
    const std::vector<int>& extra_slots) const {
  obs::Profiler::Scope profile_solve(profiler_,
                                     obs::Phase::kSolverPlacement);
  if (!context.pinned_sites.empty()) {
    // Pinned stages (sources/sinks) bypass the ILP: one task per pin.
    PlacementOutcome outcome;
    outcome.placement.per_site.resize(view.num_sites(), 0);
    for (SiteId s : context.pinned_sites) {
      ++outcome.placement.per_site[static_cast<std::size_t>(s.value())];
    }
    return outcome;
  }
  const bool tracing = trace_ != nullptr && trace_->enabled();
  obs::TraceEmitter::SpanScope span(tracing ? trace_ : nullptr,
                                    "placement_ilp");
  if (tracing) span.num("parallelism", context.parallelism);
  auto record = [&](const std::optional<PlacementOutcome>& outcome,
                    bool cache_hit, const ilp::IlpResult& stats) {
    if (!tracing) return;
    span.flag("cache_hit", cache_hit)
        .flag("feasible", outcome.has_value())
        .num("bb_nodes", static_cast<double>(stats.nodes_explored))
        .num("lp_iterations", static_cast<double>(stats.lp_iterations));
    if (outcome.has_value()) {
      span.num("objective", outcome->objective);
      // Non-default solve paths announce themselves; the exact B&B path
      // (every placement at paper scale) emits no extra fields, so existing
      // golden traces are unchanged.
      if (outcome->method == PlacementOutcome::Method::kDirect) {
        span.str("method", "direct");
      } else if (outcome->method == PlacementOutcome::Method::kRounded) {
        span.str("method", "rounded").flag("rounded", true);
      }
    }
  };
  if (config_.use_reference_solvers) {
    ilp::IlpResult stats;
    auto outcome = solve_ilp(context, view, config_.alpha, extra_slots,
                             reference_ilp_options(),
                             tracing ? &stats : nullptr);
    record(outcome, /*cache_hit=*/false, stats);
    return outcome;
  }
  const std::size_t m = view.num_sites();
  const bool at_scale = m >= config_.direct_solve_min_sites;
  placement_cache_key(key_scratch_, context, view, config_.alpha, extra_slots);
  const auto [slot, hit] = cache_.find_or_reserve(
      key_scratch_, /*allow_prev=*/at_scale && config_.cross_epoch_cache);
  if (hit) {
    record(*slot, /*cache_hit=*/true, ilp::IlpResult{});
    return *slot;
  }
  ilp::IlpResult stats;
  if (!at_scale) {
    // Paper-testbed scale: the legacy exact branch & bound, bit-identical to
    // the pre-scale-pipeline scheduler.
    *slot = solve_ilp(context, view, config_.alpha, extra_slots,
                      ilp::IlpOptions{}, tracing ? &stats : nullptr);
  } else if (!config_.force_branch_and_bound) {
    // At scale the folded program is box + one equality row: the greedy
    // direct solve is exact and O(m log m) (DESIGN.md §14).
    const auto built =
        build_placement_ilp(context, view, config_.alpha, extra_slots);
    *slot = built.has_value() ? solve_direct(*built, context.parallelism)
                              : std::nullopt;
  } else {
    *slot = solve_budgeted(context, view, extra_slots, &stats);
  }
  record(*slot, /*cache_hit=*/false, stats);
  return *slot;
}

std::optional<PlacementOutcome> Scheduler::solve_budgeted(
    const StageContext& context, const NetworkView& view,
    const std::vector<int>& extra_slots, ilp::IlpResult* stats) const {
  const auto built =
      build_placement_ilp(context, view, config_.alpha, extra_slots);
  if (!built.has_value()) return std::nullopt;

  ilp::IlpOptions opts;
  opts.max_nodes = budget_.limit();
  opts.lp_options.max_iterations = config_.lp_pivot_limit;
  const std::vector<std::size_t>* hint = nullptr;
  if (config_.warm_start) {
    warm_signature(sig_scratch_, context, view.num_sites());
    const auto it = warm_bases_.find(sig_scratch_);
    if (it != warm_bases_.end()) hint = &it->second;
    opts.root_warm_basis = hint;
    opts.capture_root_basis = true;
  }

  ilp::IlpResult result = ilp::solve(built->problem, built->vars, opts);
  if (stats != nullptr) *stats = result;
  if (config_.warm_start && !result.root_basis.empty()) {
    warm_bases_[sig_scratch_] = std::move(result.root_basis);
  }

  // Budget accounting (AdaptiveNodeBudget; CaDiCaL Limit/Delay dynamics):
  // a trip means either the search loop hit the node cap or subtrees were
  // dropped by per-LP limits without yielding a proven result.
  const bool tripped = result.status == lp::SolveStatus::kIterationLimit ||
                       result.nodes_explored >= opts.max_nodes;
  if (tripped) {
    budget_.bump();
  } else {
    budget_.reduce();
  }

  if (result.optimal()) {
    const std::size_t m = view.num_sites();
    PlacementOutcome outcome;
    outcome.placement.per_site.resize(m, 0);
    for (std::size_t s = 0; s < m; ++s) {
      outcome.placement.per_site[s] =
          static_cast<int>(std::lround(result.values[built->vars[s]]));
    }
    outcome.objective = result.objective;
    return outcome;
  }
  if (result.status != lp::SolveStatus::kIterationLimit) {
    return std::nullopt;  // proven infeasible (or unbounded): no fallback
  }
  // Budget tripped without an incumbent: LP-round the relaxation so the
  // control plane still gets a feasible placement this epoch. The fallback's
  // one relaxation runs uncapped -- the pivot limit protects the B&B tree,
  // and an unsolved relaxation here would leave the epoch with no placement.
  lp::SimplexOptions lp_opts = opts.lp_options;
  lp_opts.max_iterations = 0;
  lp_opts.warm_basis = hint;
  return solve_rounded(*built, context.parallelism, lp_opts);
}

std::optional<PlacementOutcome> Scheduler::place_with_min_parallelism(
    const StageContext& context, const NetworkView& view, int min_parallelism,
    int max_parallelism, const std::vector<int>& extra_slots) const {
  StageContext ctx = context;
  for (int p = std::max(1, min_parallelism); p <= max_parallelism; ++p) {
    ctx.parallelism = p;
    if (auto outcome = place_stage(ctx, view, extra_slots)) return outcome;
  }
  return std::nullopt;
}

}  // namespace wasp::physical
