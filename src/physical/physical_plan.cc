#include "physical/physical_plan.h"

#include <algorithm>
#include <cassert>

#include "common/units.h"

namespace wasp::physical {

StageId PhysicalPlan::add_stage(OperatorId op, StagePlacement placement) {
  const StageId id(static_cast<std::int64_t>(stages_.size()));
  stages_.push_back(Stage{id, op, std::move(placement)});
  by_op_.emplace(op, id);
  return id;
}

const Stage& PhysicalPlan::stage(StageId id) const {
  return stages_[static_cast<std::size_t>(id.value())];
}

Stage& PhysicalPlan::mutable_stage(StageId id) {
  return stages_[static_cast<std::size_t>(id.value())];
}

const Stage& PhysicalPlan::stage_for(OperatorId op) const {
  const auto it = by_op_.find(op);
  assert(it != by_op_.end());
  return stage(it->second);
}

Stage& PhysicalPlan::mutable_stage_for(OperatorId op) {
  const auto it = by_op_.find(op);
  assert(it != by_op_.end());
  return mutable_stage(it->second);
}

bool PhysicalPlan::has_stage_for(OperatorId op) const {
  return by_op_.contains(op);
}

int PhysicalPlan::total_tasks() const {
  int total = 0;
  for (const Stage& s : stages_) total += s.parallelism();
  return total;
}

namespace {

// NetworkView decorator that deducts slots AND link bandwidth as stages are
// placed: stage k+1 must not count on capacity stage k's streams already
// claimed (stages of one plan share links).
class DeductingView final : public NetworkView {
 public:
  explicit DeductingView(const NetworkView& base)
      : base_(base), used_(base.num_sites(), 0) {}

  [[nodiscard]] std::size_t num_sites() const override {
    return base_.num_sites();
  }
  [[nodiscard]] double available_mbps(SiteId from, SiteId to) const override {
    const auto it = used_mbps_.find(
        from.value() * static_cast<std::int64_t>(base_.num_sites()) +
        to.value());
    const double used = it != used_mbps_.end() ? it->second : 0.0;
    return std::max(0.0, base_.available_mbps(from, to) - used);
  }
  [[nodiscard]] double latency_ms(SiteId from, SiteId to) const override {
    return base_.latency_ms(from, to);
  }
  [[nodiscard]] int available_slots(SiteId site) const override {
    return base_.available_slots(site) -
           used_[static_cast<std::size_t>(site.value())];
  }

  void consume(const StagePlacement& placement) {
    for (std::size_t s = 0; s < placement.per_site.size(); ++s) {
      used_[s] += placement.per_site[s];
    }
  }

  // Claims the WAN bandwidth of the traffic each endpoint sends to (or
  // receives from) the newly-placed stage, split per the placement shares.
  void consume_traffic(const std::vector<TrafficEndpoint>& endpoints,
                       const StagePlacement& placement, bool inbound) {
    const int p = placement.parallelism();
    if (p == 0) return;
    const auto n = static_cast<std::int64_t>(base_.num_sites());
    for (const auto& e : endpoints) {
      for (SiteId s : placement.sites()) {
        if (s == e.site) continue;
        const double share = static_cast<double>(placement.at(s)) / p;
        const double mbps = stream_mbps(e.events_per_sec * share,
                                        e.event_bytes);
        const std::int64_t key = inbound ? e.site.value() * n + s.value()
                                         : s.value() * n + e.site.value();
        used_mbps_[key] += mbps;
      }
    }
  }

 private:
  const NetworkView& base_;
  std::vector<int> used_;
  std::unordered_map<std::int64_t, double> used_mbps_;
};

// Per-site emission rates of a placed stage: balanced partitioning splits
// the operator's output evenly over its tasks (§7).
std::vector<TrafficEndpoint> stage_endpoints(const Stage& stage,
                                             double output_eps,
                                             double event_bytes) {
  std::vector<TrafficEndpoint> out;
  const int p = stage.parallelism();
  if (p == 0) return out;
  for (SiteId site : stage.placement.sites()) {
    const double share =
        static_cast<double>(stage.placement.at(site)) / static_cast<double>(p);
    out.push_back(TrafficEndpoint{site, output_eps * share, event_bytes});
  }
  return out;
}

}  // namespace

std::optional<PlanPlacement> place_plan(
    const query::LogicalPlan& logical,
    const std::unordered_map<OperatorId, query::OperatorRates>& rates,
    const std::unordered_map<OperatorId, int>& parallelism,
    const NetworkView& view, const Scheduler& scheduler,
    int max_parallelism_fallback) {
  PlanPlacement result;
  DeductingView working_view(view);

  // Pinned stages occupy their slots unconditionally; reserve them up front
  // so no unpinned stage is placed into a slot a later pinned stage needs.
  // Sources are external-stream adapters and take no slot (matching
  // Engine::slots_in_use).
  std::unordered_map<OperatorId, StagePlacement> pinned;
  for (const auto& op : logical.operators()) {
    if (op.pinned_sites.empty()) continue;
    StagePlacement placement;
    placement.per_site.resize(view.num_sites(), 0);
    for (SiteId s : op.pinned_sites) {
      ++placement.per_site[static_cast<std::size_t>(s.value())];
    }
    if (!op.is_source()) working_view.consume(placement);
    pinned.emplace(op.id, std::move(placement));
  }

  for (OperatorId op_id : logical.topological_order()) {
    const query::LogicalOperator& op = logical.op(op_id);

    if (const auto it = pinned.find(op_id); it != pinned.end()) {
      result.plan.add_stage(op_id, it->second);
      continue;
    }

    StageContext ctx;
    ctx.parallelism = 1;
    if (const auto it = parallelism.find(op_id); it != parallelism.end()) {
      ctx.parallelism = std::max(1, it->second);
    }
    ctx.pinned_sites = op.pinned_sites;

    // Upstream endpoints come from already-placed stages (topological order
    // guarantees they exist).
    for (OperatorId u : logical.upstream(op_id)) {
      const query::LogicalOperator& up_op = logical.op(u);
      const Stage& up_stage = result.plan.stage_for(u);
      for (auto& e : stage_endpoints(up_stage, rates.at(u).output_eps,
                                     up_op.output_event_bytes)) {
        ctx.upstream.push_back(e);
      }
    }
    // Downstream endpoints: only pinned operators are known ahead of their
    // placement (initial deployment is one-stage-at-a-time, §4.1).
    for (OperatorId d : logical.downstream(op_id)) {
      const query::LogicalOperator& down_op = logical.op(d);
      if (down_op.pinned_sites.empty()) continue;
      const double out_eps = rates.at(op_id).output_eps /
                             static_cast<double>(down_op.pinned_sites.size());
      for (SiteId s : down_op.pinned_sites) {
        ctx.downstream.push_back(
            TrafficEndpoint{s, out_eps, op.output_event_bytes});
      }
    }

    auto outcome = scheduler.place_stage(ctx, working_view);
    if (!outcome.has_value() && ctx.pinned_sites.empty() &&
        max_parallelism_fallback > ctx.parallelism) {
      outcome = scheduler.place_with_min_parallelism(
          ctx, working_view, ctx.parallelism + 1, max_parallelism_fallback);
    }
    if (!outcome.has_value()) return std::nullopt;
    working_view.consume(outcome->placement);
    working_view.consume_traffic(ctx.upstream, outcome->placement,
                                 /*inbound=*/true);
    working_view.consume_traffic(ctx.downstream, outcome->placement,
                                 /*inbound=*/false);
    result.plan.add_stage(op_id, outcome->placement);
    result.objective += outcome->objective;
  }

  // Estimated WAN consumption: for every logical edge, traffic between
  // non-co-located task sites.
  for (const Stage& stage : result.plan.stages()) {
    const query::LogicalOperator& op = logical.op(stage.op);
    for (OperatorId d : logical.downstream(stage.op)) {
      const Stage& down = result.plan.stage_for(d);
      const double out_eps = rates.at(stage.op).output_eps;
      const int p_up = stage.parallelism();
      const int p_down = down.parallelism();
      if (p_up == 0 || p_down == 0) continue;
      for (SiteId su : stage.placement.sites()) {
        for (SiteId sd : down.placement.sites()) {
          if (su == sd) continue;
          const double share =
              (static_cast<double>(stage.placement.at(su)) / p_up) *
              (static_cast<double>(down.placement.at(sd)) / p_down);
          result.wan_mbps += stream_mbps(out_eps * share, op.output_event_bytes);
        }
      }
    }
  }
  return result;
}

}  // namespace wasp::physical
