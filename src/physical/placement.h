// Physical placement primitives.
//
// A stage's placement is the per-site task count vector p[s] that the
// WAN-aware scheduler optimizes (paper §4.1, Table 1). `NetworkView` is the
// control plane's read-only window onto the network: implementations back it
// with the WAN Monitor's (noisy, possibly stale) estimates rather than
// ground truth, mirroring the prototype.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "common/ids.h"

namespace wasp::physical {

// What the scheduler knows about the network when planning.
class NetworkView {
 public:
  virtual ~NetworkView() = default;
  [[nodiscard]] virtual std::size_t num_sites() const = 0;
  // Estimated available bandwidth (Mbps) on the directed link from -> to.
  [[nodiscard]] virtual double available_mbps(SiteId from, SiteId to) const = 0;
  [[nodiscard]] virtual double latency_ms(SiteId from, SiteId to) const = 0;
  // Free computing slots at `site`.
  [[nodiscard]] virtual int available_slots(SiteId site) const = 0;
};

// Per-site task counts for one stage.
struct StagePlacement {
  std::vector<int> per_site;  // indexed by site id

  [[nodiscard]] int parallelism() const {
    return std::accumulate(per_site.begin(), per_site.end(), 0);
  }

  // Sites hosting at least one task.
  [[nodiscard]] std::vector<SiteId> sites() const {
    std::vector<SiteId> out;
    for (std::size_t s = 0; s < per_site.size(); ++s) {
      if (per_site[s] > 0) out.push_back(SiteId(static_cast<std::int64_t>(s)));
    }
    return out;
  }

  // One site entry per task, in site order (task -> site mapping).
  [[nodiscard]] std::vector<SiteId> expand() const {
    std::vector<SiteId> out;
    for (std::size_t s = 0; s < per_site.size(); ++s) {
      for (int k = 0; k < per_site[s]; ++k) {
        out.push_back(SiteId(static_cast<std::int64_t>(s)));
      }
    }
    return out;
  }

  [[nodiscard]] int at(SiteId s) const {
    return per_site[static_cast<std::size_t>(s.value())];
  }

  friend bool operator==(const StagePlacement&, const StagePlacement&) =
      default;
};

// A solved placement together with its Eq. 1 objective value. Produced by
// the scheduler; defined here so the placement cache can store it without
// depending on the scheduler headers.
struct PlacementOutcome {
  // How the scheduler produced the placement (DESIGN.md §14):
  //   kExact   -- branch & bound ran to completion (the only method at paper
  //               scale; traces omit the field for it).
  //   kDirect  -- the structured direct solve: the folded placement ILP is a
  //               box-constrained single-equality program, solved exactly by
  //               greedy fill (default at scale).
  //   kRounded -- LP-rounding fallback after a tripped B&B node budget;
  //               feasible but possibly suboptimal (trace field
  //               `rounded=true`).
  enum class Method { kExact, kDirect, kRounded };

  StagePlacement placement;
  double objective = 0.0;  // traffic-weighted delay (ms-weighted tasks)
  Method method = Method::kExact;
};

// Sites to drain (S - S') and to populate (S' - S) when moving from
// placement `from` to placement `to`; the unit is tasks.
struct PlacementDiff {
  std::vector<std::pair<SiteId, int>> drain;  // site, tasks leaving
  std::vector<std::pair<SiteId, int>> fill;   // site, tasks arriving
};

[[nodiscard]] PlacementDiff diff_placements(const StagePlacement& from,
                                            const StagePlacement& to);

}  // namespace wasp::physical
