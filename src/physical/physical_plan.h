// Physical plan: one stage per logical operator, with a placement.
//
// Stages mirror the paper's execution model (§2.1): a stage runs as p
// parallel tasks, each occupying one computing slot at some site. This
// module also provides whole-plan placement -- walking the logical plan in
// topological order, building each stage's traffic context from the
// already-placed upstream stages (plus pinned sinks downstream), and calling
// the scheduler -- which is what the Job Manager does at deployment and what
// re-planning does for candidate plans.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "physical/placement.h"
#include "physical/scheduler.h"
#include "query/logical_plan.h"

namespace wasp::physical {

struct Stage {
  StageId id;
  OperatorId op;
  StagePlacement placement;

  [[nodiscard]] int parallelism() const { return placement.parallelism(); }
};

class PhysicalPlan {
 public:
  PhysicalPlan() = default;

  StageId add_stage(OperatorId op, StagePlacement placement);

  [[nodiscard]] std::size_t num_stages() const { return stages_.size(); }
  [[nodiscard]] const Stage& stage(StageId id) const;
  [[nodiscard]] Stage& mutable_stage(StageId id);
  [[nodiscard]] const std::vector<Stage>& stages() const { return stages_; }

  // The stage executing logical operator `op`; asserts it exists.
  [[nodiscard]] const Stage& stage_for(OperatorId op) const;
  [[nodiscard]] Stage& mutable_stage_for(OperatorId op);
  [[nodiscard]] bool has_stage_for(OperatorId op) const;

  [[nodiscard]] int total_tasks() const;

 private:
  std::vector<Stage> stages_;
  std::unordered_map<OperatorId, StageId> by_op_;
};

struct PlanPlacement {
  PhysicalPlan plan;
  // Sum of per-stage ILP objectives: traffic-weighted network delay (Eq. 1).
  double objective = 0.0;
  // Estimated WAN bandwidth consumption (Mbps) across all cross-site edges.
  double wan_mbps = 0.0;
};

// Places every stage of `logical` with the given per-operator parallelism
// (operators absent from the map get parallelism 1; pinned operators get one
// task per pinned site). Slot availability is deducted stage by stage.
// If a stage is infeasible at its requested parallelism and
// `max_parallelism_fallback` > 0, the scheduler searches upward to that
// limit before giving up (deployment-time scale-out). Returns nullopt if any
// stage remains infeasible.
[[nodiscard]] std::optional<PlanPlacement> place_plan(
    const query::LogicalPlan& logical,
    const std::unordered_map<OperatorId, query::OperatorRates>& rates,
    const std::unordered_map<OperatorId, int>& parallelism,
    const NetworkView& view, const Scheduler& scheduler,
    int max_parallelism_fallback = 0);

}  // namespace wasp::physical
