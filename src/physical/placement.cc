#include "physical/placement.h"

#include <cassert>

namespace wasp::physical {

PlacementDiff diff_placements(const StagePlacement& from,
                              const StagePlacement& to) {
  assert(from.per_site.size() == to.per_site.size());
  PlacementDiff diff;
  for (std::size_t s = 0; s < from.per_site.size(); ++s) {
    const int delta = to.per_site[s] - from.per_site[s];
    const SiteId site(static_cast<std::int64_t>(s));
    if (delta < 0) diff.drain.emplace_back(site, -delta);
    if (delta > 0) diff.fill.emplace_back(site, delta);
  }
  return diff;
}

}  // namespace wasp::physical
