// WAN-aware task scheduler: the placement ILP of paper §4.1 (Eq. 1-5).
//
// For one stage with parallelism p, the scheduler chooses per-site task
// counts p[s] minimizing the traffic-weighted network delay to/from its
// neighbor stages, subject to:
//   (2) inbound:  the share of the stage's input landing at site s must fit
//       within α of the available bandwidth from each upstream site,
//   (3) outbound: symmetric for downstream sites,
//   (4) slots:    0 <= p[s] <= A[s],
//   (5) total:    Σ p[s] = p.
// α < 1 reserves headroom against mis-estimation and transition load (§4.1);
// the paper and this code default to α = 0.8.
//
// Refinement over the paper's formulation: constraint (2) is applied per
// upstream site using that site's share of the stage input (λ̂_O[u] · p[s]/p)
// rather than the whole λ̂_I, which is what balanced partitioning actually
// puts on the link u -> s. With a single upstream site the two coincide.
//
// The ILP is solved exactly with the in-repo branch & bound (src/ilp),
// standing in for Gurobi.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "physical/placement.h"
#include "physical/placement_cache.h"
#include "physical/solver_budget.h"

namespace wasp::ilp {
struct IlpResult;
}  // namespace wasp::ilp

namespace wasp::physical {

// Traffic endpoint: a neighbor site and the event rate (events/s) it sends
// to / receives from the stage being placed, plus the event size in bytes.
struct TrafficEndpoint {
  SiteId site;
  double events_per_sec = 0.0;
  double event_bytes = 0.0;
};

// Everything the scheduler needs to place one stage.
struct StageContext {
  int parallelism = 1;
  // Upstream task sites with the rate each one emits toward this stage.
  std::vector<TrafficEndpoint> upstream;
  // Downstream task sites with the rate each one consumes from this stage
  // (empty when the downstream stage is not yet placed).
  std::vector<TrafficEndpoint> downstream;
  // Hard pin: if non-empty, the stage must place exactly here (sources and
  // sinks); one task per listed site.
  std::vector<SiteId> pinned_sites;
  // Per-site lower bounds on p[s] (empty = all zero). Used by scale-up so
  // existing tasks stay where they are and only the new tasks are placed.
  std::vector<int> min_per_site;
  // Per-site upper bounds on p[s] (empty = no extra cap; -1 entries mean
  // uncapped). Region decomposition pins out-of-region sites to their current
  // task count (min == max) so a localized re-plan only re-solves the
  // affected region's subproblem (DESIGN.md §14).
  std::vector<int> max_per_site;
  // Anti-affinity: sites the stage must not place on (their slot bound is
  // forced to zero). Standby placement excludes every site sharing a failure
  // domain with the primary so one domain_down cannot take both copies.
  std::vector<SiteId> excluded_sites;
};

// PlacementOutcome lives in physical/placement.h (shared with the cache).

class Scheduler {
 public:
  struct Config {
    double alpha = 0.8;  // bandwidth utilization threshold (§4.1)
    // Use the original (rescan-pricing simplex, copy-per-node B&B) solver
    // stack and bypass the placement cache. Kept so tests can assert the
    // optimized stack returns identical placements and objectives.
    bool use_reference_solvers = false;

    // --- Scale pipeline (DESIGN.md §14) ---------------------------------
    // Below this site count the legacy exact branch & bound runs unchanged
    // (bit-identical placements, the paper-testbed contract). At or above
    // it, the folded ILP's structure (box bounds + one equality row) lets a
    // greedy direct solve produce the exact optimum in O(m log m).
    std::size_t direct_solve_min_sites = 33;
    // Route at-scale instances through the budgeted branch & bound +
    // LP-rounding pipeline instead of the direct solve. The general-
    // structure fallback; tests force it to exercise budgets/rounding.
    bool force_branch_and_bound = false;
    // Base node budget for budgeted B&B (AdaptiveNodeBudget bump/reduce
    // dynamics; only consulted on the force_branch_and_bound path).
    std::size_t bb_node_budget_base = 512;
    // Per-relaxation simplex pivot cap on the budgeted path (0 = unlimited).
    // A pathological relaxation trips it, its subtree is dropped, and the
    // solve falls through to LP rounding -- whose single fallback relaxation
    // always runs uncapped (the budget guards the tree, not one LP).
    std::size_t lp_pivot_limit = 0;
    // Warm-start the root relaxation from the previous solve's basis for
    // the same stage signature (at-scale B&B path only).
    bool warm_start = true;
    // Keep one previous epoch of the placement cache and consult it for
    // at-scale stages: a steady-state re-plan whose inputs did not change
    // byte-for-byte reuses last epoch's outcome instead of re-solving.
    // Sub-scale stages never read the previous generation, so paper-
    // testbed cache_hit trace flags are unchanged.
    bool cross_epoch_cache = true;
  };

  Scheduler() = default;
  explicit Scheduler(Config config)
      : config_(config), budget_(config.bb_node_budget_base) {}

  [[nodiscard]] const Config& config() const { return config_; }

  // Observability: when set, every non-pinned place_stage call emits a
  // "placement_ilp" span (cache hit/miss, B&B nodes, LP iterations, wall
  // time) nested under the caller's ambient span. Null disables.
  void set_trace(obs::TraceEmitter* trace) { trace_ = trace; }

  // Tick-phase profiler hook (DESIGN.md §13): place_stage runs under the
  // control.solver.placement phase. Null (the default) disables.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

  // Starts a new decision epoch: rotates the placement memo cache (the
  // current generation becomes the previous one). Within-epoch hits are
  // guaranteed bit-identical to a fresh solve (exact-byte keying, see
  // placement_cache.h); previous-generation hits -- consulted only for
  // at-scale stages under Config::cross_epoch_cache -- carry the same
  // guarantee because the key covers every byte the solver reads.
  void begin_epoch() const { cache_.begin_epoch(); }
  [[nodiscard]] const PlacementCache::Stats& cache_stats() const {
    return cache_.stats();
  }

  // Solves Eq. 1-5 for one stage. Returns nullopt when no feasible placement
  // exists with the given parallelism (the trigger for operator scaling,
  // §4.2). `extra_slots` are added to the view's availability per site --
  // used when re-assigning a stage whose own tasks will vacate slots.
  [[nodiscard]] std::optional<PlacementOutcome> place_stage(
      const StageContext& context, const NetworkView& view,
      const std::vector<int>& extra_slots = {}) const;

  // Smallest parallelism p' >= `min_parallelism` for which a feasible
  // placement exists, up to `max_parallelism`; nullopt if none. Implements
  // the scale-out search of §4.2 ("ratio between the stream rate that cannot
  // be handled over the bandwidth availability" -- found constructively by
  // the ILP feasibility test). `extra_slots` is threaded through to every
  // `place_stage` probe so a stage being re-placed can count its own
  // soon-to-be-vacated slots at every candidate parallelism.
  [[nodiscard]] std::optional<PlacementOutcome> place_with_min_parallelism(
      const StageContext& context, const NetworkView& view,
      int min_parallelism, int max_parallelism,
      const std::vector<int>& extra_slots = {}) const;

 private:
  // The at-scale general-structure pipeline (Config::force_branch_and_bound):
  // warm-started branch & bound under the adaptive node budget, LP-rounding
  // fallback when the budget trips without an incumbent.
  [[nodiscard]] std::optional<PlacementOutcome> solve_budgeted(
      const StageContext& context, const NetworkView& view,
      const std::vector<int>& extra_slots, ilp::IlpResult* stats) const;

  Config config_{};
  obs::TraceEmitter* trace_ = nullptr;  // non-owning; see set_trace
  obs::Profiler* profiler_ = nullptr;   // non-owning; see set_profiler
  // Per-epoch memo of ILP outcomes; mutable so the const placement API can
  // populate it (it is invisible in results, only in latency).
  mutable PlacementCache cache_;
  // Reused key buffer: probes rebuild the key in place instead of allocating
  // a fresh string each time.
  mutable std::string key_scratch_;
  // --- Scale-pipeline state (at-scale B&B path only; see Config) --------
  // Adaptive node budget shared by every budgeted solve this scheduler runs.
  mutable AdaptiveNodeBudget budget_;
  // Root-relaxation bases keyed by stage signature (parallelism + endpoint/
  // exclusion sites -- the structure a basis transfers across). Persists
  // across epochs; an unusable basis falls back to a cold solve inside the
  // simplex, so stale entries cost nothing but the failed install.
  mutable std::unordered_map<std::string, std::vector<std::size_t>>
      warm_bases_;
  mutable std::string sig_scratch_;  // reused signature buffer
};

}  // namespace wasp::physical
