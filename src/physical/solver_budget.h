// Adaptive node budget for the budgeted branch & bound path (DESIGN.md §14).
//
// The bump/reduce dynamics follow the Limit/Delay idiom CaDiCaL uses for
// restart scheduling: when a budgeted search trips its limit (the budget was
// too small to finish), the interval doubles so the next solve gets more
// room; when a search completes cleanly, the interval halves so budgets decay
// back toward the base. The limit is `base * (1 + interval)`, so a scheduler
// whose instances keep tripping grows its budget geometrically instead of
// paying an LP-rounding fallback forever, and one whose instances are easy
// pays (almost) only the base.
#pragma once

#include <algorithm>
#include <cstddef>

namespace wasp::physical {

class AdaptiveNodeBudget {
 public:
  AdaptiveNodeBudget() = default;
  explicit AdaptiveNodeBudget(std::size_t base) : base_(base) {}

  // Node cap for the next budgeted solve.
  [[nodiscard]] std::size_t limit() const { return base_ + interval_ * base_; }
  [[nodiscard]] std::size_t base() const { return base_; }
  [[nodiscard]] std::size_t interval() const { return interval_; }

  // The last budgeted solve tripped its limit: double the interval.
  void bump() { interval_ = std::min(interval_ == 0 ? 1 : interval_ * 2, kMaxInterval); }

  // The last budgeted solve finished within budget: halve the interval.
  void reduce() { interval_ /= 2; }

 private:
  // Caps limit() at base * (1 + 2^10); past that the instance is pathological
  // and LP rounding is the right answer anyway.
  static constexpr std::size_t kMaxInterval = 1024;

  std::size_t base_ = 512;
  std::size_t interval_ = 0;
};

}  // namespace wasp::physical
