#include "lp/problem.h"

#include <cassert>

namespace wasp::lp {

std::size_t Problem::add_variable(double objective_coeff, double lower,
                                  double upper) {
  assert(lower <= upper);
  objective_.push_back(objective_coeff);
  lower_.push_back(lower);
  upper_.push_back(upper);
  return objective_.size() - 1;
}

void Problem::add_constraint(Constraint c) {
  assert(c.vars.size() == c.coeffs.size());
  for (std::size_t v : c.vars) {
    assert(v < num_variables());
    (void)v;
  }
  constraints_.push_back(std::move(c));
}

void Problem::add_dense_constraint(const std::vector<double>& coeffs,
                                   RowType type, double rhs) {
  assert(coeffs.size() == num_variables());
  Constraint c;
  c.type = type;
  c.rhs = rhs;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    if (coeffs[i] != 0.0) {
      c.vars.push_back(i);
      c.coeffs.push_back(coeffs[i]);
    }
  }
  constraints_.push_back(std::move(c));
}

void Problem::set_bounds(std::size_t var, double lower, double upper) {
  assert(var < num_variables());
  assert(lower <= upper);
  lower_[var] = lower;
  upper_[var] = upper;
}

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "?";
}

}  // namespace wasp::lp
