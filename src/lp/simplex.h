// Two-phase primal simplex solver over dense tableaus.
//
// Scope: exact solutions for the small LPs arising in WASP's placement and
// migration optimizations (tens of variables). General variable bounds are
// handled by substitution (lower bounds shifted to zero, finite upper bounds
// added as rows, free variables split). Bland's pivoting rule guarantees
// termination on degenerate problems.
#pragma once

#include <cstddef>

#include "lp/problem.h"

namespace wasp::lp {

struct SimplexOptions {
  // Entering-column pricing strategy. kMaintainedRow keeps the reduced-cost
  // row in the tableau (priced once per phase, updated on every pivot), so
  // column selection is an O(n) row scan. kRescan recomputes each reduced
  // cost from the basis on every iteration (O(m·n) per selection); it is the
  // original implementation, kept as a reference for equivalence testing.
  enum class Pricing { kMaintainedRow, kRescan };

  // Numeric tolerance for feasibility/optimality tests.
  double eps = 1e-9;
  // Hard cap on pivots per phase; 0 means the solver picks a generous bound
  // from the problem size.
  std::size_t max_iterations = 0;
  Pricing pricing = Pricing::kMaintainedRow;
  // Warm start: a basis previously captured via `capture_basis` from a
  // structurally identical problem (same variables, same constraint order and
  // types). The solver installs it by pivoting and, if the resulting basic
  // solution is feasible, skips phase 1 entirely. An unusable basis (wrong
  // shape, singular install, infeasible point) silently falls back to the
  // cold two-phase solve, so warm starts never change the result -- only the
  // pivot count. Not owned; must outlive the solve() call.
  const std::vector<std::size_t>* warm_basis = nullptr;
  // Capture the optimal basis into Solution::basis (off by default: the copy
  // is wasted work for one-shot solves).
  bool capture_basis = false;
};

// Solves the LP relaxation of `problem` (integrality is ignored here; see
// wasp::ilp for integer solves).
[[nodiscard]] Solution solve(const Problem& problem,
                             const SimplexOptions& options = {});

}  // namespace wasp::lp
