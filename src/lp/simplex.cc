#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace wasp::lp {
namespace {

// Internal standard-form program:
//   minimize c'y  s.t.  T y = b, y >= 0, b >= 0
// built from the user's problem by variable substitution. `Mapping` records
// how to recover the original variable values from y.
struct VarMap {
  // x = offset + sign_pos * y[pos] - y[neg] (neg == npos unless free split).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t pos = npos;
  std::size_t neg = npos;
  double offset = 0.0;
  double sign = 1.0;  // applied to y[pos]
};

struct StandardForm {
  // Row-major coefficient matrix over structural vars (stride
  // `num_structural`). Flat storage: the solver is allocation-bound on the
  // small LPs this repo solves, so rows share one contiguous buffer.
  std::vector<double> rows;
  std::vector<double> rhs;
  std::vector<RowType> types;
  std::vector<double> cost;  // minimization costs over structural vars
  double objective_offset = 0.0;
  bool maximize = false;
  std::vector<VarMap> mapping;  // original var -> structural var(s)
  std::size_t num_structural = 0;

  [[nodiscard]] std::size_t num_rows() const { return rhs.size(); }
  [[nodiscard]] const double* row(std::size_t r) const {
    return rows.data() + r * num_structural;
  }
};

StandardForm build_standard_form(const Problem& p) {
  StandardForm sf;
  sf.maximize = p.sense() == Sense::kMaximize;
  const std::size_t n = p.num_variables();
  sf.mapping.resize(n);

  // Assign structural columns per variable based on its bounds.
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = p.lower_bounds()[i];
    const double hi = p.upper_bounds()[i];
    VarMap& m = sf.mapping[i];
    if (lo == -kInfinity && hi == kInfinity) {
      m.pos = sf.num_structural++;
      m.neg = sf.num_structural++;
    } else if (lo == -kInfinity) {
      // x = hi - y, y >= 0.
      m.pos = sf.num_structural++;
      m.sign = -1.0;
      m.offset = hi;
    } else {
      // x = lo + y, y >= 0; finite hi becomes a row later.
      m.pos = sf.num_structural++;
      m.offset = lo;
    }
  }

  // Objective over structural vars (as a minimization).
  sf.cost.assign(sf.num_structural, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double c = p.objective()[i];
    if (sf.maximize) c = -c;
    const VarMap& m = sf.mapping[i];
    sf.cost[m.pos] += c * m.sign;
    if (m.neg != VarMap::npos) sf.cost[m.neg] -= c;
    sf.objective_offset += c * m.offset;
  }

  // Opens a fresh zeroed row in the flat buffer and returns its base pointer.
  auto open_row = [&](RowType type, double rhs) -> double* {
    const std::size_t base = sf.rows.size();
    sf.rows.resize(base + sf.num_structural, 0.0);
    sf.rhs.push_back(rhs);
    sf.types.push_back(type);
    return sf.rows.data() + base;
  };
  sf.rows.reserve(sf.num_structural * (p.constraints().size() + n));
  sf.rhs.reserve(p.constraints().size() + n);
  sf.types.reserve(p.constraints().size() + n);

  // User constraints, rewritten over structural variables.
  for (const Constraint& c : p.constraints()) {
    double rhs = c.rhs;
    for (std::size_t k = 0; k < c.vars.size(); ++k) {
      rhs -= c.coeffs[k] * sf.mapping[c.vars[k]].offset;
    }
    double* row = open_row(c.type, rhs);
    for (std::size_t k = 0; k < c.vars.size(); ++k) {
      const VarMap& m = sf.mapping[c.vars[k]];
      const double a = c.coeffs[k];
      row[m.pos] += a * m.sign;
      if (m.neg != VarMap::npos) row[m.neg] -= a;
    }
  }

  // Finite upper bounds become explicit rows: y <= hi - lo.
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = p.lower_bounds()[i];
    const double hi = p.upper_bounds()[i];
    if (lo != -kInfinity && hi != kInfinity) {
      open_row(RowType::kLe, hi - lo)[sf.mapping[i].pos] = 1.0;
    }
  }
  return sf;
}

// Dense tableau with an explicit basis. Columns: structural vars, then slack/
// surplus, then artificials, then rhs.
class Tableau {
 public:
  Tableau(StandardForm sf, const SimplexOptions& options)
      : sf_(std::move(sf)),
        eps_(options.eps),
        capture_basis_(options.capture_basis),
        maintained_pricing_(options.pricing ==
                            SimplexOptions::Pricing::kMaintainedRow) {
    const std::size_t m = sf_.num_rows();
    num_rows_ = m;
    // Count auxiliary columns.
    std::size_t slack = 0;
    for (RowType t : sf_.types) {
      if (t != RowType::kEq) ++slack;
    }
    slack_begin_ = sf_.num_structural;
    art_begin_ = slack_begin_ + slack;
    num_cols_ = art_begin_ + m;  // one artificial slot per row (may be unused)
    stride_ = num_cols_ + 1;
    max_iters_ = options.max_iterations != 0
                     ? options.max_iterations
                     : 50 * (m + num_cols_) + 1000;

    a_.assign(m * stride_, 0.0);
    basis_.assign(m, 0);
    is_artificial_.assign(num_cols_, 0);
    blocked_.assign(num_cols_, 0);

    // Phase-1 feasibility is declared when the artificial objective drops
    // below a tolerance derived from the requested eps and the data scale:
    // residuals are sums over RHS-magnitude terms, so the cutoff must grow
    // with the RHS and shrink when the caller tightens eps.
    double max_abs_rhs = 0.0;
    for (double b : sf_.rhs) max_abs_rhs = std::max(max_abs_rhs, std::abs(b));
    feas_tol_ = options.eps * 100.0 * std::max(1.0, max_abs_rhs);

    std::size_t next_slack = slack_begin_;
    for (std::size_t r = 0; r < m; ++r) {
      double sign = 1.0;
      RowType type = sf_.types[r];
      double rhs = sf_.rhs[r];
      if (rhs < 0.0) {
        sign = -1.0;
        rhs = -rhs;
        type = type == RowType::kLe
                   ? RowType::kGe
                   : (type == RowType::kGe ? RowType::kLe : RowType::kEq);
      }
      double* arow = row(r);
      const double* src = sf_.row(r);
      for (std::size_t c = 0; c < sf_.num_structural; ++c) {
        arow[c] = sign * src[c];
      }
      arow[num_cols_] = rhs;

      switch (type) {
        case RowType::kLe:
          arow[next_slack] = 1.0;
          basis_[r] = next_slack++;
          break;
        case RowType::kGe:
          arow[next_slack] = -1.0;
          ++next_slack;
          arow[art_begin_ + r] = 1.0;
          is_artificial_[art_begin_ + r] = 1;
          basis_[r] = art_begin_ + r;
          break;
        case RowType::kEq:
          arow[art_begin_ + r] = 1.0;
          is_artificial_[art_begin_ + r] = 1;
          basis_[r] = art_begin_ + r;
          break;
      }
    }
  }

  // Attempts to install a previously captured basis by pivoting each desired
  // column into the basis. Returns true when every non-artificial desired
  // column is basic afterwards and the resulting basic solution is feasible
  // (rhs >= -tol, artificial basics at ~0); run() then skips phase 1. On
  // false the tableau has been mutated by partial pivoting and the caller
  // must discard it (cold fallback) -- pivots preserve tableau validity but
  // not the phase-1-ready starting basis.
  bool try_install_basis(const std::vector<std::size_t>& warm) {
    if (warm.size() != num_rows_) return false;
    for (std::size_t d : warm) {
      if (d >= num_cols_) return false;
    }
    std::vector<char> desired(num_cols_, 0);
    for (std::size_t d : warm) {
      if (!is_artificial_[d]) desired[d] = 1;
    }
    std::vector<char> basic(num_cols_, 0);
    for (std::size_t b : basis_) basic[b] = 1;
    for (std::size_t d : warm) {
      if (is_artificial_[d] || basic[d]) continue;
      // Pivot `d` in over a row whose current basic variable is not itself
      // desired; the largest-magnitude pivot wins for numeric stability.
      std::size_t best_row = num_rows_;
      double best_mag = eps_;
      for (std::size_t r = 0; r < num_rows_; ++r) {
        if (desired[basis_[r]]) continue;
        const double mag = std::abs(row(r)[d]);
        if (mag > best_mag) {
          best_row = r;
          best_mag = mag;
        }
      }
      if (best_row == num_rows_) return false;  // singular: cold fallback
      basic[basis_[best_row]] = 0;
      pivot(best_row, d);
      basic[d] = 1;
    }
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (row(r)[num_cols_] < -feas_tol_) return false;
      if (is_artificial_[basis_[r]] &&
          std::abs(row(r)[num_cols_]) > feas_tol_) {
        return false;
      }
    }
    warm_feasible_ = true;
    return true;
  }

  Solution run() {
    if (warm_feasible_) {
      // A warm basis was installed at a feasible point: phase 1 is already
      // done. Block artificials exactly as drop_artificials() would.
      for (std::size_t c = art_begin_; c < num_cols_; ++c) {
        if (is_artificial_[c]) blocked_[c] = 1;
      }
    } else {
      // Phase 1: minimize the sum of artificial variables. `cost_` is reused
      // as the phase-cost buffer for both phases.
      cost_.assign(num_cols_, 0.0);
      bool any_artificial = false;
      for (std::size_t c = art_begin_; c < num_cols_; ++c) {
        if (is_artificial_[c]) {
          cost_[c] = 1.0;
          any_artificial = true;
        }
      }
      if (any_artificial) {
        const SolveStatus s1 = optimize(cost_);
        if (s1 == SolveStatus::kIterationLimit) return Solution{.status = s1, .objective = 0.0, .values = {}, .iterations = pivots_};
        if (phase_objective(cost_) > feas_tol_) {
          return Solution{.status = SolveStatus::kInfeasible, .objective = 0.0, .values = {}, .iterations = pivots_};
        }
        drop_artificials();
      }
    }

    // Phase 2: the real objective.
    cost_.assign(num_cols_, 0.0);
    for (std::size_t c = 0; c < sf_.num_structural; ++c) cost_[c] = sf_.cost[c];
    const SolveStatus s2 = optimize(cost_);
    if (s2 != SolveStatus::kOptimal) return Solution{.status = s2, .objective = 0.0, .values = {}, .iterations = pivots_};

    // Recover original variable values.
    std::vector<double> y(num_cols_, 0.0);
    for (std::size_t r = 0; r < num_rows_; ++r) {
      y[basis_[r]] = row(r)[num_cols_];
    }
    Solution sol;
    sol.status = SolveStatus::kOptimal;
    sol.iterations = pivots_;
    if (capture_basis_) sol.basis = basis_;
    sol.values.resize(sf_.mapping.size(), 0.0);
    for (std::size_t i = 0; i < sf_.mapping.size(); ++i) {
      const VarMap& m = sf_.mapping[i];
      double v = m.offset + m.sign * y[m.pos];
      if (m.neg != VarMap::npos) v -= y[m.neg];
      sol.values[i] = v;
    }
    double obj = sf_.objective_offset;
    for (std::size_t c = 0; c < sf_.num_structural; ++c) obj += sf_.cost[c] * y[c];
    sol.objective = sf_.maximize ? -obj : obj;
    return sol;
  }

 private:
  [[nodiscard]] double* row(std::size_t r) { return a_.data() + r * stride_; }
  [[nodiscard]] const double* row(std::size_t r) const {
    return a_.data() + r * stride_;
  }

  double phase_objective(const std::vector<double>& cost) const {
    double obj = 0.0;
    for (std::size_t r = 0; r < num_rows_; ++r) {
      obj += cost[basis_[r]] * row(r)[num_cols_];
    }
    return obj;
  }

  // Reduced cost of column c under `cost` with the current basis, computed
  // directly from the tableau (the tableau rows are already B^-1 A).
  double reduced_cost(const std::vector<double>& cost, std::size_t c) const {
    double z = 0.0;
    for (std::size_t r = 0; r < num_rows_; ++r) {
      z += cost[basis_[r]] * row(r)[c];
    }
    return cost[c] - z;
  }

  SolveStatus optimize(const std::vector<double>& cost) {
    if (maintained_pricing_) {
      // Price every column once per phase; pivot() keeps the row current.
      red_.resize(num_cols_);
      for (std::size_t c = 0; c < num_cols_; ++c) {
        red_[c] = reduced_cost(cost, c);
      }
    }
    const SolveStatus status = optimize_loop(cost);
    red_.clear();  // pivots outside optimize() (drop_artificials) don't track
    return status;
  }

  SolveStatus optimize_loop(const std::vector<double>& cost) {
    for (std::size_t iter = 0; iter < max_iters_; ++iter) {
      // Bland's rule: the lowest-index column with negative reduced cost.
      std::size_t entering = num_cols_;
      for (std::size_t c = 0; c < num_cols_; ++c) {
        if (blocked_[c]) continue;
        const double rc =
            maintained_pricing_ ? red_[c] : reduced_cost(cost, c);
        if (rc < -eps_) {
          entering = c;
          break;
        }
      }
      if (entering == num_cols_) return SolveStatus::kOptimal;

      // Ratio test; Bland tie-break on the leaving basic variable index.
      std::size_t leaving_row = num_rows_;
      double best_ratio = 0.0;
      for (std::size_t r = 0; r < num_rows_; ++r) {
        const double pivot = row(r)[entering];
        if (pivot > eps_) {
          const double ratio = row(r)[num_cols_] / pivot;
          if (leaving_row == num_rows_ || ratio < best_ratio - eps_ ||
              (std::abs(ratio - best_ratio) <= eps_ &&
               basis_[r] < basis_[leaving_row])) {
            leaving_row = r;
            best_ratio = ratio;
          }
        }
      }
      if (leaving_row == num_rows_) return SolveStatus::kUnbounded;
      pivot(leaving_row, entering);
    }
    return SolveStatus::kIterationLimit;
  }

  void pivot(std::size_t prow, std::size_t col) {
    ++pivots_;
    double* pr = row(prow);
    const double p = pr[col];
    assert(std::abs(p) > 0.0);
    for (std::size_t c = 0; c <= num_cols_; ++c) pr[c] /= p;
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (r == prow) continue;
      double* tr = row(r);
      const double factor = tr[col];
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c <= num_cols_; ++c) {
        tr[c] -= factor * pr[c];
      }
    }
    // Reduced-cost row invariant: the row transforms exactly like any other
    // tableau row under the elimination, using the normalized pivot row.
    if (!red_.empty()) {
      const double factor = red_[col];
      if (factor != 0.0) {
        for (std::size_t c = 0; c < num_cols_; ++c) {
          red_[c] -= factor * pr[c];
        }
      }
    }
    basis_[prow] = col;
  }

  // After phase 1: pivot artificials out of the basis where possible and
  // block every artificial column from re-entering.
  void drop_artificials() {
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (!is_artificial_[basis_[r]]) continue;
      // The artificial is basic at value ~0 (phase 1 succeeded). Pivot in any
      // non-artificial column with a nonzero entry; if none exists the row is
      // redundant and harmlessly keeps its zero-valued artificial.
      const double* rr = row(r);
      for (std::size_t c = 0; c < art_begin_; ++c) {
        if (std::abs(rr[c]) > eps_) {
          pivot(r, c);
          break;
        }
      }
    }
    blocked_.assign(num_cols_, 0);
    for (std::size_t c = art_begin_; c < num_cols_; ++c) {
      if (is_artificial_[c]) blocked_[c] = 1;
    }
  }

  StandardForm sf_;
  double eps_;
  bool capture_basis_ = false;
  bool warm_feasible_ = false;
  bool maintained_pricing_ = true;
  double feas_tol_ = 1e-7;
  std::vector<double> red_;  // maintained reduced costs, active in optimize()
  std::vector<double> cost_;  // phase cost buffer, reused across phases
  std::size_t slack_begin_ = 0;
  std::size_t art_begin_ = 0;
  std::size_t num_cols_ = 0;
  std::size_t num_rows_ = 0;
  std::size_t stride_ = 0;
  std::size_t max_iters_ = 0;
  std::size_t pivots_ = 0;  // total pivots across both phases
  std::vector<double> a_;  // row-major, `stride_` doubles per row (rhs last)
  std::vector<std::size_t> basis_;
  std::vector<char> is_artificial_;
  std::vector<char> blocked_;
};

}  // namespace

Solution solve(const Problem& problem, const SimplexOptions& options) {
  // Degenerate case: no variables.
  if (problem.num_variables() == 0) {
    Solution sol;
    sol.status = SolveStatus::kOptimal;
    sol.objective = 0.0;
    return sol;
  }
  StandardForm sf = build_standard_form(problem);
  if (options.warm_basis != nullptr && !options.warm_basis->empty()) {
    // Warm attempt on a copy of the standard form: a failed install mutates
    // the tableau, so the cold path below rebuilds from the pristine form.
    Tableau warm(sf, options);
    if (warm.try_install_basis(*options.warm_basis)) return warm.run();
  }
  Tableau tableau(std::move(sf), options);
  return tableau.run();
}

}  // namespace wasp::lp
