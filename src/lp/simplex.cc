#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace wasp::lp {
namespace {

// Internal standard-form program:
//   minimize c'y  s.t.  T y = b, y >= 0, b >= 0
// built from the user's problem by variable substitution. `Mapping` records
// how to recover the original variable values from y.
struct VarMap {
  // x = offset + sign_pos * y[pos] - y[neg] (neg == npos unless free split).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t pos = npos;
  std::size_t neg = npos;
  double offset = 0.0;
  double sign = 1.0;  // applied to y[pos]
};

struct StandardForm {
  std::vector<std::vector<double>> rows;  // coefficients over structural vars
  std::vector<double> rhs;
  std::vector<RowType> types;
  std::vector<double> cost;  // minimization costs over structural vars
  double objective_offset = 0.0;
  bool maximize = false;
  std::vector<VarMap> mapping;  // original var -> structural var(s)
  std::size_t num_structural = 0;
};

StandardForm build_standard_form(const Problem& p) {
  StandardForm sf;
  sf.maximize = p.sense() == Sense::kMaximize;
  const std::size_t n = p.num_variables();
  sf.mapping.resize(n);

  // Assign structural columns per variable based on its bounds.
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = p.lower_bounds()[i];
    const double hi = p.upper_bounds()[i];
    VarMap& m = sf.mapping[i];
    if (lo == -kInfinity && hi == kInfinity) {
      m.pos = sf.num_structural++;
      m.neg = sf.num_structural++;
    } else if (lo == -kInfinity) {
      // x = hi - y, y >= 0.
      m.pos = sf.num_structural++;
      m.sign = -1.0;
      m.offset = hi;
    } else {
      // x = lo + y, y >= 0; finite hi becomes a row later.
      m.pos = sf.num_structural++;
      m.offset = lo;
    }
  }

  // Objective over structural vars (as a minimization).
  sf.cost.assign(sf.num_structural, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double c = p.objective()[i];
    if (sf.maximize) c = -c;
    const VarMap& m = sf.mapping[i];
    sf.cost[m.pos] += c * m.sign;
    if (m.neg != VarMap::npos) sf.cost[m.neg] -= c;
    sf.objective_offset += c * m.offset;
  }

  auto add_row = [&](const std::vector<std::pair<std::size_t, double>>& terms,
                     RowType type, double rhs) {
    std::vector<double> row(sf.num_structural, 0.0);
    for (const auto& [var, coeff] : terms) row[var] += coeff;
    sf.rows.push_back(std::move(row));
    sf.rhs.push_back(rhs);
    sf.types.push_back(type);
  };

  // User constraints, rewritten over structural variables.
  for (const Constraint& c : p.constraints()) {
    std::vector<std::pair<std::size_t, double>> terms;
    double rhs = c.rhs;
    for (std::size_t k = 0; k < c.vars.size(); ++k) {
      const VarMap& m = sf.mapping[c.vars[k]];
      const double a = c.coeffs[k];
      terms.emplace_back(m.pos, a * m.sign);
      if (m.neg != VarMap::npos) terms.emplace_back(m.neg, -a);
      rhs -= a * m.offset;
    }
    add_row(terms, c.type, rhs);
  }

  // Finite upper bounds become explicit rows: y <= hi - lo.
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = p.lower_bounds()[i];
    const double hi = p.upper_bounds()[i];
    if (lo != -kInfinity && hi != kInfinity) {
      add_row({{sf.mapping[i].pos, 1.0}}, RowType::kLe, hi - lo);
    }
  }
  return sf;
}

// Dense tableau with an explicit basis. Columns: structural vars, then slack/
// surplus, then artificials, then rhs.
class Tableau {
 public:
  Tableau(StandardForm sf, const SimplexOptions& options)
      : sf_(std::move(sf)), eps_(options.eps) {
    const std::size_t m = sf_.rows.size();
    // Count auxiliary columns.
    std::size_t slack = 0;
    for (RowType t : sf_.types) {
      if (t != RowType::kEq) ++slack;
    }
    slack_begin_ = sf_.num_structural;
    art_begin_ = slack_begin_ + slack;
    num_cols_ = art_begin_ + m;  // one artificial slot per row (may be unused)
    max_iters_ = options.max_iterations != 0
                     ? options.max_iterations
                     : 50 * (m + num_cols_) + 1000;

    a_.assign(m, std::vector<double>(num_cols_ + 1, 0.0));
    basis_.assign(m, 0);
    is_artificial_.assign(num_cols_, false);
    blocked_.assign(num_cols_, false);

    std::size_t next_slack = slack_begin_;
    for (std::size_t r = 0; r < m; ++r) {
      double sign = 1.0;
      RowType type = sf_.types[r];
      double rhs = sf_.rhs[r];
      if (rhs < 0.0) {
        sign = -1.0;
        rhs = -rhs;
        type = type == RowType::kLe
                   ? RowType::kGe
                   : (type == RowType::kGe ? RowType::kLe : RowType::kEq);
      }
      for (std::size_t c = 0; c < sf_.num_structural; ++c) {
        a_[r][c] = sign * sf_.rows[r][c];
      }
      a_[r][num_cols_] = rhs;

      switch (type) {
        case RowType::kLe:
          a_[r][next_slack] = 1.0;
          basis_[r] = next_slack++;
          break;
        case RowType::kGe:
          a_[r][next_slack] = -1.0;
          ++next_slack;
          a_[r][art_begin_ + r] = 1.0;
          is_artificial_[art_begin_ + r] = true;
          basis_[r] = art_begin_ + r;
          break;
        case RowType::kEq:
          a_[r][art_begin_ + r] = 1.0;
          is_artificial_[art_begin_ + r] = true;
          basis_[r] = art_begin_ + r;
          break;
      }
    }
  }

  Solution run() {
    // Phase 1: minimize the sum of artificial variables.
    std::vector<double> phase1_cost(num_cols_, 0.0);
    bool any_artificial = false;
    for (std::size_t c = art_begin_; c < num_cols_; ++c) {
      if (is_artificial_[c]) {
        phase1_cost[c] = 1.0;
        any_artificial = true;
      }
    }
    if (any_artificial) {
      const SolveStatus s1 = optimize(phase1_cost);
      if (s1 == SolveStatus::kIterationLimit) return Solution{.status = s1, .objective = 0.0, .values = {}};
      if (phase_objective(phase1_cost) > 1e-7) {
        return Solution{.status = SolveStatus::kInfeasible, .objective = 0.0, .values = {}};
      }
      drop_artificials();
    }

    // Phase 2: the real objective.
    std::vector<double> cost(num_cols_, 0.0);
    for (std::size_t c = 0; c < sf_.num_structural; ++c) cost[c] = sf_.cost[c];
    const SolveStatus s2 = optimize(cost);
    if (s2 != SolveStatus::kOptimal) return Solution{.status = s2, .objective = 0.0, .values = {}};

    // Recover original variable values.
    std::vector<double> y(num_cols_, 0.0);
    for (std::size_t r = 0; r < a_.size(); ++r) {
      y[basis_[r]] = a_[r][num_cols_];
    }
    Solution sol;
    sol.status = SolveStatus::kOptimal;
    sol.values.resize(sf_.mapping.size(), 0.0);
    for (std::size_t i = 0; i < sf_.mapping.size(); ++i) {
      const VarMap& m = sf_.mapping[i];
      double v = m.offset + m.sign * y[m.pos];
      if (m.neg != VarMap::npos) v -= y[m.neg];
      sol.values[i] = v;
    }
    double obj = sf_.objective_offset;
    for (std::size_t c = 0; c < sf_.num_structural; ++c) obj += sf_.cost[c] * y[c];
    sol.objective = sf_.maximize ? -obj : obj;
    return sol;
  }

 private:
  double phase_objective(const std::vector<double>& cost) const {
    double obj = 0.0;
    for (std::size_t r = 0; r < a_.size(); ++r) {
      obj += cost[basis_[r]] * a_[r][num_cols_];
    }
    return obj;
  }

  // Reduced cost of column c under `cost` with the current basis, computed
  // directly from the tableau (the tableau rows are already B^-1 A).
  double reduced_cost(const std::vector<double>& cost, std::size_t c) const {
    double z = 0.0;
    for (std::size_t r = 0; r < a_.size(); ++r) {
      z += cost[basis_[r]] * a_[r][c];
    }
    return cost[c] - z;
  }

  SolveStatus optimize(const std::vector<double>& cost) {
    for (std::size_t iter = 0; iter < max_iters_; ++iter) {
      // Bland's rule: the lowest-index column with negative reduced cost.
      std::size_t entering = num_cols_;
      for (std::size_t c = 0; c < num_cols_; ++c) {
        if (blocked_[c]) continue;
        if (reduced_cost(cost, c) < -eps_) {
          entering = c;
          break;
        }
      }
      if (entering == num_cols_) return SolveStatus::kOptimal;

      // Ratio test; Bland tie-break on the leaving basic variable index.
      std::size_t leaving_row = a_.size();
      double best_ratio = 0.0;
      for (std::size_t r = 0; r < a_.size(); ++r) {
        const double pivot = a_[r][entering];
        if (pivot > eps_) {
          const double ratio = a_[r][num_cols_] / pivot;
          if (leaving_row == a_.size() || ratio < best_ratio - eps_ ||
              (std::abs(ratio - best_ratio) <= eps_ &&
               basis_[r] < basis_[leaving_row])) {
            leaving_row = r;
            best_ratio = ratio;
          }
        }
      }
      if (leaving_row == a_.size()) return SolveStatus::kUnbounded;
      pivot(leaving_row, entering);
    }
    return SolveStatus::kIterationLimit;
  }

  void pivot(std::size_t row, std::size_t col) {
    const double p = a_[row][col];
    assert(std::abs(p) > 0.0);
    for (double& v : a_[row]) v /= p;
    for (std::size_t r = 0; r < a_.size(); ++r) {
      if (r == row) continue;
      const double factor = a_[r][col];
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c <= num_cols_; ++c) {
        a_[r][c] -= factor * a_[row][c];
      }
    }
    basis_[row] = col;
  }

  // After phase 1: pivot artificials out of the basis where possible and
  // block every artificial column from re-entering.
  void drop_artificials() {
    for (std::size_t r = 0; r < a_.size(); ++r) {
      if (!is_artificial_[basis_[r]]) continue;
      // The artificial is basic at value ~0 (phase 1 succeeded). Pivot in any
      // non-artificial column with a nonzero entry; if none exists the row is
      // redundant and harmlessly keeps its zero-valued artificial.
      for (std::size_t c = 0; c < art_begin_; ++c) {
        if (std::abs(a_[r][c]) > eps_) {
          pivot(r, c);
          break;
        }
      }
    }
    blocked_.assign(num_cols_, false);
    for (std::size_t c = art_begin_; c < num_cols_; ++c) {
      if (is_artificial_[c]) blocked_[c] = true;
    }
  }

  StandardForm sf_;
  double eps_;
  std::size_t slack_begin_ = 0;
  std::size_t art_begin_ = 0;
  std::size_t num_cols_ = 0;
  std::size_t max_iters_ = 0;
  std::vector<std::vector<double>> a_;
  std::vector<std::size_t> basis_;
  std::vector<bool> is_artificial_;
  std::vector<bool> blocked_;
};

}  // namespace

Solution solve(const Problem& problem, const SimplexOptions& options) {
  // Degenerate case: no variables.
  if (problem.num_variables() == 0) {
    Solution sol;
    sol.status = SolveStatus::kOptimal;
    sol.objective = 0.0;
    return sol;
  }
  Tableau tableau(build_standard_form(problem), options);
  return tableau.run();
}

}  // namespace wasp::lp
