// Linear-program model used by the simplex solver and the ILP layer.
//
// WASP's WAN-aware task placement (paper Eq. 1-5) is an integer linear
// program the prototype solved with Gurobi. Gurobi is proprietary, so this
// repository carries its own small LP/ILP stack: `lp` is the continuous
// solver, `ilp` adds branch & bound. Problems in this codebase are small
// (tens of variables/rows), so the implementation favors exactness and
// clarity over large-scale performance.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace wasp::lp {

enum class RowType { kLe, kGe, kEq };
enum class Sense { kMinimize, kMaximize };

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

struct Constraint {
  // Sparse row: parallel arrays of variable index and coefficient.
  std::vector<std::size_t> vars;
  std::vector<double> coeffs;
  RowType type = RowType::kLe;
  double rhs = 0.0;
};

class Problem {
 public:
  explicit Problem(Sense sense = Sense::kMinimize) : sense_(sense) {}

  // Adds a variable with the given objective coefficient and bounds.
  // Returns its index. Default bounds are [0, +inf).
  std::size_t add_variable(double objective_coeff, double lower = 0.0,
                           double upper = kInfinity);

  // Adds a constraint; variable indices must already exist.
  void add_constraint(Constraint c);

  // Convenience for dense rows over all variables.
  void add_dense_constraint(const std::vector<double>& coeffs, RowType type,
                            double rhs);

  [[nodiscard]] Sense sense() const { return sense_; }
  [[nodiscard]] std::size_t num_variables() const { return objective_.size(); }
  [[nodiscard]] std::size_t num_constraints() const {
    return constraints_.size();
  }
  [[nodiscard]] const std::vector<double>& objective() const {
    return objective_;
  }
  [[nodiscard]] const std::vector<double>& lower_bounds() const {
    return lower_;
  }
  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return upper_;
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }

  // Tightens a variable's bounds (used by branch & bound). The new bounds
  // replace the old ones.
  void set_bounds(std::size_t var, double lower, double upper);

 private:
  Sense sense_;
  std::vector<double> objective_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<Constraint> constraints_;
};

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
  // Simplex pivots performed across both phases (solver-cost attribution for
  // trace spans; 0 when the solve failed before pivoting).
  std::size_t iterations = 0;
  // Optimal basis (one tableau column index per constraint row), captured
  // only when SimplexOptions::capture_basis is set. Indices live in the
  // solver's internal column space (structural, then slack, then artificial),
  // so a basis is only meaningful as a warm start for a problem with the
  // same variable/constraint structure -- callers key it accordingly.
  std::vector<std::size_t> basis;

  [[nodiscard]] bool optimal() const { return status == SolveStatus::kOptimal; }
};

[[nodiscard]] std::string to_string(SolveStatus status);

}  // namespace wasp::lp
