#include "ilp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <tuple>

#include "lp/simplex.h"

namespace wasp::ilp {
namespace {

struct Node {
  // Bound overrides relative to the root problem: (var, lower, upper).
  std::vector<std::tuple<std::size_t, double, double>> bounds;
};

class Solver {
 public:
  Solver(const lp::Problem& problem, std::vector<std::size_t> integer_vars,
         const IlpOptions& options)
      : root_(problem),
        integer_vars_(std::move(integer_vars)),
        options_(options),
        minimize_(problem.sense() == lp::Sense::kMinimize) {
    max_nodes_ = options_.max_nodes != 0 ? options_.max_nodes : 200000;
  }

  IlpResult run() {
    IlpResult result;
    std::vector<Node> stack;
    stack.push_back(Node{});
    bool hit_node_limit = false;

    while (!stack.empty()) {
      if (result.nodes_explored >= max_nodes_) {
        hit_node_limit = true;
        break;
      }
      const Node node = std::move(stack.back());
      stack.pop_back();
      ++result.nodes_explored;

      lp::Problem sub = root_;
      bool consistent = true;
      for (const auto& [var, lo, hi] : node.bounds) {
        const double new_lo = std::max(lo, sub.lower_bounds()[var]);
        const double new_hi = std::min(hi, sub.upper_bounds()[var]);
        if (new_lo > new_hi) {
          consistent = false;
          break;
        }
        sub.set_bounds(var, new_lo, new_hi);
      }
      if (!consistent) continue;

      const lp::Solution relax = lp::solve(sub);
      if (relax.status == lp::SolveStatus::kUnbounded) {
        // An unbounded relaxation at the root means the ILP itself is
        // unbounded (or would need deeper analysis); report it.
        result.status = lp::SolveStatus::kUnbounded;
        return result;
      }
      if (!relax.optimal()) continue;

      // Prune against the incumbent.
      if (have_incumbent_ && !improves(relax.objective)) continue;

      const std::optional<std::size_t> frac = most_fractional(relax.values);
      if (!frac.has_value()) {
        // Integral solution: new incumbent.
        if (!have_incumbent_ || improves(relax.objective)) {
          have_incumbent_ = true;
          incumbent_objective_ = relax.objective;
          incumbent_values_ = relax.values;
          round_integer_values(incumbent_values_);
        }
        continue;
      }

      // Branch on the most fractional variable: floor branch and ceil branch.
      const std::size_t var = *frac;
      const double v = relax.values[var];
      Node down = node;
      down.bounds.emplace_back(var, -lp::kInfinity, std::floor(v));
      Node up = node;
      up.bounds.emplace_back(var, std::ceil(v), lp::kInfinity);
      // Explore the branch nearer the relaxation value first (stack: push it
      // last so it pops first).
      if (v - std::floor(v) < 0.5) {
        stack.push_back(std::move(up));
        stack.push_back(std::move(down));
      } else {
        stack.push_back(std::move(down));
        stack.push_back(std::move(up));
      }
    }

    if (have_incumbent_) {
      result.status = lp::SolveStatus::kOptimal;
      result.objective = incumbent_objective_;
      result.values = std::move(incumbent_values_);
    } else if (hit_node_limit) {
      result.status = lp::SolveStatus::kIterationLimit;
    } else {
      result.status = lp::SolveStatus::kInfeasible;
    }
    return result;
  }

 private:
  [[nodiscard]] bool improves(double objective) const {
    const double gap = options_.absolute_gap;
    return minimize_ ? objective < incumbent_objective_ - gap
                     : objective > incumbent_objective_ + gap;
  }

  [[nodiscard]] std::optional<std::size_t> most_fractional(
      const std::vector<double>& values) const {
    std::optional<std::size_t> best;
    double best_dist = 0.0;
    for (std::size_t var : integer_vars_) {
      const double v = values[var];
      const double frac = v - std::floor(v);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist > options_.integrality_eps && dist > best_dist) {
        best = var;
        best_dist = dist;
      }
    }
    return best;
  }

  void round_integer_values(std::vector<double>& values) const {
    for (std::size_t var : integer_vars_) {
      values[var] = std::round(values[var]);
    }
  }

  const lp::Problem& root_;
  std::vector<std::size_t> integer_vars_;
  IlpOptions options_;
  bool minimize_;
  std::size_t max_nodes_ = 0;
  bool have_incumbent_ = false;
  double incumbent_objective_ = 0.0;
  std::vector<double> incumbent_values_;
};

}  // namespace

IlpResult solve(const lp::Problem& problem,
                const std::vector<std::size_t>& integer_vars,
                const IlpOptions& options) {
  return Solver(problem, integer_vars, options).run();
}

IlpResult solve_all_integer(const lp::Problem& problem,
                            const IlpOptions& options) {
  std::vector<std::size_t> all(problem.num_variables());
  std::iota(all.begin(), all.end(), 0);
  return solve(problem, all, options);
}

}  // namespace wasp::ilp
