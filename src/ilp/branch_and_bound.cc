#include "ilp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <tuple>

#include "lp/simplex.h"

namespace wasp::ilp {
namespace {

constexpr std::size_t kNoVar = static_cast<std::size_t>(-1);

// Copy-per-node search node (reference algorithm): the full chain of bound
// overrides relative to the root problem.
struct Node {
  std::vector<std::tuple<std::size_t, double, double>> bounds;
};

// Copy-free search node: one bound delta on top of the parent's state plus
// the trail depth to rewind to before applying it.
struct FastNode {
  std::size_t var = kNoVar;  // kNoVar marks the root
  double lo = -lp::kInfinity;
  double hi = lp::kInfinity;
  std::size_t depth = 0;  // undo-trail length at the parent
  double parent_bound = 0.0;
  bool has_parent_bound = false;
};

// Undo-trail entry: the bounds `var` had before the last tightening.
struct TrailEntry {
  std::size_t var = 0;
  double old_lo = 0.0;
  double old_hi = 0.0;
};

class Solver {
 public:
  Solver(const lp::Problem& problem, std::vector<std::size_t> integer_vars,
         const IlpOptions& options)
      : root_(problem),
        integer_vars_(std::move(integer_vars)),
        options_(options),
        minimize_(problem.sense() == lp::Sense::kMinimize) {
    max_nodes_ = options_.max_nodes != 0 ? options_.max_nodes : 200000;
    // Tolerance for accepting the rounded root relaxation as a feasible
    // incumbent seed; scales with eps like the simplex feasibility cutoff.
    seed_eps_ = options_.lp_options.eps * 100.0;
  }

  IlpResult run() {
    return options_.algorithm == IlpOptions::Algorithm::kReference
               ? run_reference()
               : run_copy_free();
  }

 private:
  // ---- Copy-free search (default) ------------------------------------------
  //
  // One working problem; branch bounds are applied on descent and undone via
  // the trail on backtrack, so no per-node lp::Problem copies are made. The
  // DFS order, branching rule, and pruning tests match the reference search,
  // with two additions that cannot change the returned solution: children are
  // pruned by their parent's LP bound before being solved (a child relaxation
  // can only be weaker than its parent's), and the incumbent is seeded from
  // the rounded root relaxation when that rounding is feasible. While the
  // incumbent is the seed, pruning lets ties through and an equally-good
  // search-found solution replaces the seed, so the search still returns the
  // same solution the unseeded reference DFS would find.
  IlpResult run_copy_free() {
    IlpResult result;
    lp::Problem work = root_;
    std::vector<FastNode> stack;
    std::vector<TrailEntry> trail;
    stack.push_back(FastNode{});
    bool hit_node_limit = false;

    while (!stack.empty()) {
      if (result.nodes_explored >= max_nodes_) {
        hit_node_limit = true;
        break;
      }
      const FastNode node = stack.back();
      stack.pop_back();
      ++result.nodes_explored;

      // Backtrack to the parent's state, then apply this node's delta.
      while (trail.size() > node.depth) {
        const TrailEntry& e = trail.back();
        work.set_bounds(e.var, e.old_lo, e.old_hi);
        trail.pop_back();
      }
      if (node.var != kNoVar) {
        const double new_lo = std::max(node.lo, work.lower_bounds()[node.var]);
        const double new_hi = std::min(node.hi, work.upper_bounds()[node.var]);
        if (new_lo > new_hi) continue;
        trail.push_back(TrailEntry{node.var, work.lower_bounds()[node.var],
                                   work.upper_bounds()[node.var]});
        work.set_bounds(node.var, new_lo, new_hi);
      }

      // Bound propagation: the child's relaxation is never better than the
      // parent's, so if the parent bound already fails the incumbent test the
      // LP solve can be skipped outright.
      if (node.has_parent_bound && have_incumbent_ &&
          !survives(node.parent_bound)) {
        continue;
      }

      lp::Solution relax;
      if (node.var == kNoVar) {
        // Root relaxation: the only solve that may warm-start (children
        // mutate bounds, changing the bound-row structure a basis maps onto)
        // and the one whose basis is worth capturing for the next re-plan.
        lp::SimplexOptions root_opts = options_.lp_options;
        root_opts.warm_basis = options_.root_warm_basis;
        root_opts.capture_basis = options_.capture_root_basis;
        relax = lp::solve(work, root_opts);
        if (options_.capture_root_basis && relax.optimal()) {
          result.root_basis = relax.basis;
        }
      } else {
        relax = lp::solve(work, options_.lp_options);
      }
      result.lp_iterations += relax.iterations;
      if (relax.status == lp::SolveStatus::kUnbounded) {
        result.status = lp::SolveStatus::kUnbounded;
        return result;
      }
      if (relax.status == lp::SolveStatus::kIterationLimit) {
        // Not proven infeasible -- the subtree is dropped unexplored.
        ++result.nodes_dropped_by_limit;
        continue;
      }
      if (!relax.optimal()) continue;

      if (have_incumbent_ && !survives(relax.objective)) continue;

      const std::optional<std::size_t> frac = most_fractional(relax.values);
      if (!frac.has_value()) {
        offer_incumbent(relax.objective, relax.values);
        continue;
      }

      // Fractional root: try to seed an incumbent by rounding, so pruning has
      // a bound from node 1 instead of waiting for the first integral leaf.
      if (node.var == kNoVar && !have_incumbent_) {
        try_seed(relax.values);
      }

      const std::size_t var = *frac;
      const double v = relax.values[var];
      const std::size_t depth = trail.size();
      FastNode down{var, -lp::kInfinity, std::floor(v), depth, relax.objective,
                    true};
      FastNode up{var, std::ceil(v), lp::kInfinity, depth, relax.objective,
                  true};
      // Explore the branch nearer the relaxation value first (stack: push it
      // last so it pops first).
      if (v - std::floor(v) < 0.5) {
        stack.push_back(up);
        stack.push_back(down);
      } else {
        stack.push_back(down);
        stack.push_back(up);
      }
    }

    finalize(result, hit_node_limit);
    return result;
  }

  // ---- Copy-per-node search (reference) ------------------------------------
  IlpResult run_reference() {
    IlpResult result;
    std::vector<Node> stack;
    stack.push_back(Node{});
    bool hit_node_limit = false;

    while (!stack.empty()) {
      if (result.nodes_explored >= max_nodes_) {
        hit_node_limit = true;
        break;
      }
      const Node node = std::move(stack.back());
      stack.pop_back();
      ++result.nodes_explored;

      lp::Problem sub = root_;
      bool consistent = true;
      for (const auto& [var, lo, hi] : node.bounds) {
        const double new_lo = std::max(lo, sub.lower_bounds()[var]);
        const double new_hi = std::min(hi, sub.upper_bounds()[var]);
        if (new_lo > new_hi) {
          consistent = false;
          break;
        }
        sub.set_bounds(var, new_lo, new_hi);
      }
      if (!consistent) continue;

      const lp::Solution relax = lp::solve(sub, options_.lp_options);
      result.lp_iterations += relax.iterations;
      if (relax.status == lp::SolveStatus::kUnbounded) {
        // An unbounded relaxation at the root means the ILP itself is
        // unbounded (or would need deeper analysis); report it.
        result.status = lp::SolveStatus::kUnbounded;
        return result;
      }
      if (relax.status == lp::SolveStatus::kIterationLimit) {
        ++result.nodes_dropped_by_limit;
        continue;
      }
      if (!relax.optimal()) continue;

      // Prune against the incumbent.
      if (have_incumbent_ && !improves(relax.objective)) continue;

      const std::optional<std::size_t> frac = most_fractional(relax.values);
      if (!frac.has_value()) {
        // Integral solution: new incumbent.
        if (!have_incumbent_ || improves(relax.objective)) {
          have_incumbent_ = true;
          incumbent_objective_ = relax.objective;
          incumbent_values_ = relax.values;
          round_integer_values(incumbent_values_);
        }
        continue;
      }

      // Branch on the most fractional variable: floor branch and ceil branch.
      const std::size_t var = *frac;
      const double v = relax.values[var];
      Node down = node;
      down.bounds.emplace_back(var, -lp::kInfinity, std::floor(v));
      Node up = node;
      up.bounds.emplace_back(var, std::ceil(v), lp::kInfinity);
      // Explore the branch nearer the relaxation value first (stack: push it
      // last so it pops first).
      if (v - std::floor(v) < 0.5) {
        stack.push_back(std::move(up));
        stack.push_back(std::move(down));
      } else {
        stack.push_back(std::move(down));
        stack.push_back(std::move(up));
      }
    }

    finalize(result, hit_node_limit);
    return result;
  }

  // ---- Shared pieces --------------------------------------------------------

  void finalize(IlpResult& result, bool hit_node_limit) const {
    if (have_incumbent_) {
      result.status = lp::SolveStatus::kOptimal;
      result.objective = incumbent_objective_;
      result.values = incumbent_values_;
    } else if (hit_node_limit || result.nodes_dropped_by_limit > 0) {
      // Subtrees were truncated without an incumbent: the problem was not
      // proven infeasible, so don't claim it is.
      result.status = lp::SolveStatus::kIterationLimit;
    } else {
      result.status = lp::SolveStatus::kInfeasible;
    }
  }

  [[nodiscard]] bool improves(double objective) const {
    const double gap = options_.absolute_gap;
    return minimize_ ? objective < incumbent_objective_ - gap
                     : objective > incumbent_objective_ + gap;
  }

  // Incumbent test used by the copy-free search. While the incumbent is the
  // rounded-root seed, ties pass so the DFS can still reach (and adopt) the
  // solution the reference search would return.
  [[nodiscard]] bool survives(double objective) const {
    if (!seeded_) return improves(objective);
    const double gap = options_.absolute_gap;
    return minimize_ ? objective < incumbent_objective_ + gap
                     : objective > incumbent_objective_ - gap;
  }

  void offer_incumbent(double objective, const std::vector<double>& values) {
    const bool take =
        !have_incumbent_ || (seeded_ ? survives(objective) : improves(objective));
    if (!take) return;
    have_incumbent_ = true;
    seeded_ = false;
    incumbent_objective_ = objective;
    incumbent_values_ = values;
    round_integer_values(incumbent_values_);
  }

  // Rounds the (fractional) root relaxation and installs it as the incumbent
  // if the rounding satisfies every bound and constraint.
  void try_seed(const std::vector<double>& relax_values) {
    std::vector<double> x = relax_values;
    round_integer_values(x);
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i] < root_.lower_bounds()[i] - seed_eps_ ||
          x[i] > root_.upper_bounds()[i] + seed_eps_) {
        return;
      }
    }
    for (const lp::Constraint& c : root_.constraints()) {
      double lhs = 0.0;
      for (std::size_t k = 0; k < c.vars.size(); ++k) {
        lhs += c.coeffs[k] * x[c.vars[k]];
      }
      const double tol = seed_eps_ * std::max(1.0, std::abs(c.rhs));
      switch (c.type) {
        case lp::RowType::kLe:
          if (lhs > c.rhs + tol) return;
          break;
        case lp::RowType::kGe:
          if (lhs < c.rhs - tol) return;
          break;
        case lp::RowType::kEq:
          if (std::abs(lhs - c.rhs) > tol) return;
          break;
      }
    }
    double obj = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      obj += root_.objective()[i] * x[i];
    }
    have_incumbent_ = true;
    seeded_ = true;
    incumbent_objective_ = obj;
    incumbent_values_ = std::move(x);
  }

  [[nodiscard]] std::optional<std::size_t> most_fractional(
      const std::vector<double>& values) const {
    std::optional<std::size_t> best;
    double best_dist = 0.0;
    for (std::size_t var : integer_vars_) {
      const double v = values[var];
      const double frac = v - std::floor(v);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist > options_.integrality_eps && dist > best_dist) {
        best = var;
        best_dist = dist;
      }
    }
    return best;
  }

  void round_integer_values(std::vector<double>& values) const {
    for (std::size_t var : integer_vars_) {
      values[var] = std::round(values[var]);
    }
  }

  const lp::Problem& root_;
  std::vector<std::size_t> integer_vars_;
  IlpOptions options_;
  bool minimize_;
  std::size_t max_nodes_ = 0;
  double seed_eps_ = 1e-7;
  bool have_incumbent_ = false;
  bool seeded_ = false;
  double incumbent_objective_ = 0.0;
  std::vector<double> incumbent_values_;
};

}  // namespace

IlpResult solve(const lp::Problem& problem,
                const std::vector<std::size_t>& integer_vars,
                const IlpOptions& options) {
  return Solver(problem, integer_vars, options).run();
}

IlpResult solve_all_integer(const lp::Problem& problem,
                            const IlpOptions& options) {
  std::vector<std::size_t> all(problem.num_variables());
  std::iota(all.begin(), all.end(), 0);
  return solve(problem, all, options);
}

}  // namespace wasp::ilp
