// Integer linear programming via branch & bound over the simplex relaxation.
//
// This is the solver behind WASP's WAN-aware task placement ILP (paper
// Eq. 1-5), standing in for the Gurobi dependency of the original prototype.
// Placement instances are small (one variable per site, m <= 16), so plain
// depth-first branch & bound with best-incumbent pruning solves them exactly
// in microseconds. The solver is nonetheless general: any subset of variables
// may be marked integer, and node/iteration limits make it safe to embed in
// the simulation control loop.
//
// The default search works on one mutable copy of the problem, applying and
// undoing branch bounds as the DFS descends and backtracks, seeds an
// incumbent by rounding the root relaxation, and prunes children by their
// parent's LP bound before solving them. `IlpOptions::algorithm = kReference`
// selects the original copy-per-node search, kept for equivalence testing.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/problem.h"
#include "lp/simplex.h"

namespace wasp::ilp {

struct IlpOptions {
  // Search implementation. kCopyFree is the default hot path; kReference
  // copies the root problem per node (the original algorithm) and exists so
  // tests can assert the optimized path returns identical results.
  enum class Algorithm { kCopyFree, kReference };

  // Tolerance for treating a relaxation value as integral.
  double integrality_eps = 1e-6;
  // Hard cap on explored branch-and-bound nodes (0 = solver default).
  std::size_t max_nodes = 0;
  // Objective gap below which an incumbent is accepted as optimal.
  double absolute_gap = 1e-9;
  // Options forwarded to every LP relaxation solve.
  lp::SimplexOptions lp_options;
  Algorithm algorithm = Algorithm::kCopyFree;
  // Warm start for the root relaxation only: a basis captured from a
  // structurally identical problem's root solve (see
  // lp::SimplexOptions::warm_basis; an unusable basis falls back to a cold
  // root solve). Child-node relaxations always solve cold -- branch bounds
  // change the bound-row structure, so a root basis rarely transfers. Used
  // by the scheduler to warm re-plans from the placement cache. Ignored by
  // the kReference algorithm. Not owned; must outlive the solve.
  const std::vector<std::size_t>* root_warm_basis = nullptr;
  // Capture the root relaxation's optimal basis into IlpResult::root_basis.
  bool capture_root_basis = false;
};

struct IlpResult {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  // integral entries for integer variables
  std::size_t nodes_explored = 0;
  // Simplex pivots summed over every LP relaxation solved during the search
  // (root + nodes) -- solver-cost attribution for trace spans.
  std::size_t lp_iterations = 0;
  // Nodes whose LP relaxation hit the iteration limit and had to be dropped.
  // When any were dropped and no incumbent exists, the search was truncated
  // rather than exhausted, and `status` reports kIterationLimit instead of
  // kInfeasible.
  std::size_t nodes_dropped_by_limit = 0;
  // Root relaxation basis, captured when IlpOptions::capture_root_basis is
  // set and the root LP solved to optimality (empty otherwise). Feed back as
  // root_warm_basis on the next structurally identical solve.
  std::vector<std::size_t> root_basis;

  [[nodiscard]] bool optimal() const {
    return status == lp::SolveStatus::kOptimal;
  }
};

// Solves `problem` with the variables listed in `integer_vars` restricted to
// integers. Variables not listed stay continuous (mixed-integer solve).
[[nodiscard]] IlpResult solve(const lp::Problem& problem,
                              const std::vector<std::size_t>& integer_vars,
                              const IlpOptions& options = {});

// Convenience: all variables integer.
[[nodiscard]] IlpResult solve_all_integer(const lp::Problem& problem,
                                          const IlpOptions& options = {});

}  // namespace wasp::ilp
