// Integer linear programming via branch & bound over the simplex relaxation.
//
// This is the solver behind WASP's WAN-aware task placement ILP (paper
// Eq. 1-5), standing in for the Gurobi dependency of the original prototype.
// Placement instances are small (one variable per site, m <= 16), so plain
// depth-first branch & bound with best-incumbent pruning solves them exactly
// in microseconds. The solver is nonetheless general: any subset of variables
// may be marked integer, and node/iteration limits make it safe to embed in
// the simulation control loop.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/problem.h"

namespace wasp::ilp {

struct IlpOptions {
  // Tolerance for treating a relaxation value as integral.
  double integrality_eps = 1e-6;
  // Hard cap on explored branch-and-bound nodes (0 = solver default).
  std::size_t max_nodes = 0;
  // Objective gap below which an incumbent is accepted as optimal.
  double absolute_gap = 1e-9;
};

struct IlpResult {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  // integral entries for integer variables
  std::size_t nodes_explored = 0;

  [[nodiscard]] bool optimal() const {
    return status == lp::SolveStatus::kOptimal;
  }
};

// Solves `problem` with the variables listed in `integer_vars` restricted to
// integers. Variables not listed stay continuous (mixed-integer solve).
[[nodiscard]] IlpResult solve(const lp::Problem& problem,
                              const std::vector<std::size_t>& integer_vars,
                              const IlpOptions& options = {});

// Convenience: all variables integer.
[[nodiscard]] IlpResult solve_all_integer(const lp::Problem& problem,
                                          const IlpOptions& options = {});

}  // namespace wasp::ilp
