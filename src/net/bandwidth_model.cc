#include "net/bandwidth_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wasp::net {

SteppedBandwidth::SteppedBandwidth(
    std::vector<std::pair<double, double>> steps)
    : steps_(std::move(steps)) {
  std::sort(steps_.begin(), steps_.end());
}

double SteppedBandwidth::factor(SiteId, SiteId, double t) const {
  double f = 1.0;
  for (const auto& [time, factor] : steps_) {
    if (time > t) break;
    f = factor;
  }
  return f;
}

RandomWalkBandwidth::RandomWalkBandwidth(std::size_t num_sites,
                                         const Config& config, Rng& rng)
    : num_sites_(num_sites), config_(config) {
  assert(config.period_sec > 0.0);
  assert(config.min_factor > 0.0 && config.min_factor <= config.max_factor);
  const auto intervals = static_cast<std::size_t>(
                             std::ceil(config.horizon_sec / config.period_sec)) +
                         1;
  factors_.resize(num_sites * num_sites);
  for (auto& series : factors_) {
    series.resize(intervals);
    // Start each walk at a random point of the range so links are
    // heterogeneous from t=0, then walk multiplicatively with clamping.
    double f = rng.uniform(config.min_factor, config.max_factor);
    for (auto& value : series) {
      value = f;
      f = std::clamp(f * std::exp(rng.normal(0.0, config.sigma)),
                     config.min_factor, config.max_factor);
    }
  }
}

double RandomWalkBandwidth::factor(SiteId from, SiteId to, double t) const {
  if (from == to) return 1.0;
  const auto& series = factors_[link_index(from, to)];
  const auto k = std::min(
      series.size() - 1,
      static_cast<std::size_t>(std::max(0.0, t) / config_.period_sec));
  return series[k];
}

const std::vector<double>& RandomWalkBandwidth::link_series(SiteId from,
                                                            SiteId to) const {
  return factors_[link_index(from, to)];
}

std::size_t RandomWalkBandwidth::link_index(SiteId from, SiteId to) const {
  const auto f = static_cast<std::size_t>(from.value());
  const auto d = static_cast<std::size_t>(to.value());
  assert(f < num_sites_ && d < num_sites_);
  return f * num_sites_ + d;
}

}  // namespace wasp::net
