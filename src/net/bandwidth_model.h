// Time-varying WAN bandwidth models.
//
// §2.2 / Fig. 2 of the paper measured pair-wise EC2 bandwidth for a day and
// found 25-93% deviation from the mean at 5-minute granularity; §8.6 drives a
// live experiment from a variation trace with factors in [0.51, 2.36]. These
// models multiply the topology's base bandwidth by a time-dependent factor:
//
//   capacity(from, to, t) = base_bandwidth(from, to) * factor(from, to, t)
//
// All models are deterministic; random ones precompute their factor tables
// from a seed at construction.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace wasp::net {

class BandwidthModel {
 public:
  virtual ~BandwidthModel() = default;
  // Multiplier applied to the base bandwidth of the directed link
  // from -> to at simulated time `t` (seconds).
  [[nodiscard]] virtual double factor(SiteId from, SiteId to,
                                      double t) const = 0;
};

// Always 1.0 -- static network.
class ConstantBandwidth final : public BandwidthModel {
 public:
  [[nodiscard]] double factor(SiteId, SiteId, double) const override {
    return 1.0;
  }
};

// A global step schedule applied to every link: (time, factor) pairs; the
// factor of the last step at or before `t` applies. Used by the controlled
// experiments (§8.4: halve all links at t=900, restore at t=1200).
class SteppedBandwidth final : public BandwidthModel {
 public:
  explicit SteppedBandwidth(std::vector<std::pair<double, double>> steps);
  [[nodiscard]] double factor(SiteId, SiteId, double t) const override;

 private:
  std::vector<std::pair<double, double>> steps_;  // sorted by time
};

// Per-link bounded geometric random walk, regenerated every `period` seconds
// up to `horizon`; reproduces the Fig. 2-style variability and the §8.6 live
// trace when configured with the paper's factor range.
class RandomWalkBandwidth final : public BandwidthModel {
 public:
  struct Config {
    double horizon_sec = 3600.0;
    double period_sec = 300.0;  // links re-shuffle every ~5 min (Fig. 2)
    double min_factor = 0.51;
    double max_factor = 2.36;
    double sigma = 0.25;  // per-step log-scale step size
  };

  // `num_sites` fixes the link index space; walks are independent per
  // directed link and derived deterministically from `rng`.
  RandomWalkBandwidth(std::size_t num_sites, const Config& config, Rng& rng);

  [[nodiscard]] double factor(SiteId from, SiteId to, double t) const override;

  // The full factor series of one link (used by the Fig. 2 bench).
  [[nodiscard]] const std::vector<double>& link_series(SiteId from,
                                                       SiteId to) const;

 private:
  [[nodiscard]] std::size_t link_index(SiteId from, SiteId to) const;

  std::size_t num_sites_;
  Config config_;
  std::vector<std::vector<double>> factors_;  // [link][interval]
};

// Combines two models multiplicatively (e.g. a step schedule on top of
// background variability).
class ComposedBandwidth final : public BandwidthModel {
 public:
  ComposedBandwidth(std::shared_ptr<const BandwidthModel> a,
                    std::shared_ptr<const BandwidthModel> b)
      : a_(std::move(a)), b_(std::move(b)) {}

  [[nodiscard]] double factor(SiteId from, SiteId to, double t) const override {
    return a_->factor(from, to, t) * b_->factor(from, to, t);
  }

 private:
  std::shared_ptr<const BandwidthModel> a_;
  std::shared_ptr<const BandwidthModel> b_;
};

}  // namespace wasp::net
