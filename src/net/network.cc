#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/units.h"
#include "obs/trace.h"

namespace wasp::net {

Network::Network(Topology topology, std::shared_ptr<const BandwidthModel> model)
    : topology_(std::move(topology)),
      model_(std::move(model)),
      link_partitioned_(topology_.num_sites() * topology_.num_sites(), 0),
      site_down_(topology_.num_sites(), 0) {
  assert(model_ != nullptr);
}

double Network::capacity(SiteId from, SiteId to, double t) const {
  if (link_partitioned(from, to) || site_down(from) || site_down(to)) {
    return 0.0;
  }
  return topology_.base_bandwidth(from, to) * model_->factor(from, to, t);
}

void Network::set_link_partitioned(SiteId from, SiteId to, bool partitioned) {
  const auto n = static_cast<std::size_t>(topology_.num_sites());
  const auto f = static_cast<std::size_t>(from.value());
  const auto d = static_cast<std::size_t>(to.value());
  assert(f < n && d < n);
  link_partitioned_[f * n + d] = partitioned ? 1 : 0;
}

bool Network::link_partitioned(SiteId from, SiteId to) const {
  const auto n = static_cast<std::size_t>(topology_.num_sites());
  const auto f = static_cast<std::size_t>(from.value());
  const auto d = static_cast<std::size_t>(to.value());
  assert(f < n && d < n);
  return link_partitioned_[f * n + d] != 0;
}

void Network::set_site_down(SiteId site, bool down) {
  const auto s = static_cast<std::size_t>(site.value());
  assert(s < site_down_.size());
  site_down_[s] = down ? 1 : 0;
}

bool Network::site_down(SiteId site) const {
  const auto s = static_cast<std::size_t>(site.value());
  assert(s < site_down_.size());
  return site_down_[s] != 0;
}

FlowId Network::add_stream_flow(SiteId from, SiteId to) {
  const FlowId id(next_flow_id_++);
  flows_.emplace(id, Flow{id, from, to, FlowKind::kStream, 0.0, 0.0, 0.0,
                          false});
  return id;
}

FlowId Network::add_bulk_flow(SiteId from, SiteId to, double size_mb) {
  const FlowId id(next_flow_id_++);
  Flow f{id, from, to, FlowKind::kBulk, 0.0, 0.0, size_mb, size_mb <= 0.0};
  flows_.emplace(id, f);
  return id;
}

void Network::remove_flow(FlowId id) { flows_.erase(id); }

void Network::set_stream_demand(FlowId id, double mbps) {
  auto it = flows_.find(id);
  assert(it != flows_.end());
  assert(it->second.kind == FlowKind::kStream);
  it->second.demand_mbps = std::max(0.0, mbps);
}

const Flow& Network::flow(FlowId id) const {
  auto it = flows_.find(id);
  assert(it != flows_.end());
  return it->second;
}

bool Network::has_flow(FlowId id) const { return flows_.contains(id); }

void Network::waterfill(std::vector<Flow*>& flows, double capacity) {
  // Classic progressive filling. Bulk flows have unbounded demand and end up
  // with an equal split of whatever streams leave unused.
  double remaining = capacity;
  std::vector<Flow*> active = flows;
  for (Flow* f : active) f->allocated_mbps = 0.0;

  while (!active.empty() && remaining > 1e-12) {
    const double share = remaining / static_cast<double>(active.size());
    bool anyone_satisfied = false;
    std::vector<Flow*> still_active;
    still_active.reserve(active.size());
    for (Flow* f : active) {
      const bool bounded = f->kind == FlowKind::kStream;
      const double want = bounded ? f->demand_mbps - f->allocated_mbps
                                  : std::numeric_limits<double>::infinity();
      if (bounded && want <= share) {
        f->allocated_mbps += want;
        remaining -= want;
        anyone_satisfied = true;
      } else {
        still_active.push_back(f);
      }
    }
    if (!anyone_satisfied) {
      // Everyone wants at least the equal share: split evenly and stop.
      const double each =
          remaining / static_cast<double>(still_active.size());
      for (Flow* f : still_active) f->allocated_mbps += each;
      remaining = 0.0;
      break;
    }
    active = std::move(still_active);
  }
}

void Network::step(double t, double dt) {
  // Group flows by directed link; same-site flows get their full demand.
  std::unordered_map<std::int64_t, std::vector<Flow*>> per_link;
  const auto n = static_cast<std::int64_t>(topology_.num_sites());
  for (auto& [id, f] : flows_) {
    if (f.kind == FlowKind::kBulk && f.done) {
      f.allocated_mbps = 0.0;
      continue;
    }
    if (f.from == f.to) {
      if (site_down(f.from)) {
        f.allocated_mbps = 0.0;
      } else {
        f.allocated_mbps = f.kind == FlowKind::kStream ? f.demand_mbps
                                                       : kLocalBandwidthMbps;
      }
      continue;
    }
    per_link[f.from.value() * n + f.to.value()].push_back(&f);
  }
  const bool tracing = trace_ != nullptr && trace_->enabled();
  for (auto& [key, flows] : per_link) {
    const SiteId from(key / n);
    const SiteId to(key % n);
    const double cap = capacity(from, to, t);
    waterfill(flows, cap);
    if (tracing) {
      double stream_mbps = 0.0, bulk_mbps = 0.0;
      for (const Flow* f : flows) {
        (f->kind == FlowKind::kStream ? stream_mbps : bulk_mbps) +=
            f->allocated_mbps;
      }
      trace_->event_at(t, "link_alloc")
          .num("from_site", static_cast<double>(from.value()))
          .num("to_site", static_cast<double>(to.value()))
          .num("capacity_mbps", cap)
          .num("stream_mbps", stream_mbps)
          .num("bulk_mbps", bulk_mbps)
          .num("num_flows", static_cast<double>(flows.size()));
    }
  }

  // Advance bulk transfers.
  for (auto& [id, f] : flows_) {
    if (f.kind != FlowKind::kBulk || f.done) continue;
    f.remaining_mb -= mbps_to_mb_per_sec(f.allocated_mbps) * dt;
    if (f.remaining_mb <= 1e-9) {
      f.remaining_mb = 0.0;
      f.done = true;
      if (tracing) {
        trace_->event_at(t, "bulk_done")
            .num("flow", static_cast<double>(id.value()))
            .num("from_site", static_cast<double>(f.from.value()))
            .num("to_site", static_cast<double>(f.to.value()));
      }
    }
  }
}

std::size_t Network::num_bulk_flows() const {
  std::size_t count = 0;
  for (const auto& [id, f] : flows_) {
    if (f.kind == FlowKind::kBulk && !f.done) ++count;
  }
  return count;
}

double Network::link_allocated(SiteId from, SiteId to) const {
  double total = 0.0;
  for (const auto& [id, f] : flows_) {
    if (f.from == from && f.to == to) total += f.allocated_mbps;
  }
  return total;
}

}  // namespace wasp::net
