#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/units.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"

namespace wasp::net {
namespace {

// Link groups per parallel-region chunk of the untraced step. A layout
// constant (never a function of the worker count): chunk boundaries must be
// identical for --threads 1 and --threads N.
constexpr std::size_t kLinkChunk = 16;

}  // namespace

Network::Network(Topology topology, std::shared_ptr<const BandwidthModel> model)
    : topology_(std::move(topology)),
      model_(std::move(model)),
      link_partitioned_(topology_.num_sites() * topology_.num_sites(), 0),
      site_down_(topology_.num_sites(), 0) {
  assert(model_ != nullptr);
}

double Network::capacity(SiteId from, SiteId to, double t) const {
  if (link_partitioned(from, to) || site_down(from) || site_down(to)) {
    return 0.0;
  }
  return topology_.base_bandwidth(from, to) * model_->factor(from, to, t);
}

void Network::set_link_partitioned(SiteId from, SiteId to, bool partitioned) {
  const auto n = static_cast<std::size_t>(topology_.num_sites());
  const auto f = static_cast<std::size_t>(from.value());
  const auto d = static_cast<std::size_t>(to.value());
  assert(f < n && d < n);
  link_partitioned_[f * n + d] = partitioned ? 1 : 0;
}

bool Network::link_partitioned(SiteId from, SiteId to) const {
  const auto n = static_cast<std::size_t>(topology_.num_sites());
  const auto f = static_cast<std::size_t>(from.value());
  const auto d = static_cast<std::size_t>(to.value());
  assert(f < n && d < n);
  return link_partitioned_[f * n + d] != 0;
}

void Network::set_site_down(SiteId site, bool down) {
  const auto s = static_cast<std::size_t>(site.value());
  assert(s < site_down_.size());
  site_down_[s] = down ? 1 : 0;
}

bool Network::site_down(SiteId site) const {
  const auto s = static_cast<std::size_t>(site.value());
  assert(s < site_down_.size());
  return site_down_[s] != 0;
}

FlowId Network::add_stream_flow(SiteId from, SiteId to) {
  const FlowId id(next_flow_id_++);
  flows_.emplace(id, Flow{id, from, to, FlowKind::kStream, 0.0, 0.0, 0.0,
                          false});
  link_groups_dirty_ = true;
  return id;
}

FlowId Network::add_bulk_flow(SiteId from, SiteId to, double size_mb) {
  const FlowId id(next_flow_id_++);
  Flow f{id, from, to, FlowKind::kBulk, 0.0, 0.0, size_mb, size_mb <= 0.0};
  flows_.emplace(id, f);
  link_groups_dirty_ = true;
  return id;
}

void Network::remove_flow(FlowId id) {
  flows_.erase(id);
  link_groups_dirty_ = true;
}

void Network::rebuild_link_groups() {
  link_groups_.clear();
  local_flows_.clear();
  link_index_.clear();
  const auto n = static_cast<std::int64_t>(topology_.num_sites());
  for (auto& [id, f] : flows_) {
    if (f.from == f.to) {
      local_flows_.push_back(&f);
      continue;
    }
    const std::int64_t key = f.from.value() * n + f.to.value();
    const auto [it, inserted] = link_index_.try_emplace(key, link_groups_.size());
    if (inserted) link_groups_.push_back(LinkGroup{f.from, f.to, {}});
    link_groups_[it->second].flows.push_back(&f);
  }
  link_groups_dirty_ = false;
}

void Network::set_stream_demand(FlowId id, double mbps) {
  auto it = flows_.find(id);
  assert(it != flows_.end());
  assert(it->second.kind == FlowKind::kStream);
  it->second.demand_mbps = std::max(0.0, mbps);
}

const Flow& Network::flow(FlowId id) const {
  auto it = flows_.find(id);
  assert(it != flows_.end());
  return it->second;
}

bool Network::has_flow(FlowId id) const { return flows_.contains(id); }

void Network::waterfill(const std::vector<Flow*>& flows, double capacity,
                        std::vector<Flow*>& active_scratch) {
  // Classic progressive filling. Bulk flows have unbounded demand and end up
  // with an equal split of whatever streams leave unused. The working set is
  // compacted in place (stably, so the fill order matches the input order)
  // inside the caller's scratch vector: no allocation after warm-up, and
  // parallel callers pass distinct scratch.
  double remaining = capacity;
  active_scratch.assign(flows.begin(), flows.end());
  for (Flow* f : active_scratch) f->allocated_mbps = 0.0;

  std::size_t active = active_scratch.size();
  while (active > 0 && remaining > 1e-12) {
    const double share = remaining / static_cast<double>(active);
    bool anyone_satisfied = false;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < active; ++i) {
      Flow* f = active_scratch[i];
      const bool bounded = f->kind == FlowKind::kStream;
      const double want = bounded ? f->demand_mbps - f->allocated_mbps
                                  : std::numeric_limits<double>::infinity();
      if (bounded && want <= share) {
        f->allocated_mbps += want;
        remaining -= want;
        anyone_satisfied = true;
      } else {
        active_scratch[kept++] = f;
      }
    }
    active = kept;
    if (!anyone_satisfied) {
      // Everyone wants at least the equal share: split evenly and stop.
      const double each = remaining / static_cast<double>(active);
      for (std::size_t i = 0; i < active; ++i) {
        active_scratch[i]->allocated_mbps += each;
      }
      remaining = 0.0;
      break;
    }
  }
}

void Network::step(double t, double dt) {
  ensure_link_groups();
  const bool tracing = trace_ != nullptr && trace_->enabled();
  if (tracing) {
    // Legacy per-step grouping, kept verbatim while tracing: the order of
    // link_alloc events follows this map's iteration order, which checked-in
    // golden traces pin down byte-for-byte. The allocations it computes are
    // bit-identical to the cached path below (same flows, same map order).
    std::unordered_map<std::int64_t, std::vector<Flow*>> per_link;
    const auto n = static_cast<std::int64_t>(topology_.num_sites());
    for (auto& [id, f] : flows_) {
      if (f.kind == FlowKind::kBulk && f.done) {
        f.allocated_mbps = 0.0;
        continue;
      }
      if (f.from == f.to) {
        if (site_down(f.from)) {
          f.allocated_mbps = 0.0;
        } else {
          f.allocated_mbps = f.kind == FlowKind::kStream ? f.demand_mbps
                                                         : kLocalBandwidthMbps;
        }
        continue;
      }
      per_link[f.from.value() * n + f.to.value()].push_back(&f);
    }
    for (auto& [key, flows] : per_link) {
      const SiteId from(key / n);
      const SiteId to(key % n);
      const double cap = capacity(from, to, t);
      waterfill(flows, cap, wf_active_);
      double stream_mbps = 0.0, bulk_mbps = 0.0;
      for (const Flow* f : flows) {
        (f->kind == FlowKind::kStream ? stream_mbps : bulk_mbps) +=
            f->allocated_mbps;
      }
      trace_->event_at(t, "link_alloc")
          .num("from_site", static_cast<double>(from.value()))
          .num("to_site", static_cast<double>(to.value()))
          .num("capacity_mbps", cap)
          .num("stream_mbps", stream_mbps)
          .num("bulk_mbps", bulk_mbps)
          .num("num_flows", static_cast<double>(flows.size()));
    }
  } else {
    // Fast path: reuse the link grouping cached at the last flow add/remove.
    // Group-internal flow order is the flows_ map order of that rebuild, so
    // waterfill visits flows in the same sequence as the legacy path.
    for (Flow* f : local_flows_) {
      if (f->kind == FlowKind::kBulk && f->done) {
        f->allocated_mbps = 0.0;
      } else if (site_down(f->from)) {
        f->allocated_mbps = 0.0;
      } else {
        f->allocated_mbps = f->kind == FlowKind::kStream ? f->demand_mbps
                                                         : kLocalBandwidthMbps;
      }
    }
    // Links are independent (each cross-site flow belongs to exactly one
    // group), so the per-link fills fan out across the pool in fixed chunks
    // of the cached group order. Each link is computed by exactly one chunk
    // with the same flow order as the serial loop -- allocations are
    // bit-identical for any thread count.
    const std::size_t n_groups = link_groups_.size();
    const std::size_t n_chunks = (n_groups + kLinkChunk - 1) / kLinkChunk;
    if (wf_chunk_scratch_.size() < n_chunks) wf_chunk_scratch_.resize(n_chunks);
    const auto fill_chunk = [&](std::size_t c) {
      WfScratch& scratch = wf_chunk_scratch_[c];
      const std::size_t gb = c * kLinkChunk;
      const std::size_t ge = std::min(n_groups, gb + kLinkChunk);
      for (std::size_t gi = gb; gi < ge; ++gi) {
        LinkGroup& g = link_groups_[gi];
        scratch.filtered.clear();
        for (Flow* f : g.flows) {
          if (f->kind == FlowKind::kBulk && f->done) {
            f->allocated_mbps = 0.0;
          } else {
            scratch.filtered.push_back(f);
          }
        }
        if (!scratch.filtered.empty()) {
          waterfill(scratch.filtered, capacity(g.from, g.to, t),
                    scratch.active);
        }
      }
    };
    if (pool_ != nullptr) {
      pool_->parallel_for(n_chunks, fill_chunk);
    } else {
      for (std::size_t c = 0; c < n_chunks; ++c) fill_chunk(c);
    }
  }

  // Advance bulk transfers.
  for (auto& [id, f] : flows_) {
    if (f.kind != FlowKind::kBulk || f.done) continue;
    f.remaining_mb -= mbps_to_mb_per_sec(f.allocated_mbps) * dt;
    if (f.remaining_mb <= 1e-9) {
      f.remaining_mb = 0.0;
      f.done = true;
      if (tracing) {
        trace_->event_at(t, "bulk_done")
            .num("flow", static_cast<double>(id.value()))
            .num("from_site", static_cast<double>(f.from.value()))
            .num("to_site", static_cast<double>(f.to.value()));
      }
    }
  }
}

std::size_t Network::num_bulk_flows() const {
  std::size_t count = 0;
  for (const auto& [id, f] : flows_) {
    if (f.kind == FlowKind::kBulk && !f.done) ++count;
  }
  return count;
}

double Network::link_allocated(SiteId from, SiteId to) const {
  // Cross-site links sum their cached group, in the same flows_ map order
  // the full scan below would visit (bit-identical FP sum). Local links and
  // links with no flows fall through to the scan. The grouping cache is
  // logically const state (rebuilding it changes no observable allocation).
  const_cast<Network*>(this)->ensure_link_groups();
  if (from != to) {
    const auto n = static_cast<std::int64_t>(topology_.num_sites());
    const auto it = link_index_.find(from.value() * n + to.value());
    if (it == link_index_.end()) return 0.0;
    double total = 0.0;
    for (const Flow* f : link_groups_[it->second].flows) {
      total += f->allocated_mbps;
    }
    return total;
  }
  double total = 0.0;
  for (const auto& [id, f] : flows_) {
    if (f.from == from && f.to == to) total += f.allocated_mbps;
  }
  return total;
}

}  // namespace wasp::net
