// Textual topology specifications: the `--topology=SPEC` flag shared by
// wasp_sim, the bench drivers, and the wasp_sweep `topology` axis.
//
// Grammar (keys accept ',' or ';' as separators -- ';' matters inside sweep
// axis values, which split cells on commas):
//
//   paper                                   the 16-site §8.2 testbed (default)
//   uniform:sites=16,slots=4,bw=500,lat=20  symmetric clique
//   edge:sites=200,regions=8,core=4,regional=1,core-slots=16,
//        regional-slots=8,edge-slots=2-4,domains-per-region=1
//                                           planet-scale hierarchy
//                                           (Topology::make_edge_hierarchy)
//
// Unknown keys and malformed values are hard errors (parse returns nullopt
// and fills *error) so a typo'd sweep axis fails fast instead of silently
// running the default topology.
#pragma once

#include <optional>
#include <string>

#include "common/rng.h"
#include "net/topology.h"

namespace wasp::net {

struct TopologySpec {
  enum class Kind { kPaper, kUniform, kEdgeHierarchy };

  Kind kind = Kind::kPaper;

  // kUniform parameters.
  int uniform_sites = 16;
  int uniform_slots = 4;
  double uniform_bw_mbps = 500.0;
  double uniform_latency_ms = 20.0;

  // kEdgeHierarchy parameters.
  EdgeHierarchyParams edge;

  // Parses a spec string. On failure returns nullopt and, when `error` is
  // non-null, stores a one-line diagnostic.
  static std::optional<TopologySpec> parse(const std::string& text,
                                           std::string* error = nullptr);

  // Builds the topology. Deterministic given `rng` and the spec.
  [[nodiscard]] Topology build(Rng& rng) const;

  // Canonical round-trippable form (parse(to_string()) == *this).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] int expected_sites() const;
};

}  // namespace wasp::net
