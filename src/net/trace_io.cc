#include "net/trace_io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

namespace wasp::net {

void TraceBandwidth::add_sample(SiteId from, SiteId to, double t,
                                double factor) {
  auto& series = samples_[{from.value(), to.value()}];
  series.emplace_back(t, factor);
  // Keep sorted; appends are usually already in order.
  if (series.size() > 1 &&
      series[series.size() - 2].first > series.back().first) {
    std::sort(series.begin(), series.end());
  }
}

double TraceBandwidth::factor(SiteId from, SiteId to, double t) const {
  const auto it = samples_.find({from.value(), to.value()});
  if (it == samples_.end() || it->second.empty()) return 1.0;
  const auto& series = it->second;
  // Last sample at or before t; before the first sample, use the first.
  auto pos = std::upper_bound(
      series.begin(), series.end(), t,
      [](double x, const std::pair<double, double>& s) { return x < s.first; });
  if (pos == series.begin()) return series.front().second;
  return std::prev(pos)->second;
}

std::size_t TraceBandwidth::num_samples() const {
  std::size_t n = 0;
  for (const auto& [link, series] : samples_) n += series.size();
  return n;
}

std::vector<std::pair<SiteId, SiteId>> TraceBandwidth::links() const {
  std::vector<std::pair<SiteId, SiteId>> out;
  out.reserve(samples_.size());
  for (const auto& [link, series] : samples_) {
    out.emplace_back(SiteId(link.first), SiteId(link.second));
  }
  return out;
}

TraceBandwidth load_bandwidth_trace(std::istream& in, std::string* error) {
  TraceBandwidth trace;
  if (error != nullptr) error->clear();
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    std::istringstream fields(line);
    std::string cell;
    double values[4];
    bool ok = true;
    for (int i = 0; i < 4; ++i) {
      if (!std::getline(fields, cell, ',')) {
        ok = false;
        break;
      }
      try {
        values[i] = std::stod(cell);
      } catch (...) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      // A non-numeric first line is accepted as a header.
      if (line_no == 1) continue;
      if (error != nullptr) {
        *error = "malformed trace line " + std::to_string(line_no) + ": '" +
                 line + "'";
      }
      return TraceBandwidth{};
    }
    if (values[3] < 0.0 || values[1] < 0.0 || values[2] < 0.0) {
      if (error != nullptr) {
        *error = "negative value on trace line " + std::to_string(line_no);
      }
      return TraceBandwidth{};
    }
    trace.add_sample(SiteId(static_cast<std::int64_t>(values[1])),
                     SiteId(static_cast<std::int64_t>(values[2])), values[0],
                     values[3]);
  }
  return trace;
}

void save_bandwidth_trace(std::ostream& out, const BandwidthModel& model,
                          std::size_t num_sites, double horizon_sec,
                          double period_sec) {
  out << "time_sec,from_site,to_site,factor\n";
  for (double t = 0.0; t < horizon_sec; t += period_sec) {
    for (std::size_t i = 0; i < num_sites; ++i) {
      for (std::size_t j = 0; j < num_sites; ++j) {
        if (i == j) continue;
        const SiteId from(static_cast<std::int64_t>(i));
        const SiteId to(static_cast<std::int64_t>(j));
        out << t << ',' << i << ',' << j << ',' << model.factor(from, to, t)
            << '\n';
      }
    }
  }
}

}  // namespace wasp::net
