// Bandwidth-trace I/O: drive the network from measured traces.
//
// The paper's controlled experiments replay a 1-day EC2 measurement; users
// of this library will want to replay their own. `TraceBandwidth` is a
// BandwidthModel backed by an explicit per-directed-link factor table, and
// the CSV helpers read/write the long format
//
//     time_sec,from_site,to_site,factor
//
// (header optional, '#' comments allowed). Factors multiply the topology's
// base bandwidth, exactly like the built-in models; a link absent from the
// trace keeps factor 1. Between samples the factor of the latest sample at
// or before t applies (step interpolation, matching iperf-style periodic
// measurements).
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "net/bandwidth_model.h"

namespace wasp::net {

class TraceBandwidth final : public BandwidthModel {
 public:
  TraceBandwidth() = default;

  // Appends a sample; samples may arrive in any order and are kept sorted
  // per link.
  void add_sample(SiteId from, SiteId to, double t, double factor);

  [[nodiscard]] double factor(SiteId from, SiteId to, double t) const override;

  [[nodiscard]] std::size_t num_samples() const;

  // Every (from, to) pair with at least one sample.
  [[nodiscard]] std::vector<std::pair<SiteId, SiteId>> links() const;

 private:
  // (from, to) -> time-sorted (t, factor) samples.
  std::map<std::pair<std::int64_t, std::int64_t>,
           std::vector<std::pair<double, double>>>
      samples_;
};

// Parses a CSV trace. Returns the model, or an error message via `error`
// (empty on success). Malformed lines abort the parse with a message
// naming the line number.
[[nodiscard]] TraceBandwidth load_bandwidth_trace(std::istream& in,
                                                  std::string* error);

// Writes `model` sampled every `period_sec` over [0, horizon_sec) for all
// directed pairs of `num_sites` sites, in the CSV format above.
void save_bandwidth_trace(std::ostream& out, const BandwidthModel& model,
                          std::size_t num_sites, double horizon_sec,
                          double period_sec);

}  // namespace wasp::net
