#include "net/wan_monitor.h"

#include <algorithm>

namespace wasp::net {

WanMonitor::WanMonitor(const Network& network, const Config& config, Rng rng)
    : network_(network), config_(config), rng_(rng) {
  const std::size_t n = network_.topology().num_sites();
  estimates_.assign(n * n, Ewma(config_.ewma_alpha));
}

void WanMonitor::tick(double t) {
  if (t - last_probe_ >= config_.probe_interval_sec) probe_now(t);
}

void WanMonitor::probe_now(double t) {
  const auto n =
      static_cast<std::int64_t>(network_.topology().num_sites());
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const SiteId from(i), to(j);
      // iperf-style probes observe *available* bandwidth: the capacity
      // headroom left by the traffic currently riding the link.
      const double truth = std::max(
          0.0, network_.capacity(from, to, t) - network_.link_allocated(from, to));
      const double noisy =
          std::max(0.0, truth * (1.0 + rng_.normal(0.0, config_.noise_stddev)));
      estimates_[static_cast<std::size_t>(i * n + j)].add(noisy);
    }
  }
  last_probe_ = t;
}

double WanMonitor::available(SiteId from, SiteId to) const {
  if (from == to) return kLocalBandwidthMbps;
  const auto n = network_.topology().num_sites();
  const auto& e = estimates_[static_cast<std::size_t>(from.value()) * n +
                             static_cast<std::size_t>(to.value())];
  return e.initialized() ? e.value() : 0.0;
}

}  // namespace wasp::net
