#include "net/topology.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wasp::net {

SiteId Topology::add_site(std::string name, SiteType type, int slots,
                          int domain) {
  const SiteId id(static_cast<std::int64_t>(sites_.size()));
  if (domain < 0) domain = static_cast<int>(sites_.size());
  sites_.push_back(Site{id, std::move(name), type, slots, domain});

  // Grow the dense matrices, preserving existing entries.
  const std::size_t n = sites_.size();
  std::vector<double> new_bw(n * n, 0.0);
  std::vector<double> new_lat(n * n, 0.0);
  const std::size_t old_n = n - 1;
  for (std::size_t i = 0; i < old_n; ++i) {
    for (std::size_t j = 0; j < old_n; ++j) {
      new_bw[i * n + j] = bandwidth_[i * old_n + j];
      new_lat[i * n + j] = latency_[i * old_n + j];
    }
  }
  bandwidth_ = std::move(new_bw);
  latency_ = std::move(new_lat);
  return id;
}

void Topology::set_link(SiteId from, SiteId to, double bandwidth_mbps,
                        double latency_ms) {
  assert(from != to);
  const std::size_t n = sites_.size();
  bandwidth_[index(from) * n + index(to)] = bandwidth_mbps;
  latency_[index(from) * n + index(to)] = latency_ms;
}

const Site& Topology::site(SiteId id) const { return sites_[index(id)]; }

double Topology::base_bandwidth(SiteId from, SiteId to) const {
  if (from == to) return kLocalBandwidthMbps;
  return bandwidth_[index(from) * sites_.size() + index(to)];
}

double Topology::latency_ms(SiteId from, SiteId to) const {
  if (from == to) return kLocalLatencyMs;
  return latency_[index(from) * sites_.size() + index(to)];
}

int Topology::total_slots() const {
  int total = 0;
  for (const Site& s : sites_) total += s.slots;
  return total;
}

int Topology::domain_of(SiteId id) const { return sites_[index(id)].domain; }

std::vector<SiteId> Topology::sites_in_domain(int domain) const {
  std::vector<SiteId> ids;
  for (const Site& s : sites_) {
    if (s.domain == domain) ids.push_back(s.id);
  }
  return ids;
}

std::size_t Topology::index(SiteId id) const {
  assert(id.valid());
  const auto i = static_cast<std::size_t>(id.value());
  assert(i < sites_.size());
  return i;
}

Topology Topology::make_paper_testbed(Rng& rng) {
  Topology topo;

  // 8 data centers named after the EC2 regions measured in the paper, 8
  // slots each (§8.2). Failure domains pair geographically adjacent regions
  // (availability-zone style): domains 0-3 cover the DCs, 4-7 the edges.
  // The assignment is a fixed function of the site index so it draws nothing
  // from `rng` and leaves the link distributions untouched.
  const char* kRegions[] = {"oregon", "ohio",      "ireland", "frankfurt",
                            "seoul",  "singapore", "mumbai",  "saopaulo"};
  std::vector<SiteId> dcs;
  for (int i = 0; i < 8; ++i) {
    dcs.push_back(topo.add_site(kRegions[i], SiteType::kDataCenter, 8, i / 2));
  }
  // 8 edge sites with 2-4 slots each.
  std::vector<SiteId> edges;
  for (int i = 0; i < 8; ++i) {
    edges.push_back(topo.add_site("edge-" + std::to_string(i),
                                  SiteType::kEdge,
                                  static_cast<int>(rng.uniform_int(2, 4)),
                                  4 + i / 2));
  }

  // DC <-> DC links follow the Fig. 7 EC2 distribution: bandwidth spread
  // roughly 25-250 Mbps (log-normal), latency 20-300 ms depending on
  // geographic spread. Links are asymmetric: each direction is drawn
  // independently, as inbound/outbound WAN capacity differs in practice.
  for (std::size_t i = 0; i < dcs.size(); ++i) {
    for (std::size_t j = 0; j < dcs.size(); ++j) {
      if (i == j) continue;
      // "Distance" proxy: region index gap drives latency so the matrix has
      // near (same-continent) and far pairs, like the measured testbed.
      const double gap =
          static_cast<double>(std::min<std::size_t>((i > j) ? i - j : j - i,
                                                    dcs.size() / 2));
      const double latency =
          20.0 + 60.0 * gap + rng.uniform(-10.0, 10.0);
      const double bandwidth =
          std::clamp(rng.lognormal(std::log(90.0), 0.55), 25.0, 250.0);
      topo.set_link(dcs[i], dcs[j], bandwidth, std::max(5.0, latency));
    }
  }

  // Edge links ride the public Internet. Calibrated to the paper's
  // Fig. 7(a) edge CDF (median ~20 Mbps, spread ~5-60 Mbps) -- stronger
  // than the Akamai broadband average quoted in §2.2, but matching the
  // testbed's measured distribution, and sized so the §8.4/§8.5 dynamics
  // reproduce: the baseline runs healthy at p = 1, the 2x workload surge is
  // still single-site re-assignable, and the 0.5x bandwidth drop is not
  // (forcing scale-out). Latency is regional (edges talk to nearby sites),
  // 5-100 ms.
  auto edge_bandwidth = [&rng] {
    return std::clamp(rng.lognormal(std::log(20.0), 0.5), 5.0, 60.0);
  };
  auto edge_latency = [&rng] { return rng.uniform(5.0, 100.0); };
  for (SiteId e : edges) {
    for (SiteId other : dcs) {
      topo.set_link(e, other, edge_bandwidth(), edge_latency());
      topo.set_link(other, e, edge_bandwidth(), edge_latency());
    }
    for (SiteId other : edges) {
      if (other == e) continue;
      topo.set_link(e, other, edge_bandwidth(), edge_latency());
    }
  }
  return topo;
}

Topology Topology::make_uniform(int n, int slots, double bandwidth_mbps,
                                double latency_ms) {
  Topology topo;
  std::vector<SiteId> ids;
  for (int i = 0; i < n; ++i) {
    ids.push_back(topo.add_site("site-" + std::to_string(i),
                                SiteType::kDataCenter, slots));
  }
  for (SiteId a : ids) {
    for (SiteId b : ids) {
      if (a != b) topo.set_link(a, b, bandwidth_mbps, latency_ms);
    }
  }
  return topo;
}

}  // namespace wasp::net
