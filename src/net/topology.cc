#include "net/topology.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wasp::net {

SiteId Topology::add_site(std::string name, SiteType type, int slots,
                          int domain) {
  const SiteId id(static_cast<std::int64_t>(sites_.size()));
  if (domain < 0) domain = static_cast<int>(sites_.size());
  sites_.push_back(Site{id, std::move(name), type, slots, domain});
  if (sites_.size() > stride_) {
    // Geometric growth keeps a long add_site sequence O(n^2) total.
    reserve_sites(std::max(sites_.size(), 2 * stride_));
  }
  return id;
}

void Topology::reserve_sites(std::size_t n) {
  if (n <= stride_) return;
  std::vector<double> new_bw(n * n, 0.0);
  std::vector<double> new_lat(n * n, 0.0);
  // Only rows/cols that existed in the old stride carry data (add_site grows
  // the matrix *after* pushing the new site, so sites_.size() can already
  // exceed the old stride by one).
  const std::size_t old_n = std::min(sites_.size(), stride_);
  for (std::size_t i = 0; i < old_n; ++i) {
    for (std::size_t j = 0; j < old_n; ++j) {
      new_bw[i * n + j] = bandwidth_[i * stride_ + j];
      new_lat[i * n + j] = latency_[i * stride_ + j];
    }
  }
  bandwidth_ = std::move(new_bw);
  latency_ = std::move(new_lat);
  stride_ = n;
}

void Topology::set_link(SiteId from, SiteId to, double bandwidth_mbps,
                        double latency_ms) {
  assert(from != to);
  bandwidth_[index(from) * stride_ + index(to)] = bandwidth_mbps;
  latency_[index(from) * stride_ + index(to)] = latency_ms;
}

const Site& Topology::site(SiteId id) const { return sites_[index(id)]; }

double Topology::base_bandwidth(SiteId from, SiteId to) const {
  if (from == to) return kLocalBandwidthMbps;
  return bandwidth_[index(from) * stride_ + index(to)];
}

double Topology::latency_ms(SiteId from, SiteId to) const {
  if (from == to) return kLocalLatencyMs;
  return latency_[index(from) * stride_ + index(to)];
}

int Topology::total_slots() const {
  int total = 0;
  for (const Site& s : sites_) total += s.slots;
  return total;
}

int Topology::domain_of(SiteId id) const { return sites_[index(id)].domain; }

std::vector<SiteId> Topology::sites_in_domain(int domain) const {
  std::vector<SiteId> ids;
  for (const Site& s : sites_) {
    if (s.domain == domain) ids.push_back(s.id);
  }
  return ids;
}

std::size_t Topology::index(SiteId id) const {
  assert(id.valid());
  const auto i = static_cast<std::size_t>(id.value());
  assert(i < sites_.size());
  return i;
}

Topology Topology::make_paper_testbed(Rng& rng) {
  Topology topo;

  // 8 data centers named after the EC2 regions measured in the paper, 8
  // slots each (§8.2). Failure domains pair geographically adjacent regions
  // (availability-zone style): domains 0-3 cover the DCs, 4-7 the edges.
  // The assignment is a fixed function of the site index so it draws nothing
  // from `rng` and leaves the link distributions untouched.
  const char* kRegions[] = {"oregon", "ohio",      "ireland", "frankfurt",
                            "seoul",  "singapore", "mumbai",  "saopaulo"};
  std::vector<SiteId> dcs;
  for (int i = 0; i < 8; ++i) {
    dcs.push_back(topo.add_site(kRegions[i], SiteType::kDataCenter, 8, i / 2));
  }
  // 8 edge sites with 2-4 slots each.
  std::vector<SiteId> edges;
  for (int i = 0; i < 8; ++i) {
    edges.push_back(topo.add_site("edge-" + std::to_string(i),
                                  SiteType::kEdge,
                                  static_cast<int>(rng.uniform_int(2, 4)),
                                  4 + i / 2));
  }

  // DC <-> DC links follow the Fig. 7 EC2 distribution: bandwidth spread
  // roughly 25-250 Mbps (log-normal), latency 20-300 ms depending on
  // geographic spread. Links are asymmetric: each direction is drawn
  // independently, as inbound/outbound WAN capacity differs in practice.
  for (std::size_t i = 0; i < dcs.size(); ++i) {
    for (std::size_t j = 0; j < dcs.size(); ++j) {
      if (i == j) continue;
      // "Distance" proxy: region index gap drives latency so the matrix has
      // near (same-continent) and far pairs, like the measured testbed.
      const double gap =
          static_cast<double>(std::min<std::size_t>((i > j) ? i - j : j - i,
                                                    dcs.size() / 2));
      const double latency =
          20.0 + 60.0 * gap + rng.uniform(-10.0, 10.0);
      const double bandwidth =
          std::clamp(rng.lognormal(std::log(90.0), 0.55), 25.0, 250.0);
      topo.set_link(dcs[i], dcs[j], bandwidth, std::max(5.0, latency));
    }
  }

  // Edge links ride the public Internet. Calibrated to the paper's
  // Fig. 7(a) edge CDF (median ~20 Mbps, spread ~5-60 Mbps) -- stronger
  // than the Akamai broadband average quoted in §2.2, but matching the
  // testbed's measured distribution, and sized so the §8.4/§8.5 dynamics
  // reproduce: the baseline runs healthy at p = 1, the 2x workload surge is
  // still single-site re-assignable, and the 0.5x bandwidth drop is not
  // (forcing scale-out). Latency is regional (edges talk to nearby sites),
  // 5-100 ms.
  auto edge_bandwidth = [&rng] {
    return std::clamp(rng.lognormal(std::log(20.0), 0.5), 5.0, 60.0);
  };
  auto edge_latency = [&rng] { return rng.uniform(5.0, 100.0); };
  for (SiteId e : edges) {
    for (SiteId other : dcs) {
      topo.set_link(e, other, edge_bandwidth(), edge_latency());
      topo.set_link(other, e, edge_bandwidth(), edge_latency());
    }
    for (SiteId other : edges) {
      if (other == e) continue;
      topo.set_link(e, other, edge_bandwidth(), edge_latency());
    }
  }
  return topo;
}

Topology Topology::make_uniform(int n, int slots, double bandwidth_mbps,
                                double latency_ms) {
  Topology topo;
  std::vector<SiteId> ids;
  for (int i = 0; i < n; ++i) {
    ids.push_back(topo.add_site("site-" + std::to_string(i),
                                SiteType::kDataCenter, slots));
  }
  for (SiteId a : ids) {
    for (SiteId b : ids) {
      if (a != b) topo.set_link(a, b, bandwidth_mbps, latency_ms);
    }
  }
  return topo;
}

Topology Topology::make_edge_hierarchy(const EdgeHierarchyParams& params,
                                       Rng& rng) {
  assert(params.regions >= 1);
  assert(params.core_dcs >= 1);
  assert(params.edge_slots_min >= 1 &&
         params.edge_slots_max >= params.edge_slots_min);
  const int regions = params.regions;
  const int dpr = std::max(1, params.domains_per_region);

  Topology topo;
  topo.reserve_sites(static_cast<std::size_t>(params.total_sites()));

  // Tier assignment, recorded per site for the link pass below.
  enum class Tier { kCore, kRegional, kEdge };
  std::vector<Tier> tier;
  // Ring position of each site's region (cores are anchored evenly around
  // the ring so near/far pairs exist at every tier, like the paper's
  // region-index "distance" proxy).
  std::vector<int> region_pos;

  // Sites, in a fixed order: core DCs, then each region's regional DCs, then
  // each region's edge sites (region-major). Only the edge slot counts draw
  // from the Rng here, so the site block consumes exactly `edge_sites` draws.
  for (int c = 0; c < params.core_dcs; ++c) {
    const int domain = regions * dpr + c / 2;  // paired AZ-style, above regions
    topo.add_site("core-" + std::to_string(c), SiteType::kDataCenter,
                  params.core_slots, domain);
    tier.push_back(Tier::kCore);
    region_pos.push_back(c * regions / params.core_dcs);
  }
  for (int r = 0; r < regions; ++r) {
    for (int d = 0; d < params.regional_dcs_per_region; ++d) {
      topo.add_site("r" + std::to_string(r) + "-dc-" + std::to_string(d),
                    SiteType::kDataCenter, params.regional_slots, r * dpr);
      tier.push_back(Tier::kRegional);
      region_pos.push_back(r);
    }
  }
  // Edge sites split as evenly as possible: the first (edge_sites % regions)
  // regions take one extra site.
  const int edge_base = params.edge_sites / regions;
  const int edge_extra = params.edge_sites % regions;
  for (int r = 0; r < regions; ++r) {
    const int count = edge_base + (r < edge_extra ? 1 : 0);
    for (int e = 0; e < count; ++e) {
      const int slots = static_cast<int>(
          rng.uniform_int(params.edge_slots_min, params.edge_slots_max));
      topo.add_site("r" + std::to_string(r) + "-edge-" + std::to_string(e),
                    SiteType::kEdge, slots, r * dpr + e % dpr);
      tier.push_back(Tier::kEdge);
      region_pos.push_back(r);
    }
  }

  const std::size_t n = topo.num_sites();
  auto ring_gap = [&](std::size_t a, std::size_t b) {
    const int d = std::abs(region_pos[a] - region_pos[b]);
    return static_cast<double>(std::min(d, regions - d));
  };
  auto draw_bw = [&rng](double median, double sigma, double lo, double hi) {
    return std::clamp(rng.lognormal(std::log(median), sigma), lo, hi);
  };

  // Links, row-major over every directed pair: one bandwidth draw then one
  // latency draw per pair, so the Rng consumption order is a fixed function
  // of the parameters (the determinism contract, DESIGN.md §14).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double gap = ring_gap(i, j);
      const bool i_edge = tier[i] == Tier::kEdge;
      const bool j_edge = tier[j] == Tier::kEdge;
      const bool same_region = region_pos[i] == region_pos[j];

      double bandwidth;
      if (!i_edge && !j_edge) {
        // DC mesh: the core backbone is faster than regional interconnects.
        const bool core_pair = tier[i] == Tier::kCore && tier[j] == Tier::kCore;
        bandwidth = core_pair
                        ? draw_bw(params.core_bw_median, params.core_bw_sigma,
                                  params.core_bw_min, params.core_bw_max)
                        : draw_bw(params.dc_bw_median, params.dc_bw_sigma,
                                  params.dc_bw_min, params.dc_bw_max);
      } else if (same_region) {
        // Edge last mile inside its region (edge<->regional DC, edge<->edge).
        bandwidth = draw_bw(params.edge_bw_median, params.edge_bw_sigma,
                            params.edge_bw_min, params.edge_bw_max);
      } else {
        // Edge traffic leaving its region rides the long-haul Internet.
        bandwidth = draw_bw(params.far_edge_bw_median, params.far_edge_bw_sigma,
                            params.far_edge_bw_min, params.far_edge_bw_max);
      }

      double latency;
      if (!i_edge && !j_edge) {
        latency = 20.0 + params.latency_per_gap_ms * gap + rng.uniform(-10.0, 10.0);
      } else if (same_region) {
        latency = rng.uniform(5.0, 30.0);  // regional last mile
      } else {
        // Long-haul plus last-mile spread at the edge endpoint(s).
        latency = 10.0 + params.latency_per_gap_ms * gap +
                  rng.uniform(0.0, i_edge && j_edge ? 50.0 : 40.0);
      }
      topo.set_link(SiteId(static_cast<std::int64_t>(i)),
                    SiteId(static_cast<std::int64_t>(j)), bandwidth,
                    std::max(5.0, latency));
    }
  }
  return topo;
}

}  // namespace wasp::net
