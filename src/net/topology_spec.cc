#include "net/topology_spec.h"

#include <charconv>
#include <sstream>
#include <vector>

namespace wasp::net {
namespace {

bool parse_int(const std::string& text, int* out) {
  const char* first = text.data();
  const char* last = first + text.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc{} && ptr == last;
}

bool parse_double(const std::string& text, double* out) {
  if (text.empty()) return false;
  try {
    std::size_t pos = 0;
    *out = std::stod(text, &pos);
    return pos == text.size();
  } catch (...) {
    return false;
  }
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// Splits "k1=v1,k2=v2;k3=v3" into key/value pairs. Both ',' and ';' separate
// pairs so specs survive being embedded in comma-split sweep axis values.
bool split_pairs(const std::string& text,
                 std::vector<std::pair<std::string, std::string>>* pairs,
                 std::string* error) {
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find_first_of(",;", start);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(start, end - start);
    if (!item.empty()) {
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0) {
        return fail(error, "topology: expected key=value, got '" + item + "'");
      }
      pairs->emplace_back(item.substr(0, eq), item.substr(eq + 1));
    }
    start = end + 1;
  }
  return true;
}

bool parse_uniform(const std::string& body, TopologySpec* spec,
                   std::string* error) {
  std::vector<std::pair<std::string, std::string>> pairs;
  if (!split_pairs(body, &pairs, error)) return false;
  for (const auto& [key, value] : pairs) {
    bool ok = true;
    if (key == "sites") {
      ok = parse_int(value, &spec->uniform_sites) && spec->uniform_sites >= 1;
    } else if (key == "slots") {
      ok = parse_int(value, &spec->uniform_slots) && spec->uniform_slots >= 1;
    } else if (key == "bw") {
      ok = parse_double(value, &spec->uniform_bw_mbps) &&
           spec->uniform_bw_mbps > 0;
    } else if (key == "lat") {
      ok = parse_double(value, &spec->uniform_latency_ms) &&
           spec->uniform_latency_ms >= 0;
    } else {
      return fail(error, "topology: unknown uniform key '" + key + "'");
    }
    if (!ok) {
      return fail(error,
                  "topology: bad value '" + value + "' for key '" + key + "'");
    }
  }
  return true;
}

bool parse_edge(const std::string& body, TopologySpec* spec,
                std::string* error) {
  std::vector<std::pair<std::string, std::string>> pairs;
  if (!split_pairs(body, &pairs, error)) return false;
  EdgeHierarchyParams& p = spec->edge;
  for (const auto& [key, value] : pairs) {
    bool ok = true;
    if (key == "sites") {
      ok = parse_int(value, &p.edge_sites) && p.edge_sites >= 1;
    } else if (key == "regions") {
      ok = parse_int(value, &p.regions) && p.regions >= 1;
    } else if (key == "core") {
      ok = parse_int(value, &p.core_dcs) && p.core_dcs >= 1;
    } else if (key == "regional") {
      ok = parse_int(value, &p.regional_dcs_per_region) &&
           p.regional_dcs_per_region >= 0;
    } else if (key == "core-slots") {
      ok = parse_int(value, &p.core_slots) && p.core_slots >= 1;
    } else if (key == "regional-slots") {
      ok = parse_int(value, &p.regional_slots) && p.regional_slots >= 1;
    } else if (key == "edge-slots") {
      // "MIN-MAX" range, or a single value for a fixed slot count.
      const std::size_t dash = value.find('-');
      if (dash == std::string::npos) {
        ok = parse_int(value, &p.edge_slots_min);
        p.edge_slots_max = p.edge_slots_min;
      } else {
        ok = parse_int(value.substr(0, dash), &p.edge_slots_min) &&
             parse_int(value.substr(dash + 1), &p.edge_slots_max);
      }
      ok = ok && p.edge_slots_min >= 1 && p.edge_slots_max >= p.edge_slots_min;
    } else if (key == "domains-per-region") {
      ok = parse_int(value, &p.domains_per_region) && p.domains_per_region >= 1;
    } else {
      return fail(error, "topology: unknown edge key '" + key + "'");
    }
    if (!ok) {
      return fail(error,
                  "topology: bad value '" + value + "' for key '" + key + "'");
    }
  }
  return true;
}

}  // namespace

std::optional<TopologySpec> TopologySpec::parse(const std::string& text,
                                                std::string* error) {
  TopologySpec spec;
  const std::size_t colon = text.find(':');
  const std::string head = text.substr(0, colon);
  const std::string body =
      colon == std::string::npos ? std::string() : text.substr(colon + 1);
  if (head == "paper") {
    spec.kind = Kind::kPaper;
    if (!body.empty()) {
      fail(error, "topology: 'paper' takes no parameters");
      return std::nullopt;
    }
  } else if (head == "uniform") {
    spec.kind = Kind::kUniform;
    if (!parse_uniform(body, &spec, error)) return std::nullopt;
  } else if (head == "edge") {
    spec.kind = Kind::kEdgeHierarchy;
    if (!parse_edge(body, &spec, error)) return std::nullopt;
  } else {
    fail(error, "topology: unknown kind '" + head +
                    "' (expected paper | uniform:... | edge:...)");
    return std::nullopt;
  }
  return spec;
}

Topology TopologySpec::build(Rng& rng) const {
  switch (kind) {
    case Kind::kUniform:
      return Topology::make_uniform(uniform_sites, uniform_slots,
                                    uniform_bw_mbps, uniform_latency_ms);
    case Kind::kEdgeHierarchy:
      return Topology::make_edge_hierarchy(edge, rng);
    case Kind::kPaper:
      break;
  }
  return Topology::make_paper_testbed(rng);
}

std::string TopologySpec::to_string() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kPaper:
      out << "paper";
      break;
    case Kind::kUniform:
      out << "uniform:sites=" << uniform_sites << ",slots=" << uniform_slots
          << ",bw=" << uniform_bw_mbps << ",lat=" << uniform_latency_ms;
      break;
    case Kind::kEdgeHierarchy:
      out << "edge:sites=" << edge.edge_sites << ",regions=" << edge.regions
          << ",core=" << edge.core_dcs << ",regional="
          << edge.regional_dcs_per_region << ",core-slots=" << edge.core_slots
          << ",regional-slots=" << edge.regional_slots << ",edge-slots="
          << edge.edge_slots_min << "-" << edge.edge_slots_max
          << ",domains-per-region=" << edge.domains_per_region;
      break;
  }
  return out.str();
}

int TopologySpec::expected_sites() const {
  switch (kind) {
    case Kind::kPaper:
      return 16;
    case Kind::kUniform:
      return uniform_sites;
    case Kind::kEdgeHierarchy:
      return edge.total_sites();
  }
  return 0;
}

}  // namespace wasp::net
