// Network: topology + time-varying capacity + active flows.
//
// This is the simulator's data plane. Stream flows carry event streams
// between stages; bulk flows carry checkpoint state during migration (§5).
// Flows sharing a directed site-pair link split its current capacity by
// max-min fairness, so a state migration naturally competes with (and slows)
// the data streams crossing the same link -- a dynamic the paper's overhead
// experiments (§8.7) depend on.
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "net/bandwidth_model.h"
#include "net/topology.h"

namespace wasp::obs {
class TraceEmitter;
}  // namespace wasp::obs

namespace wasp::exec {
class ThreadPool;
}  // namespace wasp::exec

namespace wasp::net {

enum class FlowKind {
  kStream,  // continuous event stream; demand set each tick
  kBulk,    // finite transfer (state migration); consumes all spare share
};

struct Flow {
  FlowId id;
  SiteId from;
  SiteId to;
  FlowKind kind = FlowKind::kStream;
  double demand_mbps = 0.0;     // streams: offered load this tick
  double allocated_mbps = 0.0;  // filled in by allocate()
  double remaining_mb = 0.0;    // bulk only
  bool done = false;            // bulk only
};

class Network {
 public:
  Network(Topology topology, std::shared_ptr<const BandwidthModel> model);

  [[nodiscard]] const Topology& topology() const { return topology_; }

  // Current capacity of the directed link from -> to (Mbps). A partitioned
  // link, or a link with a down endpoint, has zero capacity: every stream and
  // bulk flow crossing it stalls until the partition heals / the site is
  // restored.
  [[nodiscard]] double capacity(SiteId from, SiteId to, double t) const;

  // --- fault state ---------------------------------------------------------

  // Marks the directed link from -> to as partitioned (capacity 0).
  void set_link_partitioned(SiteId from, SiteId to, bool partitioned);
  [[nodiscard]] bool link_partitioned(SiteId from, SiteId to) const;

  // Marks a whole site as down: every link touching it (including local,
  // same-site transfers) has zero capacity.
  void set_site_down(SiteId site, bool down);
  [[nodiscard]] bool site_down(SiteId site) const;

  [[nodiscard]] double latency_ms(SiteId from, SiteId to) const {
    return topology_.latency_ms(from, to);
  }

  // --- flow management -----------------------------------------------------

  FlowId add_stream_flow(SiteId from, SiteId to);
  FlowId add_bulk_flow(SiteId from, SiteId to, double size_mb);
  void remove_flow(FlowId id);
  void set_stream_demand(FlowId id, double mbps);

  [[nodiscard]] const Flow& flow(FlowId id) const;
  [[nodiscard]] bool has_flow(FlowId id) const;

  // Computes the max-min fair allocation of every link's capacity at time
  // `t` among its flows, then advances bulk transfers by `dt` seconds.
  // Stream allocations are readable via flow().allocated_mbps until the next
  // call.
  void step(double t, double dt);

  // Sum of allocated bandwidth on the directed link from -> to (Mbps) as of
  // the last step(); used by monitors and tests.
  [[nodiscard]] double link_allocated(SiteId from, SiteId to) const;

  [[nodiscard]] std::size_t num_flows() const { return flows_.size(); }

  // Number of unfinished bulk transfers; a clean shutdown (and a clean
  // chaos run) ends with zero.
  [[nodiscard]] std::size_t num_bulk_flows() const;

  // Optional trace hook (non-owning; may be null). step() emits one
  // "link_alloc" event per active WAN link and a "bulk_done" event when a
  // bulk (migration) transfer completes.
  void set_trace(obs::TraceEmitter* trace) { trace_ = trace; }
  [[nodiscard]] obs::TraceEmitter* trace() const { return trace_; }

  // Optional intra-run executor (non-owning; null = serial). The untraced
  // step() chunks its per-link waterfills across the pool: links are
  // independent (each non-local flow belongs to exactly one link group), and
  // each link's fill is computed by exactly one chunk with the same flow
  // order either way, so allocations are bit-identical for any thread count.
  // The traced path stays serial: golden traces pin its event order.
  void set_pool(exec::ThreadPool* pool) { pool_ = pool; }
  [[nodiscard]] exec::ThreadPool* pool() const { return pool_; }

 private:
  // Max-min fair share for the flows of one link given its capacity. Bulk
  // flows are treated as having unbounded demand. Operates on a scratch copy
  // (`active`, caller-provided so parallel chunks stay shared-nothing) so
  // the caller's vector keeps its order.
  static void waterfill(const std::vector<Flow*>& flows, double capacity,
                        std::vector<Flow*>& active);

  // Flows grouped by directed link, cached across step() calls. Flow churn
  // (placement changes, migrations) is orders of magnitude rarer than ticks,
  // so add/remove only mark the cache dirty and the grouping is rebuilt
  // lazily at the next use -- a whole topology's worth of channels can be
  // registered in O(F) instead of O(F^2). The rebuild iterates `flows_` in
  // map order -- the exact order the per-step grouping used to see (the
  // map's iteration order depends only on its contents, not on when the
  // rebuild runs) -- so waterfill's progressive filling and link_allocated's
  // summation visit flows in the same sequence and stay bit-identical.
  struct LinkGroup {
    SiteId from;
    SiteId to;
    std::vector<Flow*> flows;  // map-iteration order at last rebuild
  };
  void rebuild_link_groups();
  void ensure_link_groups() {
    if (link_groups_dirty_) rebuild_link_groups();
  }

  Topology topology_;
  std::shared_ptr<const BandwidthModel> model_;
  std::vector<char> link_partitioned_;  // num_sites^2, row-major from*n+to
  std::vector<char> site_down_;         // num_sites
  std::unordered_map<FlowId, Flow> flows_;
  std::vector<LinkGroup> link_groups_;           // cross-site links
  std::vector<Flow*> local_flows_;               // from == to
  std::unordered_map<std::int64_t, std::size_t> link_index_;  // key -> group
  std::vector<Flow*> waterfill_scratch_;  // active flows of one link
  std::vector<Flow*> wf_active_;          // waterfill's working set
  // Per-chunk scratch of the parallel untraced step (persists across steps;
  // no allocation after warm-up). One slot per link-group chunk.
  struct WfScratch {
    std::vector<Flow*> filtered;  // group flows minus finished bulks
    std::vector<Flow*> active;    // waterfill working set
  };
  std::vector<WfScratch> wf_chunk_scratch_;
  exec::ThreadPool* pool_ = nullptr;
  bool link_groups_dirty_ = true;
  std::int64_t next_flow_id_ = 0;
  obs::TraceEmitter* trace_ = nullptr;
};

}  // namespace wasp::net
