// WAN topology: sites plus directed pair-wise base bandwidth and latency.
//
// The paper's testbed (§8.2, Fig. 7) is an overlay of 16 nodes -- 8 edge
// (2-4 slots) and 8 data-center (8 slots) -- whose inter-site links were
// configured from a 1-day EC2 measurement (data centers) and Akamai's public
// Internet statistics (edges). `make_paper_testbed` regenerates a topology
// with those distributions from a seed; `make_custom` supports arbitrary
// setups for tests.
//
// Past the paper testbed, `make_edge_hierarchy` generates planet-scale
// deployments (DESIGN.md §14): a ring of core data centers, one or more
// regional data centers per region, and hundreds of edge sites, with
// Fig. 7-shaped per-tier-pair bandwidth/latency distributions and per-region
// failure domains. Generation is deterministic given the Rng: sites are
// created first (edge slots draw from the Rng), then every directed link is
// drawn in row-major (from, to) order, one bandwidth draw followed by one
// latency draw per pair.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "net/site.h"

namespace wasp::net {

// Intra-site links are modeled as effectively unconstrained: co-located tasks
// exchange data over the cluster fabric, which is never the bottleneck in
// wide-area analytics (§2.2).
inline constexpr double kLocalBandwidthMbps = 1e6;
inline constexpr double kLocalLatencyMs = 0.1;

// Parameters for `Topology::make_edge_hierarchy` (DESIGN.md §14 has the full
// reference table). Regions sit on a ring -- the geographic proxy the paper
// testbed uses for its latency matrix -- and every core DC is anchored to a
// ring position, so "near" and "far" pairs exist at every tier. Bandwidth
// distributions are lognormal (Fig. 7 shapes), clamped per tier pair; the
// defaults reproduce the paper's DC (25-250 Mbps, median ~90) and edge
// (5-60 Mbps, median ~20) CDFs, with a faster core mesh above them and a
// weaker long-haul distribution for edge traffic leaving its region.
struct EdgeHierarchyParams {
  int edge_sites = 200;  // total edge sites, spread evenly over the regions
  int regions = 8;
  int core_dcs = 4;
  int regional_dcs_per_region = 1;
  int core_slots = 16;
  int regional_slots = 8;
  int edge_slots_min = 2;  // per-site slots drawn uniformly from this range
  int edge_slots_max = 4;
  // Failure domains per region: 1 (default) makes a whole region one failure
  // domain; k > 1 splits each region's sites round-robin into k sub-domains.
  // Core DCs get their own domains above the regional range, paired
  // availability-zone style like the paper testbed.
  int domains_per_region = 1;
  // Per-tier-pair bandwidth distributions: lognormal(log(median), sigma)
  // clamped to [min, max] Mbps, each direction drawn independently.
  double core_bw_median = 150.0, core_bw_sigma = 0.5;   // core <-> core
  double core_bw_min = 50.0, core_bw_max = 500.0;
  double dc_bw_median = 90.0, dc_bw_sigma = 0.55;       // other DC pairs
  double dc_bw_min = 25.0, dc_bw_max = 250.0;
  double edge_bw_median = 20.0, edge_bw_sigma = 0.5;    // edge, in-region
  double edge_bw_min = 5.0, edge_bw_max = 60.0;
  double far_edge_bw_median = 12.0, far_edge_bw_sigma = 0.6;  // edge, long-haul
  double far_edge_bw_min = 3.0, far_edge_bw_max = 40.0;
  // Latency model: base 20 ms + this many ms per unit of ring distance
  // between the endpoints' regions, plus per-tier jitter (edges add
  // last-mile spread).
  double latency_per_gap_ms = 25.0;

  [[nodiscard]] int total_sites() const {
    return core_dcs + regions * regional_dcs_per_region + edge_sites;
  }
};

class Topology {
 public:
  Topology() = default;

  // Adds a site and returns its id (ids are dense, starting at 0). `domain`
  // is the failure domain label; -1 (default) assigns the site its own
  // singleton domain so topologies that ignore domains behave as before.
  SiteId add_site(std::string name, SiteType type, int slots, int domain = -1);

  // Pre-sizes the link matrices for `n` sites so a generator adding hundreds
  // of sites performs one allocation instead of a quadratic regrowth per
  // add_site. Purely an optimization: link values are unaffected.
  void reserve_sites(std::size_t n);

  // Sets the directed link properties from -> to.
  void set_link(SiteId from, SiteId to, double bandwidth_mbps,
                double latency_ms);

  [[nodiscard]] std::size_t num_sites() const { return sites_.size(); }
  [[nodiscard]] const Site& site(SiteId id) const;
  [[nodiscard]] const std::vector<Site>& sites() const { return sites_; }

  // Base (unvaried) bandwidth in Mbps from -> to. Same-site returns the
  // local fabric constant.
  [[nodiscard]] double base_bandwidth(SiteId from, SiteId to) const;

  // One-way latency in milliseconds from -> to.
  [[nodiscard]] double latency_ms(SiteId from, SiteId to) const;

  [[nodiscard]] int total_slots() const;

  // Failure-domain helpers. Domains are plain integer labels on sites; two
  // sites with the same label share fate under `domain_down` faults.
  [[nodiscard]] int domain_of(SiteId id) const;
  [[nodiscard]] std::vector<SiteId> sites_in_domain(int domain) const;

  // The 16-node testbed of §8.2: 8 edge sites (2-4 slots) with public-
  // Internet-like links, 8 data centers (8 slots) with EC2-like links
  // (Fig. 7 distributions). Deterministic given `rng`.
  static Topology make_paper_testbed(Rng& rng);

  // A small symmetric clique for unit tests: `n` sites with `slots` slots
  // each, all links `bandwidth_mbps` / `latency_ms`.
  static Topology make_uniform(int n, int slots, double bandwidth_mbps,
                               double latency_ms);

  // Planet-scale hierarchical deployment (DESIGN.md §14): `core_dcs` core
  // data centers on a ring, `regional_dcs_per_region` regional DCs plus an
  // even share of `edge_sites` edge sites per region, per-tier-pair Fig. 7
  // link distributions, and per-region failure domains. Deterministic given
  // `rng` (fixed draw order, see the header comment); byte-identical
  // topologies for equal seeds and params.
  static Topology make_edge_hierarchy(const EdgeHierarchyParams& params,
                                      Rng& rng);

 private:
  [[nodiscard]] std::size_t index(SiteId id) const;

  std::vector<Site> sites_;
  // Dense row-major matrices indexed [from * stride_ + to]. `stride_` is the
  // allocated dimension (>= num_sites()); add_site regrows it geometrically
  // and reserve_sites pre-sizes it, so bulk construction is O(n^2) overall.
  std::size_t stride_ = 0;
  std::vector<double> bandwidth_;
  std::vector<double> latency_;
};

}  // namespace wasp::net
