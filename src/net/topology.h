// WAN topology: sites plus directed pair-wise base bandwidth and latency.
//
// The paper's testbed (§8.2, Fig. 7) is an overlay of 16 nodes -- 8 edge
// (2-4 slots) and 8 data-center (8 slots) -- whose inter-site links were
// configured from a 1-day EC2 measurement (data centers) and Akamai's public
// Internet statistics (edges). `make_paper_testbed` regenerates a topology
// with those distributions from a seed; `make_custom` supports arbitrary
// setups for tests.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "net/site.h"

namespace wasp::net {

// Intra-site links are modeled as effectively unconstrained: co-located tasks
// exchange data over the cluster fabric, which is never the bottleneck in
// wide-area analytics (§2.2).
inline constexpr double kLocalBandwidthMbps = 1e6;
inline constexpr double kLocalLatencyMs = 0.1;

class Topology {
 public:
  Topology() = default;

  // Adds a site and returns its id (ids are dense, starting at 0). `domain`
  // is the failure domain label; -1 (default) assigns the site its own
  // singleton domain so topologies that ignore domains behave as before.
  SiteId add_site(std::string name, SiteType type, int slots, int domain = -1);

  // Sets the directed link properties from -> to.
  void set_link(SiteId from, SiteId to, double bandwidth_mbps,
                double latency_ms);

  [[nodiscard]] std::size_t num_sites() const { return sites_.size(); }
  [[nodiscard]] const Site& site(SiteId id) const;
  [[nodiscard]] const std::vector<Site>& sites() const { return sites_; }

  // Base (unvaried) bandwidth in Mbps from -> to. Same-site returns the
  // local fabric constant.
  [[nodiscard]] double base_bandwidth(SiteId from, SiteId to) const;

  // One-way latency in milliseconds from -> to.
  [[nodiscard]] double latency_ms(SiteId from, SiteId to) const;

  [[nodiscard]] int total_slots() const;

  // Failure-domain helpers. Domains are plain integer labels on sites; two
  // sites with the same label share fate under `domain_down` faults.
  [[nodiscard]] int domain_of(SiteId id) const;
  [[nodiscard]] std::vector<SiteId> sites_in_domain(int domain) const;

  // The 16-node testbed of §8.2: 8 edge sites (2-4 slots) with public-
  // Internet-like links, 8 data centers (8 slots) with EC2-like links
  // (Fig. 7 distributions). Deterministic given `rng`.
  static Topology make_paper_testbed(Rng& rng);

  // A small symmetric clique for unit tests: `n` sites with `slots` slots
  // each, all links `bandwidth_mbps` / `latency_ms`.
  static Topology make_uniform(int n, int slots, double bandwidth_mbps,
                               double latency_ms);

 private:
  [[nodiscard]] std::size_t index(SiteId id) const;

  std::vector<Site> sites_;
  // Dense row-major matrices indexed [from * n + to]; resized on add_site.
  std::vector<double> bandwidth_;
  std::vector<double> latency_;
};

}  // namespace wasp::net
