// Sites: the compute locations of the wide-area deployment.
//
// Matches the paper's testbed model (§8.2): a site is an edge cluster or a
// data center offering a number of computing slots; each slot runs exactly
// one task (§3.1). Compute heterogeneity across slots is abstracted away
// (§7, "homogeneous compute power across slots") -- sites differ only in the
// number of slots and their network connectivity.
#pragma once

#include <string>

#include "common/ids.h"

namespace wasp::net {

enum class SiteType { kEdge, kDataCenter };

struct Site {
  SiteId id;
  std::string name;
  SiteType type = SiteType::kDataCenter;
  int slots = 0;
  // Failure domain: sites sharing a domain fail together under correlated
  // faults (rack/zone outages). Placement anti-affinity keeps a stage's
  // primary and hot-standby replicas in distinct domains. Defaults to a
  // per-site singleton domain (== site index) when not assigned.
  int domain = -1;
};

[[nodiscard]] inline const char* to_string(SiteType type) {
  return type == SiteType::kEdge ? "edge" : "datacenter";
}

}  // namespace wasp::net
