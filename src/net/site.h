// Sites: the compute locations of the wide-area deployment.
//
// Matches the paper's testbed model (§8.2): a site is an edge cluster or a
// data center offering a number of computing slots; each slot runs exactly
// one task (§3.1). Compute heterogeneity across slots is abstracted away
// (§7, "homogeneous compute power across slots") -- sites differ only in the
// number of slots and their network connectivity.
#pragma once

#include <string>

#include "common/ids.h"

namespace wasp::net {

enum class SiteType { kEdge, kDataCenter };

struct Site {
  SiteId id;
  std::string name;
  SiteType type = SiteType::kDataCenter;
  int slots = 0;
};

[[nodiscard]] inline const char* to_string(SiteType type) {
  return type == SiteType::kEdge ? "edge" : "datacenter";
}

}  // namespace wasp::net
