// WAN Monitor: the control plane's view of inter-site bandwidth.
//
// The WASP prototype runs a background module that periodically measures
// pair-wise available bandwidth between sites (§8.1, iperf-style probes).
// The adaptation layer never sees the network's true instantaneous capacity;
// it plans against this monitor's estimates, which are (a) only refreshed at
// the probe interval, so they can be stale, and (b) perturbed by measurement
// noise and smoothed with an EWMA. The α-headroom in the placement ILP
// (§4.1) exists precisely to absorb these estimation errors.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/stats.h"
#include "net/network.h"

namespace wasp::net {

class WanMonitor {
 public:
  struct Config {
    double probe_interval_sec = 40.0;
    double noise_stddev = 0.05;  // relative probe noise
    double ewma_alpha = 0.5;
  };

  WanMonitor(const Network& network, const Config& config, Rng rng);

  // Advances the monitor; probes all links whenever the interval elapses.
  void tick(double t);

  // Forces an immediate probe of all links (used at deployment time).
  void probe_now(double t);

  // Latest bandwidth estimate (Mbps) for the directed link from -> to.
  // Same-site pairs report the local fabric constant.
  [[nodiscard]] double available(SiteId from, SiteId to) const;

  [[nodiscard]] double last_probe_time() const { return last_probe_; }

 private:
  const Network& network_;
  Config config_;
  Rng rng_;
  double last_probe_ = -1e18;
  std::vector<Ewma> estimates_;  // [from * n + to]
};

}  // namespace wasp::net
