#include "microengine/micro_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/units.h"

namespace wasp::micro {
namespace {

// A survival draw that matches an arbitrary selectivity sigma >= 0: each
// record yields floor(sigma) copies plus one more with probability
// frac(sigma).
std::uint64_t copies_for(double sigma, Rng& rng) {
  const double whole = std::floor(sigma);
  const double frac = sigma - whole;
  std::uint64_t copies = static_cast<std::uint64_t>(whole);
  if (rng.uniform() < frac) ++copies;
  return copies;
}

}  // namespace

MicroEngine::MicroEngine(const query::LogicalPlan& logical,
                         const physical::PhysicalPlan& physical,
                         const net::Topology& topology, MicroConfig config)
    : logical_(logical),
      topology_(topology),
      config_(config),
      rng_(config.seed) {
  assert(logical_.validate().empty());
  groups_of_op_.resize(logical_.num_operators());
  for (const auto& op : logical_.operators()) {
    const auto op_index = static_cast<std::size_t>(op.id.value());
    const physical::Stage& stage = physical.stage_for(op.id);
    for (SiteId site : stage.placement.sites()) {
      TaskGroup group;
      group.op_index = op_index;
      group.site = site;
      group.servers = stage.placement.at(site);
      const std::size_t index = groups_.size();
      groups_.push_back(group);
      groups_of_op_[op_index].push_back(index);
      group_by_key_.emplace(
          static_cast<std::int64_t>(op_index) * 4096 + site.value(), index);
    }
    if (op.is_source()) {
      for (SiteId site : stage.placement.sites()) {
        sources_.push_back(SourceGen{op_index, site, 0.0});
      }
    }
  }
}

void MicroEngine::set_source_rate(OperatorId source, SiteId site, double eps) {
  for (auto& gen : sources_) {
    if (gen.op_index == static_cast<std::size_t>(source.value()) &&
        gen.site == site) {
      gen.rate = eps;
      return;
    }
  }
  assert(false && "source/site pair not deployed");
}

std::size_t MicroEngine::group_index(std::size_t op_index, SiteId site) const {
  const auto it = group_by_key_.find(
      static_cast<std::int64_t>(op_index) * 4096 + site.value());
  assert(it != group_by_key_.end());
  return it->second;
}

void MicroEngine::schedule(double time, EventKind kind, std::size_t a,
                           Record record) {
  events_.push(Event{time, next_seq_++, kind, a, record});
}

void MicroEngine::enqueue_record(std::size_t group, double now,
                                 Record record) {
  TaskGroup& g = groups_[group];
  g.queue.push(record);
  if (g.busy < g.servers) start_service(group, now);
}

void MicroEngine::start_service(std::size_t group, double now) {
  TaskGroup& g = groups_[group];
  if (g.queue.empty() || g.busy >= g.servers) return;
  const Record record = g.queue.front();
  g.queue.pop();
  ++g.busy;
  const auto& op = logical_.op(OperatorId(static_cast<std::int64_t>(
      g.op_index)));
  const double mean_service = 1.0 / op.events_per_sec_per_slot;
  const double service = config_.exponential_service
                             ? rng_.exponential(1.0 / mean_service)
                             : mean_service;
  schedule(now + service, EventKind::kServiceDone, group, record);
}

void MicroEngine::emit_downstream(std::size_t group, double now, Record record,
                                  std::uint64_t copies) {
  const TaskGroup& g = groups_[group];
  const auto& op = logical_.op(OperatorId(static_cast<std::int64_t>(
      g.op_index)));
  for (OperatorId d : logical_.downstream(op.id)) {
    const auto d_index = static_cast<std::size_t>(d.value());
    const auto& d_groups = groups_of_op_[d_index];
    if (d_groups.empty()) continue;
    for (std::uint64_t c = 0; c < copies; ++c) {
      // Routing: forward keeps the record local when a co-located receiver
      // exists; otherwise hash-partition across the receiver's tasks.
      std::size_t target = d_groups.front();
      bool routed = false;
      if (op.output_partitioning == query::Partitioning::kForward) {
        for (std::size_t dg : d_groups) {
          if (groups_[dg].site == g.site) {
            target = dg;
            routed = true;
            break;
          }
        }
      }
      if (!routed) {
        std::vector<double> weights;
        weights.reserve(d_groups.size());
        for (std::size_t dg : d_groups) {
          weights.push_back(static_cast<double>(groups_[dg].servers));
        }
        target = d_groups[rng_.weighted_index(weights)];
      }
      deliver(group, target, now, record);
    }
  }
}

void MicroEngine::deliver(std::size_t from_group, std::size_t to_group,
                          double now, Record record) {
  const TaskGroup& from = groups_[from_group];
  const TaskGroup& to = groups_[to_group];
  if (from.site == to.site) {
    enqueue_record(to_group, now, record);
    return;
  }
  // FIFO serialization on the directed link, then propagation.
  const auto& op = logical_.op(OperatorId(static_cast<std::int64_t>(
      from.op_index)));
  const double bw = topology_.base_bandwidth(from.site, to.site);
  const double tx_sec = op.output_event_bytes * kBitsPerByte / (bw * 1e6);
  const std::int64_t key =
      from.site.value() * static_cast<std::int64_t>(topology_.num_sites()) +
      to.site.value();
  Link& link = links_[key];
  const double tx_start = std::max(now, link.busy_until);
  link.busy_until = tx_start + tx_sec;
  const double arrival =
      link.busy_until + topology_.latency_ms(from.site, to.site) / 1e3;
  schedule(arrival, EventKind::kLinkDelivered, to_group, record);
}

MicroResults MicroEngine::run() {
  results_ = MicroResults{};
  const double measure_from = config_.horizon_sec / 2.0;
  std::uint64_t delivered_in_window = 0;

  // Prime source generation and window boundaries.
  for (std::size_t s = 0; s < sources_.size(); ++s) {
    if (sources_[s].rate > 0.0) {
      schedule(0.0, EventKind::kGenerate, s, Record{});
    }
  }
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const auto& op = logical_.op(OperatorId(static_cast<std::int64_t>(
        groups_[g].op_index)));
    if (op.window.windowed()) {
      schedule(op.window.length_sec, EventKind::kWindowBoundary, g, Record{});
    }
  }

  while (!events_.empty()) {
    const Event event = events_.top();
    events_.pop();
    if (event.time > config_.horizon_sec) break;
    const double now = event.time;

    switch (event.kind) {
      case EventKind::kGenerate: {
        SourceGen& gen = sources_[event.a];
        ++results_.generated;
        Record record{now};
        enqueue_record(group_index(gen.op_index, gen.site), now, record);
        const double gap = config_.poisson_arrivals
                               ? rng_.exponential(gen.rate)
                               : 1.0 / gen.rate;
        schedule(now + gap, EventKind::kGenerate, event.a, Record{});
        break;
      }
      case EventKind::kServiceDone: {
        TaskGroup& g = groups_[event.a];
        --g.busy;
        const auto& op = logical_.op(OperatorId(static_cast<std::int64_t>(
            g.op_index)));
        if (op.is_sink()) {
          ++results_.delivered;
          if (now >= measure_from) {
            ++delivered_in_window;
            results_.latency.add(now - event.record.gen_time);
          }
        } else if (op.window.windowed()) {
          // Buffer into the open window; emission happens at the boundary.
          ++g.window_count;
          g.window_latest_gen =
              std::max(g.window_latest_gen, event.record.gen_time);
        } else {
          emit_downstream(event.a, now, event.record,
                          copies_for(op.selectivity, rng_));
        }
        start_service(event.a, now);
        break;
      }
      case EventKind::kLinkDelivered:
        enqueue_record(event.a, now, event.record);
        break;
      case EventKind::kWindowBoundary: {
        TaskGroup& g = groups_[event.a];
        const auto& op = logical_.op(OperatorId(static_cast<std::int64_t>(
            g.op_index)));
        if (g.window_count > 0) {
          // §8.3 semantics: aggregates carry the latest contained event
          // time; output volume follows the selectivity.
          const auto outputs = static_cast<std::uint64_t>(std::ceil(
              op.selectivity * static_cast<double>(g.window_count)));
          Record aggregate{g.window_latest_gen};
          emit_downstream(event.a, now, aggregate, outputs);
          g.window_count = 0;
          g.window_latest_gen = 0.0;
        }
        schedule(now + op.window.length_sec, EventKind::kWindowBoundary,
                 event.a, Record{});
        break;
      }
    }
  }

  const double window = config_.horizon_sec - measure_from;
  results_.sink_eps =
      window > 0.0 ? static_cast<double>(delivered_in_window) / window : 0.0;
  return results_;
}

}  // namespace wasp::micro
