#include "microengine/micro_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>

#include "common/log.h"
#include "common/units.h"
#include "obs/profiler.h"

namespace wasp::micro {
namespace {

// A survival draw that matches an arbitrary selectivity sigma >= 0: each
// record yields floor(sigma) copies plus one more with probability
// frac(sigma).
std::uint64_t copies_for(double sigma, Rng& rng) {
  const double whole = std::floor(sigma);
  const double frac = sigma - whole;
  std::uint64_t copies = static_cast<std::uint64_t>(whole);
  if (rng.uniform() < frac) ++copies;
  return copies;
}

}  // namespace

MicroEngine::MicroEngine(const query::LogicalPlan& logical,
                         const physical::PhysicalPlan& physical,
                         const net::Topology& topology, MicroConfig config)
    : logical_(logical),
      topology_(topology),
      config_(config),
      rng_(config.seed) {
  assert(logical_.validate().empty());
  groups_of_op_.resize(logical_.num_operators());
  for (const auto& op : logical_.operators()) {
    const auto op_index = static_cast<std::size_t>(op.id.value());
    const physical::Stage& stage = physical.stage_for(op.id);
    for (SiteId site : stage.placement.sites()) {
      TaskGroup group;
      group.op_index = op_index;
      group.site = site;
      group.servers = stage.placement.at(site);
      group.mean_service_sec = 1.0 / op.events_per_sec_per_slot;
      group.selectivity = op.selectivity;
      group.window_len_sec = op.window.length_sec;
      group.out_event_bytes = op.output_event_bytes;
      group.is_sink = op.is_sink();
      group.windowed = op.window.windowed();
      group.forward =
          op.output_partitioning == query::Partitioning::kForward;
      groups_of_op_[op_index].push_back(groups_.size());
      groups_.push_back(std::move(group));
    }
    if (op.is_source()) {
      for (SiteId site : stage.placement.sites()) {
        sources_.push_back(SourceGen{op_index, site, 0.0, 0});
      }
    }
  }

  // Resolve each generator's group once (the event loop hops straight to it
  // per record).
  for (SourceGen& gen : sources_) {
    gen.group = kNoGroup;
    for (const std::size_t g : groups_of_op_[gen.op_index]) {
      if (groups_[g].site == gen.site) {
        gen.group = g;
        break;
      }
    }
    // A source with no co-located task group would make the event loop index
    // groups_[kNoGroup]; fail loudly in Release too.
    check(gen.group != kNoGroup,
          "MicroEngine: source operator ", gen.op_index, " at site ",
          gen.site.value(), " has no task group placed on its own site");
  }

  // Routing tables: for every (operator, downstream) pair the receiver
  // groups and their server weights; for every sender group the co-located
  // forward target. Weights never change (the micro engine runs a fixed
  // deployment), so the per-record routing draw reuses these vectors.
  routes_.resize(logical_.num_operators());
  fwd_target_.assign(groups_.size(), {});
  for (const auto& op : logical_.operators()) {
    const auto op_index = static_cast<std::size_t>(op.id.value());
    for (OperatorId d : logical_.downstream(op.id)) {
      Route route;
      route.d_groups = groups_of_op_[static_cast<std::size_t>(d.value())];
      route.weights.reserve(route.d_groups.size());
      for (const std::size_t dg : route.d_groups) {
        route.weights.push_back(static_cast<double>(groups_[dg].servers));
      }
      routes_[op_index].push_back(std::move(route));
    }
  }
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const std::vector<Route>& rts = routes_[groups_[g].op_index];
    fwd_target_[g].assign(rts.size(), kNoGroup);
    for (std::size_t ri = 0; ri < rts.size(); ++ri) {
      for (const std::size_t dg : rts[ri].d_groups) {
        if (groups_[dg].site == groups_[g].site) {
          fwd_target_[g][ri] = dg;
          break;
        }
      }
    }
  }

  // Dense link state. Bandwidth and latency are topology constants; the
  // transmission-time expression in deliver() keeps the exact operand order
  // of a direct topology query, so caching them is bit-neutral.
  num_sites_ = static_cast<std::size_t>(topology_.num_sites());
  link_busy_until_.assign(num_sites_ * num_sites_, 0.0);
  link_bw_mbps_.assign(num_sites_ * num_sites_, 0.0);
  link_latency_ms_.assign(num_sites_ * num_sites_, 0.0);
  for (std::size_t from = 0; from < num_sites_; ++from) {
    for (std::size_t to = 0; to < num_sites_; ++to) {
      if (from == to) continue;
      const SiteId sf(static_cast<std::int64_t>(from));
      const SiteId st(static_cast<std::int64_t>(to));
      link_bw_mbps_[from * num_sites_ + to] =
          topology_.base_bandwidth(sf, st);
      link_latency_ms_[from * num_sites_ + to] = topology_.latency_ms(sf, st);
    }
  }
}

void MicroEngine::set_source_rate(OperatorId source, SiteId site, double eps) {
  for (auto& gen : sources_) {
    if (gen.op_index == static_cast<std::size_t>(source.value()) &&
        gen.site == site) {
      gen.rate = eps;
      return;
    }
  }
  // Setting a rate on an undeployed (source, site) pair used to be a plain
  // assert, i.e. a silent no-op in Release builds: the caller's workload
  // pattern was quietly ignored and the run produced zero events from that
  // source. Fail loudly in every build type instead.
  check(false, "MicroEngine::set_source_rate: source operator ",
        source.value(), " is not deployed at site ", site.value());
}

void MicroEngine::ring_push(TaskGroup& g, double gen_time) {
  if (g.count == g.ring.size()) {
    // Grow to the next power of two, unrolling the ring to the front.
    const std::size_t old_cap = g.ring.size();
    std::vector<double> grown(old_cap == 0 ? 64 : old_cap * 2);
    for (std::size_t i = 0; i < g.count; ++i) {
      grown[i] = g.ring[(g.head + i) & (old_cap - 1)];
    }
    g.ring = std::move(grown);
    g.head = 0;
  }
  g.ring[(g.head + g.count) & (g.ring.size() - 1)] = gen_time;
  ++g.count;
}

double MicroEngine::ring_pop(TaskGroup& g) {
  const double gen_time = g.ring[g.head];
  g.head = (g.head + 1) & (g.ring.size() - 1);
  --g.count;
  return gen_time;
}

void MicroEngine::schedule(double time, EventKind kind, std::size_t a,
                           Record record) {
  const Event e{time, next_seq_++, kind, a, record};
  events_.push_back(e);
  std::size_t i = events_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!(events_[parent] > e)) break;
    events_[i] = events_[parent];
    i = parent;
  }
  events_[i] = e;
}

MicroEngine::Event MicroEngine::pop_event() {
  const Event top = events_.front();
  const Event last = events_.back();
  events_.pop_back();
  const std::size_t n = events_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t child = 4 * i + 1;
      if (child >= n) break;
      std::size_t best = child;
      const std::size_t end = std::min(child + 4, n);
      for (std::size_t j = child + 1; j < end; ++j) {
        if (events_[best] > events_[j]) best = j;
      }
      if (!(last > events_[best])) break;
      events_[i] = events_[best];
      i = best;
    }
    events_[i] = last;
  }
  return top;
}

void MicroEngine::enqueue_record(std::size_t group, double now,
                                 Record record) {
  TaskGroup& g = groups_[group];
  ring_push(g, record.gen_time);
  if (g.busy < g.servers) start_service(group, now);
}

void MicroEngine::start_service(std::size_t group, double now) {
  TaskGroup& g = groups_[group];
  if (g.count == 0 || g.busy >= g.servers) return;
  const Record record{ring_pop(g)};
  ++g.busy;
  const double service = config_.exponential_service
                             ? rng_.exponential(1.0 / g.mean_service_sec)
                             : g.mean_service_sec;
  schedule(now + service, EventKind::kServiceDone, group, record);
}

void MicroEngine::emit_downstream(std::size_t group, double now, Record record,
                                  std::uint64_t copies) {
  const TaskGroup& g = groups_[group];
  const std::vector<Route>& rts = routes_[g.op_index];
  const std::vector<std::size_t>& fwd = fwd_target_[group];
  for (std::size_t ri = 0; ri < rts.size(); ++ri) {
    const Route& rt = rts[ri];
    if (rt.d_groups.empty()) continue;
    // Routing: forward keeps the record local when a co-located receiver
    // exists; otherwise hash-partition across the receiver's tasks. The
    // weighted draw consumes exactly one uniform per routed record, the
    // same RNG schedule as rebuilding the weights per copy would have.
    const bool local = g.forward && fwd[ri] != kNoGroup;
    for (std::uint64_t c = 0; c < copies; ++c) {
      const std::size_t target =
          local ? fwd[ri] : rt.d_groups[rng_.weighted_index(rt.weights)];
      deliver(group, target, now, record);
    }
  }
}

void MicroEngine::deliver(std::size_t from_group, std::size_t to_group,
                          double now, Record record) {
  const TaskGroup& from = groups_[from_group];
  const TaskGroup& to = groups_[to_group];
  if (from.site == to.site) {
    enqueue_record(to_group, now, record);
    return;
  }
  // FIFO serialization on the directed link, then propagation.
  const std::size_t link =
      static_cast<std::size_t>(from.site.value()) * num_sites_ +
      static_cast<std::size_t>(to.site.value());
  const double bw = link_bw_mbps_[link];
  const double tx_sec = from.out_event_bytes * kBitsPerByte / (bw * 1e6);
  const double tx_start = std::max(now, link_busy_until_[link]);
  link_busy_until_[link] = tx_start + tx_sec;
  const double arrival = link_busy_until_[link] + link_latency_ms_[link] / 1e3;
  schedule(arrival, EventKind::kLinkDelivered, to_group, record);
}

MicroResults MicroEngine::run() {
  results_ = MicroResults{};
  const double measure_from = config_.horizon_sec / 2.0;
  std::uint64_t delivered_in_window = 0;
  events_.reserve(4096);

  // Prime source generation and window boundaries.
  for (std::size_t s = 0; s < sources_.size(); ++s) {
    if (sources_[s].rate > 0.0) {
      schedule(0.0, EventKind::kGenerate, s, Record{});
    }
  }
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].windowed) {
      schedule(groups_[g].window_len_sec, EventKind::kWindowBoundary, g,
               Record{});
    }
  }

  // Profiling batches the clock reads: one micro.batch frame per
  // kProfileBatchEvents events keeps the observer cost off the per-event
  // path (the DES loop is this module's entire runtime).
  constexpr std::uint64_t kProfileBatchEvents = 4096;
  std::optional<obs::Profiler::Scope> batch_scope;
  std::uint64_t batch_left = kProfileBatchEvents;
  const bool profiling = profiler_ != nullptr && profiler_->enabled();
  if (profiling) batch_scope.emplace(profiler_, obs::Phase::kMicroBatch);

  while (!events_.empty()) {
    const Event event = pop_event();
    if (event.time > config_.horizon_sec) break;
    const double now = event.time;
    if (profiling && --batch_left == 0) {
      batch_scope.emplace(profiler_, obs::Phase::kMicroBatch);
      batch_left = kProfileBatchEvents;
    }

    switch (event.kind) {
      case EventKind::kGenerate: {
        SourceGen& gen = sources_[event.a];
        ++results_.generated;
        Record record{now};
        enqueue_record(gen.group, now, record);
        const double gap = config_.poisson_arrivals
                               ? rng_.exponential(gen.rate)
                               : 1.0 / gen.rate;
        schedule(now + gap, EventKind::kGenerate, event.a, Record{});
        break;
      }
      case EventKind::kServiceDone: {
        TaskGroup& g = groups_[event.a];
        --g.busy;
        if (g.is_sink) {
          ++results_.delivered;
          if (now >= measure_from) {
            ++delivered_in_window;
            results_.latency.add(now - event.record.gen_time);
          }
        } else if (g.windowed) {
          // Buffer into the open window; emission happens at the boundary.
          ++g.window_count;
          g.window_latest_gen =
              std::max(g.window_latest_gen, event.record.gen_time);
        } else {
          emit_downstream(event.a, now, event.record,
                          copies_for(g.selectivity, rng_));
        }
        start_service(event.a, now);
        break;
      }
      case EventKind::kLinkDelivered:
        enqueue_record(event.a, now, event.record);
        break;
      case EventKind::kWindowBoundary: {
        TaskGroup& g = groups_[event.a];
        if (g.window_count > 0) {
          // §8.3 semantics: aggregates carry the latest contained event
          // time; output volume follows the selectivity.
          const auto outputs = static_cast<std::uint64_t>(std::ceil(
              g.selectivity * static_cast<double>(g.window_count)));
          Record aggregate{g.window_latest_gen};
          emit_downstream(event.a, now, aggregate, outputs);
          g.window_count = 0;
          g.window_latest_gen = 0.0;
        }
        schedule(now + g.window_len_sec, EventKind::kWindowBoundary, event.a,
                 Record{});
        break;
      }
    }
  }

  const double window = config_.horizon_sec - measure_from;
  results_.sink_eps =
      window > 0.0 ? static_cast<double>(delivered_in_window) / window : 0.0;
  return results_;
}

}  // namespace wasp::micro
