// Per-record discrete-event simulator (the fluid engine's ground truth).
//
// The main engine (src/engine) is a fluid approximation: event populations
// are real-valued rates and queue levels, which is what lets whole
// evaluation figures run in milliseconds. This module is its validator: a
// classic discrete-event queueing-network simulation of the same deployment
// where every record is an object with a generation timestamp that travels
// through task servers and link servers one at a time.
//
// Model:
//  - each (stage, site) task group is a server pool: `tasks` records in
//    service concurrently, each taking 1/events_per_sec_per_slot seconds
//    (deterministic or exponential);
//  - each directed site pair is a FIFO link: a record's transmission
//    serializes at bytes*8/bandwidth seconds, then propagation latency
//    elapses before it arrives (records of all edges sharing the link
//    serialize together);
//  - selectivity is applied per record (survival sampling); windowed
//    aggregations buffer per-window counts and emit ceil(count * sigma)
//    records at the window boundary carrying the *latest* contained
//    generation time -- the paper's §8.3 event-time semantics;
//  - routing follows the placement shares (hash) or co-location (forward),
//    sampled per record;
//  - queues are unbounded (no backpressure): the micro engine measures what
//    an unconstrained-buffer execution would do, so cross-validation against
//    the fluid engine uses sink throughput and latency, which backpressure
//    does not change in the underloaded and capacity-saturated regimes the
//    tests pin down.
//
// Data layout: the event loop runs against flat, precomputed state -- each
// task group's waiting records live in a power-of-two ring buffer of
// generation times, per-(operator, downstream) routing tables (target groups
// + server weights) are built once at construction, and directed-link busy
// times sit in a dense num_sites^2 vector. Per-event work is array reads;
// no hashing or allocation happens after warm-up. The deterministic
// verification contract is strict: all changes preserve the exact event
// order (time, then schedule sequence) and the exact RNG draw sequence of
// the straightforward one-object-at-a-time formulation, so results are
// bit-identical to it.
//
// Deliberately small-scale: O(events * log events); use it for seconds of
// simulated time on single queries, not the full evaluation scenarios.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "common/ids.h"
#include "common/rng.h"
#include "net/topology.h"
#include "physical/physical_plan.h"
#include "query/logical_plan.h"

namespace wasp::obs {
class Profiler;
}  // namespace wasp::obs

namespace wasp::micro {

struct MicroConfig {
  double horizon_sec = 60.0;
  std::uint64_t seed = 1;
  // Deterministic service/interarrival times isolate queueing effects;
  // exponential adds M/M/1-style variance.
  bool exponential_service = false;
  bool poisson_arrivals = false;
};

struct MicroResults {
  // Records emitted at sinks per second, averaged over the measured half of
  // the horizon (the first half is warm-up).
  double sink_eps = 0.0;
  // End-to-end latency (sink arrival time minus generation time) of every
  // sink record in the measured window.
  WeightedHistogram latency;
  // Total records generated / delivered to sinks over the whole run.
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
};

class MicroEngine {
 public:
  MicroEngine(const query::LogicalPlan& logical,
              const physical::PhysicalPlan& physical,
              const net::Topology& topology, MicroConfig config);

  // Sets the generation rate of `source` at `site` (records/s).
  void set_source_rate(OperatorId source, SiteId site, double eps);

  // Tick-phase profiler hook (DESIGN.md §13): run() accounts its event loop
  // under the micro.batch phase in fixed-size event batches, so long
  // validation runs show up in `wasp_trace profile` without a per-event
  // clock read. Pure observer; null (the default) disables.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

  // Runs the whole horizon and returns the measurements.
  [[nodiscard]] MicroResults run();

 private:
  static constexpr std::size_t kNoGroup = static_cast<std::size_t>(-1);

  struct Record {
    double gen_time = 0.0;
  };

  // One (stage, site) task group. Waiting records are generation times in a
  // power-of-two ring buffer; the operator parameters the event loop touches
  // are cached here so dispatch never chases the logical plan.
  struct TaskGroup {
    std::size_t op_index = 0;
    SiteId site;
    int servers = 0;
    int busy = 0;
    std::vector<double> ring;  // gen times; capacity is a power of two
    std::size_t head = 0;
    std::size_t count = 0;
    // Open-window buffer (windowed operators only).
    std::uint64_t window_count = 0;
    double window_latest_gen = 0.0;
    // Cached operator parameters.
    double mean_service_sec = 0.0;
    double selectivity = 1.0;
    double window_len_sec = 0.0;
    double out_event_bytes = 0.0;
    bool is_sink = false;
    bool windowed = false;
    bool forward = false;  // output partitioning is kForward
  };

  // Precomputed routing for one (operator -> downstream operator) edge: the
  // receiver's groups and their server-count weights, reused for every
  // record instead of being rebuilt per copy.
  struct Route {
    std::vector<std::size_t> d_groups;
    std::vector<double> weights;
  };

  enum class EventKind {
    kGenerate,        // a source emits its next record
    kServiceDone,     // a task group finishes one record
    kLinkDelivered,   // a record finishes transmission + propagation
    kWindowBoundary,  // a tumbling window closes
  };

  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  // FIFO tie-break
    EventKind kind = EventKind::kGenerate;
    std::size_t a = 0;  // generator index / group index
    Record record;

    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  struct SourceGen {
    std::size_t op_index = 0;
    SiteId site;
    double rate = 0.0;
    std::size_t group = 0;  // resolved once; the per-record hop is an index
  };

  void schedule(double time, EventKind kind, std::size_t a, Record record);
  Event pop_event();
  void enqueue_record(std::size_t group, double now, Record record);
  void start_service(std::size_t group, double now);
  void emit_downstream(std::size_t group, double now, Record record,
                       std::uint64_t copies);
  void deliver(std::size_t from_group, std::size_t to_group, double now,
               Record record);

  static void ring_push(TaskGroup& g, double gen_time);
  static double ring_pop(TaskGroup& g);

  const query::LogicalPlan& logical_;
  const net::Topology& topology_;
  MicroConfig config_;
  Rng rng_;
  obs::Profiler* profiler_ = nullptr;

  std::vector<TaskGroup> groups_;
  // op index -> group indices (per hosting site).
  std::vector<std::vector<std::size_t>> groups_of_op_;
  std::vector<SourceGen> sources_;

  // Routing tables: routes_[op] lists one Route per downstream operator (in
  // logical-plan downstream order); fwd_target_[group][route] is the
  // co-located receiver group for forward routing, kNoGroup when none.
  std::vector<std::vector<Route>> routes_;
  std::vector<std::vector<std::size_t>> fwd_target_;

  // Dense directed-link state, indexed by from*num_sites+to.
  std::size_t num_sites_ = 0;
  std::vector<double> link_busy_until_;
  std::vector<double> link_bw_mbps_;
  std::vector<double> link_latency_ms_;

  // Pending events in a 4-ary implicit min-heap (earliest time first, seq
  // tie-break). The (time, seq) order is a strict total order -- seq is
  // unique -- so the pop sequence is independent of heap layout and arity;
  // 4-ary just touches fewer cache lines per operation than binary.
  std::vector<Event> events_;
  std::uint64_t next_seq_ = 0;
  MicroResults results_;
};

}  // namespace wasp::micro
