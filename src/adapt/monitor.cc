#include "adapt/monitor.h"

#include <algorithm>

namespace wasp::adapt {

void GlobalMetricMonitor::observe(const engine::Engine& engine, double t) {
  if (ticks_ == 0) window_start_ = t;
  window_end_ = t;
  ++ticks_;
  const std::size_t n = engine.logical().num_operators();
  if (per_op_.size() < n) per_op_.resize(n);
  if (source_eps_sum_.size() < n) source_eps_sum_.resize(n, 0.0);
  for (const auto& op : engine.logical().operators()) {
    // Persistent scratch: op_metrics_into reuses the vectors inside
    // scratch_, so the per-tick observation loop stops allocating. State
    // sizes are skipped -- the window accumulator never reads them.
    engine::OperatorMetrics& m = scratch_;
    engine.op_metrics_into(op.id, m, /*include_state=*/false);
    Accumulator& acc = per_op_[static_cast<std::size_t>(op.id.value())];
    if (acc.ticks == 0) {
      acc.first_queue = m.input_queue_events;
      acc.first_channel_backlog = m.channel_backlog_events;
    }
    acc.lambda_p_sum += m.processed_eps;
    acc.lambda_o_sum += m.emitted_eps;
    acc.lambda_i_sum += m.arrived_eps;
    if (m.backpressured) acc.backpressure_ticks += 1.0;
    acc.last_queue = m.input_queue_events;
    acc.last_channel_backlog = m.channel_backlog_events;
    acc.parallelism = engine.stage_parallelism(op.id);
    ++acc.ticks;

    if (op.is_source()) {
      source_eps_sum_[static_cast<std::size_t>(op.id.value())] +=
          engine.source_generation_eps(op.id);
    }
  }
}

void GlobalMetricMonitor::reset_window() {
  per_op_.clear();
  source_eps_sum_.clear();
  ticks_ = 0;
  window_start_ = window_end_ = 0.0;
}

OperatorWindowStats GlobalMetricMonitor::stats(OperatorId op) const {
  OperatorWindowStats s;
  const auto i = static_cast<std::size_t>(op.value());
  if (i >= per_op_.size() || per_op_[i].ticks == 0) return s;
  const Accumulator& acc = per_op_[i];
  const auto n = static_cast<double>(acc.ticks);
  s.lambda_p = acc.lambda_p_sum / n;
  s.lambda_o = acc.lambda_o_sum / n;
  s.lambda_i = acc.lambda_i_sum / n;
  s.selectivity = s.lambda_p > 0.0 ? s.lambda_o / s.lambda_p : 1.0;
  s.backpressure_frac = acc.backpressure_ticks / n;
  s.input_queue_events = acc.last_queue;
  s.channel_backlog_events = acc.last_channel_backlog;
  const double span = std::max(1.0, window_end_ - window_start_);
  s.input_queue_growth_eps = (acc.last_queue - acc.first_queue) / span;
  s.channel_backlog_growth_eps =
      (acc.last_channel_backlog - acc.first_channel_backlog) / span;
  s.parallelism = acc.parallelism;
  s.ticks = acc.ticks;
  return s;
}

double GlobalMetricMonitor::actual_source_eps(OperatorId source) const {
  const auto i = static_cast<std::size_t>(source.value());
  if (i >= source_eps_sum_.size() || ticks_ == 0) return 0.0;
  return source_eps_sum_[i] / static_cast<double>(ticks_);
}

std::unordered_map<OperatorId, query::OperatorRates>
GlobalMetricMonitor::estimate_actual_rates(
    const query::LogicalPlan& plan) const {
  // §3.3: λ̂_P = λ̂_I = Σ_u λ̂_O[u] (or λ_O[src] at sources); λ̂_O = σ · λ̂_I.
  // σ is the measured selectivity where the operator has processed anything
  // this window, else the configured one.
  std::unordered_map<OperatorId, query::OperatorRates> rates;
  for (OperatorId id : plan.topological_order()) {
    const query::LogicalOperator& op = plan.op(id);
    query::OperatorRates r;
    if (op.is_source()) {
      r.input_eps = actual_source_eps(id);
      r.output_eps = r.input_eps;  // sources pass events through
    } else {
      for (OperatorId u : plan.upstream(id)) {
        r.input_eps += rates.at(u).output_eps;
      }
      const OperatorWindowStats s = stats(id);
      const double sigma =
          s.lambda_p > 1.0 ? s.selectivity : op.selectivity;
      r.output_eps = sigma * r.input_eps;
    }
    rates.emplace(id, r);
  }
  return rates;
}

}  // namespace wasp::adapt
