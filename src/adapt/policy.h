// WASP's adaptation policy (paper §6, Fig. 6).
//
// Every monitoring interval the policy looks at the diagnosed health of each
// operator and decides ONE adaptation action (adapt, then let the system
// stabilize -- §8.2's 40 s interval exists exactly for this):
//
//   compute bottleneck  -> scale UP: more tasks, same site when slots allow,
//                          spilling to remote sites only when they don't;
//   network bottleneck  -> stateless query: re-plan (re-optimize logical +
//                          physical, nothing to migrate);
//                          stateful query: re-assign tasks at the same
//                          parallelism; if infeasible or the migration would
//                          exceed t_max, scale OUT (state partitioning cuts
//                          the per-link transfer); if that would push p past
//                          p_max, fall back to re-planning when the state
//                          allows (common sub-plans);
//                          non-splittable operator: re-plan;
//   over-provisioned    -> scale DOWN one task per interval (stability over
//                          savings, §4.2), only when the survivors can absorb
//                          the load.
//
// The `allow_*` switches reproduce the §8.5 single-technique baselines
// (Re-assign / Scale / Re-plan) and the ablation benches.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "adapt/diagnosis.h"
#include "adapt/monitor.h"
#include "common/ids.h"
#include "engine/engine.h"
#include "physical/physical_plan.h"
#include "physical/scheduler.h"
#include "query/planner.h"
#include "state/migration.h"

namespace wasp::obs {
class Profiler;
class TraceEmitter;
}  // namespace wasp::obs

namespace wasp::adapt {

enum class ActionKind {
  kNone,
  kReassign,
  kScaleUp,
  kScaleOut,
  kScaleDown,
  kReplan,
};

[[nodiscard]] const char* to_string(ActionKind kind);

struct AdaptationAction {
  ActionKind kind = ActionKind::kNone;
  OperatorId op;  // target stage (invalid for kReplan / kNone)
  physical::StagePlacement new_placement;
  state::MigrationPlan migration;
  // Populated for kReplan.
  std::optional<query::LogicalPlan> new_logical;
  std::optional<physical::PhysicalPlan> new_physical;
  // Non-zero when the re-plan orphans tumbling-window state: the switch
  // must wait for the next boundary of this window (§4.3).
  double boundary_window_sec = 0.0;
  double estimated_transition_sec = 0.0;
  std::string reason;
};

// Traffic-weighted delay estimate of a deployed plan, with a large penalty
// per link whose demand exceeds α of the estimated available bandwidth.
// Used to compare the current deployment against re-plan candidates.
[[nodiscard]] double estimate_plan_cost(
    const query::LogicalPlan& logical, const physical::PhysicalPlan& physical,
    const std::unordered_map<OperatorId, query::OperatorRates>& rates,
    const physical::NetworkView& view, double alpha);

class AdaptationPolicy {
 public:
  struct Config {
    int p_max = 3;            // re-plan instead of scaling past this (§6.2)
    double t_max_sec = 30.0;  // migration-time threshold (§6.2)
    bool allow_reassign = true;
    bool allow_scale = true;
    bool allow_replan = true;
    // A re-plan must beat the current plan's estimated cost by this factor.
    double replan_improvement = 0.9;
    // A stage is not scaled down within this long of its last scale-up/out
    // or re-assignment (prevents grow-trim oscillation around a dynamic),
    // nor while the source backlog exceeds ~this many seconds of workload.
    double scale_down_cooldown_sec = 180.0;
    double scale_down_max_backlog_sec = 5.0;
    // Region decomposition for failure recovery (DESIGN.md §14): when every
    // dead site shares one failure domain, re-plans pin each out-of-region
    // site to its current task count (min == max per-site bounds) so the
    // placement solver only re-solves the affected region's subproblem.
    // Falls back to the global solve when the pinned subproblem is
    // infeasible at the stage's current parallelism (the region cannot
    // absorb the lost tasks). Off by default; planet-scale runs enable it.
    bool region_decomposition = false;
    // Per-site failure-domain labels (indexed by site id), required by
    // region_decomposition. WaspSystem defaults them from the topology.
    std::vector<int> site_domains;
  };

  AdaptationPolicy(Config config, physical::Scheduler scheduler,
                   query::QueryPlanner planner,
                   state::MigrationPlanner migration_planner,
                   Diagnoser diagnoser = Diagnoser{})
      : config_(config),
        scheduler_(std::move(scheduler)),
        planner_(std::move(planner)),
        migration_planner_(std::move(migration_planner)),
        diagnoser_(diagnoser) {}

  // Informs the policy of the current time (drives the scale-down
  // cooldown). Call once per decision round.
  void set_now(double t) { now_ = t; }

  // Optional trace hook (non-owning; may be null): decide_all() emits
  // "diagnosis" events for unhealthy operators, "policy_action" per chosen
  // action, and "policy_reject" for considered-but-discarded alternatives.
  // Also forwarded to the embedded migration planner.
  void set_trace(obs::TraceEmitter* trace);

  // Tick-phase profiler hook (DESIGN.md §13), forwarded to the embedded
  // scheduler copy and migration planner so their solver calls land in the
  // control.solver.* phases. Null (the default) disables.
  void set_profiler(obs::Profiler* profiler);

  // Must be called when a kReplan action is applied to the engine. The new
  // plan can reuse OperatorIds for different operators, so the scale-down
  // cooldown map is remapped: operators matched between plans keep their
  // timestamps under their new ids, everything else is dropped. (Without
  // this a fresh operator inherits a stale cooldown -- or escapes one.)
  void on_replan_applied(const query::LogicalPlan& old_plan,
                         const query::LogicalPlan& new_plan);

  // Decides the next action (or kNone). `view` must reflect *currently
  // free* slots; the policy accounts for slots its own reconfiguration
  // releases.
  [[nodiscard]] AdaptationAction decide(const engine::Engine& engine,
                                        const GlobalMetricMonitor& monitor,
                                        const physical::NetworkView& view);

  // Like decide(), but returns up to `max_actions` actions targeting
  // *distinct* operators, with slot accounting threaded between them so two
  // actions never double-book the same slot. A re-plan is always exclusive
  // (it replaces the whole execution). Scale-downs are only issued when no
  // bottleneck needs fixing (one per round: §4.2's gradual scale-down).
  [[nodiscard]] std::vector<AdaptationAction> decide_all(
      const engine::Engine& engine, const GlobalMetricMonitor& monitor,
      const physical::NetworkView& view, std::size_t max_actions = 3);

  // Failure recovery: re-places every unpinned, splittable stage that has
  // tasks on a site in `dead_sites`, excluding those sites from the new
  // placements. Keeps the stage's parallelism when the surviving sites can
  // host it, degrading to fewer tasks when they cannot (partial capacity
  // beats none while the site is out). The returned migrations move state
  // only between live sites -- whatever lived on the dead site is recovered
  // through checkpoint replay, not a bulk transfer. `view` must already
  // report zero slots at the dead sites (the detector-backed MonitorView
  // does). Stages that cannot be re-placed at all are skipped: the caller
  // decides whether to fall back to degrade-mode shedding.
  [[nodiscard]] std::vector<AdaptationAction> plan_recovery(
      const engine::Engine& engine, const GlobalMetricMonitor& monitor,
      const physical::NetworkView& view,
      const std::vector<SiteId>& dead_sites);

  // §6.2 long-term dynamics: evaluates whether a different plan-placement
  // pair would beat the current deployment under the *current* workload,
  // independent of any diagnosed bottleneck. Used by the runtime's periodic
  // background re-evaluation (e.g. for predictable daily shifts). Returns
  // kReplan or kNone.
  [[nodiscard]] AdaptationAction consider_replan(
      const engine::Engine& engine, const GlobalMetricMonitor& monitor,
      const physical::NetworkView& view, const std::string& why);

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct OpDiagnosis {
    OperatorId op;
    Diagnosis diagnosis;
    double expected_input_eps = 0.0;
    double upstream_output_eps = 0.0;
    double observed_input_eps = 0.0;
    double backpressure_frac = 0.0;
    bool actionable = true;  // unpinned and splittable
  };

  [[nodiscard]] std::vector<OpDiagnosis> diagnose_all(
      const engine::Engine& engine, const GlobalMetricMonitor& monitor) const;

  [[nodiscard]] AdaptationAction handle_compute_bottleneck(
      const engine::Engine& engine, const GlobalMetricMonitor& monitor,
      const physical::NetworkView& view, const OpDiagnosis& diag);

  [[nodiscard]] AdaptationAction handle_network_bottleneck(
      const engine::Engine& engine, const GlobalMetricMonitor& monitor,
      const physical::NetworkView& view, const OpDiagnosis& diag);

  [[nodiscard]] AdaptationAction handle_overprovisioning(
      const engine::Engine& engine, const GlobalMetricMonitor& monitor,
      const physical::NetworkView& view, const OpDiagnosis& diag);

  [[nodiscard]] AdaptationAction try_replan(
      const engine::Engine& engine, const GlobalMetricMonitor& monitor,
      const physical::NetworkView& view, const std::string& why);

  // Builds the state-migration plan for moving `op` from its current
  // placement to `to` (balanced shares at the destination).
  [[nodiscard]] state::MigrationPlan migration_for(
      const engine::Engine& engine, OperatorId op,
      const physical::StagePlacement& to, const physical::NetworkView& view);

  // Builds the traffic context of `op`'s stage from the estimated rates and
  // the *current* neighbor placements.
  [[nodiscard]] physical::StageContext stage_context(
      const engine::Engine& engine,
      const std::unordered_map<OperatorId, query::OperatorRates>& rates,
      OperatorId op) const;

  Config config_;
  physical::Scheduler scheduler_;
  query::QueryPlanner planner_;
  state::MigrationPlanner migration_planner_;
  Diagnoser diagnoser_;
  obs::TraceEmitter* trace_ = nullptr;
  double now_ = 0.0;
  // Last time each operator was grown/re-placed (scale-down cooldown).
  std::unordered_map<OperatorId, double> last_grown_;
  // Source-backlog trend across decision rounds (query-level guard).
  double prev_backlog_events_ = 0.0;
  double prev_backlog_time_ = -1.0;
};

}  // namespace wasp::adapt
