// Execution health diagnosis (paper §3.2).
//
// An execution is healthy when no backpressure is observed and
//   (1) λ_P = λ_I           -- enough compute to keep up, and
//   (2) λ_I ≈ Σ_u λ_O[u]    -- enough network to receive the upstream output.
// Violation of (1) with the input actually reaching the operator indicates a
// compute bottleneck; violation of (2) -- data leaving upstream but not
// arriving -- indicates a constrained/congested network path. A third
// diagnosis, over-provisioning, flags stages whose allocated capacity far
// exceeds the expected workload so the policy can scale them down (§4.2).
#pragma once

#include <string>

#include "adapt/monitor.h"
#include "common/ids.h"

namespace wasp::adapt {

enum class Health {
  kHealthy,
  kComputeBottleneck,
  kNetworkBottleneck,
  kOverprovisioned,
};

[[nodiscard]] const char* to_string(Health health);

struct Diagnosis {
  Health health = Health::kHealthy;
  // How far the execution is from healthy: for bottlenecks, the ratio of
  // expected input rate to sustainable rate (>1 = worse); for
  // over-provisioning, the utilization (<1 = more wasteful).
  double severity = 1.0;
  std::string detail;
};

class Diagnoser {
 public:
  struct Config {
    // Relative slack on the rate equalities (absorbs fluid noise).
    double tolerance = 0.08;
    // A stage is over-provisioned when expected input uses less than this
    // fraction of its capacity (and it has more than one task).
    double underutilization = 0.45;
    // Require sustained queue growth (events/s) before declaring a
    // bottleneck, filtering transient spikes (§7).
    double min_queue_growth_eps = 1.0;
    // ... or an already-standing channel backlog of at least this many
    // events (saturated buffers stop growing under backpressure).
    double min_backlog_events = 2'000.0;
    // A non-draining inbound-channel backlog worth this many seconds of
    // upstream traffic marks a network bottleneck even when the rate
    // deficit is within tolerance (a link pinned at ~100% utilization).
    // Must sit below ~1.9 s: saturated channel buffers cap at about twice
    // their drain rate, so a higher threshold can never be reached.
    double standing_backlog_sec = 1.5;
    // Accumulated backlog is folded into the expected workload as
    // backlog / drain_target_sec: the stage should be provisioned to clear
    // its backlog within this horizon (drives post-failure scale-out, §8.6).
    double drain_target_sec = 60.0;
  };

  [[nodiscard]] const Config& config() const { return config_; }

  Diagnoser() = default;
  explicit Diagnoser(Config config) : config_(config) {}

  // Diagnoses one operator from its window stats, the §3.3 expected input
  // rate, the upstream expected output sum, and the stage's aggregate
  // processing capacity (events/s across its tasks).
  [[nodiscard]] Diagnosis diagnose(const OperatorWindowStats& stats,
                                   double expected_input_eps,
                                   double upstream_output_eps,
                                   double capacity_eps) const;

 private:
  Config config_{};
};

}  // namespace wasp::adapt
