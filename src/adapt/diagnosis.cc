#include "adapt/diagnosis.h"

#include <algorithm>
#include <sstream>

namespace wasp::adapt {

const char* to_string(Health health) {
  switch (health) {
    case Health::kHealthy:
      return "healthy";
    case Health::kComputeBottleneck:
      return "compute-bottleneck";
    case Health::kNetworkBottleneck:
      return "network-bottleneck";
    case Health::kOverprovisioned:
      return "overprovisioned";
  }
  return "?";
}

Diagnosis Diagnoser::diagnose(const OperatorWindowStats& stats,
                              double expected_input_eps,
                              double upstream_output_eps,
                              double capacity_eps) const {
  Diagnosis d;
  if (stats.ticks == 0) return d;
  const double tol = config_.tolerance;

  // Compute bottleneck: the expected workload exceeds what the stage's
  // allocated slots can process (λ_P < λ̂_I), and the input queue confirms
  // it is actually falling behind.
  const bool capacity_exceeded =
      expected_input_eps > capacity_eps * (1.0 + tol) &&
      (stats.input_queue_growth_eps > config_.min_queue_growth_eps ||
       stats.lambda_p < expected_input_eps * (1.0 - tol));
  // Straggler: events arrive and pile up in the *input* queue while the
  // nominal capacity claims headroom -- the tasks are simply slower than
  // advertised (§1). Network bottlenecks park backlog in the channels, not
  // the input queue, so this clause does not misfire on them.
  const bool straggling =
      stats.lambda_p < expected_input_eps * (1.0 - tol) &&
      stats.input_queue_growth_eps > config_.min_queue_growth_eps;
  if (capacity_exceeded || straggling) {
    d.health = Health::kComputeBottleneck;
    std::ostringstream os;
    if (capacity_exceeded) {
      d.severity =
          capacity_eps > 0.0 ? expected_input_eps / capacity_eps : 1e9;
      os << "expected input " << expected_input_eps << " ev/s > capacity "
         << capacity_eps << " ev/s";
    } else {
      d.severity = expected_input_eps / std::max(stats.lambda_p, 1.0);
      os << "straggling: processing " << stats.lambda_p
         << " ev/s against expected " << expected_input_eps << " ev/s";
    }
    d.detail = os.str();
    return d;
  }

  // Network bottleneck: upstream emits more than arrives (λ_I < Σ λ_O[u])
  // with backlog accumulating in the inbound channels, or a standing
  // channel backlog worth several seconds of traffic that never drains
  // (a link pinned at 100% utilization).
  // The deficit must come with evidence in the channels -- either growing
  // backlog (onset) or an existing one (saturated buffers stop growing once
  // backpressure caps them, but the deficit persists).
  const bool rate_deficit =
      upstream_output_eps > stats.lambda_i * (1.0 + tol) &&
      (stats.channel_backlog_growth_eps > config_.min_queue_growth_eps ||
       stats.channel_backlog_events > config_.min_backlog_events);
  const bool standing_backlog =
      upstream_output_eps > 0.0 &&
      stats.channel_backlog_events >
          config_.standing_backlog_sec * upstream_output_eps &&
      stats.channel_backlog_growth_eps > -config_.min_queue_growth_eps;
  const bool network_constrained = rate_deficit || standing_backlog;
  if (network_constrained) {
    d.health = Health::kNetworkBottleneck;
    d.severity =
        stats.lambda_i > 0.0 ? upstream_output_eps / stats.lambda_i : 1e9;
    std::ostringstream os;
    os << "upstream emits " << upstream_output_eps << " ev/s but only "
       << stats.lambda_i << " ev/s arrives";
    d.detail = os.str();
    return d;
  }

  // Over-provisioning: capacity far above the expected workload with
  // parallelism to spare, and no residual backlog being drained.
  if (stats.parallelism > 1 && capacity_eps > 0.0 &&
      expected_input_eps < config_.underutilization * capacity_eps &&
      stats.input_queue_growth_eps <= 0.0 &&
      stats.channel_backlog_growth_eps <= 0.0 &&
      stats.input_queue_events < expected_input_eps + 1.0) {
    d.health = Health::kOverprovisioned;
    d.severity = expected_input_eps / capacity_eps;
    std::ostringstream os;
    os << "utilization " << d.severity << " with p=" << stats.parallelism;
    d.detail = os.str();
    return d;
  }
  return d;
}

}  // namespace wasp::adapt
