// Global Metric Monitor (paper §3.1-§3.3).
//
// Task Managers report per-operator runtime metrics each tick (the engine's
// OperatorMetrics); this monitor aggregates them over the monitoring
// interval and provides:
//   - interval averages of λ_P, λ_O, λ_I and measured selectivity σ,
//   - backpressure incidence and queue growth,
//   - the *actual* workload estimate λ̂ (§3.3): source rates propagated
//     through measured selectivities, immune to backpressure distortion of
//     the observed rates.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "engine/engine.h"

namespace wasp::adapt {

// Interval-aggregated statistics for one operator.
struct OperatorWindowStats {
  double lambda_p = 0.0;  // avg processed events/s
  double lambda_o = 0.0;  // avg emitted events/s
  double lambda_i = 0.0;  // avg arrived events/s
  double selectivity = 1.0;
  double backpressure_frac = 0.0;  // fraction of ticks backpressured
  double input_queue_events = 0.0;      // at window end
  double input_queue_growth_eps = 0.0;  // (end - start) / interval
  double channel_backlog_events = 0.0;
  double channel_backlog_growth_eps = 0.0;
  int parallelism = 0;
  std::size_t ticks = 0;
};

class GlobalMetricMonitor {
 public:
  // Records one tick worth of engine metrics. Call every tick.
  void observe(const engine::Engine& engine, double t);

  // Clears the aggregation window (call after each adaptation decision).
  void reset_window();

  [[nodiscard]] bool has_data() const { return ticks_ > 0; }
  [[nodiscard]] std::size_t window_ticks() const { return ticks_; }

  // Aggregated stats for `op`; zeros if never observed.
  [[nodiscard]] OperatorWindowStats stats(OperatorId op) const;

  // Actual workload of a source over the window (avg generation rate).
  [[nodiscard]] double actual_source_eps(OperatorId source) const;

  // §3.3 recursion: expected input/output rates per operator, computed from
  // the actual source workload and *measured* selectivities (falling back
  // to the configured selectivity for operators with no throughput yet).
  [[nodiscard]] std::unordered_map<OperatorId, query::OperatorRates>
  estimate_actual_rates(const query::LogicalPlan& plan) const;

 private:
  struct Accumulator {
    double lambda_p_sum = 0.0;
    double lambda_o_sum = 0.0;
    double lambda_i_sum = 0.0;
    double backpressure_ticks = 0.0;
    double first_queue = 0.0;
    double last_queue = 0.0;
    double first_channel_backlog = 0.0;
    double last_channel_backlog = 0.0;
    int parallelism = 0;
    std::size_t ticks = 0;
  };

  // Operator ids are dense (0..num_operators-1 within a plan), so the
  // accumulators live in flat vectors indexed by id -- no hashing in the
  // per-tick observe loop. Entries with ticks == 0 are "absent".
  std::vector<Accumulator> per_op_;
  engine::OperatorMetrics scratch_;  // reused across observe() calls
  std::vector<double> source_eps_sum_;
  std::size_t ticks_ = 0;
  double window_start_ = 0.0;
  double window_end_ = 0.0;
};

}  // namespace wasp::adapt
