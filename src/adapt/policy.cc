#include "adapt/policy.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <set>

#include "common/log.h"
#include "common/units.h"
#include "obs/trace.h"

namespace wasp::adapt {
namespace {

// NetworkView decorator adding back slots the reconfiguration will release
// (the old execution's own tasks).
class ReleasedSlotsView final : public physical::NetworkView {
 public:
  ReleasedSlotsView(const physical::NetworkView& base,
                    std::vector<int> released)
      : base_(base), released_(std::move(released)) {}

  [[nodiscard]] std::size_t num_sites() const override {
    return base_.num_sites();
  }
  [[nodiscard]] double available_mbps(SiteId from, SiteId to) const override {
    return base_.available_mbps(from, to);
  }
  [[nodiscard]] double latency_ms(SiteId from, SiteId to) const override {
    return base_.latency_ms(from, to);
  }
  [[nodiscard]] int available_slots(SiteId site) const override {
    const auto s = static_cast<std::size_t>(site.value());
    return base_.available_slots(site) +
           (s < released_.size() ? released_[s] : 0);
  }

 private:
  const physical::NetworkView& base_;
  std::vector<int> released_;
};

// NetworkView decorator adding a stage's (or the whole query's) own stream
// traffic back onto the monitor's availability estimates: that traffic moves
// with the stage being re-placed, so the links it occupies are effectively
// free for the new placement.
class BandwidthAddbackView final : public physical::NetworkView {
 public:
  BandwidthAddbackView(const physical::NetworkView& base,
                       std::unordered_map<std::int64_t, double> addback)
      : base_(base), addback_(std::move(addback)) {}

  [[nodiscard]] std::size_t num_sites() const override {
    return base_.num_sites();
  }
  [[nodiscard]] double available_mbps(SiteId from, SiteId to) const override {
    const auto it = addback_.find(
        from.value() * static_cast<std::int64_t>(base_.num_sites()) +
        to.value());
    return base_.available_mbps(from, to) +
           (it != addback_.end() ? it->second : 0.0);
  }
  [[nodiscard]] double latency_ms(SiteId from, SiteId to) const override {
    return base_.latency_ms(from, to);
  }
  [[nodiscard]] int available_slots(SiteId site) const override {
    return base_.available_slots(site);
  }

 private:
  const physical::NetworkView& base_;
  std::unordered_map<std::int64_t, double> addback_;
};

bool query_is_stateless(const query::LogicalPlan& plan) {
  return std::none_of(
      plan.operators().begin(), plan.operators().end(),
      [](const query::LogicalOperator& op) { return op.stateful(); });
}

}  // namespace

void AdaptationPolicy::set_trace(obs::TraceEmitter* trace) {
  trace_ = trace;
  migration_planner_.set_trace(trace);
  scheduler_.set_trace(trace);
}

void AdaptationPolicy::set_profiler(obs::Profiler* profiler) {
  migration_planner_.set_profiler(profiler);
  scheduler_.set_profiler(profiler);
}

void AdaptationPolicy::on_replan_applied(const query::LogicalPlan& old_plan,
                                         const query::LogicalPlan& new_plan) {
  std::unordered_map<OperatorId, double> remapped;
  for (const auto& [old_op, new_op] : new_plan.matching_operators(old_plan)) {
    const auto it = last_grown_.find(old_op);
    if (it != last_grown_.end()) remapped[new_op] = it->second;
  }
  last_grown_ = std::move(remapped);
}

const char* to_string(ActionKind kind) {
  switch (kind) {
    case ActionKind::kNone:
      return "none";
    case ActionKind::kReassign:
      return "re-assign";
    case ActionKind::kScaleUp:
      return "scale-up";
    case ActionKind::kScaleOut:
      return "scale-out";
    case ActionKind::kScaleDown:
      return "scale-down";
    case ActionKind::kReplan:
      return "re-plan";
  }
  return "?";
}

double estimate_plan_cost(
    const query::LogicalPlan& logical, const physical::PhysicalPlan& physical,
    const std::unordered_map<OperatorId, query::OperatorRates>& rates,
    const physical::NetworkView& view, double alpha) {
  // Traffic-weighted latency across all edges plus a steep penalty for every
  // link whose demand exceeds α of the estimated availability; overloaded
  // plans must lose to feasible ones regardless of latency.
  constexpr double kOverloadPenalty = 1e6;
  double cost = 0.0;
  // Aggregate demand per directed link first (edges can share links).
  std::unordered_map<std::int64_t, double> link_demand_mbps;
  const auto n = static_cast<std::int64_t>(view.num_sites());

  for (const auto& op : logical.operators()) {
    if (!physical.has_stage_for(op.id)) continue;
    const physical::Stage& up = physical.stage_for(op.id);
    const int p_up = up.parallelism();
    if (p_up == 0) continue;
    const auto rit = rates.find(op.id);
    const double out_eps = rit != rates.end() ? rit->second.output_eps : 0.0;
    for (OperatorId d : logical.downstream(op.id)) {
      if (!physical.has_stage_for(d)) continue;
      const physical::Stage& down = physical.stage_for(d);
      const int p_down = down.parallelism();
      if (p_down == 0) continue;
      for (SiteId su : up.placement.sites()) {
        for (SiteId sd : down.placement.sites()) {
          const double share =
              (static_cast<double>(up.placement.at(su)) / p_up) *
              (static_cast<double>(down.placement.at(sd)) / p_down);
          const double eps = out_eps * share;
          if (eps <= 0.0) continue;
          cost += eps * view.latency_ms(su, sd) / 1e3;
          if (su != sd) {
            link_demand_mbps[su.value() * n + sd.value()] +=
                stream_mbps(eps, op.output_event_bytes);
          }
        }
      }
    }
  }
  for (const auto& [key, demand] : link_demand_mbps) {
    const SiteId from(key / n), to(key % n);
    const double limit = alpha * view.available_mbps(from, to);
    if (demand > limit && limit >= 0.0) {
      cost += kOverloadPenalty * (limit > 0.0 ? demand / limit : demand);
    }
  }
  return cost;
}

std::vector<AdaptationPolicy::OpDiagnosis> AdaptationPolicy::diagnose_all(
    const engine::Engine& engine, const GlobalMetricMonitor& monitor) const {
  std::vector<OpDiagnosis> out;
  const query::LogicalPlan& logical = engine.logical();
  const auto rates = monitor.estimate_actual_rates(logical);
  const double drain = diagnoser_.config().drain_target_sec;

  // Source backlog inflates the whole pipeline's expected workload: every
  // operator will eventually process its (selectivity-scaled) share of the
  // queued events, and provisioning for generation-rate only would let the
  // policy scale down -- or declare health -- while hours of backlog wait
  // at the sources. The inflation factor spreads the backlog over the
  // drain-target horizon.
  double total_source_eps = 0.0;
  for (OperatorId src : logical.sources()) {
    total_source_eps += rates.at(src).output_eps;
  }
  const double backlog_factor =
      total_source_eps > 0.0
          ? 1.0 + engine.source_backlog_events() / drain / total_source_eps
          : 1.0;

  for (const auto& op : logical.operators()) {
    if (op.is_source()) continue;
    const OperatorWindowStats stats = monitor.stats(op.id);
    double expected_input = rates.at(op.id).input_eps * backlog_factor;
    // Plus the operator's own parked queues, cleared on the same horizon.
    expected_input += stats.input_queue_events / drain;
    expected_input += stats.channel_backlog_events / drain;
    double upstream_output = 0.0;
    for (OperatorId u : logical.upstream(op.id)) {
      upstream_output += rates.at(u).output_eps;
    }
    const double capacity = static_cast<double>(stats.parallelism) *
                            op.events_per_sec_per_slot;
    OpDiagnosis d;
    d.op = op.id;
    d.expected_input_eps = expected_input;
    d.upstream_output_eps = upstream_output;
    d.observed_input_eps = stats.lambda_i;
    d.backpressure_frac = stats.backpressure_frac;
    d.actionable = op.pinned_sites.empty() && op.splittable;
    d.diagnosis =
        diagnoser_.diagnose(stats, expected_input, upstream_output, capacity);
    out.push_back(std::move(d));
  }
  return out;
}

namespace {

// View decorator threading slot consumption between successive per-operator
// decisions in one round.
class AdjustedSlotsView final : public physical::NetworkView {
 public:
  explicit AdjustedSlotsView(const physical::NetworkView& base)
      : base_(base), delta_(base.num_sites(), 0) {}

  [[nodiscard]] std::size_t num_sites() const override {
    return base_.num_sites();
  }
  [[nodiscard]] double available_mbps(SiteId from, SiteId to) const override {
    return base_.available_mbps(from, to);
  }
  [[nodiscard]] double latency_ms(SiteId from, SiteId to) const override {
    return base_.latency_ms(from, to);
  }
  [[nodiscard]] int available_slots(SiteId site) const override {
    return base_.available_slots(site) +
           delta_[static_cast<std::size_t>(site.value())];
  }

  // Accounts for an action that moves `op` from `from` to `to`.
  void consume(const physical::StagePlacement& from,
               const physical::StagePlacement& to) {
    for (std::size_t s = 0; s < to.per_site.size(); ++s) {
      delta_[s] += from.per_site[s] - to.per_site[s];
    }
  }

 private:
  const physical::NetworkView& base_;
  std::vector<int> delta_;
};

}  // namespace

AdaptationAction AdaptationPolicy::decide(const engine::Engine& engine,
                                          const GlobalMetricMonitor& monitor,
                                          const physical::NetworkView& view) {
  std::vector<AdaptationAction> actions =
      decide_all(engine, monitor, view, 1);
  return actions.empty() ? AdaptationAction{} : std::move(actions.front());
}

std::vector<AdaptationAction> AdaptationPolicy::decide_all(
    const engine::Engine& engine, const GlobalMetricMonitor& monitor,
    const physical::NetworkView& view, std::size_t max_actions) {
  std::vector<AdaptationAction> actions;
  if (!monitor.has_data() || max_actions == 0) return actions;

  // New decision epoch: placement ILP outcomes memoized from here on are
  // reused across the p-sweeps and candidate-plan pricing below, and dropped
  // at the next round (the WAN estimates will have moved by then).
  scheduler_.begin_epoch();

  std::vector<OpDiagnosis> diags;
  {
    obs::TraceEmitter::SpanScope diagnose_span(trace_, "diagnose");
    diags = diagnose_all(engine, monitor);
    std::size_t unhealthy = 0;
    for (const auto& d : diags) {
      if (d.diagnosis.health != Health::kHealthy) ++unhealthy;
    }
    diagnose_span.num("operators", static_cast<double>(diags.size()))
        .num("unhealthy", static_cast<double>(unhealthy));
  }

  // Most severe bottleneck first.
  std::vector<const OpDiagnosis*> bottlenecks;
  const OpDiagnosis* waste = nullptr;
  for (const auto& d : diags) {
    switch (d.diagnosis.health) {
      case Health::kComputeBottleneck:
      case Health::kNetworkBottleneck:
        bottlenecks.push_back(&d);
        break;
      case Health::kOverprovisioned:
        if (waste == nullptr ||
            d.diagnosis.severity < waste->diagnosis.severity) {
          waste = &d;
        }
        break;
      case Health::kHealthy:
        break;
    }
  }
  std::sort(bottlenecks.begin(), bottlenecks.end(),
            [](const OpDiagnosis* a, const OpDiagnosis* b) {
              return a->diagnosis.severity > b->diagnosis.severity;
            });

  const bool tracing = trace_ != nullptr && trace_->enabled();
  for (const auto& d : diags) {
    if (d.diagnosis.health != Health::kHealthy) {
      log(LogLevel::kDebug, "diagnosis op=", d.op.value(), " ",
          to_string(d.diagnosis.health), " severity=", d.diagnosis.severity,
          " (", d.diagnosis.detail, ")");
      if (tracing) {
        trace_->event("diagnosis")
            .num("op", static_cast<double>(d.op.value()))
            .str("health", to_string(d.diagnosis.health))
            .str("detail", d.diagnosis.detail)
            .num("severity", d.diagnosis.severity)
            .num("expected_input_eps", d.expected_input_eps)
            .num("observed_input_eps", d.observed_input_eps)
            .num("upstream_output_eps", d.upstream_output_eps)
            .num("backpressure_frac", d.backpressure_frac)
            .flag("actionable", d.actionable);
      }
    }
  }

  AdjustedSlotsView working_view(view);
  auto run_handlers = [&](const std::vector<const OpDiagnosis*>& list) {
    for (const OpDiagnosis* d : list) {
      if (actions.size() >= max_actions) break;
      AdaptationAction action;
      {
        obs::TraceEmitter::SpanScope plan_span(trace_, "plan");
        plan_span.num("op", static_cast<double>(d->op.value()))
            .str("health", to_string(d->diagnosis.health));
        action =
            d->diagnosis.health == Health::kComputeBottleneck
                ? handle_compute_bottleneck(engine, monitor, working_view, *d)
                : handle_network_bottleneck(engine, monitor, working_view, *d);
        plan_span.str("result", to_string(action.kind));
      }
      if (action.kind == ActionKind::kNone) continue;
      if (tracing) {
        trace_->event("policy_action")
            .str("kind", to_string(action.kind))
            .num("op", action.op.valid()
                           ? static_cast<double>(action.op.value())
                           : -1.0)
            .str("reason", action.reason)
            .num("estimated_transition_sec", action.estimated_transition_sec)
            .num("num_moves", static_cast<double>(action.migration.moves.size()));
      }
      if (action.kind == ActionKind::kReplan) {
        // A re-plan replaces everything; it cannot compose with others.
        if (actions.empty()) actions.push_back(std::move(action));
        break;
      }
      working_view.consume(engine.placement(action.op), action.new_placement);
      last_grown_[action.op] = now_;
      actions.push_back(std::move(action));
    }
  };
  run_handlers(bottlenecks);

  // Query-level guard: a steadily growing source backlog with no effective
  // per-operator action means some link runs at/over capacity with the
  // deficit smeared up the backpressure chain (below thresholds, or
  // attributed to a pinned stage). The constrained edge sits directly below
  // the most-downstream backpressured operator; the stage to re-place is
  // that operator's actionable receiver.
  double source_eps = 0.0;
  for (OperatorId src : engine.logical().sources()) {
    source_eps += engine.source_generation_eps(src);
  }
  const double backlog = engine.source_backlog_events();
  // Guard condition: over a second's worth of events parked at the sources
  // and not draining (growing or plateaued -- a plateau means admission is
  // pinned exactly at the constrained rate).
  const bool not_draining =
      prev_backlog_time_ >= 0.0 && now_ > prev_backlog_time_ &&
      (backlog - prev_backlog_events_) / (now_ - prev_backlog_time_) >
          -0.01 * std::max(source_eps, 1.0);
  prev_backlog_events_ = backlog;
  prev_backlog_time_ = now_;
  log(LogLevel::kDebug, "guard check: actions=", actions.size(),
      " not_draining=", not_draining, " backlog=", backlog,
      " source_eps=", source_eps);
  if (actions.empty() && not_draining && backlog > 1.0 * source_eps) {
    const query::LogicalPlan& logical = engine.logical();
    OperatorId pressured;
    for (OperatorId id : logical.topological_order()) {
      if (logical.op(id).is_source()) {
        if (engine.op_metrics(id).backpressured) pressured = id;
        continue;
      }
      for (const auto& d : diags) {
        if (d.op == id && d.backpressure_frac > 0.3) pressured = id;
      }
    }
    const OpDiagnosis* receiver = nullptr;
    if (pressured.valid()) {
      for (OperatorId d_id : logical.downstream(pressured)) {
        for (const auto& d : diags) {
          if (d.op == d_id && d.actionable) receiver = &d;
        }
      }
    }
    if (receiver != nullptr) {
      OpDiagnosis synthesized = *receiver;
      synthesized.diagnosis.health = Health::kNetworkBottleneck;
      synthesized.diagnosis.severity =
          synthesized.observed_input_eps > 0.0
              ? synthesized.upstream_output_eps /
                    synthesized.observed_input_eps
              : 1.0;
      synthesized.diagnosis.detail =
          "growing source backlog (" + std::to_string(backlog) + " events)";
      log(LogLevel::kDebug, "backlog guard: attributing bottleneck to op=",
          synthesized.op.value());
      run_handlers({&synthesized});
    }
  }
  if (actions.empty() && waste != nullptr) {
    // Gradual scale-down (§4.2), suppressed right after growing the same
    // stage and while queued events still need the extra capacity.
    const auto grown_it = last_grown_.find(waste->op);
    const bool cooling =
        grown_it != last_grown_.end() &&
        now_ - grown_it->second < config_.scale_down_cooldown_sec;
    const bool backlogged =
        engine.source_backlog_events() >
        config_.scale_down_max_backlog_sec * std::max(source_eps, 1.0);
    if (!cooling && !backlogged) {
      AdaptationAction action;
      {
        obs::TraceEmitter::SpanScope plan_span(trace_, "plan");
        plan_span.num("op", static_cast<double>(waste->op.value()))
            .str("health", to_string(waste->diagnosis.health));
        action = handle_overprovisioning(engine, monitor, working_view, *waste);
        plan_span.str("result", to_string(action.kind));
      }
      if (action.kind != ActionKind::kNone) {
        if (tracing) {
          trace_->event("policy_action")
              .str("kind", to_string(action.kind))
              .num("op", static_cast<double>(action.op.value()))
              .str("reason", action.reason)
              .num("estimated_transition_sec",
                   action.estimated_transition_sec);
        }
        actions.push_back(std::move(action));
      }
    } else if (tracing) {
      trace_->event("policy_reject")
          .str("kind", to_string(ActionKind::kScaleDown))
          .num("op", static_cast<double>(waste->op.value()))
          .str("why", cooling ? "scale-down cooldown active"
                              : "source backlog above threshold");
    }
  }
  return actions;
}

physical::StageContext AdaptationPolicy::stage_context(
    const engine::Engine& engine,
    const std::unordered_map<OperatorId, query::OperatorRates>& rates,
    OperatorId op) const {
  const query::LogicalPlan& logical = engine.logical();
  physical::StageContext ctx;
  ctx.parallelism = engine.placement(op).parallelism();
  for (OperatorId u : logical.upstream(op)) {
    const auto& up = logical.op(u);
    const physical::StagePlacement& pl = engine.placement(u);
    const int p = pl.parallelism();
    if (p == 0) continue;
    const double out_eps = rates.at(u).output_eps;
    for (SiteId s : pl.sites()) {
      ctx.upstream.push_back(physical::TrafficEndpoint{
          s, out_eps * pl.at(s) / p, up.output_event_bytes});
    }
  }
  const auto& me = logical.op(op);
  for (OperatorId d : logical.downstream(op)) {
    const physical::StagePlacement& pl = engine.placement(d);
    const int p = pl.parallelism();
    if (p == 0) continue;
    const double out_eps = rates.at(op).output_eps;
    for (SiteId s : pl.sites()) {
      ctx.downstream.push_back(physical::TrafficEndpoint{
          s, out_eps * pl.at(s) / p, me.output_event_bytes});
    }
  }
  return ctx;
}

state::MigrationPlan AdaptationPolicy::migration_for(
    const engine::Engine& engine, OperatorId op,
    const physical::StagePlacement& to, const physical::NetworkView& view) {
  if (!engine.logical().op(op).stateful()) return {};
  const physical::StagePlacement& from = engine.placement(op);
  const double total_state = engine.total_state_mb(op);
  const int p_to = to.parallelism();
  if (total_state <= 1e-9 || p_to == 0) return {};

  // Sources: sites whose retained task count drops -> their excess state
  // must leave. Destinations: sites whose count grows -> they must receive
  // their balanced share. Balanced partitioning: each of the p' new tasks
  // holds total/p'.
  std::vector<state::StateSource> sources;
  std::vector<state::StateDestination> destinations;
  for (std::size_t s = 0; s < from.per_site.size(); ++s) {
    const SiteId site(static_cast<std::int64_t>(s));
    const double here = engine.state_mb(op, site);
    const double target = total_state * to.per_site[s] / p_to;
    if (here > target + 1e-9) {
      sources.push_back(state::StateSource{site, here - target});
    } else if (target > here + 1e-9) {
      destinations.push_back(state::StateDestination{site, target - here});
    }
  }
  return migration_planner_.plan(sources, destinations, view);
}

AdaptationAction AdaptationPolicy::handle_compute_bottleneck(
    const engine::Engine& engine, const GlobalMetricMonitor& monitor,
    const physical::NetworkView& view, const OpDiagnosis& diag) {
  AdaptationAction none;
  const query::LogicalPlan& logical = engine.logical();
  const auto& op = logical.op(diag.op);
  if (!op.splittable || !op.pinned_sites.empty()) {
    // Cannot add tasks without changing semantics/pins: re-plan instead.
    return config_.allow_replan
               ? try_replan(engine, monitor, view,
                            "compute bottleneck at non-splittable stage")
               : none;
  }
  if (!config_.allow_scale) {
    // Baselines without scaling fall back to re-assignment (may not help a
    // true compute bottleneck but can exploit under-used sites).
    return config_.allow_replan
               ? try_replan(engine, monitor, view, "compute bottleneck")
               : none;
  }

  const BandwidthAddbackView self_view(view,
                                       engine.adjacent_link_mbps(diag.op));
  const OperatorWindowStats stats = monitor.stats(diag.op);
  const physical::StagePlacement& current = engine.placement(diag.op);
  const int p = current.parallelism();
  const double lambda_p = std::max(stats.lambda_p, 1.0);

  // DS2-style minimum parallelism: p' = ceil(λ̂_I / λ_P · p), sanity-bounded
  // by the capacity-based estimate (λ_P can be distorted while stalled).
  const int p_ds2 = static_cast<int>(
      std::ceil(diag.expected_input_eps / lambda_p * static_cast<double>(p)));
  const int p_cap = static_cast<int>(std::ceil(
                        diag.expected_input_eps / op.events_per_sec_per_slot)) +
                    1;
  int p_new = std::clamp(std::min(p_ds2, p_cap), p + 1, p + 8);

  // Prefer scaling up within the sites already hosting tasks (§4.2: avoid
  // spreading state over the WAN); spill to the ILP only if local slots run
  // out.
  physical::StagePlacement grown = current;
  int needed = p_new - p;
  for (SiteId s : current.sites()) {
    if (needed == 0) break;
    const int free = view.available_slots(s);
    const int take = std::min(free, needed);
    grown.per_site[static_cast<std::size_t>(s.value())] += take;
    needed -= take;
  }

  AdaptationAction action;
  action.op = diag.op;
  if (needed == 0) {
    action.kind = ActionKind::kScaleUp;
    action.new_placement = grown;
  } else {
    // Remote spill: ILP with the current tasks pinned in place.
    const auto rates = monitor.estimate_actual_rates(logical);
    physical::StageContext ctx = stage_context(engine, rates, diag.op);
    ctx.min_per_site = current.per_site;
    // The stage's own slots stay available to it (extra_slots), and the
    // floor keeps its existing tasks in place. If the DS2 target does not
    // fit the remaining slots, take the largest feasible step toward it --
    // partial relief beats none (§6.2 limits tasks per iteration anyway).
    std::optional<physical::PlacementOutcome> outcome;
    for (int p_try = p_new; p_try > p && !outcome.has_value(); --p_try) {
      ctx.parallelism = p_try;
      outcome = scheduler_.place_stage(ctx, self_view, current.per_site);
    }
    if (!outcome.has_value()) {
      // Take whatever local growth we got, if any.
      if (grown.parallelism() > p) {
        action.kind = ActionKind::kScaleUp;
        action.new_placement = grown;
      } else {
        return config_.allow_replan
                   ? try_replan(engine, monitor, view,
                                "compute bottleneck, no slots")
                   : none;
      }
    } else {
      action.kind = ActionKind::kScaleOut;
      action.new_placement = outcome->placement;
    }
  }
  action.migration =
      migration_for(engine, diag.op, action.new_placement, self_view);
  action.estimated_transition_sec = action.migration.estimated_transition_sec;
  action.reason = "compute bottleneck: " + diag.diagnosis.detail;
  return action;
}

AdaptationAction AdaptationPolicy::handle_network_bottleneck(
    const engine::Engine& engine, const GlobalMetricMonitor& monitor,
    const physical::NetworkView& view, const OpDiagnosis& diag) {
  AdaptationAction none;
  const query::LogicalPlan& logical = engine.logical();
  const auto& op = logical.op(diag.op);

  // Non-splittable or pinned stages cannot be re-placed piecemeal.
  if (!op.splittable || !op.pinned_sites.empty()) {
    return config_.allow_replan
               ? try_replan(engine, monitor, view,
                            "network bottleneck at non-splittable stage")
               : none;
  }

  // Stateless query: re-optimize the whole pipeline -- nothing to migrate,
  // and re-planning subsumes re-assignment (§6.2).
  if (query_is_stateless(logical) && config_.allow_replan) {
    AdaptationAction replan = try_replan(
        engine, monitor, view, "network bottleneck, stateless query");
    if (replan.kind != ActionKind::kNone) return replan;
  }

  const BandwidthAddbackView self_view(view,
                                       engine.adjacent_link_mbps(diag.op));
  const auto rates = monitor.estimate_actual_rates(logical);
  const physical::StagePlacement& current = engine.placement(diag.op);
  const int p = current.parallelism();

  // 1) Re-assign at the same parallelism (the stage's own slots are free to
  // reuse).
  // Escalation: a stage re-assigned (or scaled) within the cooldown that is
  // bottlenecked *again* gains nothing from another re-assignment -- move
  // straight to the next technique.
  const auto grown_it = last_grown_.find(diag.op);
  const bool recently_adapted =
      grown_it != last_grown_.end() &&
      now_ - grown_it->second < config_.scale_down_cooldown_sec;

  if (config_.allow_reassign && !recently_adapted) {
    physical::StageContext ctx = stage_context(engine, rates, diag.op);
    ctx.parallelism = p;
    auto outcome = scheduler_.place_stage(ctx, self_view, current.per_site);
    if (!outcome.has_value()) {
      // Best effort: a placement that shaves the headroom is still far
      // better than the congested status quo when scaling is off the
      // table (and when it is not, a feasible-with-headroom scale-out is
      // preferred below, so only accept the relaxed placement here if it
      // is the only option).
      if (!config_.allow_scale || p >= config_.p_max) {
        physical::Scheduler relaxed(physical::Scheduler::Config{
            .alpha = std::min(0.95, scheduler_.config().alpha + 0.15)});
        outcome = relaxed.place_stage(ctx, self_view, current.per_site);
      }
    }
    log(LogLevel::kDebug, "re-assign op=", diag.op.value(), ": ",
        !outcome.has_value()
            ? "infeasible"
            : (outcome->placement == current ? "keeps current placement"
                                             : "found alternative"));
    if (outcome.has_value() && !(outcome->placement == current)) {
      state::MigrationPlan migration =
          migration_for(engine, diag.op, outcome->placement, self_view);
      if (migration.estimated_transition_sec <= config_.t_max_sec) {
        AdaptationAction action;
        action.kind = ActionKind::kReassign;
        action.op = diag.op;
        action.new_placement = outcome->placement;
        action.migration = std::move(migration);
        action.estimated_transition_sec =
            action.migration.estimated_transition_sec;
        action.reason = "network bottleneck: " + diag.diagnosis.detail;
        return action;
      }
      if (trace_ != nullptr && trace_->enabled()) {
        trace_->event("policy_reject")
            .str("kind", to_string(ActionKind::kReassign))
            .num("op", static_cast<double>(diag.op.value()))
            .str("why", "migration would exceed t_max")
            .num("estimated_transition_sec",
                 migration.estimated_transition_sec)
            .num("t_max_sec", config_.t_max_sec);
      }
    } else if (trace_ != nullptr && trace_->enabled()) {
      trace_->event("policy_reject")
          .str("kind", to_string(ActionKind::kReassign))
          .num("op", static_cast<double>(diag.op.value()))
          .str("why", !outcome.has_value() ? "no feasible placement"
                                           : "keeps current placement");
    }
  } else if (recently_adapted && trace_ != nullptr && trace_->enabled()) {
    trace_->event("policy_reject")
        .str("kind", to_string(ActionKind::kReassign))
        .num("op", static_cast<double>(diag.op.value()))
        .str("why", "recently adapted; escalating");
  }

  // 2) Scale out: more tasks spread the stream (and the state partitions)
  // over more links.
  if (config_.allow_scale && p < config_.p_max) {
    physical::StageContext ctx = stage_context(engine, rates, diag.op);
    // The stage's own vacated slots stay countable at every candidate
    // parallelism (threaded through to each place_stage probe).
    auto outcome = scheduler_.place_with_min_parallelism(
        ctx, self_view, p + 1, config_.p_max, current.per_site);
    if (outcome.has_value()) {
      AdaptationAction action;
      action.kind = ActionKind::kScaleOut;
      action.op = diag.op;
      action.new_placement = outcome->placement;
      action.migration =
          migration_for(engine, diag.op, outcome->placement, self_view);
      action.estimated_transition_sec =
          action.migration.estimated_transition_sec;
      action.reason = "network bottleneck: " + diag.diagnosis.detail;
      return action;
    }
  }

  // 3) Parallelism exhausted (p' would exceed p_max): re-plan if the state
  // allows it.
  if (config_.allow_replan) {
    return try_replan(engine, monitor, view,
                      "network bottleneck, parallelism at p_max");
  }
  return none;
}

AdaptationAction AdaptationPolicy::handle_overprovisioning(
    const engine::Engine& engine, const GlobalMetricMonitor& monitor,
    const physical::NetworkView& view, const OpDiagnosis& diag) {
  AdaptationAction none;
  if (!config_.allow_scale) return none;
  const query::LogicalPlan& logical = engine.logical();
  const auto& op = logical.op(diag.op);
  // Pinned stages run one task per pinned site by design (chained edge
  // pre-processing, sinks); removing one would break their routing.
  if (!op.pinned_sites.empty() || !op.splittable) return none;
  const physical::StagePlacement& current = engine.placement(diag.op);
  const int p = current.parallelism();
  if (p <= 1) return none;

  // Candidate sites to drop one task from, preferring sites not co-located
  // with neighbor tasks (their traffic is pure WAN, §4.2).
  std::set<std::int64_t> neighbor_sites;
  for (OperatorId u : logical.upstream(diag.op)) {
    for (SiteId s : engine.placement(u).sites()) {
      neighbor_sites.insert(s.value());
    }
  }
  for (OperatorId d : logical.downstream(diag.op)) {
    for (SiteId s : engine.placement(d).sites()) {
      neighbor_sites.insert(s.value());
    }
  }
  std::vector<SiteId> candidates = current.sites();
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](SiteId a, SiteId b) {
                     return !neighbor_sites.contains(a.value()) &&
                            neighbor_sites.contains(b.value());
                   });

  const BandwidthAddbackView self_view(view,
                                       engine.adjacent_link_mbps(diag.op));
  const auto rates = monitor.estimate_actual_rates(logical);
  const double alpha = scheduler_.config().alpha;
  for (SiteId victim : candidates) {
    physical::StagePlacement shrunk = current;
    --shrunk.per_site[static_cast<std::size_t>(victim.value())];
    // The survivors must absorb the workload: compute and per-link
    // bandwidth checks (§4.2: every remaining task must have sufficient
    // bandwidth and processing capacity).
    const double capacity =
        static_cast<double>(p - 1) * op.events_per_sec_per_slot;
    if (diag.expected_input_eps > capacity * 0.9) continue;
    physical::StageContext ctx = stage_context(engine, rates, diag.op);
    bool feasible = true;
    for (SiteId s : shrunk.sites()) {
      const double share = static_cast<double>(shrunk.at(s)) /
                           static_cast<double>(p - 1);
      for (const auto& u : ctx.upstream) {
        if (u.site == s) continue;
        if (stream_mbps(u.events_per_sec * share, u.event_bytes) >
            alpha * self_view.available_mbps(u.site, s)) {
          feasible = false;
          break;
        }
      }
      if (!feasible) break;
      for (const auto& d : ctx.downstream) {
        if (d.site == s) continue;
        if (stream_mbps(d.events_per_sec * share, d.event_bytes) >
            alpha * self_view.available_mbps(s, d.site)) {
          feasible = false;
          break;
        }
      }
      if (!feasible) break;
    }
    if (!feasible) continue;

    AdaptationAction action;
    action.kind = ActionKind::kScaleDown;
    action.op = diag.op;
    action.new_placement = shrunk;
    action.migration = migration_for(engine, diag.op, shrunk, self_view);
    action.estimated_transition_sec =
        action.migration.estimated_transition_sec;
    action.reason = "overprovisioned: " + diag.diagnosis.detail;
    return action;
  }
  return none;
}

std::vector<AdaptationAction> AdaptationPolicy::plan_recovery(
    const engine::Engine& engine, const GlobalMetricMonitor& monitor,
    const physical::NetworkView& view,
    const std::vector<SiteId>& dead_sites) {
  std::vector<AdaptationAction> actions;
  if (dead_sites.empty()) return actions;
  scheduler_.begin_epoch();

  const query::LogicalPlan& logical = engine.logical();
  std::vector<bool> dead(view.num_sites(), false);
  std::string dead_list;
  for (SiteId s : dead_sites) {
    dead[static_cast<std::size_t>(s.value())] = true;
    if (!dead_list.empty()) dead_list += ",";
    dead_list += std::to_string(s.value());
  }

  // Recovery may fire before the first monitoring window closes: fall back
  // to the engine's configured source rates when no observations exist yet.
  std::unordered_map<OperatorId, query::OperatorRates> rates;
  if (monitor.has_data()) {
    rates = monitor.estimate_actual_rates(logical);
  } else {
    std::unordered_map<OperatorId, double> src_rates;
    for (OperatorId src : logical.sources()) {
      src_rates[src] = engine.source_generation_eps(src);
    }
    rates = logical.estimate_rates(src_rates);
  }

  // Region decomposition applies when every dead site falls in one failure
  // domain (the localized-failure case: one region lost). A mixed-domain
  // failure re-solves globally as before. kNoDomain disables the fast path.
  constexpr int kNoDomain = std::numeric_limits<int>::min();
  int localized_domain = kNoDomain;
  if (config_.region_decomposition && !config_.site_domains.empty()) {
    bool first = true;
    for (SiteId s : dead_sites) {
      const auto idx = static_cast<std::size_t>(s.value());
      const int d = idx < config_.site_domains.size()
                        ? config_.site_domains[idx]
                        : -1;
      if (first) {
        localized_domain = d;
        first = false;
      } else if (localized_domain != d) {
        localized_domain = kNoDomain;
        break;
      }
    }
  }

  AdjustedSlotsView working_view(view);
  for (OperatorId id : logical.topological_order()) {
    const auto& op = logical.op(id);
    const physical::StagePlacement& current = engine.placement(id);
    bool affected = false;
    for (SiteId s : dead_sites) {
      if (current.at(s) > 0) affected = true;
    }
    if (!affected) continue;
    obs::TraceEmitter::SpanScope plan_span(trace_, "plan");
    plan_span.num("op", static_cast<double>(id.value()))
        .str("health", "recovery");
    // Pinned stages (sources, sinks) cannot leave their sites; their tasks
    // wait for the site to come back. Same for non-splittable stages.
    if (!op.pinned_sites.empty() || !op.splittable) {
      plan_span.str("result", "skipped-pinned");
      if (trace_ != nullptr && trace_->enabled()) {
        trace_->event("policy_reject")
            .str("kind", "recovery")
            .num("op", static_cast<double>(id.value()))
            .str("why", "pinned or non-splittable stage on failed site");
      }
      continue;
    }

    const BandwidthAddbackView self_view(working_view,
                                         engine.adjacent_link_mbps(id));
    physical::StageContext ctx = stage_context(engine, rates, id);
    // The vacated slots on *surviving* sites stay usable by the re-placed
    // stage; slots on the dead site must not be offered back to the ILP.
    std::vector<int> extra = current.per_site;
    for (std::size_t s = 0; s < extra.size(); ++s) {
      if (dead[s]) extra[s] = 0;
    }
    // Same parallelism if the surviving sites can host it; otherwise the
    // largest feasible task count (degraded capacity beats none).
    const int p = current.parallelism();
    std::optional<physical::PlacementOutcome> outcome;
    if (localized_domain != kNoDomain) {
      // Decomposed re-plan (DESIGN.md §14): out-of-region survivors keep
      // exactly their current tasks, so the solver's free variables are the
      // affected region's sites only. Infeasible (the region cannot absorb
      // the lost tasks at full parallelism) falls through to the global
      // degradation sweep below.
      physical::StageContext pinned = ctx;
      pinned.parallelism = p;
      pinned.min_per_site.assign(view.num_sites(), 0);
      pinned.max_per_site.assign(view.num_sites(), -1);
      for (std::size_t s = 0; s < view.num_sites(); ++s) {
        if (dead[s]) continue;
        const int domain = s < config_.site_domains.size()
                               ? config_.site_domains[s]
                               : -1;
        if (domain == localized_domain) continue;
        pinned.min_per_site[s] = current.per_site[s];
        pinned.max_per_site[s] = current.per_site[s];
      }
      outcome = scheduler_.place_stage(pinned, self_view, extra);
    }
    for (int p_try = p; p_try >= 1 && !outcome.has_value(); --p_try) {
      ctx.parallelism = p_try;
      outcome = scheduler_.place_stage(ctx, self_view, extra);
    }
    if (!outcome.has_value()) {
      plan_span.str("result", "infeasible");
      if (trace_ != nullptr && trace_->enabled()) {
        trace_->event("policy_reject")
            .str("kind", "recovery")
            .num("op", static_cast<double>(id.value()))
            .str("why", "no feasible placement on surviving sites");
      }
      continue;
    }
    plan_span.str("result", to_string(ActionKind::kReassign));

    AdaptationAction action;
    action.kind = ActionKind::kReassign;
    action.op = id;
    action.new_placement = outcome->placement;
    // Balance the *surviving* state across the new placement. State that
    // lived on the dead site is not a migration source (nothing to read
    // there); it is recovered via checkpoint replay when the site returns.
    if (op.stateful()) {
      double live_state = 0.0;
      for (std::size_t s = 0; s < current.per_site.size(); ++s) {
        if (dead[s]) continue;
        live_state += engine.state_mb(id, SiteId(static_cast<std::int64_t>(s)));
      }
      const int p_to = action.new_placement.parallelism();
      if (live_state > 1e-9 && p_to > 0) {
        std::vector<state::StateSource> sources;
        std::vector<state::StateDestination> destinations;
        for (std::size_t s = 0; s < current.per_site.size(); ++s) {
          if (dead[s]) continue;
          const SiteId site(static_cast<std::int64_t>(s));
          const double here = engine.state_mb(id, site);
          const double target =
              live_state * action.new_placement.per_site[s] / p_to;
          if (here > target + 1e-9) {
            sources.push_back(state::StateSource{site, here - target});
          } else if (target > here + 1e-9) {
            destinations.push_back(
                state::StateDestination{site, target - here});
          }
        }
        action.migration =
            migration_planner_.plan(sources, destinations, self_view);
      }
    }
    action.estimated_transition_sec =
        action.migration.estimated_transition_sec;
    action.reason = "failure recovery: site " + dead_list + " confirmed failed";
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->event("policy_action")
          .str("kind", to_string(action.kind))
          .num("op", static_cast<double>(id.value()))
          .str("reason", action.reason)
          .num("estimated_transition_sec", action.estimated_transition_sec)
          .num("num_moves",
               static_cast<double>(action.migration.moves.size()));
    }
    // Credit only the slots vacated on *surviving* sites back to the view:
    // a slot freed on the dead site must not make it look placeable to the
    // next stranded stage in this same pass.
    physical::StagePlacement vacated = current;
    for (std::size_t s = 0; s < vacated.per_site.size(); ++s) {
      if (dead[s]) vacated.per_site[s] = 0;
    }
    working_view.consume(vacated, action.new_placement);
    last_grown_[id] = now_;
    actions.push_back(std::move(action));
  }
  return actions;
}

AdaptationAction AdaptationPolicy::consider_replan(
    const engine::Engine& engine, const GlobalMetricMonitor& monitor,
    const physical::NetworkView& view, const std::string& why) {
  if (!config_.allow_replan || !monitor.has_data()) return {};
  // Background re-evaluation runs outside decide_all's epoch.
  scheduler_.begin_epoch();
  return try_replan(engine, monitor, view, why);
}

AdaptationAction AdaptationPolicy::try_replan(const engine::Engine& engine,
                                              const GlobalMetricMonitor& monitor,
                                              const physical::NetworkView& view,
                                              const std::string& why) {
  AdaptationAction none;
  obs::TraceEmitter::SpanScope span(trace_, "replan_search");
  span.str("why", why);
  const query::LogicalPlan& current_logical = engine.logical();

  // Rates for the current plan, and source rates by name to transplant into
  // candidates (their operator ids differ). The rates are inflated by the
  // backlog factor so the chosen plan can also *drain* the queued events,
  // not merely keep up with the live rate.
  const auto current_rates = monitor.estimate_actual_rates(current_logical);
  double total_source_eps = 0.0;
  for (OperatorId src : current_logical.sources()) {
    total_source_eps += monitor.actual_source_eps(src);
  }
  const double backlog_factor =
      total_source_eps > 0.0
          ? 1.0 + engine.source_backlog_events() /
                      diagnoser_.config().drain_target_sec / total_source_eps
          : 1.0;
  std::unordered_map<std::string, double> source_eps_by_name;
  for (OperatorId src : current_logical.sources()) {
    source_eps_by_name[current_logical.op(src).name] =
        monitor.actual_source_eps(src) * backlog_factor;
  }
  // Current parallelism by signature, to carry into matching operators.
  std::unordered_map<std::string, int> parallelism_by_sig;
  for (const auto& op : current_logical.operators()) {
    parallelism_by_sig[current_logical.signature(op.id)] =
        engine.placement(op.id).parallelism();
  }

  // The whole execution vacates: its traffic and slots are available again.
  const BandwidthAddbackView bw_view(view, engine.all_link_mbps());
  const ReleasedSlotsView replan_view(bw_view, engine.slots_in_use());
  const double alpha = scheduler_.config().alpha;
  const double current_cost =
      estimate_plan_cost(current_logical, engine.physical_plan(),
                         current_rates, replan_view, alpha);

  std::optional<query::LogicalPlan> best_logical;
  std::optional<physical::PhysicalPlan> best_physical;
  double best_boundary = 0.0;
  double best_cost = current_cost * config_.replan_improvement;
  std::size_t candidates = 0;

  for (query::ReplanCandidate& rc :
       planner_.enumerate_replans(current_logical)) {
    ++candidates;
    query::LogicalPlan& candidate = rc.plan;
    std::unordered_map<OperatorId, double> src_rates;
    for (OperatorId src : candidate.sources()) {
      const auto it = source_eps_by_name.find(candidate.op(src).name);
      src_rates[src] = it != source_eps_by_name.end() ? it->second : 0.0;
    }
    const auto rates = candidate.estimate_rates(src_rates);
    std::unordered_map<OperatorId, int> parallelism;
    for (const auto& op : candidate.operators()) {
      const auto it = parallelism_by_sig.find(candidate.signature(op.id));
      parallelism[op.id] = it != parallelism_by_sig.end() ? it->second : 1;
    }
    auto placed =
        physical::place_plan(candidate, rates, parallelism, replan_view,
                             scheduler_, config_.p_max);
    if (!placed.has_value()) continue;
    const double cost =
        estimate_plan_cost(candidate, placed->plan, rates, replan_view, alpha);
    if (cost < best_cost) {
      best_cost = cost;
      best_logical = std::move(candidate);
      best_physical = std::move(placed->plan);
      best_boundary = rc.boundary_window_sec;
    }
  }
  span.num("candidates", static_cast<double>(candidates))
      .num("current_cost", current_cost)
      .flag("accepted", best_logical.has_value());
  if (!best_logical.has_value()) return none;
  span.num("best_cost", best_cost);

  // State migration for matched stateful operators whose placement moves.
  AdaptationAction action;
  action.kind = ActionKind::kReplan;
  for (const auto& [old_op, new_op] :
       best_logical->matching_operators(current_logical)) {
    if (!current_logical.op(old_op).stateful()) continue;
    const physical::StagePlacement& to =
        best_physical->stage_for(new_op).placement;
    state::MigrationPlan part = migration_for(engine, old_op, to, bw_view);
    for (auto& m : part.moves) action.migration.moves.push_back(m);
  }
  action.migration.estimated_transition_sec =
      state::MigrationPlanner::estimate_makespan(action.migration.moves,
                                                 bw_view);
  action.estimated_transition_sec =
      action.migration.estimated_transition_sec;
  action.new_logical = std::move(best_logical);
  action.new_physical = std::move(best_physical);
  action.boundary_window_sec = best_boundary;
  action.reason = "re-plan: " + why;
  return action;
}

}  // namespace wasp::adapt
