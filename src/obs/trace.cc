#include "obs/trace.h"

#include <cmath>
#include <cstdio>

namespace wasp::obs {
namespace {

// JSON string escaping for keys and string values.
void append_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  // Shortest round-trippable form is overkill here; %.12g keeps lines compact
  // while preserving the precision the analyses care about.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out += buf;
}

}  // namespace

double TraceEvent::num(std::string_view key, double fallback) const {
  for (const auto& [k, v] : nums) {
    if (k == key) return v;
  }
  return fallback;
}

std::string_view TraceEvent::str(std::string_view key,
                                 std::string_view fallback) const {
  for (const auto& [k, v] : strs) {
    if (k == key) return v;
  }
  return fallback;
}

std::string to_json_line(const TraceEvent& event) {
  std::string out;
  out.reserve(96 + 32 * (event.nums.size() + event.strs.size()));
  out += "{\"schema\":";
  append_number(out, kTraceSchemaVersion);
  out += ",\"seq\":";
  append_number(out, static_cast<double>(event.seq));
  out += ",\"t\":";
  append_number(out, event.t);
  out += ",\"type\":";
  append_escaped(out, event.type);
  for (const auto& [key, value] : event.strs) {
    out.push_back(',');
    append_escaped(out, key);
    out.push_back(':');
    append_escaped(out, value);
  }
  for (const auto& [key, value] : event.nums) {
    out.push_back(',');
    append_escaped(out, key);
    out.push_back(':');
    append_number(out, value);
  }
  out.push_back('}');
  return out;
}

void MemorySink::write(const TraceEvent& event) {
  if (events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(event);
}

std::vector<const TraceEvent*> MemorySink::of_type(
    std::string_view type) const {
  std::vector<const TraceEvent*> out;
  for (const TraceEvent& event : events_) {
    if (event.type == type) out.push_back(&event);
  }
  return out;
}

void FileSink::write(const TraceEvent& event) {
  if (!out_.good()) return;
  out_ << to_json_line(event) << '\n';
}

TraceEmitter::Event::Event(TraceEmitter* emitter, double t,
                           std::string_view type)
    : emitter_(emitter) {
  if (emitter_ == nullptr) return;
  event_.t = t;
  event_.type.assign(type);
}

TraceEmitter::Event::~Event() {
  if (emitter_ != nullptr) emitter_->commit(std::move(event_));
}

TraceEmitter::Event& TraceEmitter::Event::num(std::string_view key,
                                              double value) {
  if (emitter_ != nullptr) event_.nums.emplace_back(key, value);
  return *this;
}

TraceEmitter::Event& TraceEmitter::Event::str(std::string_view key,
                                              std::string_view value) {
  if (emitter_ != nullptr) event_.strs.emplace_back(key, value);
  return *this;
}

void TraceEmitter::commit(TraceEvent event) {
  event.seq = next_seq_++;
  sink_->write(event);
}

}  // namespace wasp::obs
