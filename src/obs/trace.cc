#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace wasp::obs {
namespace {

// JSON string escaping for keys and string values, per RFC 8259: quotes,
// backslashes and control characters are escaped, and bytes that do not form
// a valid UTF-8 sequence are replaced with U+FFFD so the emitted line is
// always valid JSON even when a free-text field (abort_reason, recovery
// detail, a fault-schedule string read from a file) carries garbage.
void append_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (std::size_t i = 0; i < text.size();) {
    const unsigned char ch = static_cast<unsigned char>(text[i]);
    if (ch == '"') {
      out += "\\\"";
      ++i;
    } else if (ch == '\\') {
      out += "\\\\";
      ++i;
    } else if (ch == '\n') {
      out += "\\n";
      ++i;
    } else if (ch == '\r') {
      out += "\\r";
      ++i;
    } else if (ch == '\t') {
      out += "\\t";
      ++i;
    } else if (ch < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(ch));
      out += buf;
      ++i;
    } else if (ch < 0x80) {
      out.push_back(static_cast<char>(ch));
      ++i;
    } else {
      // Multi-byte UTF-8 lead byte: validate length, continuation bytes and
      // the no-overlong/no-surrogate/in-range rules; pass valid sequences
      // through verbatim, replace anything else with U+FFFD and resync at
      // the next byte.
      std::size_t len = 0;
      if ((ch & 0xE0) == 0xC0 && ch >= 0xC2) {
        len = 2;
      } else if ((ch & 0xF0) == 0xE0) {
        len = 3;
      } else if ((ch & 0xF8) == 0xF0 && ch <= 0xF4) {
        len = 4;
      }
      bool valid = len != 0 && i + len <= text.size();
      if (valid) {
        for (std::size_t k = 1; k < len; ++k) {
          const unsigned char cont = static_cast<unsigned char>(text[i + k]);
          if ((cont & 0xC0) != 0x80) valid = false;
        }
      }
      if (valid && len == 3) {
        const unsigned char b1 = static_cast<unsigned char>(text[i + 1]);
        if (ch == 0xE0 && b1 < 0xA0) valid = false;  // overlong
        if (ch == 0xED && b1 >= 0xA0) valid = false;  // UTF-16 surrogate
      }
      if (valid && len == 4) {
        const unsigned char b1 = static_cast<unsigned char>(text[i + 1]);
        if (ch == 0xF0 && b1 < 0x90) valid = false;  // overlong
        if (ch == 0xF4 && b1 >= 0x90) valid = false;  // > U+10FFFF
      }
      if (valid) {
        out.append(text.substr(i, len));
        i += len;
      } else {
        out += "\xEF\xBF\xBD";  // U+FFFD replacement character
        ++i;
      }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  // Shortest round-trippable form is overkill here; %.12g keeps lines compact
  // while preserving the precision the analyses care about.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out += buf;
}

}  // namespace

double TraceEvent::num(std::string_view key, double fallback) const {
  for (const auto& [k, v] : nums) {
    if (k == key) return v;
  }
  return fallback;
}

std::string_view TraceEvent::str(std::string_view key,
                                 std::string_view fallback) const {
  for (const auto& [k, v] : strs) {
    if (k == key) return v;
  }
  return fallback;
}

std::string to_json_line(const TraceEvent& event) {
  std::string out;
  out.reserve(96 + 32 * (event.nums.size() + event.strs.size()));
  out += "{\"schema\":";
  append_number(out, kTraceSchemaVersion);
  out += ",\"seq\":";
  append_number(out, static_cast<double>(event.seq));
  out += ",\"t\":";
  append_number(out, event.t);
  out += ",\"type\":";
  append_escaped(out, event.type);
  for (const auto& [key, value] : event.strs) {
    out.push_back(',');
    append_escaped(out, key);
    out.push_back(':');
    append_escaped(out, value);
  }
  for (const auto& [key, value] : event.nums) {
    out.push_back(',');
    append_escaped(out, key);
    out.push_back(':');
    append_number(out, value);
  }
  out.push_back('}');
  return out;
}

void MemorySink::write(const TraceEvent& event) {
  if (events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(event);
}

std::vector<TraceEvent> MemorySink::of_type(std::string_view type) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : events_) {
    if (event.type == type) out.push_back(event);
  }
  return out;
}

void FileSink::write(const TraceEvent& event) {
  // Serialize outside the lock; emit the complete line in one locked write
  // so concurrent writers can interleave lines but never bytes.
  std::string line = to_json_line(event);
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_.good()) return;
  out_ << line;
}

void FileSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  out_.flush();
}

TraceEmitter::Event::Event(TraceEmitter* emitter, double t,
                           std::string_view type)
    : emitter_(emitter) {
  if (emitter_ == nullptr) return;
  event_.t = t;
  event_.type.assign(type);
}

TraceEmitter::Event::~Event() {
  if (emitter_ != nullptr) emitter_->commit(std::move(event_));
}

TraceEmitter::Event& TraceEmitter::Event::num(std::string_view key,
                                              double value) {
  if (emitter_ != nullptr) event_.nums.emplace_back(key, value);
  return *this;
}

TraceEmitter::Event& TraceEmitter::Event::str(std::string_view key,
                                              std::string_view value) {
  if (emitter_ != nullptr) event_.strs.emplace_back(key, value);
  return *this;
}

std::uint64_t TraceEmitter::begin_span(std::string_view name,
                                       std::uint64_t parent) {
  std::uint64_t id = kNoSpan;
  begin_span_event(name, &id, parent);
  return id;
}

TraceEmitter::Event TraceEmitter::begin_span_event(std::string_view name,
                                                   std::uint64_t* id_out,
                                                   std::uint64_t parent) {
  return begin_span_event_at(now_, name, id_out, parent);
}

TraceEmitter::Event TraceEmitter::begin_span_event_at(double t,
                                                      std::string_view name,
                                                      std::uint64_t* id_out,
                                                      std::uint64_t parent) {
  if (!enabled()) {
    if (id_out != nullptr) *id_out = kNoSpan;
    return Event(nullptr, t, {});
  }
  const std::uint64_t id = next_span_id_++;
  ++open_spans_;
  if (id_out != nullptr) *id_out = id;
  Event ev(this, t, "span_begin");
  ev.str("name", name)
      .num("span_id", static_cast<double>(id))
      .num("parent_id", static_cast<double>(resolve_parent(parent)));
  return ev;
}

TraceEmitter::Event TraceEmitter::end_span(std::uint64_t span_id) {
  return end_span_at(now_, span_id);
}

TraceEmitter::Event TraceEmitter::end_span_at(double t,
                                              std::uint64_t span_id) {
  if (!enabled() || span_id == kNoSpan) return Event(nullptr, t, {});
  if (open_spans_ > 0) --open_spans_;
  Event ev(this, t, "span_end");
  ev.num("span_id", static_cast<double>(span_id));
  return ev;
}

TraceEmitter::SpanScope::SpanScope(TraceEmitter* emitter,
                                   std::string_view name) {
  if (emitter == nullptr || !emitter->enabled()) return;
  emitter_ = emitter;
  id_ = emitter_->begin_span(name);
  emitter_->ambient_.push_back(id_);
  start_ = std::chrono::steady_clock::now();
}

TraceEmitter::SpanScope::~SpanScope() {
  if (emitter_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const double wall_us =
      std::chrono::duration<double, std::micro>(elapsed).count();
  // Pop our id specifically; scopes are strictly nested so it is the top.
  if (!emitter_->ambient_.empty() && emitter_->ambient_.back() == id_) {
    emitter_->ambient_.pop_back();
  }
  Event ev = emitter_->end_span(id_);
  for (const auto& [k, v] : end_strs_) ev.str(k, v);
  for (const auto& [k, v] : end_nums_) ev.num(k, v);
  ev.num("wall_us", wall_us);
}

TraceEmitter::SpanScope& TraceEmitter::SpanScope::num(std::string_view key,
                                                      double value) {
  if (emitter_ != nullptr) end_nums_.emplace_back(key, value);
  return *this;
}

TraceEmitter::SpanScope& TraceEmitter::SpanScope::str(std::string_view key,
                                                      std::string_view value) {
  if (emitter_ != nullptr) end_strs_.emplace_back(key, value);
  return *this;
}

TraceEmitter::ParentScope::ParentScope(TraceEmitter* emitter,
                                       std::uint64_t span_id) {
  if (emitter == nullptr || !emitter->enabled() || span_id == kNoSpan) return;
  emitter_ = emitter;
  emitter_->ambient_.push_back(span_id);
}

TraceEmitter::ParentScope::~ParentScope() {
  if (emitter_ != nullptr && !emitter_->ambient_.empty()) {
    emitter_->ambient_.pop_back();
  }
}

void TraceEmitter::commit(TraceEvent event) {
  event.seq = next_seq_++;
  sink_->write(event);
}

}  // namespace wasp::obs
