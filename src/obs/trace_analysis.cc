#include "obs/trace_analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "obs/profiler.h"

namespace wasp::obs {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

struct Cursor {
  std::string_view s;
  std::size_t i = 0;

  [[nodiscard]] bool eof() const { return i >= s.size(); }
  [[nodiscard]] char peek() const { return s[i]; }
  void skip_ws() {
    while (!eof() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r')) ++i;
  }
};

void encode_utf8(std::string& out, std::uint32_t cp) {
  if (cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) cp = 0xFFFD;
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

bool parse_hex4(Cursor& c, std::uint32_t* out) {
  if (c.i + 4 > c.s.size()) return false;
  std::uint32_t v = 0;
  for (int k = 0; k < 4; ++k) {
    const char ch = c.s[c.i + static_cast<std::size_t>(k)];
    v <<= 4;
    if (ch >= '0' && ch <= '9') {
      v |= static_cast<std::uint32_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      v |= static_cast<std::uint32_t>(ch - 'a' + 10);
    } else if (ch >= 'A' && ch <= 'F') {
      v |= static_cast<std::uint32_t>(ch - 'A' + 10);
    } else {
      return false;
    }
  }
  c.i += 4;
  *out = v;
  return true;
}

bool parse_json_string(Cursor& c, std::string* out, std::string* error) {
  if (c.eof() || c.peek() != '"') {
    *error = "expected string";
    return false;
  }
  ++c.i;
  out->clear();
  while (true) {
    if (c.eof()) {
      *error = "unterminated string";
      return false;
    }
    const char ch = c.s[c.i++];
    if (ch == '"') return true;
    if (ch != '\\') {
      out->push_back(ch);
      continue;
    }
    if (c.eof()) {
      *error = "unterminated escape";
      return false;
    }
    const char esc = c.s[c.i++];
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        std::uint32_t cp = 0;
        if (!parse_hex4(c, &cp)) {
          *error = "bad \\u escape";
          return false;
        }
        if (cp >= 0xD800 && cp <= 0xDBFF && c.i + 1 < c.s.size() &&
            c.s[c.i] == '\\' && c.s[c.i + 1] == 'u') {
          // Surrogate pair.
          Cursor save = c;
          c.i += 2;
          std::uint32_t lo = 0;
          if (parse_hex4(c, &lo) && lo >= 0xDC00 && lo <= 0xDFFF) {
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else {
            c = save;  // lone high surrogate -> U+FFFD below
          }
        }
        encode_utf8(*out, cp);
        break;
      }
      default:
        *error = "bad escape character";
        return false;
    }
  }
}

bool parse_json_number(Cursor& c, double* out, std::string* error) {
  const std::size_t start = c.i;
  while (!c.eof()) {
    const char ch = c.peek();
    if ((ch >= '0' && ch <= '9') || ch == '+' || ch == '-' || ch == '.' ||
        ch == 'e' || ch == 'E') {
      ++c.i;
    } else {
      break;
    }
  }
  if (c.i == start) {
    *error = "expected number";
    return false;
  }
  char buf[64];
  const std::size_t len = std::min(c.i - start, sizeof(buf) - 1);
  std::memcpy(buf, c.s.data() + start, len);
  buf[len] = '\0';
  char* end = nullptr;
  *out = std::strtod(buf, &end);
  if (end == buf) {
    *error = "malformed number";
    return false;
  }
  return true;
}

bool expect(Cursor& c, char ch, std::string* error) {
  c.skip_ws();
  if (c.eof() || c.peek() != ch) {
    *error = std::string("expected '") + ch + "'";
    return false;
  }
  ++c.i;
  return true;
}

void json_escape_to(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void append_json_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out += buf;
}

}  // namespace

bool parse_trace_line(std::string_view line, TraceEvent* out, int* schema,
                      std::string* error) {
  *out = TraceEvent{};
  if (schema != nullptr) *schema = 0;
  Cursor c{line};
  std::string err;
  if (!expect(c, '{', &err)) {
    *error = err;
    return false;
  }
  c.skip_ws();
  bool first = true;
  std::string key, sval;
  while (true) {
    c.skip_ws();
    if (!c.eof() && c.peek() == '}') {
      ++c.i;
      break;
    }
    if (!first && !expect(c, ',', &err)) {
      *error = err;
      return false;
    }
    first = false;
    c.skip_ws();
    if (!parse_json_string(c, &key, &err)) {
      *error = "key: " + err;
      return false;
    }
    if (!expect(c, ':', &err)) {
      *error = err;
      return false;
    }
    c.skip_ws();
    if (c.eof()) {
      *error = "truncated value";
      return false;
    }
    const char ch = c.peek();
    if (ch == '"') {
      if (!parse_json_string(c, &sval, &err)) {
        *error = "value of '" + key + "': " + err;
        return false;
      }
      if (key == "type") {
        out->type = sval;
      } else {
        out->strs.emplace_back(key, sval);
      }
    } else if (ch == 't' || ch == 'f') {
      const std::string_view lit = ch == 't' ? "true" : "false";
      if (c.s.substr(c.i, lit.size()) != lit) {
        *error = "bad literal for '" + key + "'";
        return false;
      }
      c.i += lit.size();
      out->strs.emplace_back(key, std::string(lit));
    } else if (ch == 'n') {
      if (c.s.substr(c.i, 4) != "null") {
        *error = "bad literal for '" + key + "'";
        return false;
      }
      c.i += 4;
      out->nums.emplace_back(key, kNan);
    } else {
      double v = 0.0;
      if (!parse_json_number(c, &v, &err)) {
        *error = "value of '" + key + "': " + err;
        return false;
      }
      if (key == "schema") {
        if (schema != nullptr) *schema = static_cast<int>(v);
      } else if (key == "seq") {
        out->seq = static_cast<std::uint64_t>(v);
      } else if (key == "t") {
        out->t = v;
      } else {
        out->nums.emplace_back(key, v);
      }
    }
  }
  c.skip_ws();
  if (!c.eof()) {
    *error = "trailing characters after object";
    return false;
  }
  if (out->type.empty()) {
    *error = "missing \"type\" field";
    return false;
  }
  return true;
}

TraceFile load_trace(std::istream& in) {
  TraceFile file;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = line;
    while (!sv.empty() && (sv.back() == '\r' || sv.back() == ' ')) {
      sv.remove_suffix(1);
    }
    if (sv.empty()) continue;
    ++file.lines;
    TraceEvent event;
    int schema = 0;
    std::string error;
    if (parse_trace_line(sv, &event, &schema, &error)) {
      file.events.push_back(std::move(event));
      file.schemas.push_back(schema);
    } else {
      file.errors.push_back("line " + std::to_string(line_no) + ": " + error);
    }
  }
  return file;
}

TraceFile load_trace_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    if (error != nullptr) *error = "cannot open " + path;
    return {};
  }
  if (error != nullptr) error->clear();
  return load_trace(in);
}

// ---- Span reconstruction ----------------------------------------------

SpanIndex SpanIndex::build(const std::vector<TraceEvent>& events) {
  SpanIndex index;
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  bool have_seq = false;
  for (std::size_t e = 0; e < events.size(); ++e) {
    const TraceEvent& event = events[e];
    // Each emitter numbers seq (and span ids) from 0, so a restart marks the
    // next run appended to the same file: its ids live in a fresh namespace.
    if (have_seq && event.seq == 0) {
      ++index.segments;
      by_id.clear();
    }
    have_seq = true;
    if (event.type == "span_begin") {
      const auto id = static_cast<std::uint64_t>(event.num("span_id"));
      const auto parent = static_cast<std::uint64_t>(event.num("parent_id"));
      if (id == 0) {
        index.errors.push_back("seq " + std::to_string(event.seq) +
                               ": span_begin without span_id");
        continue;
      }
      if (by_id.count(id) != 0) {
        index.errors.push_back("seq " + std::to_string(event.seq) +
                               ": duplicate span_id " + std::to_string(id));
        continue;
      }
      SpanNode node;
      node.id = id;
      node.parent = parent;
      node.name = std::string(event.str("name"));
      node.begin_t = event.t;
      node.begin_event = e;
      const std::size_t node_index = index.nodes.size();
      by_id.emplace(id, node_index);
      if (parent == 0) {
        index.roots.push_back(node_index);
      } else {
        auto it = by_id.find(parent);
        if (it == by_id.end()) {
          index.errors.push_back("seq " + std::to_string(event.seq) +
                                 ": span " + std::to_string(id) +
                                 " references unknown parent " +
                                 std::to_string(parent));
          index.roots.push_back(node_index);
        } else if (index.nodes[it->second].closed) {
          index.errors.push_back("seq " + std::to_string(event.seq) +
                                 ": span " + std::to_string(id) +
                                 " begins under already-closed parent " +
                                 std::to_string(parent));
          index.nodes[it->second].children.push_back(node_index);
        } else {
          index.nodes[it->second].children.push_back(node_index);
        }
      }
      index.nodes.push_back(std::move(node));
    } else if (event.type == "span_end") {
      const auto id = static_cast<std::uint64_t>(event.num("span_id"));
      auto it = by_id.find(id);
      if (it == by_id.end()) {
        ++index.orphan_ends;
        index.errors.push_back("seq " + std::to_string(event.seq) +
                               ": span_end for unknown span " +
                               std::to_string(id));
        continue;
      }
      SpanNode& node = index.nodes[it->second];
      if (node.closed) {
        ++index.orphan_ends;
        index.errors.push_back("seq " + std::to_string(event.seq) +
                               ": duplicate span_end for span " +
                               std::to_string(id));
        continue;
      }
      node.closed = true;
      node.end_t = event.t;
      node.end_event = e;
    }
  }
  for (const SpanNode& node : index.nodes) {
    if (!node.closed) {
      ++index.unclosed;
      index.errors.push_back("span " + std::to_string(node.id) + " ('" +
                             node.name + "', begun at t=" +
                             std::to_string(node.begin_t) + ") never closed");
    }
  }
  return index;
}

const SpanNode* SpanIndex::find(std::uint64_t id) const {
  for (const SpanNode& node : nodes) {
    if (node.id == id) return &node;
  }
  return nullptr;
}

std::vector<std::size_t> SpanIndex::critical_path(
    std::size_t node_index) const {
  std::vector<std::size_t> path;
  if (node_index >= nodes.size()) return path;
  std::size_t cur = node_index;
  path.push_back(cur);
  while (true) {
    const SpanNode& node = nodes[cur];
    std::size_t best = nodes.size();
    for (std::size_t child : node.children) {
      const SpanNode& c = nodes[child];
      if (!c.closed) continue;
      if (best == nodes.size() || c.end_t > nodes[best].end_t ||
          (c.end_t == nodes[best].end_t && c.begin_t > nodes[best].begin_t)) {
        best = child;
      }
    }
    if (best == nodes.size()) break;
    path.push_back(best);
    cur = best;
  }
  return path;
}

// ---- Validation --------------------------------------------------------

ValidationReport validate_trace(const TraceFile& file) {
  ValidationReport report;
  report.events = file.events.size();
  report.errors = file.errors;
  bool have_prev_seq = false;
  std::uint64_t prev_seq = 0;
  double last_profile_ticks = -1.0;  // per segment; profile ticks are cumulative
  for (std::size_t i = 0; i < file.events.size(); ++i) {
    const TraceEvent& event = file.events[i];
    const int schema = file.schemas[i];
    if (have_prev_seq && event.seq == 0) last_profile_ticks = -1.0;
    if (schema != 1 && schema != 2) {
      report.errors.push_back("seq " + std::to_string(event.seq) +
                              ": unsupported schema version " +
                              std::to_string(schema));
    }
    const bool is_span =
        event.type == "span_begin" || event.type == "span_end";
    if (is_span && schema < 2) {
      report.errors.push_back("seq " + std::to_string(event.seq) + ": " +
                              event.type + " event on schema " +
                              std::to_string(schema) +
                              " (spans require schema 2)");
    }
    if (have_prev_seq && event.seq <= prev_seq && event.seq != 0) {
      // A restart at 0 is the boundary between concatenated emitter
      // streams (multi-run bench traces), not a violation.
      report.errors.push_back("seq " + std::to_string(event.seq) +
                              " not strictly increasing (previous " +
                              std::to_string(prev_seq) + ")");
    }
    if (event.type == "profile") {
      // Profiler snapshots (DESIGN.md §13): each needs a phase tag and a
      // cumulative tick counter that never moves backwards in a segment.
      if (event.str("phase").empty()) {
        report.errors.push_back("seq " + std::to_string(event.seq) +
                                ": profile event without a phase field");
      }
      const double ticks = event.num("ticks", -1.0);
      if (ticks < 0.0) {
        report.errors.push_back("seq " + std::to_string(event.seq) +
                                ": profile event without a ticks field");
      } else if (ticks < last_profile_ticks) {
        report.errors.push_back(
            "seq " + std::to_string(event.seq) + ": profile ticks " +
            std::to_string(ticks) + " below previous " +
            std::to_string(last_profile_ticks) + " (non-monotonic)");
      } else {
        last_profile_ticks = ticks;
      }
    }
    prev_seq = event.seq;
    have_prev_seq = true;
  }
  const SpanIndex spans = SpanIndex::build(file.events);
  report.spans = spans.nodes.size();
  report.unclosed = spans.unclosed;
  report.orphan_ends = spans.orphan_ends;
  report.segments = spans.segments;
  report.errors.insert(report.errors.end(), spans.errors.begin(),
                       spans.errors.end());
  return report;
}

// ---- Field-level diff --------------------------------------------------

namespace {

bool key_ignored(std::string_view key, const DiffOptions& options) {
  if (options.ignore_wall_keys && key.rfind("wall_", 0) == 0) return true;
  for (const std::string& k : options.ignore_keys) {
    if (k == key) return true;
  }
  return false;
}

bool nums_equal(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return true;
  return a == b;
}

std::string describe(const TraceEvent& event, std::size_t index) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "event %zu (t=%.6g, type=%s)", index,
                event.t, event.type.c_str());
  return buf;
}

// Returns the first differing field between two events, or empty string.
std::string first_field_difference(const TraceEvent& a, const TraceEvent& b,
                                   const DiffOptions& options) {
  if (a.type != b.type) return "type '" + a.type + "' vs '" + b.type + "'";
  if (!nums_equal(a.t, b.t)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "t %.12g vs %.12g", a.t, b.t);
    return buf;
  }
  for (const auto& [key, value] : a.strs) {
    if (key_ignored(key, options)) continue;
    const std::string_view other = b.str(key, "\x01<absent>");
    if (other == "\x01<absent>") return "field '" + key + "' only in A";
    if (other != value) {
      return "field '" + key + "': '" + value + "' vs '" +
             std::string(other) + "'";
    }
  }
  for (const auto& [key, value] : b.strs) {
    if (key_ignored(key, options)) continue;
    if (a.str(key, "\x01<absent>") == "\x01<absent>") {
      return "field '" + key + "' only in B";
    }
  }
  for (const auto& [key, value] : a.nums) {
    if (key_ignored(key, options)) continue;
    const double other = b.num(key, kNan);
    const bool present = !std::isnan(other) ||
                         std::isnan(b.num(key, 0.0));  // NaN field vs absent
    if (!present) return "field '" + key + "' only in A";
    if (!nums_equal(value, other)) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "field '%s': %.12g vs %.12g",
                    key.c_str(), value, other);
      return buf;
    }
  }
  for (const auto& [key, value] : b.nums) {
    if (key_ignored(key, options)) continue;
    const bool present = !std::isnan(a.num(key, kNan)) ||
                         std::isnan(a.num(key, 0.0));
    if (!present) return "field '" + key + "' only in B";
  }
  return {};
}

}  // namespace

TraceDiff diff_traces(const std::vector<TraceEvent>& a,
                      const std::vector<TraceEvent>& b,
                      const DiffOptions& options) {
  TraceDiff diff;
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    const std::string delta = first_field_difference(a[i], b[i], options);
    if (delta.empty()) continue;
    ++diff.differing_events;
    if (diff.reports.size() < options.max_reports) {
      diff.reports.push_back(describe(a[i], i) + ": " + delta);
    }
  }
  for (std::size_t i = common; i < a.size(); ++i) {
    ++diff.differing_events;
    if (diff.reports.size() < options.max_reports) {
      diff.reports.push_back(describe(a[i], i) + ": only in A");
    }
  }
  for (std::size_t i = common; i < b.size(); ++i) {
    ++diff.differing_events;
    if (diff.reports.size() < options.max_reports) {
      diff.reports.push_back(describe(b[i], i) + ": only in B");
    }
  }
  return diff;
}

// ---- Chrome trace-event export ----------------------------------------

void export_chrome_trace(const std::vector<TraceEvent>& events,
                         std::ostream& out) {
  const SpanIndex spans = SpanIndex::build(events);
  // Map begin-event index -> span node for argument merging.
  std::unordered_map<std::size_t, const SpanNode*> begin_of;
  for (const SpanNode& node : spans.nodes) begin_of[node.begin_event] = &node;

  std::string line;
  auto append_args = [&line](const TraceEvent& event) {
    bool first = true;
    for (const auto& [key, value] : event.strs) {
      if (key == "name") continue;
      if (!first) line += ",";
      first = false;
      json_escape_to(line, key);
      line += ":";
      json_escape_to(line, value);
    }
    for (const auto& [key, value] : event.nums) {
      if (key == "span_id" || key == "parent_id") continue;
      if (!first) line += ",";
      first = false;
      json_escape_to(line, key);
      line += ":";
      append_json_number(line, value);
    }
    return !first;
  };

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first_record = true;
  for (std::size_t e = 0; e < events.size(); ++e) {
    const TraceEvent& event = events[e];
    if (event.type == "span_end") continue;  // folded into the begin record
    line.clear();
    if (!first_record) line += ",\n";
    first_record = false;
    const double ts_us = event.t * 1e6;
    if (event.type == "span_begin") {
      auto it = begin_of.find(e);
      const SpanNode* node = it == begin_of.end() ? nullptr : it->second;
      const std::string name(event.str("name", "span"));
      if (node != nullptr && node->closed) {
        line += "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":";
        json_escape_to(line, name);
        line += ",\"cat\":\"span\",\"ts\":";
        append_json_number(line, ts_us);
        line += ",\"dur\":";
        append_json_number(line, (node->end_t - node->begin_t) * 1e6);
        line += ",\"args\":{";
        bool any = append_args(event);
        if (node->end_event < events.size()) {
          const TraceEvent& end_event = events[node->end_event];
          for (const auto& [key, value] : end_event.strs) {
            if (any) line += ",";
            any = true;
            json_escape_to(line, key);
            line += ":";
            json_escape_to(line, value);
          }
          for (const auto& [key, value] : end_event.nums) {
            if (key == "span_id") continue;
            if (any) line += ",";
            any = true;
            json_escape_to(line, key);
            line += ":";
            append_json_number(line, value);
          }
        }
        line += "}}";
      } else {
        line += "{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"s\":\"g\",\"name\":";
        json_escape_to(line, name + " (unclosed)");
        line += ",\"cat\":\"span\",\"ts\":";
        append_json_number(line, ts_us);
        line += ",\"args\":{";
        append_args(event);
        line += "}}";
      }
    } else {
      line += "{\"ph\":\"i\",\"pid\":1,\"tid\":2,\"s\":\"t\",\"name\":";
      json_escape_to(line, event.type);
      line += ",\"cat\":\"event\",\"ts\":";
      append_json_number(line, ts_us);
      line += ",\"args\":{";
      append_args(event);
      line += "}}";
    }
    out << line;
  }
  out << "]}\n";
}

// ---- Profile aggregation ----------------------------------------------

namespace {

// Registry sort key: known phases in enum (presentation) order, names the
// registry does not know after them.
int phase_sort_key(const std::string& name) {
  Phase phase;
  if (phase_from_name(name.c_str(), &phase)) return static_cast<int>(phase);
  return static_cast<int>(Phase::kCount);
}

}  // namespace

const ProfilePhase* ProfileSummary::find(std::string_view name) const {
  for (const ProfilePhase& phase : phases) {
    if (phase.name == name) return &phase;
  }
  return nullptr;
}

ProfileSummary aggregate_profile(const TraceFile& file) {
  ProfileSummary out;
  // Latest cumulative snapshot per phase within the current segment; folded
  // into the totals at every seq restart (and once at EOF).
  std::vector<ProfilePhase> segment;
  PoolProfile segment_pool;

  auto snapshot_of = [&segment](const std::string& name) -> ProfilePhase& {
    for (ProfilePhase& phase : segment) {
      if (phase.name == name) return phase;
    }
    segment.emplace_back();
    segment.back().name = name;
    return segment.back();
  };

  auto fold_segment = [&out, &segment, &segment_pool] {
    for (const ProfilePhase& snap : segment) {
      ProfilePhase* total = nullptr;
      for (ProfilePhase& phase : out.phases) {
        if (phase.name == snap.name) total = &phase;
      }
      if (total == nullptr) {
        out.phases.emplace_back();
        out.phases.back().name = snap.name;
        total = &out.phases.back();
      }
      total->ticks += snap.ticks;
      total->calls += snap.calls;
      total->total_us += snap.total_us;
      total->self_us += snap.self_us;
    }
    segment.clear();
    if (segment_pool.present) {
      out.pool.present = true;
      out.pool.ticks += segment_pool.ticks;
      out.pool.threads = std::max(out.pool.threads, segment_pool.threads);
      out.pool.tasks += segment_pool.tasks;
      out.pool.chunks += segment_pool.chunks;
      out.pool.regions += segment_pool.regions;
      out.pool.busy_us += segment_pool.busy_us;
      out.pool.busy_min_us += segment_pool.busy_min_us;
      out.pool.busy_max_us += segment_pool.busy_max_us;
      out.pool.queue_peak =
          std::max(out.pool.queue_peak, segment_pool.queue_peak);
      segment_pool = PoolProfile{};
    }
  };

  bool have_seq = false;
  for (const TraceEvent& event : file.events) {
    if (have_seq && event.seq == 0) fold_segment();
    have_seq = true;
    if (event.type != "profile") continue;
    ++out.profile_events;
    const std::string name(event.str("phase"));
    if (name == "pool") {
      segment_pool.present = true;
      segment_pool.ticks = static_cast<std::uint64_t>(event.num("ticks"));
      segment_pool.threads = event.num("threads");
      segment_pool.tasks = event.num("tasks");
      segment_pool.chunks = event.num("chunks");
      segment_pool.regions = event.num("regions");
      segment_pool.busy_us = event.num("wall_busy_us");
      segment_pool.busy_min_us = event.num("wall_busy_min_us");
      segment_pool.busy_max_us = event.num("wall_busy_max_us");
      segment_pool.queue_peak = event.num("wall_queue_peak");
    } else {
      ProfilePhase& snap = snapshot_of(name);
      snap.ticks = static_cast<std::uint64_t>(event.num("ticks"));
      snap.calls = static_cast<std::uint64_t>(event.num("calls"));
      snap.total_us = event.num("wall_total_us");
      snap.self_us = event.num("wall_self_us");
    }
  }
  fold_segment();

  std::stable_sort(out.phases.begin(), out.phases.end(),
                   [](const ProfilePhase& a, const ProfilePhase& b) {
                     const int ka = phase_sort_key(a.name);
                     const int kb = phase_sort_key(b.name);
                     return ka != kb ? ka < kb : a.name < b.name;
                   });
  for (const ProfilePhase& phase : out.phases) {
    out.ticks = std::max(out.ticks, phase.ticks);
  }
  return out;
}

void export_chrome_profile_counters(const TraceFile& file, std::ostream& out) {
  // Counters are cumulative, so each sample is the per-tick delta against
  // the previous snapshot of the same phase (reset at segment boundaries).
  struct Prev {
    double value = 0.0;
    double ticks = 0.0;
  };
  std::unordered_map<std::string, Prev> prev;
  bool have_seq = false;
  bool first_record = true;
  std::string line;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (const TraceEvent& event : file.events) {
    if (have_seq && event.seq == 0) prev.clear();
    have_seq = true;
    if (event.type != "profile") continue;
    const std::string name(event.str("phase"));
    const bool is_pool = name == "pool";
    const double cumulative =
        is_pool ? event.num("wall_busy_us") : event.num("wall_self_us");
    const double ticks = event.num("ticks");
    Prev& p = prev[name];
    const double d_ticks = ticks - p.ticks;
    const double d_value = cumulative - p.value;
    p.ticks = ticks;
    p.value = cumulative;
    if (d_ticks <= 0.0) continue;
    line.clear();
    if (!first_record) line += ",\n";
    first_record = false;
    line += "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":";
    json_escape_to(line,
                   is_pool ? "pool busy us/tick" : name + " self us/tick");
    line += ",\"cat\":\"profile\",\"ts\":";
    append_json_number(line, event.t * 1e6);
    line += ",\"args\":{\"value\":";
    append_json_number(line, d_value / d_ticks);
    line += "}}";
    out << line;
  }
  out << "]}\n";
}

}  // namespace wasp::obs
