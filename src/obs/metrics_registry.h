// Named counters / gauges / histograms with near-zero hot-path cost.
//
// The registry resolves a name to a metric handle once (a map lookup at
// registration time); after that the handle is a plain pointer into
// node-stable storage, so hot-path updates are a single add or store with no
// locking and no lookup. Snapshots walk the registry for reporting; the
// naming convention is dotted lower-case paths such as
// `engine.ticks`, `runtime.delay_sec`, `policy.actions.scale_out`
// (see DESIGN.md §6).
//
// Thread safety: none, by design -- the no-locking hot path is the point.
// One registry belongs to one simulation run (WaspSystem owns it), and a run
// executes on a single thread; the parallel sweep harness (src/exec) gives
// every run its own registry and merges *after* the runs join, so the
// registry is never read or written concurrently. Do not share a registry
// across concurrently running systems.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace wasp::obs {

// Monotonically increasing value (event counts, totals).
class Counter {
 public:
  void inc(double delta = 1.0) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

// Last-written value (queue depths, rates, currently-active anything).
class Gauge {
 public:
  void set(double value) { value_ = value; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class MetricsRegistry {
 public:
  // Handles are stable for the lifetime of the registry (std::map nodes do
  // not move), so callers may cache the returned references/pointers.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  WeightedHistogram& histogram(std::string_view name);

  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const WeightedHistogram* find_histogram(
      std::string_view name) const;

  // Sorted (name, value) pairs for every counter and gauge. Histograms are
  // reported as (name, total_weight) so a snapshot shows they are populated.
  [[nodiscard]] std::vector<std::pair<std::string, double>> snapshot() const;

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, WeightedHistogram, std::less<>> histograms_;
};

}  // namespace wasp::obs
