// Structured trace emission (the observability event stream).
//
// WASP's contribution is a control loop that observes rates, queues,
// backpressure and state sizes and then picks one adaptation action (§3.2,
// §6). Debugging a wrong decision needs the full causal chain: what the
// engine measured, what the policy diagnosed, which alternatives it rejected,
// and what the reconfiguration actually did. The TraceEmitter captures that
// chain as schema-versioned events written to a runtime-chosen sink:
//   - FileSink:   JSONL (one JSON object per line) for offline analysis;
//   - MemorySink: a bounded in-memory ring for tests and embedding;
//   - no sink:    the emitter is disabled and every call is a cheap no-op.
//
// Event layout (see DESIGN.md §6 for the per-type field tables):
//   {"schema":1,"seq":N,"t":<sim seconds>,"type":"...", ...fields}
//
// Producers hold a non-owning TraceEmitter* and guard hot paths with
// `enabled()`; fields are attached through a small RAII builder that commits
// the event when it goes out of scope.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wasp::obs {

inline constexpr int kTraceSchemaVersion = 1;

// One trace record: a type tag, a simulated-time stamp, and flat fields.
struct TraceEvent {
  std::uint64_t seq = 0;
  double t = 0.0;
  std::string type;
  std::vector<std::pair<std::string, double>> nums;
  std::vector<std::pair<std::string, std::string>> strs;

  // Field lookup (linear; events are small). Returns the fallback when the
  // key is absent.
  [[nodiscard]] double num(std::string_view key, double fallback = 0.0) const;
  [[nodiscard]] std::string_view str(std::string_view key,
                                     std::string_view fallback = {}) const;
};

// Serializes one event as a single JSON line (no trailing newline). Numbers
// that JSON cannot represent (NaN, infinities) are emitted as null.
[[nodiscard]] std::string to_json_line(const TraceEvent& event);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const TraceEvent& event) = 0;
  virtual void flush() {}
};

// Bounded ring of structured events; the oldest are dropped once full.
class MemorySink final : public TraceSink {
 public:
  explicit MemorySink(std::size_t capacity = 1 << 16)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void write(const TraceEvent& event) override;

  [[nodiscard]] const std::deque<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::vector<const TraceEvent*> of_type(
      std::string_view type) const;
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

// JSONL file sink. Check ok() after construction; a sink that failed to open
// swallows writes.
class FileSink final : public TraceSink {
 public:
  explicit FileSink(const std::string& path) : out_(path) {}

  [[nodiscard]] bool ok() const { return out_.good(); }
  void write(const TraceEvent& event) override;
  void flush() override { out_.flush(); }

 private:
  std::ofstream out_;
};

class TraceEmitter {
 public:
  TraceEmitter() = default;  // disabled: every event() is a no-op
  explicit TraceEmitter(std::shared_ptr<TraceSink> sink)
      : sink_(std::move(sink)) {}

  [[nodiscard]] bool enabled() const { return sink_ != nullptr; }
  [[nodiscard]] std::uint64_t emitted() const { return next_seq_; }

  // The default timestamp for event(); the runtime advances it once per tick
  // so producers without their own clock (e.g. the migration planner) stamp
  // correctly.
  void set_now(double t) { now_ = t; }
  [[nodiscard]] double now() const { return now_; }

  // RAII field builder: commits the event to the sink on destruction.
  class Event {
   public:
    Event(Event&& other) noexcept
        : emitter_(other.emitter_), event_(std::move(other.event_)) {
      other.emitter_ = nullptr;
    }
    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;
    Event& operator=(Event&&) = delete;
    ~Event();

    Event& num(std::string_view key, double value);
    Event& str(std::string_view key, std::string_view value);
    Event& flag(std::string_view key, bool value) {
      return str(key, value ? "true" : "false");
    }

   private:
    friend class TraceEmitter;
    Event(TraceEmitter* emitter, double t, std::string_view type);

    TraceEmitter* emitter_;  // null when the emitter is disabled
    TraceEvent event_;
  };

  [[nodiscard]] Event event(std::string_view type) {
    return Event(enabled() ? this : nullptr, now_, type);
  }
  [[nodiscard]] Event event_at(double t, std::string_view type) {
    return Event(enabled() ? this : nullptr, t, type);
  }

  void flush() {
    if (sink_ != nullptr) sink_->flush();
  }

 private:
  void commit(TraceEvent event);

  std::shared_ptr<TraceSink> sink_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace wasp::obs
