// Structured trace emission (the observability event stream).
//
// WASP's contribution is a control loop that observes rates, queues,
// backpressure and state sizes and then picks one adaptation action (§3.2,
// §6). Debugging a wrong decision needs the full causal chain: what the
// engine measured, what the policy diagnosed, which alternatives it rejected,
// and what the reconfiguration actually did. The TraceEmitter captures that
// chain as schema-versioned events written to a runtime-chosen sink:
//   - FileSink:   JSONL (one JSON object per line) for offline analysis;
//   - MemorySink: a bounded in-memory ring for tests and embedding;
//   - no sink:    the emitter is disabled and every call is a cheap no-op.
//
// Event layout (see DESIGN.md §6 for the per-type field tables):
//   {"schema":2,"seq":N,"t":<sim seconds>,"type":"...", ...fields}
//
// Schema v2 adds causal spans on top of the flat event stream: a span is a
// pair of ordinary events, "span_begin" (fields: name, span_id, parent_id)
// and "span_end" (field: span_id), so every sink and consumer of the flat
// stream keeps working unchanged. Spans form a forest via parent_id; nesting
// is either explicit (the caller passes a parent id) or ambient (SpanScope /
// ParentScope push a parent onto a stack that begin_span consults). Spans do
// NOT have to close in LIFO order -- long-lived spans (an adaptation waiting
// for a window boundary, a suspicion episode, an SLO violation) may overlap
// arbitrarily; only begin/end balance and parent-before-child are required.
//
// Producers hold a non-owning TraceEmitter* and guard hot paths with
// `enabled()`; fields are attached through a small RAII builder that commits
// the event when it goes out of scope.
//
// Threading model (audited for the parallel sweep harness, DESIGN.md §9):
//   - TraceEmitter is NOT thread-safe: seq numbering, the span-id counter,
//     open-span accounting, and the ambient-parent stack are plain state. One
//     emitter belongs to one simulation run, and a run executes on exactly
//     one thread (the sweep worker that owns it); never share an emitter
//     across threads.
//   - MemorySink is NOT thread-safe; it is confined to the run that owns its
//     emitter (tests, embedding).
//   - FileSink IS safe to share across runs: write()/flush() are serialized
//     and each JSON line is written atomically (see below). Deterministic
//     sweeps still prefer a private FileSink per run, because interleaving
//     order across concurrent runs is scheduling-dependent.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wasp::obs {

inline constexpr int kTraceSchemaVersion = 2;

// Span id 0 means "no span": a root span's parent_id, or the id returned by
// every span call on a disabled emitter.
inline constexpr std::uint64_t kNoSpan = 0;

// One trace record: a type tag, a simulated-time stamp, and flat fields.
struct TraceEvent {
  std::uint64_t seq = 0;
  double t = 0.0;
  std::string type;
  std::vector<std::pair<std::string, double>> nums;
  std::vector<std::pair<std::string, std::string>> strs;

  // Field lookup (linear; events are small). Returns the fallback when the
  // key is absent.
  [[nodiscard]] double num(std::string_view key, double fallback = 0.0) const;
  [[nodiscard]] std::string_view str(std::string_view key,
                                     std::string_view fallback = {}) const;
};

// Serializes one event as a single JSON line (no trailing newline). Numbers
// that JSON cannot represent (NaN, infinities) are emitted as null; string
// fields are escaped per RFC 8259 (quotes, backslashes, control characters)
// and invalid UTF-8 bytes are replaced with U+FFFD so the line always parses.
[[nodiscard]] std::string to_json_line(const TraceEvent& event);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const TraceEvent& event) = 0;
  virtual void flush() {}
};

// Bounded ring of structured events; the oldest are dropped once full.
// Not thread-safe: confine to the (single-threaded) run that owns the
// emitter writing to it.
//
// Iterator/reference stability: `events()` exposes the live deque, so any
// reference or iterator into it is invalidated by the next write once the
// ring is at capacity (eviction pops the front). Accessors that outlive
// further writes -- `of_type` -- therefore return copies, not pointers.
class MemorySink final : public TraceSink {
 public:
  explicit MemorySink(std::size_t capacity = 1 << 16)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void write(const TraceEvent& event) override;

  [[nodiscard]] const std::deque<TraceEvent>& events() const {
    return events_;
  }
  // Copies of every retained event with the given type, in arrival order.
  // Safe to hold across later writes (unlike pointers into events()).
  [[nodiscard]] std::vector<TraceEvent> of_type(std::string_view type) const;
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

// JSONL file sink. Check ok() after construction; a sink that failed to open
// swallows writes.
//
// Thread safety: write() and flush() serialize on an internal mutex, and a
// line is fully serialized before the lock is taken, so each JSON line lands
// atomically even when several emitters share one sink (e.g. the traced runs
// of a parallel bench driver). Note that sharing a sink across concurrently
// running emitters interleaves *lines* nondeterministically and mixes their
// independent `seq` streams -- deterministic sweeps give every run a private
// sink instead (exec::SweepOptions::trace_dir); the lock is a safety net,
// not an ordering guarantee.
class FileSink final : public TraceSink {
 public:
  explicit FileSink(const std::string& path) : out_(path) {}

  [[nodiscard]] bool ok() const { return out_.good(); }
  void write(const TraceEvent& event) override;
  void flush() override;

 private:
  std::mutex mu_;
  std::ofstream out_;
};

class TraceEmitter {
 public:
  TraceEmitter() = default;  // disabled: every event() is a no-op
  explicit TraceEmitter(std::shared_ptr<TraceSink> sink)
      : sink_(std::move(sink)) {}

  [[nodiscard]] bool enabled() const { return sink_ != nullptr; }
  [[nodiscard]] std::uint64_t emitted() const { return next_seq_; }

  // The default timestamp for event(); the runtime advances it once per tick
  // so producers without their own clock (e.g. the migration planner) stamp
  // correctly.
  void set_now(double t) { now_ = t; }
  [[nodiscard]] double now() const { return now_; }

  // RAII field builder: commits the event to the sink on destruction.
  class Event {
   public:
    Event(Event&& other) noexcept
        : emitter_(other.emitter_), event_(std::move(other.event_)) {
      other.emitter_ = nullptr;
    }
    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;
    Event& operator=(Event&&) = delete;
    ~Event();

    Event& num(std::string_view key, double value);
    Event& str(std::string_view key, std::string_view value);
    Event& flag(std::string_view key, bool value) {
      return str(key, value ? "true" : "false");
    }

   private:
    friend class TraceEmitter;
    Event(TraceEmitter* emitter, double t, std::string_view type);

    TraceEmitter* emitter_;  // null when the emitter is disabled
    TraceEvent event_;
  };

  [[nodiscard]] Event event(std::string_view type) {
    return Event(enabled() ? this : nullptr, now_, type);
  }
  [[nodiscard]] Event event_at(double t, std::string_view type) {
    return Event(enabled() ? this : nullptr, t, type);
  }

  // ---- Spans (schema v2) ----------------------------------------------
  // Sentinel parent: "use the current ambient parent" (top of the stack
  // pushed by SpanScope/ParentScope, or no parent if the stack is empty).
  static constexpr std::uint64_t kAmbientParent = ~std::uint64_t{0};

  // Opens a span: emits a "span_begin" event carrying name/span_id/parent_id
  // and returns the fresh id (kNoSpan when disabled). The span stays open
  // until end_span(id) -- spans are not required to close in LIFO order.
  std::uint64_t begin_span(std::string_view name,
                           std::uint64_t parent = kAmbientParent);
  // Same, but returns the builder so the caller can attach extra begin-time
  // fields; *id_out receives the new id before the builder commits.
  [[nodiscard]] Event begin_span_event(std::string_view name,
                                       std::uint64_t* id_out,
                                       std::uint64_t parent = kAmbientParent);
  // Same with an explicit timestamp (producers that record transition times
  // mid-tick, e.g. the failure detector).
  [[nodiscard]] Event begin_span_event_at(
      double t, std::string_view name, std::uint64_t* id_out,
      std::uint64_t parent = kAmbientParent);
  // Closes a span: emits a "span_end" event with span_id; attach end-time
  // fields (status, durations, counters) to the returned builder. A kNoSpan
  // id is a no-op.
  Event end_span(std::uint64_t span_id);
  Event end_span_at(double t, std::uint64_t span_id);

  // Number of begin_span calls without a matching end_span yet.
  [[nodiscard]] std::uint64_t open_spans() const { return open_spans_; }

  // RAII span covering a synchronous scope: the constructor emits span_begin
  // (ambient parent) and makes the new span the ambient parent; the
  // destructor emits span_end with the collected end fields plus "wall_us"
  // (wall-clock microseconds spent inside the scope). Null/disabled emitter
  // makes every method a no-op.
  class SpanScope {
   public:
    SpanScope(TraceEmitter* emitter, std::string_view name);
    ~SpanScope();
    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;

    // Fields attached to the span_end event.
    SpanScope& num(std::string_view key, double value);
    SpanScope& str(std::string_view key, std::string_view value);
    SpanScope& flag(std::string_view key, bool value) {
      return str(key, value ? "true" : "false");
    }
    [[nodiscard]] std::uint64_t id() const { return id_; }
    [[nodiscard]] bool active() const { return id_ != kNoSpan; }

   private:
    TraceEmitter* emitter_ = nullptr;
    std::uint64_t id_ = kNoSpan;
    std::chrono::steady_clock::time_point start_{};
    std::vector<std::pair<std::string, double>> end_nums_;
    std::vector<std::pair<std::string, std::string>> end_strs_;
  };

  // Makes an already-open span the ambient parent for the current scope
  // without emitting anything -- used to nest synchronous work (diagnose,
  // plan, solver calls) under a long-lived span the caller keeps open.
  class ParentScope {
   public:
    ParentScope(TraceEmitter* emitter, std::uint64_t span_id);
    ~ParentScope();
    ParentScope(const ParentScope&) = delete;
    ParentScope& operator=(const ParentScope&) = delete;

   private:
    TraceEmitter* emitter_ = nullptr;  // null when nothing was pushed
  };

  void flush() {
    if (sink_ != nullptr) sink_->flush();
  }

 private:
  void commit(TraceEvent event);
  [[nodiscard]] std::uint64_t resolve_parent(std::uint64_t parent) const {
    if (parent != kAmbientParent) return parent;
    return ambient_.empty() ? kNoSpan : ambient_.back();
  }

  std::shared_ptr<TraceSink> sink_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_span_id_ = 1;
  std::uint64_t open_spans_ = 0;
  std::vector<std::uint64_t> ambient_;
};

}  // namespace wasp::obs
