// Always-on tick-phase profiler (DESIGN.md §13).
//
// A hierarchical scoped timer over a *static* phase registry: every
// instrumented region names one of the Phase enumerators below, so the
// accumulator table is a flat array indexed by phase -- no hashing, no
// allocation, no strings on the hot path. Two instrumentation idioms:
//
//  - Scope: classic RAII, two clock reads (enter/exit). Use for regions
//    entered at control-plane cadence (solver calls, standby syncs).
//  - Chain: a sequence of sibling phases inside one parent where each
//    boundary closes the previous segment and opens the next with a
//    *single* clock read. Use on the per-tick hot path: the engine tick's
//    six phases cost six clock reads, not twelve.
//
// Both nest arbitrarily through one frame stack, so a phase's `self_ns` is
// its elapsed time minus the time attributed to phases opened inside it,
// and `total_ns` is the full inclusive time. The stack lives on the
// profiler object and is only ever touched by the thread driving the
// simulation (the controller); worker-thread observability goes through the
// lock-free counters in exec::ThreadPool instead and is merged serially at
// tick barriers (see WaspSystem::emit_profile_events).
//
// Pure-observer contract: the profiler reads the steady clock and writes
// its own accumulators -- nothing else. It must never touch the Rng, the
// Recorder, MetricsRegistry, or the content of any simulated trace event;
// `tests/profiler_test.cc:ProfilingIsAPureObserver` enforces this by
// comparing same-seed runs with profiling on and off.
//
// A disabled or null profiler costs one predictable branch per
// instrumentation point (Scope/Chain check `enabled()` before reading the
// clock), which is what keeps `--profile` safe to compile in everywhere.
#pragma once

#include <array>
#include <cstdint>

namespace wasp::obs {

// Static phase registry. Order is presentation order in `wasp_trace
// profile`; kStep is the root that wraps one whole WaspSystem::step.
enum class Phase : int {
  kStep = 0,          // one whole system tick
  kWorkload,          // workload pattern + WAN monitor updates
  kWaterfill,         // net::Network::step max-min fair share
  kEngine,            // engine::Engine::tick, inclusive
  kEngineReset,       //   per-tick state reset + admission kernels
  kEngineStage,       //   topo-order stage processing pass
  kEngineChannel,     //   channel flow demands on WAN links
  kEngineCheckpoint,  //   checkpoint scheduling + dirty-group deltas
  kEngineDelay,       //   delay metric fold
  kEngineEmit,        //   tick trace event emission
  kMonitorExtract,    // metric monitor observation + extraction
  kControl,           // control plane, inclusive (detector/transitions)
  kPolicyDecide,      //   adaptation policy decide_all
  kSolverPlacement,   //   placement ILP solve
  kSolverMigration,   //   migration min-max LP solve
  kStandbySync,       //   hot-standby delta sync pump
  kRecord,            // recorder + SLO watchdog fold
  kMicroBatch,        // microengine event-loop batches (bench/validation)
  kCount
};

// Stable short name ("engine.stage", ...) used in profile events and tools.
const char* phase_name(Phase phase);

// Parses a phase name back to its enumerator; returns false on unknown.
bool phase_from_name(const char* name, Phase* out);

struct PhaseAccum {
  std::uint64_t calls = 0;     // times the phase was entered (deterministic)
  std::uint64_t total_ns = 0;  // inclusive wall time
  std::uint64_t self_ns = 0;   // total minus time in nested phases
};

class Profiler {
 public:
  // Injectable monotonic clock (nanoseconds). Tests substitute a counter to
  // make accounting assertions exact.
  using ClockFn = std::uint64_t (*)();

  explicit Profiler(bool enabled = false) : enabled_(enabled) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void set_clock(ClockFn clock) { clock_ = clock; }

  // The accumulator table (indexed by Phase). Cumulative since construction
  // or the last reset(); readers snapshot it between ticks.
  [[nodiscard]] const std::array<PhaseAccum, static_cast<std::size_t>(
      Phase::kCount)>& accums() const {
    return accums_;
  }

  void reset();

  // RAII inclusive timer for one phase. Null-safe: a Scope over a null or
  // disabled profiler is a no-op.
  class Scope {
   public:
    Scope(Profiler* profiler, Phase phase)
        : profiler_(profiler != nullptr && profiler->enabled() ? profiler
                                                               : nullptr) {
      if (profiler_ != nullptr) profiler_->push(phase, profiler_->clock_());
    }
    ~Scope() {
      if (profiler_ != nullptr) profiler_->pop(profiler_->clock_());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Profiler* profiler_;
  };

  // A run of sibling phases: next() closes the current segment and opens
  // the next one with one clock read; destruction (or close()) ends the
  // last segment. Null-safe like Scope.
  class Chain {
   public:
    explicit Chain(Profiler* profiler)
        : profiler_(profiler != nullptr && profiler->enabled() ? profiler
                                                               : nullptr) {}
    ~Chain() { close(); }
    Chain(const Chain&) = delete;
    Chain& operator=(const Chain&) = delete;

    void next(Phase phase) {
      if (profiler_ == nullptr) return;
      const std::uint64_t now = profiler_->clock_();
      if (open_) profiler_->pop(now);
      profiler_->push(phase, now);
      open_ = true;
    }

    void close() {
      if (profiler_ == nullptr || !open_) return;
      profiler_->pop(profiler_->clock_());
      open_ = false;
    }

   private:
    Profiler* profiler_;
    bool open_ = false;
  };

 private:
  friend class Scope;
  friend class Chain;

  static constexpr std::size_t kMaxDepth = 16;

  struct Frame {
    Phase phase = Phase::kStep;
    std::uint64_t start_ns = 0;
    std::uint64_t child_ns = 0;
  };

  static std::uint64_t steady_now_ns();

  void push(Phase phase, std::uint64_t now);
  void pop(std::uint64_t now);

  bool enabled_ = false;
  ClockFn clock_ = &steady_now_ns;
  std::size_t depth_ = 0;
  std::size_t overflow_ = 0;  // pushes skipped past kMaxDepth
  std::array<Frame, kMaxDepth> stack_{};
  std::array<PhaseAccum, static_cast<std::size_t>(Phase::kCount)> accums_{};
};

}  // namespace wasp::obs
