// Offline analysis of JSONL traces: parsing, span-tree reconstruction,
// validation and field-level diffing.
//
// This is the library behind the `wasp_trace` CLI (tools/wasp_trace.cpp); it
// lives in wasp_obs so tests can exercise the exact logic CI relies on. It
// reads the schema-v1/v2 lines produced by to_json_line() back into
// TraceEvent records (the parser accepts any flat JSON object with string /
// number / bool / null values) and rebuilds the schema-v2 span forest from
// span_begin/span_end pairs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace wasp::obs {

// ---- JSONL parsing -----------------------------------------------------

// Parses one trace line into *out. On success returns true and sets *schema
// to the line's "schema" field (0 when absent). On failure returns false and
// describes the problem in *error. Booleans become string fields
// "true"/"false" (matching Event::flag), null numbers become NaN.
[[nodiscard]] bool parse_trace_line(std::string_view line, TraceEvent* out,
                                    int* schema, std::string* error);

struct TraceFile {
  std::vector<TraceEvent> events;  // successfully parsed lines, in file order
  std::vector<int> schemas;        // per-event schema version
  std::vector<std::string> errors;  // "line N: ..." parse failures
  std::size_t lines = 0;            // non-empty lines seen
};

// Reads every non-empty line of `in`; parse failures are collected, not
// fatal, so validation can report all of them.
[[nodiscard]] TraceFile load_trace(std::istream& in);
[[nodiscard]] TraceFile load_trace_file(const std::string& path,
                                        std::string* error);

// ---- Span reconstruction ----------------------------------------------

struct SpanNode {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root
  std::string name;
  double begin_t = 0.0;
  double end_t = 0.0;   // meaningful only when closed
  bool closed = false;
  std::size_t begin_event = 0;  // index into the source event vector
  std::size_t end_event = 0;    // meaningful only when closed
  std::vector<std::size_t> children;  // indices into SpanIndex::nodes

  [[nodiscard]] double duration() const {
    return closed ? end_t - begin_t : 0.0;
  }
};

// The reconstructed span forest plus every structural violation found while
// building it. Spans need not close in LIFO order; the only requirements are
// begin/end balance, unique ids, and parents that are open at begin time.
// Bench drivers append several runs (one emitter each) to a single file;
// each seq restart at 0 starts a new segment with its own span-id namespace.
struct SpanIndex {
  std::vector<SpanNode> nodes;       // in span_begin order
  std::vector<std::size_t> roots;    // nodes with parent 0 (or missing)
  std::vector<std::string> errors;   // structural violations
  std::size_t unclosed = 0;          // span_begin without span_end
  std::size_t orphan_ends = 0;       // span_end without a matching begin
  std::size_t segments = 1;          // emitter streams (seq restarts + 1)

  [[nodiscard]] static SpanIndex build(const std::vector<TraceEvent>& events);

  [[nodiscard]] const SpanNode* find(std::uint64_t id) const;
  [[nodiscard]] bool balanced() const {
    return unclosed == 0 && orphan_ends == 0;
  }

  // The chain from `node` to the leaf that determines its end time: at each
  // level, the closed child with the latest end_t (ties: latest begin).
  // Includes `node` itself; empty for an out-of-range index.
  [[nodiscard]] std::vector<std::size_t> critical_path(
      std::size_t node_index) const;
};

// ---- Validation --------------------------------------------------------

struct ValidationReport {
  std::vector<std::string> errors;
  std::size_t events = 0;
  std::size_t spans = 0;
  std::size_t unclosed = 0;
  std::size_t orphan_ends = 0;
  std::size_t segments = 1;
  [[nodiscard]] bool ok() const { return errors.empty(); }
};

// Checks parse errors, schema versions (1 or 2 only; span events require 2),
// strictly increasing seq, and span-forest structure (balance, unique ids,
// open parents). seq restarting at 0 is not an error: it marks the boundary
// between concatenated emitter streams (multi-run bench traces).
[[nodiscard]] ValidationReport validate_trace(const TraceFile& file);

// ---- Profile aggregation ----------------------------------------------

// One phase's totals folded over every `profile` event in a trace
// (DESIGN.md §13). Profile events carry cumulative counters, so within a
// segment the last event per phase holds that segment's totals; a
// multi-segment file (bench drivers appending runs) sums segment totals.
struct ProfilePhase {
  std::string name;
  std::uint64_t ticks = 0;  // ticks covered by the folded snapshots
  std::uint64_t calls = 0;
  double total_us = 0.0;  // inclusive wall time
  double self_us = 0.0;   // total minus nested phases
};

// Thread-pool counters from the pseudo-phase "pool" profile events.
struct PoolProfile {
  bool present = false;
  std::uint64_t ticks = 0;
  double threads = 0.0;  // max across segments (controller + workers)
  double tasks = 0.0;
  double chunks = 0.0;
  double regions = 0.0;
  double busy_us = 0.0;
  double busy_min_us = 0.0;  // least-loaded slot (last snapshot folded)
  double busy_max_us = 0.0;  // most-loaded slot
  double queue_peak = 0.0;   // max across segments
};

struct ProfileSummary {
  // Phases in registry (presentation) order; names the registry does not
  // know sort after them alphabetically, so newer traces stay readable.
  std::vector<ProfilePhase> phases;
  PoolProfile pool;
  std::size_t profile_events = 0;
  std::uint64_t ticks = 0;  // max phase ticks (summed across segments)
  [[nodiscard]] bool empty() const { return profile_events == 0; }
  [[nodiscard]] const ProfilePhase* find(std::string_view name) const;
};

[[nodiscard]] ProfileSummary aggregate_profile(const TraceFile& file);

// Chrome counter-track export for profile events: one "C" counter sample
// per phase per profile event carrying the per-tick self wall time since
// the previous snapshot (cumulative counters are differenced per segment).
// Loadable alongside export_chrome_trace output in Perfetto.
void export_chrome_profile_counters(const TraceFile& file, std::ostream& out);

// ---- Field-level diff --------------------------------------------------

struct DiffOptions {
  // Keys compared by name; any key starting with "wall_" is also ignored by
  // default since wall-clock durations are nondeterministic run to run.
  std::vector<std::string> ignore_keys;
  bool ignore_wall_keys = true;
  std::size_t max_reports = 25;  // cap on human-readable difference lines
};

struct TraceDiff {
  std::size_t differing_events = 0;  // event pairs (or unmatched tails)
  std::vector<std::string> reports;  // first max_reports differences
  [[nodiscard]] bool identical() const { return differing_events == 0; }
};

// Compares two event streams pairwise in order: type, t, and every field
// not ignored. Extra trailing events in either stream count as differences.
// seq is compared implicitly by position, not value.
[[nodiscard]] TraceDiff diff_traces(const std::vector<TraceEvent>& a,
                                    const std::vector<TraceEvent>& b,
                                    const DiffOptions& options = {});

// ---- Chrome trace-event export ----------------------------------------

// Writes a Chrome trace-event JSON array (loadable in Perfetto or
// chrome://tracing): closed spans become "X" complete events, unclosed spans
// and plain events become "i" instants. Sim seconds map to microseconds.
void export_chrome_trace(const std::vector<TraceEvent>& events,
                         std::ostream& out);

}  // namespace wasp::obs
