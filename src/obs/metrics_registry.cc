#include "obs/metrics_registry.h"

#include <algorithm>

namespace wasp::obs {
namespace {

template <typename Map>
auto* find_in(const Map& map, std::string_view name) {
  auto it = map.find(name);
  return it == map.end() ? nullptr : &it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

WeightedHistogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), WeightedHistogram{}).first;
  }
  return it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find_in(counters_, name);
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_in(gauges_, name);
}

const WeightedHistogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  return find_in(histograms_, name);
}

std::vector<std::pair<std::string, double>> MetricsRegistry::snapshot() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(size());
  for (const auto& [name, metric] : counters_) {
    out.emplace_back(name, metric.value());
  }
  for (const auto& [name, metric] : gauges_) {
    out.emplace_back(name, metric.value());
  }
  for (const auto& [name, metric] : histograms_) {
    out.emplace_back(name, metric.total_weight());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace wasp::obs
