#include "obs/profiler.h"

#include <chrono>
#include <cstring>

namespace wasp::obs {
namespace {

// Names are dotted paths whose prefixes mirror the nesting ("engine.stage"
// runs inside "engine"); `wasp_trace profile` sorts and indents by them.
constexpr const char* kPhaseNames[static_cast<std::size_t>(Phase::kCount)] = {
    "step",
    "workload",
    "waterfill",
    "engine",
    "engine.reset",
    "engine.stage",
    "engine.channel",
    "engine.checkpoint",
    "engine.delay",
    "engine.emit",
    "monitor",
    "control",
    "control.policy",
    "control.solver.placement",
    "control.solver.migration",
    "control.standby_sync",
    "record",
    "micro.batch",
};

}  // namespace

const char* phase_name(Phase phase) {
  const auto index = static_cast<std::size_t>(phase);
  if (index >= static_cast<std::size_t>(Phase::kCount)) return "?";
  return kPhaseNames[index];
}

bool phase_from_name(const char* name, Phase* out) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Phase::kCount); ++i) {
    if (std::strcmp(name, kPhaseNames[i]) == 0) {
      *out = static_cast<Phase>(i);
      return true;
    }
  }
  return false;
}

std::uint64_t Profiler::steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Profiler::reset() {
  accums_ = {};
  // Open frames (there should be none between ticks) keep their start
  // times; their accounting lands in the post-reset table.
}

void Profiler::push(Phase phase, std::uint64_t now) {
  if (depth_ >= kMaxDepth) {
    // Deeper frames are silently untimed; count them so the matching pops
    // skip instead of closing an ancestor's frame.
    ++overflow_;
    return;
  }
  Frame& frame = stack_[depth_++];
  frame.phase = phase;
  frame.start_ns = now;
  frame.child_ns = 0;
}

void Profiler::pop(std::uint64_t now) {
  if (overflow_ > 0) {
    --overflow_;
    return;
  }
  if (depth_ == 0) return;
  const Frame& frame = stack_[--depth_];
  const std::uint64_t elapsed =
      now >= frame.start_ns ? now - frame.start_ns : 0;
  PhaseAccum& accum = accums_[static_cast<std::size_t>(frame.phase)];
  ++accum.calls;
  accum.total_ns += elapsed;
  accum.self_ns += elapsed >= frame.child_ns ? elapsed - frame.child_ns : 0;
  if (depth_ > 0) stack_[depth_ - 1].child_ns += elapsed;
}

}  // namespace wasp::obs
