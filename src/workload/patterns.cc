#include "workload/patterns.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace wasp::workload {
namespace {

// Packs (source op, site) into one map key. Site ids are far below 4096.
std::int64_t key_of(OperatorId source, SiteId site) {
  assert(site.value() >= 0 && site.value() < 4096);
  return source.value() * 4096 + site.value();
}

}  // namespace

void SteppedWorkload::set_base_rate(OperatorId source, SiteId site,
                                    double eps) {
  base_[key_of(source, site)] = eps;
}

void SteppedWorkload::add_step(double t, double factor) {
  steps_.emplace_back(t, factor);
  std::sort(steps_.begin(), steps_.end());
}

double SteppedWorkload::rate(OperatorId source, SiteId site, double t) const {
  const auto it = base_.find(key_of(source, site));
  if (it == base_.end()) return 0.0;
  double factor = 1.0;
  for (const auto& [time, f] : steps_) {
    if (time > t) break;
    factor = f;
  }
  return it->second * factor;
}

RandomWalkWorkload::RandomWalkWorkload(Config config, Rng& rng)
    : config_(config) {
  const auto intervals =
      static_cast<std::size_t>(
          std::ceil(config.horizon_sec / config.period_sec)) +
      1;
  factors_.resize(4096);  // indexed by site id; sparse sites stay empty
  for (std::size_t s = 0; s < 64; ++s) {
    auto& series = factors_[s];
    series.resize(intervals);
    double f = rng.uniform(config.min_factor, config.max_factor);
    for (auto& value : series) {
      value = f;
      f = std::clamp(f * std::exp(rng.normal(0.0, config.sigma)),
                     config.min_factor, config.max_factor);
    }
  }
}

void RandomWalkWorkload::set_base_rate(OperatorId source, SiteId site,
                                       double eps) {
  base_[key_of(source, site)] = eps;
}

double RandomWalkWorkload::factor(SiteId site, double t) const {
  const auto s = static_cast<std::size_t>(site.value());
  if (s >= factors_.size() || factors_[s].empty()) return 1.0;
  const auto& series = factors_[s];
  const auto k = std::min(
      series.size() - 1,
      static_cast<std::size_t>(std::max(0.0, t) / config_.period_sec));
  return series[k];
}

double RandomWalkWorkload::rate(OperatorId source, SiteId site,
                                double t) const {
  const auto it = base_.find(key_of(source, site));
  if (it == base_.end()) return 0.0;
  return it->second * factor(site, t);
}

void DiurnalWorkload::set_base_rate(OperatorId source, SiteId site,
                                    double eps) {
  base_[key_of(source, site)] = eps;
}

double DiurnalWorkload::rate(OperatorId source, SiteId site, double t) const {
  const auto it = base_.find(key_of(source, site));
  if (it == base_.end()) return 0.0;
  // Sinusoid between 1 and peak_to_trough, phase-shifted per site.
  const double phase =
      static_cast<double>(site.value()) * config_.per_site_phase;
  const double x = 2.0 * std::numbers::pi *
                   (t / config_.day_length_sec + phase);
  // Factor sweeps [1, peak_to_trough]: the base rate is the trough.
  const double a = 0.5 * (config_.peak_to_trough - 1.0);
  const double factor = 1.0 + a * (1.0 + std::sin(x));
  return it->second * factor;
}

std::vector<double> zipf_site_split(double total_eps, std::size_t sites,
                                    double s, Rng& rng) {
  std::vector<double> weights(sites);
  for (std::size_t k = 0; k < sites; ++k) {
    weights[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
  }
  // Shuffle so the heavy sites are not always the low-index ones.
  for (std::size_t k = sites; k > 1; --k) {
    const auto r = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(k) - 1));
    std::swap(weights[k - 1], weights[r]);
  }
  double total_w = 0.0;
  for (double w : weights) total_w += w;
  for (double& w : weights) w = total_eps * w / total_w;
  return weights;
}

}  // namespace wasp::workload
