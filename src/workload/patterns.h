// Workload rate patterns: how much each source generates, where, and when.
//
// The evaluation drives three kinds of workload dynamics:
//  - §8.4: global step changes (10k -> 20k -> 10k events/s per source),
//  - §8.6: random per-source variation with factors in [0.8, 2.4], changing
//    every few minutes (the "live" trace),
//  - Twitter-style spatial skew and diurnal variation (day hours carry
//    roughly 2x the night workload [37]), used by examples and extensions.
//
// A pattern maps (source operator, site, time) -> events/s. Patterns are
// deterministic given their seed.
#pragma once

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace wasp::workload {

class WorkloadPattern {
 public:
  virtual ~WorkloadPattern() = default;
  [[nodiscard]] virtual double rate(OperatorId source, SiteId site,
                                    double t) const = 0;
};

// Fixed per-(source, site) base rates scaled by a global step schedule.
class SteppedWorkload final : public WorkloadPattern {
 public:
  SteppedWorkload() = default;

  void set_base_rate(OperatorId source, SiteId site, double eps);
  // Appends a (time, factor) step; the factor of the last step at or before
  // `t` applies (default 1.0 before any step).
  void add_step(double t, double factor);

  [[nodiscard]] double rate(OperatorId source, SiteId site,
                            double t) const override;

 private:
  std::unordered_map<std::int64_t, double> base_;  // key: op * 4096 + site
  std::vector<std::pair<double, double>> steps_;
};

// Per-site bounded random-walk factors over base rates (the §8.6 live
// workload: factors in [0.8, 2.4], re-drawn every `period_sec`).
class RandomWalkWorkload final : public WorkloadPattern {
 public:
  struct Config {
    double horizon_sec = 1800.0;
    double period_sec = 300.0;
    double min_factor = 0.8;
    double max_factor = 2.4;
    double sigma = 0.3;
  };

  RandomWalkWorkload(Config config, Rng& rng);

  void set_base_rate(OperatorId source, SiteId site, double eps);

  [[nodiscard]] double rate(OperatorId source, SiteId site,
                            double t) const override;

  // The factor applied at (site, t); exposed so benches can plot the
  // variation alongside the system's reaction (Fig. 11a).
  [[nodiscard]] double factor(SiteId site, double t) const;

 private:
  Config config_;
  std::unordered_map<std::int64_t, double> base_;
  std::vector<std::vector<double>> factors_;  // [site][interval]
};

// Diurnal pattern: base rate modulated by a day/night sinusoid with the
// given peak-to-trough ratio (default 2x, per the Twitter measurements) and
// per-site phase offsets emulating time zones.
class DiurnalWorkload final : public WorkloadPattern {
 public:
  struct Config {
    double day_length_sec = 86400.0;
    double peak_to_trough = 2.0;
    // Phase offset per site index, as a fraction of the day (time zones).
    double per_site_phase = 1.0 / 8.0;
  };

  explicit DiurnalWorkload(Config config) : config_(config) {}

  void set_base_rate(OperatorId source, SiteId site, double eps);

  [[nodiscard]] double rate(OperatorId source, SiteId site,
                            double t) const override;

 private:
  Config config_;
  std::unordered_map<std::int64_t, double> base_;
};

// Spatially skewed base-rate helper: splits `total_eps` over `sites` with
// Zipf(s) weights in a deterministic shuffle -- the geo distribution of a
// real trace (busy metros vs quiet regions).
[[nodiscard]] std::vector<double> zipf_site_split(double total_eps,
                                                  std::size_t sites, double s,
                                                  Rng& rng);

}  // namespace wasp::workload
