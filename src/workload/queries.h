// The benchmark queries of paper Table 3, plus a 4-source join query used to
// exercise query re-planning (the Fig. 5 scenario).
//
// Notes on fidelity:
//  - The paper replaced the YSB's Redis/Kafka I/O with in-memory operations
//    (§8.3); the campaign lookup is therefore modeled as a map operator.
//  - Light per-event pre-processing (the leading filter) is pinned at the
//    source sites, mirroring Flink's operator chaining of source->filter
//    into one task slot; only post-filter traffic crosses the WAN.
//  - Per-slot processing capacities are set high enough that, at the
//    baseline workload, no operator is compute-bound with p = 1 -- matching
//    §8.4 where the induced bottlenecks are network-side.
#pragma once

#include <vector>

#include "common/ids.h"
#include "query/logical_plan.h"

namespace wasp::workload {

struct QuerySpec {
  query::LogicalPlan plan;
  std::vector<OperatorId> sources;  // in plan-id order
  bool stateful = false;
};

// YSB Advertising Campaign (stateful, <10 MB): per-source filter + map, a
// 10-second windowed aggregation keyed by campaign, sink.
[[nodiscard]] QuerySpec make_ysb_campaign(const std::vector<SiteId>& edge_sites,
                                          SiteId sink_site);

// Top-K Popular Topics (stateful, ~100 MB): two geo-partitioned tweet
// sources, per-source filter, map, union, a 30-second windowed aggregation
// per (country, topic), top-k reduce, sink.
[[nodiscard]] QuerySpec make_topk_topics(const std::vector<SiteId>& east_sites,
                                         const std::vector<SiteId>& west_sites,
                                         SiteId sink_site);

// Events of Interest (stateless): filter + union + project, sink.
[[nodiscard]] QuerySpec make_events_of_interest(
    const std::vector<SiteId>& edge_sites, SiteId sink_site);

// Four-source commutative hash-join query (Fig. 5): sources at four sites
// joined pairwise; the join order is what query re-planning re-optimizes.
// `stateful_joins` controls whether the joins carry state (restricting
// admissible re-plans to common sub-plans, §4.3).
[[nodiscard]] QuerySpec make_four_source_join(const std::vector<SiteId>& sites,
                                              SiteId sink_site,
                                              bool stateful_joins);

}  // namespace wasp::workload
