#include "workload/queries.h"

#include <cassert>

namespace wasp::workload {
namespace {

using query::LogicalOperator;
using query::LogicalPlan;
using query::OperatorKind;
using query::StateSpec;
using query::WindowSpec;

// Per-slot capacities: pre-processing operators are cheap; aggregations do
// more work per event. Chosen so no operator is compute-bound at the
// baseline workloads with p = 1 (§8.4 induces *network* bottlenecks), while
// keeping buffer bounds -- which scale with capacity -- to a few seconds of
// the actual stream rates.
constexpr double kLightOpEps = 100'000.0;
constexpr double kAggOpEps = 150'000.0;

LogicalOperator source_op(const char* name, const std::vector<SiteId>& sites,
                          double event_bytes) {
  LogicalOperator op;
  op.name = name;
  op.kind = OperatorKind::kSource;
  op.selectivity = 1.0;
  op.output_event_bytes = event_bytes;
  op.events_per_sec_per_slot = kLightOpEps;
  op.pinned_sites = sites;
  // Sources chain into their co-located pre-filters (Flink operator
  // chaining): raw events never cross the WAN.
  op.output_partitioning = query::Partitioning::kForward;
  return op;
}

LogicalOperator simple_op(const char* name, OperatorKind kind,
                          double selectivity, double event_bytes,
                          const std::vector<SiteId>& pinned = {}) {
  LogicalOperator op;
  op.name = name;
  op.kind = kind;
  op.selectivity = selectivity;
  op.output_event_bytes = event_bytes;
  op.events_per_sec_per_slot = kLightOpEps;
  op.pinned_sites = pinned;
  return op;
}

LogicalOperator sink_op(const char* name, SiteId site) {
  LogicalOperator op;
  op.name = name;
  op.kind = OperatorKind::kSink;
  op.selectivity = 1.0;
  op.output_event_bytes = 64.0;
  op.events_per_sec_per_slot = kLightOpEps;
  op.pinned_sites = {site};
  return op;
}

}  // namespace

QuerySpec make_ysb_campaign(const std::vector<SiteId>& edge_sites,
                            SiteId sink_site) {
  assert(!edge_sites.empty());
  QuerySpec spec;
  LogicalPlan& plan = spec.plan;

  // Ad events are ~100 B; only "view" events (1 in 3) survive the filter
  // (the YSB filters by event_type).
  const OperatorId src = plan.add_operator(source_op("ad-events", edge_sites, 100.0));
  // Chained at the sources: filter + projection to (ad_id, event_time).
  LogicalOperator filter =
      simple_op("view-filter", OperatorKind::kFilter, 1.0 / 3.0, 60.0,
                edge_sites);
  const OperatorId f = plan.add_operator(std::move(filter));
  // Campaign lookup (in-memory join against the static campaign table,
  // modeled as a map, per §8.3's I/O replacement).
  const OperatorId m = plan.add_operator(
      simple_op("campaign-map", OperatorKind::kMap, 1.0, 72.0));
  // 10-second tumbling window count per campaign; 100 campaigns -> ~10
  // output events/s. Selectivity expressed against the input rate at the
  // baseline (26.4k ev/s into the window): ~0.0004.
  LogicalOperator window;
  window.name = "campaign-window";
  window.kind = OperatorKind::kWindowAggregate;
  window.selectivity = 0.0004;
  window.output_event_bytes = 96.0;
  window.events_per_sec_per_slot = kAggOpEps;
  window.window = WindowSpec{10.0};
  window.state = StateSpec::windowed(/*base_mb=*/1.0, /*mb_per_kevent=*/0.03);
  const OperatorId w = plan.add_operator(std::move(window));
  const OperatorId snk = plan.add_operator(sink_op("campaign-sink", sink_site));

  plan.connect(src, f);
  plan.connect(f, m);
  plan.connect(m, w);
  plan.connect(w, snk);

  spec.sources = {src};
  spec.stateful = true;
  assert(plan.validate().empty());
  return spec;
}

QuerySpec make_topk_topics(const std::vector<SiteId>& east_sites,
                           const std::vector<SiteId>& west_sites,
                           SiteId sink_site) {
  assert(!east_sites.empty() && !west_sites.empty());
  QuerySpec spec;
  LogicalPlan& plan = spec.plan;

  // Geo-tagged tweets, ~200 B each, partitioned into two regional streams.
  const OperatorId east =
      plan.add_operator(source_op("tweets-east", east_sites, 200.0));
  const OperatorId west =
      plan.add_operator(source_op("tweets-west", west_sites, 200.0));
  // Chained filters: keep tweets with usable language/geo tags (~60%).
  const OperatorId fe = plan.add_operator(
      simple_op("tag-filter-east", OperatorKind::kFilter, 0.6, 120.0,
                east_sites));
  const OperatorId fw = plan.add_operator(
      simple_op("tag-filter-west", OperatorKind::kFilter, 0.6, 120.0,
                west_sites));
  // Topic extraction (map to (country, topic) pairs).
  const OperatorId me = plan.add_operator(
      simple_op("topic-map-east", OperatorKind::kMap, 1.0, 64.0));
  const OperatorId mw = plan.add_operator(
      simple_op("topic-map-west", OperatorKind::kMap, 1.0, 64.0));
  const OperatorId u = plan.add_operator(
      simple_op("topic-union", OperatorKind::kUnion, 1.0, 64.0));
  // 30-second window aggregation per (country, topic); large state (~100 MB
  // at the baseline, Table 3: topic counters dominate).
  LogicalOperator window;
  window.name = "topic-window";
  window.kind = OperatorKind::kWindowAggregate;
  window.selectivity = 0.01;
  window.output_event_bytes = 80.0;
  window.events_per_sec_per_slot = kAggOpEps;
  window.window = WindowSpec{30.0};
  window.state = StateSpec::windowed(/*base_mb=*/10.0, /*mb_per_kevent=*/0.06);
  const OperatorId w = plan.add_operator(std::move(window));
  // Top-10 per country; small output.
  LogicalOperator topk;
  topk.name = "topk-reduce";
  topk.kind = OperatorKind::kTopK;
  topk.selectivity = 0.25;
  topk.output_event_bytes = 80.0;
  topk.events_per_sec_per_slot = kAggOpEps;
  topk.state = StateSpec::windowed(/*base_mb=*/0.5, /*mb_per_kevent=*/0.001);
  const OperatorId k = plan.add_operator(std::move(topk));
  const OperatorId snk = plan.add_operator(sink_op("topk-sink", sink_site));

  plan.connect(east, fe);
  plan.connect(west, fw);
  plan.connect(fe, me);
  plan.connect(fw, mw);
  plan.connect(me, u);
  plan.connect(mw, u);
  plan.connect(u, w);
  plan.connect(w, k);
  plan.connect(k, snk);

  spec.sources = {east, west};
  spec.stateful = true;
  assert(plan.validate().empty());
  return spec;
}

QuerySpec make_events_of_interest(const std::vector<SiteId>& edge_sites,
                                  SiteId sink_site) {
  assert(edge_sites.size() >= 2);
  QuerySpec spec;
  LogicalPlan& plan = spec.plan;

  // Split the edges into two regional streams feeding a union (per Table 3:
  // filter, union, project; no state anywhere).
  const std::size_t half = edge_sites.size() / 2;
  const std::vector<SiteId> a(edge_sites.begin(), edge_sites.begin() + half);
  const std::vector<SiteId> b(edge_sites.begin() + half, edge_sites.end());

  const OperatorId sa = plan.add_operator(source_op("tweets-a", a, 200.0));
  const OperatorId sb = plan.add_operator(source_op("tweets-b", b, 200.0));
  const OperatorId fa = plan.add_operator(
      simple_op("interest-filter-a", OperatorKind::kFilter, 0.2, 160.0, a));
  const OperatorId fb = plan.add_operator(
      simple_op("interest-filter-b", OperatorKind::kFilter, 0.2, 160.0, b));
  const OperatorId u = plan.add_operator(
      simple_op("interest-union", OperatorKind::kUnion, 1.0, 160.0));
  const OperatorId p = plan.add_operator(
      simple_op("interest-project", OperatorKind::kProject, 1.0, 96.0));
  const OperatorId snk =
      plan.add_operator(sink_op("interest-sink", sink_site));

  plan.connect(sa, fa);
  plan.connect(sb, fb);
  plan.connect(fa, u);
  plan.connect(fb, u);
  plan.connect(u, p);
  plan.connect(p, snk);

  spec.sources = {sa, sb};
  spec.stateful = false;
  assert(plan.validate().empty());
  return spec;
}

QuerySpec make_four_source_join(const std::vector<SiteId>& sites,
                                SiteId sink_site, bool stateful_joins) {
  assert(sites.size() >= 4);
  QuerySpec spec;
  LogicalPlan& plan = spec.plan;

  const char* names[] = {"stream-a", "stream-b", "stream-c", "stream-d"};
  std::vector<OperatorId> srcs;
  for (int i = 0; i < 4; ++i) {
    srcs.push_back(plan.add_operator(
        source_op(names[i], {sites[static_cast<std::size_t>(i)]}, 128.0)));
  }

  auto join_op = [&](const char* name) {
    LogicalOperator op;
    op.name = name;
    op.kind = OperatorKind::kJoin;
    op.selectivity = 0.35;  // matched pairs per combined input event
    op.output_event_bytes = 160.0;
    op.events_per_sec_per_slot = kAggOpEps;
    if (stateful_joins) {
      op.window = WindowSpec{30.0};
      op.state = StateSpec::windowed(/*base_mb=*/5.0, /*mb_per_kevent=*/0.05);
    }
    return op;
  };
  const OperatorId j_cd = plan.add_operator(join_op("join-cd"));
  const OperatorId j_ab = plan.add_operator(join_op("join-ab"));
  const OperatorId j_top = plan.add_operator(join_op("join-top"));
  const OperatorId snk = plan.add_operator(sink_op("join-sink", sink_site));

  plan.connect(srcs[2], j_cd);
  plan.connect(srcs[3], j_cd);
  plan.connect(srcs[0], j_ab);
  plan.connect(srcs[1], j_ab);
  plan.connect(j_ab, j_top);
  plan.connect(j_cd, j_top);
  plan.connect(j_top, snk);

  spec.sources = srcs;
  spec.stateful = stateful_joins;
  assert(plan.validate().empty());
  return spec;
}

}  // namespace wasp::workload
