// Workload-trace I/O: drive the sources from measured rate traces.
//
// Complements net/trace_io: where that replays link bandwidth, this replays
// per-(source, site) event rates -- e.g. a real geo-tagged ingest trace
// aggregated into (time, site) buckets. CSV long format:
//
//     time_sec,source_name,site,events_per_sec
//
// (header optional, '#' comments allowed). Source names match the query's
// source operator names (e.g. "tweets-east"); rates hold until the next
// sample for the same (source, site). Pairs absent from the trace stay at
// rate 0.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "workload/patterns.h"

namespace wasp::workload {

class TraceWorkload final : public WorkloadPattern {
 public:
  TraceWorkload() = default;

  // Appends a sample (kept time-sorted per key).
  void add_sample(const std::string& source_name, SiteId site, double t,
                  double events_per_sec);

  // Binds a query's source operator id to its trace name. Rates for unbound
  // operators are 0. (The pattern is keyed by name in the file so one trace
  // serves any query with matching source names.)
  void bind_source(OperatorId source, const std::string& name);

  [[nodiscard]] double rate(OperatorId source, SiteId site,
                            double t) const override;

  [[nodiscard]] std::size_t num_samples() const;
  [[nodiscard]] std::vector<std::string> source_names() const;

 private:
  // (name, site) -> time-sorted (t, rate) samples.
  std::map<std::pair<std::string, std::int64_t>,
           std::vector<std::pair<double, double>>>
      samples_;
  std::unordered_map<OperatorId, std::string> bindings_;
};

// Parses a CSV workload trace; `error` is empty on success.
[[nodiscard]] TraceWorkload load_workload_trace(std::istream& in,
                                                std::string* error);

// Writes `pattern` sampled every `period_sec` over [0, horizon_sec) for the
// given (source id, name, sites) bindings.
struct SourceBinding {
  OperatorId source;
  std::string name;
  std::vector<SiteId> sites;
};
void save_workload_trace(std::ostream& out, const WorkloadPattern& pattern,
                         const std::vector<SourceBinding>& bindings,
                         double horizon_sec, double period_sec);

}  // namespace wasp::workload
