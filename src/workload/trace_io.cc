#include "workload/trace_io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>

namespace wasp::workload {

void TraceWorkload::add_sample(const std::string& source_name, SiteId site,
                               double t, double events_per_sec) {
  auto& series = samples_[{source_name, site.value()}];
  series.emplace_back(t, events_per_sec);
  if (series.size() > 1 &&
      series[series.size() - 2].first > series.back().first) {
    std::sort(series.begin(), series.end());
  }
}

void TraceWorkload::bind_source(OperatorId source, const std::string& name) {
  bindings_[source] = name;
}

double TraceWorkload::rate(OperatorId source, SiteId site, double t) const {
  const auto binding = bindings_.find(source);
  if (binding == bindings_.end()) return 0.0;
  const auto it = samples_.find({binding->second, site.value()});
  if (it == samples_.end() || it->second.empty()) return 0.0;
  const auto& series = it->second;
  auto pos = std::upper_bound(
      series.begin(), series.end(), t,
      [](double x, const std::pair<double, double>& s) { return x < s.first; });
  if (pos == series.begin()) return series.front().second;
  return std::prev(pos)->second;
}

std::size_t TraceWorkload::num_samples() const {
  std::size_t n = 0;
  for (const auto& [key, series] : samples_) n += series.size();
  return n;
}

std::vector<std::string> TraceWorkload::source_names() const {
  std::set<std::string> names;
  for (const auto& [key, series] : samples_) names.insert(key.first);
  return {names.begin(), names.end()};
}

TraceWorkload load_workload_trace(std::istream& in, std::string* error) {
  TraceWorkload trace;
  if (error != nullptr) error->clear();
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    std::istringstream fields(line);
    std::string time_cell, name, site_cell, rate_cell;
    if (!std::getline(fields, time_cell, ',') ||
        !std::getline(fields, name, ',') ||
        !std::getline(fields, site_cell, ',') ||
        !std::getline(fields, rate_cell, ',')) {
      if (line_no == 1) continue;  // header
      if (error != nullptr) {
        *error = "malformed workload trace line " + std::to_string(line_no);
      }
      return TraceWorkload{};
    }
    double t = 0.0, rate = 0.0;
    std::int64_t site = 0;
    try {
      t = std::stod(time_cell);
      site = std::stoll(site_cell);
      rate = std::stod(rate_cell);
    } catch (...) {
      if (line_no == 1) continue;  // header
      if (error != nullptr) {
        *error = "non-numeric field on workload trace line " +
                 std::to_string(line_no);
      }
      return TraceWorkload{};
    }
    if (rate < 0.0 || site < 0) {
      if (error != nullptr) {
        *error = "negative value on workload trace line " +
                 std::to_string(line_no);
      }
      return TraceWorkload{};
    }
    trace.add_sample(name, SiteId(site), t, rate);
  }
  return trace;
}

void save_workload_trace(std::ostream& out, const WorkloadPattern& pattern,
                         const std::vector<SourceBinding>& bindings,
                         double horizon_sec, double period_sec) {
  out << "time_sec,source_name,site,events_per_sec\n";
  for (double t = 0.0; t < horizon_sec; t += period_sec) {
    for (const auto& binding : bindings) {
      for (SiteId site : binding.sites) {
        out << t << ',' << binding.name << ',' << site.value() << ','
            << pattern.rate(binding.source, site, t) << '\n';
      }
    }
  }
}

}  // namespace wasp::workload
