// Top-K Popular Topics example: spatially skewed, diurnal Twitter-like
// workload over a full (compressed) day.
//
// The tweet workload is split across the edge sites with a Zipf distribution
// (busy metros vs quiet regions) and modulated by a day/night pattern with
// per-site phase shifts (time zones), per the Twitter measurements the paper
// cites [37]: day hours carry ~2x the night workload. WASP follows the
// shifting load, scaling the aggregation out toward the peak and back down
// at night.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/twitter_topk
#include <iostream>
#include <memory>

#include "common/log.h"
#include "common/rng.h"
#include "common/table.h"
#include "net/bandwidth_model.h"
#include "net/network.h"
#include "net/topology.h"
#include "runtime/wasp_system.h"
#include "workload/patterns.h"
#include "workload/queries.h"

int main() {
  using namespace wasp;
  set_log_level(LogLevel::kInfo);

  Rng rng(23);
  net::Topology topo = net::Topology::make_paper_testbed(rng);
  net::Network network(topo, std::make_shared<net::ConstantBandwidth>());

  std::vector<SiteId> east, west;
  SiteId sink;
  for (const auto& site : topo.sites()) {
    if (site.type == net::SiteType::kEdge) {
      (east.size() <= west.size() ? east : west).push_back(site.id);
    } else if (!sink.valid()) {
      sink = site.id;
    }
  }

  workload::QuerySpec query = workload::make_topk_topics(east, west, sink);

  // A "day" compressed into 30 simulated minutes so the example runs in
  // moments; base (trough) total of 60k ev/s split with Zipf skew.
  workload::DiurnalWorkload::Config diurnal;
  diurnal.day_length_sec = 1800.0;
  diurnal.peak_to_trough = 2.0;
  diurnal.per_site_phase = 1.0 / 8.0;
  workload::DiurnalWorkload pattern(diurnal);

  Rng split_rng(29);
  for (OperatorId src : query.sources) {
    const auto& sites = query.plan.op(src).pinned_sites;
    const auto rates =
        workload::zipf_site_split(30'000.0, sites.size(), 0.9, split_rng);
    for (std::size_t i = 0; i < sites.size(); ++i) {
      pattern.set_base_rate(src, sites[i], rates[i]);
    }
  }

  runtime::SystemConfig config;
  config.mode = runtime::AdaptationMode::kWasp;
  runtime::WaspSystem system(network, std::move(query), pattern, config);
  system.run_until(3600.0);  // two compressed days

  const auto& rec = system.recorder();
  TextTable table({"day window", "avg delay (s)", "avg ratio",
                   "parallelism x"});
  for (double t0 = 0.0; t0 < 3600.0; t0 += 450.0) {
    table.add_row(
        {TextTable::fmt(t0 / 1800.0, 2) + "d-" +
             TextTable::fmt((t0 + 450.0) / 1800.0, 2) + "d",
         TextTable::fmt(rec.delay().mean_over(t0, t0 + 450.0), 3),
         TextTable::fmt(rec.ratio().mean_over(t0, t0 + 450.0), 3),
         TextTable::fmt(rec.parallelism().mean_over(t0, t0 + 450.0), 2)});
  }
  table.print(std::cout);
  std::cout << "\nProcessed " << 100.0 * rec.processed_fraction()
            << "% of events across the diurnal cycle; " << rec.events().size()
            << " adaptations taken.\n";
  return 0;
}
