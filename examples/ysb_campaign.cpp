// YSB Advertising Campaign example: accuracy vs latency under overload.
//
// Runs the Yahoo! Streaming Benchmark query (filter -> campaign map -> 10 s
// windowed count per campaign) on the 16-site testbed, doubles the workload
// mid-run, and contrasts the two ways out of the overload:
//   - Degrade: shed events older than the 10 s SLO (bounded delay, lossy),
//   - WASP:    re-optimize execution and resources (lossless).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/ysb_campaign
#include <iostream>
#include <memory>

#include "common/rng.h"
#include "common/table.h"
#include "net/bandwidth_model.h"
#include "net/network.h"
#include "net/topology.h"
#include "runtime/wasp_system.h"
#include "workload/patterns.h"
#include "workload/queries.h"

namespace {

struct Outcome {
  double peak_delay = 0.0;
  double p95_delay = 0.0;
  double processed_pct = 0.0;
  std::size_t adaptations = 0;
};

Outcome run(wasp::runtime::AdaptationMode mode) {
  using namespace wasp;

  Rng rng(11);
  net::Topology topo = net::Topology::make_paper_testbed(rng);
  net::Network network(topo, std::make_shared<net::ConstantBandwidth>());

  std::vector<SiteId> edges;
  SiteId sink;
  for (const auto& site : topo.sites()) {
    if (site.type == net::SiteType::kEdge) {
      edges.push_back(site.id);
    } else if (!sink.valid()) {
      sink = site.id;
    }
  }

  workload::QuerySpec query = workload::make_ysb_campaign(edges, sink);
  workload::SteppedWorkload pattern;
  for (OperatorId src : query.sources) {
    for (SiteId s : query.plan.op(src).pinned_sites) {
      pattern.set_base_rate(src, s, 10'000.0);
    }
  }
  pattern.add_step(200.0, 2.5);  // sustained overload
  pattern.add_step(700.0, 1.0);

  runtime::SystemConfig config;
  config.mode = mode;
  config.slo_sec = 10.0;
  runtime::WaspSystem system(network, std::move(query), pattern, config);
  system.run_until(900.0);

  const auto& rec = system.recorder();
  Outcome out;
  for (const auto& [t, v] : rec.delay().points()) {
    out.peak_delay = std::max(out.peak_delay, v);
  }
  out.p95_delay = rec.delay_histogram().percentile(95);
  out.processed_pct = 100.0 * rec.processed_fraction();
  out.adaptations = rec.events().size();
  return out;
}

}  // namespace

int main() {
  using namespace wasp;

  std::cout << "YSB Advertising Campaign: 10k ev/s per edge site, x2.5 surge "
               "during t=[200, 700)\n\n";
  TextTable table({"mode", "peak delay (s)", "p95 delay (s)",
                   "processed (%)", "adaptations"});
  for (auto mode :
       {runtime::AdaptationMode::kNoAdapt, runtime::AdaptationMode::kDegrade,
        runtime::AdaptationMode::kWasp}) {
    const Outcome o = run(mode);
    table.add_row({to_string(mode), TextTable::fmt(o.peak_delay, 1),
                   TextTable::fmt(o.p95_delay, 2),
                   TextTable::fmt(o.processed_pct, 1),
                   std::to_string(o.adaptations)});
  }
  table.print(std::cout);
  std::cout << "\nDegrade bounds the delay near the SLO by discarding late "
               "events; WASP keeps every event by re-optimizing the "
               "deployment instead.\n";
  return 0;
}
