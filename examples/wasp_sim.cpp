// wasp_sim: command-line scenario runner.
//
// Drives any of the benchmark queries under configurable dynamics and
// adaptation modes, printing either a human-readable summary or a CSV
// time series -- the general-purpose front door to the simulator.
//
// Examples:
//   wasp_sim                                      # Top-K, full WASP, defaults
//   wasp_sim --query=ysb --mode=degrade --slo=5
//   wasp_sim --workload-step=300:2 --bandwidth-step=900:0.5 --duration=1500
//   wasp_sim --live-bandwidth --live-workload --fail=540:60 --csv
//   wasp_sim --trace=bandwidth.csv                # replay a measured trace
//
// Run `wasp_sim --help` for the full flag list.
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "common/table.h"
#include "faults/fault_injector.h"
#include "faults/fault_schedule.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "net/bandwidth_model.h"
#include "net/network.h"
#include "net/topology.h"
#include "net/topology_spec.h"
#include "net/trace_io.h"
#include "workload/trace_io.h"
#include "runtime/wasp_system.h"
#include "workload/patterns.h"
#include "workload/queries.h"

namespace {

using namespace wasp;

// SIGINT/SIGTERM land here; the run loops stop at the next tick boundary and
// fall through the normal finish path (flush the FileSink, final profile
// event, metrics dump, report), so an interrupted run still produces a
// `wasp_trace validate`-clean trace.
volatile std::sig_atomic_t g_interrupted = 0;

void handle_stop_signal(int /*signum*/) { g_interrupted = 1; }

struct Options {
  std::string query = "topk";
  std::string mode = "wasp";
  double duration = 900.0;
  double rate = 10'000.0;
  std::uint64_t seed = 7;
  std::string topology;  // --topology spec; empty = paper testbed / --sites
  int sites = 0;    // 0 = the 16-site paper testbed
  int threads = 1;  // intra-run worker threads
  int standby_replicas = 0;  // hot standbys per protected stage
  double slo = 10.0;
  std::string slo_spec;  // --slo=key=value,... (watchdog form)
  double alpha = 0.8;
  bool live_bandwidth = false;
  bool live_workload = false;
  bool csv = false;
  bool verbose = false;
  bool profile = false;
  int profile_every = 60;
  std::string trace_file;
  std::string workload_trace_file;
  std::string trace_out;
  std::string metrics_out;
  std::string bench_out;
  std::string fault_schedule_file;
  std::vector<std::pair<double, double>> workload_steps;
  std::vector<std::pair<double, double>> bandwidth_steps;
  std::optional<std::pair<double, double>> failure;  // (t, duration)
};

void print_usage() {
  std::cout <<
      R"(wasp_sim -- wide-area adaptive stream processing scenario runner

  --query=topk|ysb|interest|join   query to deploy (default topk)
  --mode=wasp|no-adapt|degrade|re-assign|scale|re-plan|hybrid
                                   adaptation mode (default wasp)
  --duration=SECONDS               simulated runtime (default 900)
  --rate=EPS                       base events/s per source site (default 10000)
  --seed=N                         master seed (default 7)
  --sites=N                        run on a uniform N-site clique (4 slots,
                                   500 Mbps, 20 ms) instead of the 16-site
                                   paper testbed; site 0 hosts the sink, the
                                   rest feed sources (scale experiments)
  --topology=SPEC                  generated topology (DESIGN.md §14):
                                     paper            16-site paper testbed
                                     uniform:sites=N,slots=S,bw=MBPS,lat=MS
                                     edge:sites=200,regions=8,core=4,
                                          regional=1,core-slots=16,
                                          regional-slots=8,edge-slots=2-4,
                                          domains-per-region=1
                                   every key optional; ';' also separates
                                   pairs. The edge hierarchy is seeded by
                                   --seed (same seed, same topology) and
                                   auto-enables region-decomposed failure
                                   recovery. Mutually exclusive with --sites
  --threads=N                      intra-run worker threads sharing one run's
                                   tick (default 1). Results and traces are
                                   bit-identical for any N; combine with a
                                   sweep's --jobs so jobs x threads stays
                                   within the machine's cores
  --standby-replicas=N             hot-standby replicas per protected stateful
                                   stage (default 0 = replan-only recovery).
                                   Replicas are placed in distinct failure
                                   domains, kept warm by periodic delta syncs
                                   over the shared WAN, and promoted -- no
                                   solver on the hot path -- when a primary
                                   site is confirmed failed (DESIGN.md §12)
  --slo=SECONDS                    degrade/hybrid SLO (default 10)
  --slo=SPEC                       declarative SLO watchdog instead: comma-
                                   separated bounds evaluated per tick over a
                                   sliding window, e.g.
                                   --slo=delay_p99=5s,ratio_min=0.9,window=30s
                                   (keys: delay_p99 delay_p95 delay_max
                                   ratio_min window). Violation episodes
                                   appear as slo_violation trace spans and
                                   slo.* metrics.
  --alpha=X                        bandwidth utilization threshold (default 0.8)
  --workload-step=T:FACTOR         scale the workload by FACTOR at time T
                                   (repeatable)
  --bandwidth-step=T:FACTOR        scale every link by FACTOR at time T
                                   (repeatable)
  --live-bandwidth                 random-walk bandwidth (factors 0.51-2.36)
  --live-workload                  random-walk workload (factors 0.8-2.4)
  --trace=FILE                     replay a bandwidth-trace CSV
                                   (time_sec,from_site,to_site,factor)
  --workload-trace=FILE            replay a workload-trace CSV
                                   (time_sec,source_name,site,events_per_sec)
  --fail=T:DURATION                revoke all compute at T for DURATION seconds
  --fault-schedule=FILE            replay a scripted chaos schedule (crash /
                                   restore / partition / heal / flap /
                                   straggler / stall lines; see DESIGN.md §8)
  --trace-out=FILE                 write the structured observability trace
                                   (schema-versioned JSONL) to FILE
  --profile                        always-on phase profiler (DESIGN.md §13):
                                   per-tick phase timings and thread-pool
                                   stats, printed as a table at exit and --
                                   with --trace-out -- emitted as periodic
                                   `profile` trace events for `wasp_trace
                                   profile`. Pure observer: results and
                                   traces stay bit-identical (timing fields
                                   are wall_*-prefixed and diff-exempt)
  --profile-every=N                emit a profile event every N ticks
                                   (default 60; implies --profile)
  --metrics=FILE                   write the final metrics-registry snapshot
                                   (flat JSON object) to FILE
  --bench-out=FILE                 write a wall-clock benchmark JSON (wall_ms,
                                   ticks, ticks_per_sec) to FILE
  --csv                            print t,delay_s,ratio,parallelism_x as CSV
  --verbose                        narrate adaptation decisions
  --help                           this text
)";
}

bool parse_pair(const std::string& value, std::pair<double, double>* out) {
  const auto colon = value.find(':');
  if (colon == std::string::npos) return false;
  try {
    out->first = std::stod(value.substr(0, colon));
    out->second = std::stod(value.substr(colon + 1));
  } catch (...) {
    return false;
  }
  return true;
}

bool parse_args(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> std::optional<std::string> {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      std::exit(0);
    } else if (auto v = value_of("--query")) {
      opts->query = *v;
    } else if (auto v = value_of("--mode")) {
      opts->mode = *v;
    } else if (auto v = value_of("--duration")) {
      opts->duration = std::stod(*v);
    } else if (auto v = value_of("--rate")) {
      opts->rate = std::stod(*v);
    } else if (auto v = value_of("--seed")) {
      opts->seed = std::stoull(*v);
    } else if (auto v = value_of("--topology")) {
      opts->topology = *v;
    } else if (auto v = value_of("--sites")) {
      opts->sites = std::stoi(*v);
      if (opts->sites < 2) {
        std::cerr << "--sites needs at least 2 (sink + a source site)\n";
        return false;
      }
    } else if (auto v = value_of("--threads")) {
      opts->threads = std::stoi(*v);
      if (opts->threads < 1) {
        std::cerr << "--threads must be >= 1\n";
        return false;
      }
    } else if (auto v = value_of("--standby-replicas")) {
      opts->standby_replicas = std::stoi(*v);
      if (opts->standby_replicas < 0) {
        std::cerr << "--standby-replicas must be >= 0\n";
        return false;
      }
    } else if (auto v = value_of("--slo")) {
      // Two forms: a plain number is the legacy degrade/hybrid SLO seconds;
      // anything with '=' is a declarative watchdog spec.
      if (v->find('=') != std::string::npos) {
        opts->slo_spec = *v;
      } else {
        opts->slo = std::stod(*v);
      }
    } else if (auto v = value_of("--alpha")) {
      opts->alpha = std::stod(*v);
    } else if (auto v = value_of("--trace")) {
      opts->trace_file = *v;
    } else if (auto v = value_of("--workload-trace")) {
      opts->workload_trace_file = *v;
    } else if (auto v = value_of("--trace-out")) {
      opts->trace_out = *v;
    } else if (auto v = value_of("--metrics")) {
      opts->metrics_out = *v;
    } else if (auto v = value_of("--bench-out")) {
      opts->bench_out = *v;
    } else if (auto v = value_of("--fault-schedule")) {
      opts->fault_schedule_file = *v;
    } else if (auto v = value_of("--workload-step")) {
      std::pair<double, double> step;
      if (!parse_pair(*v, &step)) return false;
      opts->workload_steps.push_back(step);
    } else if (auto v = value_of("--bandwidth-step")) {
      std::pair<double, double> step;
      if (!parse_pair(*v, &step)) return false;
      opts->bandwidth_steps.push_back(step);
    } else if (auto v = value_of("--fail")) {
      std::pair<double, double> f;
      if (!parse_pair(*v, &f)) return false;
      opts->failure = f;
    } else if (auto v = value_of("--profile-every")) {
      opts->profile_every = std::stoi(*v);
      if (opts->profile_every < 1) {
        std::cerr << "--profile-every must be >= 1\n";
        return false;
      }
      opts->profile = true;
    } else if (arg == "--profile") {
      opts->profile = true;
    } else if (arg == "--live-bandwidth") {
      opts->live_bandwidth = true;
    } else if (arg == "--live-workload") {
      opts->live_workload = true;
    } else if (arg == "--csv") {
      opts->csv = true;
    } else if (arg == "--verbose") {
      opts->verbose = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

std::optional<runtime::AdaptationMode> mode_of(const std::string& name) {
  if (name == "wasp") return runtime::AdaptationMode::kWasp;
  if (name == "no-adapt") return runtime::AdaptationMode::kNoAdapt;
  if (name == "degrade") return runtime::AdaptationMode::kDegrade;
  if (name == "re-assign") return runtime::AdaptationMode::kReassignOnly;
  if (name == "scale") return runtime::AdaptationMode::kScaleOnly;
  if (name == "re-plan") return runtime::AdaptationMode::kReplanOnly;
  if (name == "hybrid") return runtime::AdaptationMode::kHybrid;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, &opts)) {
    print_usage();
    return 2;
  }
  const auto mode = mode_of(opts.mode);
  if (!mode.has_value()) {
    std::cerr << "unknown mode '" << opts.mode << "'\n";
    return 2;
  }
  if (opts.verbose) set_log_level(LogLevel::kInfo);

  // --- substrate -----------------------------------------------------------
  if (!opts.topology.empty() && opts.sites > 0) {
    std::cerr << "--topology and --sites are mutually exclusive\n";
    return 2;
  }
  std::optional<net::TopologySpec> topo_spec;
  if (!opts.topology.empty()) {
    std::string error;
    topo_spec = net::TopologySpec::parse(opts.topology, &error);
    if (!topo_spec.has_value()) {
      std::cerr << "bad --topology spec: " << error << "\n";
      return 2;
    }
  }
  Rng rng(opts.seed);
  net::Topology topo =
      topo_spec.has_value()
          ? topo_spec->build(rng)
          : (opts.sites > 0
                 ? net::Topology::make_uniform(opts.sites, 4, 500.0, 20.0)
                 : net::Topology::make_paper_testbed(rng));

  std::shared_ptr<const net::BandwidthModel> bw_model =
      std::make_shared<net::ConstantBandwidth>();
  if (!opts.trace_file.empty()) {
    std::ifstream in(opts.trace_file);
    if (!in) {
      std::cerr << "cannot open trace file '" << opts.trace_file << "'\n";
      return 1;
    }
    std::string error;
    auto trace = std::make_shared<net::TraceBandwidth>(
        net::load_bandwidth_trace(in, &error));
    if (!error.empty()) {
      std::cerr << error << "\n";
      return 1;
    }
    bw_model = std::move(trace);
  } else if (opts.live_bandwidth) {
    Rng bw_rng(opts.seed + 1);
    net::RandomWalkBandwidth::Config cfg;
    cfg.horizon_sec = opts.duration;
    cfg.min_factor = 0.51;
    cfg.max_factor = 2.36;
    bw_model = std::make_shared<net::RandomWalkBandwidth>(topo.num_sites(),
                                                          cfg, bw_rng);
  }
  if (!opts.bandwidth_steps.empty()) {
    bw_model = std::make_shared<net::ComposedBandwidth>(
        bw_model,
        std::make_shared<net::SteppedBandwidth>(opts.bandwidth_steps));
  }
  net::Network network(topo, bw_model);

  std::vector<SiteId> east, west, edges, dcs;
  SiteId sink;
  const bool uniform_roles =
      opts.sites > 0 || (topo_spec.has_value() &&
                         topo_spec->kind == net::TopologySpec::Kind::kUniform);
  if (uniform_roles) {
    // Uniform clique (scale experiments): site 0 is the sink hub, every
    // other site feeds sources, split east/west by parity.
    sink = topo.sites().front().id;
    for (const auto& site : topo.sites()) {
      dcs.push_back(site.id);
      if (site.id == sink) continue;
      edges.push_back(site.id);
      (site.id.value() % 2 != 0 ? east : west).push_back(site.id);
    }
  } else {
    // Role selection by site type generalizes from the paper testbed to the
    // edge hierarchy: every edge site feeds sources (split east/west), the
    // first DC (core-0 in the hierarchy) hosts the sink.
    for (const auto& site : topo.sites()) {
      if (site.type == net::SiteType::kEdge) {
        (east.size() <= west.size() ? east : west).push_back(site.id);
        edges.push_back(site.id);
      } else {
        dcs.push_back(site.id);
        if (!sink.valid()) sink = site.id;
      }
    }
  }

  // --- query ----------------------------------------------------------------
  workload::QuerySpec query = [&] {
    if (opts.query == "ysb") return workload::make_ysb_campaign(edges, sink);
    if (opts.query == "interest") {
      return workload::make_events_of_interest(edges, sink);
    }
    if (opts.query == "join") {
      return workload::make_four_source_join(dcs, sink, true);
    }
    return workload::make_topk_topics(east, west, sink);
  }();

  // --- workload ---------------------------------------------------------------
  std::unique_ptr<workload::WorkloadPattern> pattern;
  if (!opts.workload_trace_file.empty()) {
    std::ifstream in(opts.workload_trace_file);
    if (!in) {
      std::cerr << "cannot open workload trace '" << opts.workload_trace_file
                << "'\n";
      return 1;
    }
    std::string error;
    auto trace = std::make_unique<workload::TraceWorkload>(
        workload::load_workload_trace(in, &error));
    if (!error.empty()) {
      std::cerr << error << "\n";
      return 1;
    }
    for (OperatorId src : query.sources) {
      trace->bind_source(src, query.plan.op(src).name);
    }
    pattern = std::move(trace);
  } else if (opts.live_workload) {
    Rng wl_rng(opts.seed + 2);
    workload::RandomWalkWorkload::Config cfg;
    cfg.horizon_sec = opts.duration;
    auto live = std::make_unique<workload::RandomWalkWorkload>(cfg, wl_rng);
    for (OperatorId src : query.sources) {
      for (SiteId s : query.plan.op(src).pinned_sites) {
        live->set_base_rate(src, s, opts.rate);
      }
    }
    pattern = std::move(live);
  } else {
    auto stepped = std::make_unique<workload::SteppedWorkload>();
    for (OperatorId src : query.sources) {
      for (SiteId s : query.plan.op(src).pinned_sites) {
        stepped->set_base_rate(src, s, opts.rate);
      }
    }
    for (const auto& [t, factor] : opts.workload_steps) {
      stepped->add_step(t, factor);
    }
    pattern = std::move(stepped);
  }

  // --- run ----------------------------------------------------------------------
  runtime::SystemConfig config;
  config.mode = *mode;
  config.slo_sec = opts.slo;
  config.scheduler.alpha = opts.alpha;
  config.seed = opts.seed;
  config.threads = opts.threads;
  config.standby_replicas = opts.standby_replicas;
  config.profile = opts.profile;
  config.profile_every = opts.profile_every;
  if (topo_spec.has_value() &&
      topo_spec->kind == net::TopologySpec::Kind::kEdgeHierarchy) {
    // Planet-scale runs: localized site failures re-solve only the affected
    // failure domain's region (DESIGN.md §14). The domains come from the
    // generator; WaspSystem forwards them to the policy automatically.
    config.policy.region_decomposition = true;
  }
  if (!opts.slo_spec.empty()) {
    std::string error;
    const auto spec = runtime::SloSpec::parse(opts.slo_spec, &error);
    if (!spec.has_value()) {
      std::cerr << "bad --slo spec: " << error << "\n";
      return 2;
    }
    config.slo = *spec;
  }
  std::shared_ptr<obs::FileSink> trace_sink;
  if (!opts.trace_out.empty()) {
    trace_sink = std::make_shared<obs::FileSink>(opts.trace_out);
    if (!trace_sink->ok()) {
      std::cerr << "cannot open trace output '" << opts.trace_out << "'\n";
      return 1;
    }
    config.trace_sink = trace_sink;
  }
  runtime::WaspSystem system(network, std::move(query), *pattern, config);

  // Scripted chaos: the injector applies link faults on the Network directly
  // and drives site/straggler/stall faults through the system's injection
  // API. The control plane only ever learns of them via heartbeats.
  std::unique_ptr<faults::FaultInjector> injector;
  if (!opts.fault_schedule_file.empty()) {
    faults::FaultSchedule schedule;
    std::string error;
    if (!faults::FaultSchedule::parse_file(opts.fault_schedule_file, &schedule,
                                           &error)) {
      std::cerr << error << "\n";
      return 1;
    }
    injector = std::make_unique<faults::FaultInjector>(
        network, std::move(schedule), Rng(opts.seed ^ 0xFA17));
    faults::FaultInjector::Hooks hooks;
    hooks.crash_site = [&system](SiteId s) { system.fail_sites({s}); };
    hooks.restore_site = [&system](SiteId s) { system.restore_sites({s}); };
    hooks.set_straggler = [&system](SiteId s, double f) {
      system.mutable_engine().set_straggler(s, f);
    };
    hooks.stall_control = [&system](double sec) {
      system.stall_control_for(sec);
    };
    injector->set_hooks(std::move(hooks));
    injector->set_trace(&system.trace());
  }

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  // Tick-at-a-time run loop (instead of run_until) so SIGINT/SIGTERM can
  // stop at a tick boundary and still reach the normal finish path below.
  auto run_to = [&](double until) {
    while (g_interrupted == 0 &&
           system.now() + config.tick_sec <= until + 1e-9) {
      system.step();
    }
  };

  const auto wall_start = std::chrono::steady_clock::now();
  if (opts.failure.has_value()) {
    run_to(opts.failure->first);
    system.fail_all_sites();
    run_to(opts.failure->first + opts.failure->second);
    system.restore_all_sites();
  }
  if (injector != nullptr) {
    while (g_interrupted == 0 &&
           system.now() + config.tick_sec <= opts.duration + 1e-9) {
      injector->tick(system.now());
      system.step();
    }
  } else {
    run_to(opts.duration);
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  if (trace_sink != nullptr) trace_sink->flush();

  if (!opts.bench_out.empty()) {
    std::ofstream bench(opts.bench_out);
    if (!bench) {
      std::cerr << "cannot open bench output '" << opts.bench_out << "'\n";
      return 1;
    }
    // 1 Hz simulation loop; now() counts executed ticks even when a signal
    // stopped the run early.
    const double ticks = system.now();
    bench << "{\n  \"schema\": \"wasp-bench-e2e-v1\",\n"
          << "  \"query\": \"" << opts.query << "\",\n"
          << "  \"mode\": \"" << opts.mode << "\",\n"
          << "  \"duration_sim_sec\": " << opts.duration << ",\n"
          << "  \"rate_eps_per_site\": " << opts.rate << ",\n"
          << "  \"seed\": " << opts.seed << ",\n"
          << "  \"topology\": \""
          << (topo_spec.has_value() ? topo_spec->to_string()
                                    : (opts.sites > 0 ? "uniform" : "paper"))
          << "\",\n"
          << "  \"sites\": " << topo.num_sites() << ",\n"
          << "  \"threads\": " << opts.threads << ",\n"
          << "  \"wall_ms\": " << wall_ms << ",\n"
          << "  \"ticks\": " << ticks << ",\n"
          << "  \"ticks_per_sec\": " << (wall_ms > 0.0 ? ticks * 1e3 / wall_ms
                                                       : 0.0)
          << "\n}\n";
  }

  // Profiler gauges enter the registry only here, after the run: the
  // registry contents stay bit-identical with profiling on or off for the
  // whole simulation (the pure-observer contract, DESIGN.md §13).
  if (opts.profile) system.export_profiler_metrics();

  if (!opts.metrics_out.empty()) {
    std::ofstream metrics(opts.metrics_out);
    if (!metrics) {
      std::cerr << "cannot open metrics output '" << opts.metrics_out << "'\n";
      return 1;
    }
    metrics << "{\n";
    const auto snap = system.metrics().snapshot();
    for (std::size_t i = 0; i < snap.size(); ++i) {
      metrics << "  \"" << snap[i].first << "\": " << snap[i].second
              << (i + 1 < snap.size() ? ",\n" : "\n");
    }
    metrics << "}\n";
  }

  // --- report ---------------------------------------------------------------------
  const auto& rec = system.recorder();
  if (opts.csv) {
    std::cout << "t,delay_s,ratio,parallelism_x\n";
    for (std::size_t i = 0; i < rec.delay().points().size(); ++i) {
      const auto& [t, delay] = rec.delay().points()[i];
      std::cout << t << ',' << delay << ',' << rec.ratio().points()[i].second
                << ',' << rec.parallelism().points()[i].second << '\n';
    }
    return 0;
  }

  std::cout << "query=" << opts.query << " mode=" << opts.mode
            << " duration=" << opts.duration << "s rate=" << opts.rate
            << " ev/s/site seed=" << opts.seed << "\n\n";
  TextTable table({"metric", "value"});
  table.add_row({"avg delay (s)",
                 TextTable::fmt(rec.delay().mean_over(0.0, opts.duration), 3)});
  table.add_row(
      {"p95 delay (s)", TextTable::fmt(rec.delay_histogram().percentile(95), 3)});
  table.add_row(
      {"p99 delay (s)", TextTable::fmt(rec.delay_histogram().percentile(99), 3)});
  table.add_row({"processed (%)",
                 TextTable::fmt(100.0 * rec.processed_fraction(), 2)});
  table.add_row({"dropped events", TextTable::fmt(rec.total_dropped(), 0)});
  table.add_row({"adaptations", std::to_string(rec.events().size())});
  table.print(std::cout);
  if (const auto* watchdog = system.slo_watchdog()) {
    // One parseable line (mirrors the chaos: line) for scripts and CI.
    std::cout << "\nslo: spec=" << watchdog->spec().to_string()
              << " violations=" << watchdog->violations()
              << " violation_seconds=" << watchdog->violation_seconds()
              << " in_violation=" << (watchdog->in_violation() ? 1 : 0)
              << "\n";
  }
  if (g_interrupted != 0) {
    std::cout << "\n[interrupted at t=" << system.now()
              << "s; trace, metrics and report cover the completed ticks]\n";
  }
  if (opts.profile) {
    const auto& accums = system.profiler().accums();
    const auto& step =
        accums[static_cast<std::size_t>(obs::Phase::kStep)];
    std::cout << "\nprofile (" << step.calls << " ticks, "
              << TextTable::fmt(static_cast<double>(step.total_ns) / 1e6, 1)
              << " ms measured):\n";
    TextTable profile_table({"phase", "calls", "total ms", "self ms", "self %"});
    for (std::size_t p = 0; p < accums.size(); ++p) {
      const auto& a = accums[p];
      if (a.calls == 0) continue;
      const double self_pct =
          step.total_ns > 0
              ? 100.0 * static_cast<double>(a.self_ns) /
                    static_cast<double>(step.total_ns)
              : 0.0;
      profile_table.add_row(
          {obs::phase_name(static_cast<obs::Phase>(p)),
           std::to_string(a.calls),
           TextTable::fmt(static_cast<double>(a.total_ns) / 1e6, 2),
           TextTable::fmt(static_cast<double>(a.self_ns) / 1e6, 2),
           TextTable::fmt(self_pct, 1)});
    }
    profile_table.print(std::cout);
  }
  if (!rec.events().empty()) {
    std::cout << "\nadaptations:\n";
    for (const auto& e : rec.events()) {
      std::cout << "  t=" << e.decided_at << "s " << e.kind << " ("
                << e.reason << "), ";
      if (e.aborted()) {
        std::cout << "ABORTED at t=" << e.aborted_at << " (" << e.abort_reason
                  << "), attempt " << e.attempt << "\n";
      } else {
        std::cout << "transition " << e.transition_sec() << "s, migrated "
                  << e.migrated_mb << " MB\n";
      }
    }
  }
  if (injector != nullptr) {
    std::size_t aborted = 0, abandoned = 0, promotions = 0;
    for (const auto& e : rec.events()) {
      if (e.aborted()) ++aborted;
    }
    for (const auto& e : rec.recovery_events()) {
      if (e.kind == "abandon") ++abandoned;
      if (e.kind == "failover") ++promotions;
    }
    // One parseable line the chaos-smoke CI job asserts on.
    std::cout << "\nchaos: recovery_events=" << rec.recovery_events().size()
              << " orphaned_bulk_flows=" << network.num_bulk_flows()
              << " aborted_transitions=" << aborted
              << " abandoned=" << abandoned
              << " faults_injected=" << injector->applied()
              << " standby_promotions=" << promotions << "\n";
    if (!rec.recovery_events().empty()) {
      std::cout << "recovery log:\n";
      for (const auto& e : rec.recovery_events()) {
        std::cout << "  t=" << e.t << "s " << e.kind;
        if (e.site >= 0) std::cout << " site=" << e.site;
        if (e.op >= 0) std::cout << " op=" << e.op;
        if (e.attempt > 0) std::cout << " attempt=" << e.attempt;
        if (e.backoff_sec > 0.0) std::cout << " backoff=" << e.backoff_sec;
        if (!e.detail.empty()) std::cout << " (" << e.detail << ")";
        std::cout << "\n";
      }
    }
  }
  return 0;
}
