// Live adaptation example: random WAN and workload dynamics plus a failure,
// with WASP's decisions narrated as they happen (the §8.6 scenario as an
// interactive walkthrough).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/live_adaptation
#include <iostream>
#include <memory>

#include "common/log.h"
#include "common/rng.h"
#include "common/table.h"
#include "net/bandwidth_model.h"
#include "net/network.h"
#include "net/topology.h"
#include "runtime/wasp_system.h"
#include "workload/patterns.h"
#include "workload/queries.h"

int main() {
  using namespace wasp;
  set_log_level(LogLevel::kInfo);  // narrate adaptation decisions

  // Bandwidth rides a trace-like random walk (factors 0.51-2.36, re-drawn
  // every 5 minutes), workload another one (0.8-2.4).
  Rng bw_rng(41);
  net::RandomWalkBandwidth::Config bw_cfg;
  bw_cfg.horizon_sec = 1800.0;
  bw_cfg.period_sec = 300.0;
  bw_cfg.min_factor = 0.51;
  bw_cfg.max_factor = 2.36;
  Rng topo_rng(7);
  net::Topology topo = net::Topology::make_paper_testbed(topo_rng);
  net::Network network(
      topo, std::make_shared<net::RandomWalkBandwidth>(topo.num_sites(),
                                                       bw_cfg, bw_rng));

  std::vector<SiteId> east, west;
  SiteId sink;
  for (const auto& site : topo.sites()) {
    if (site.type == net::SiteType::kEdge) {
      (east.size() <= west.size() ? east : west).push_back(site.id);
    } else if (!sink.valid()) {
      sink = site.id;
    }
  }
  workload::QuerySpec query = workload::make_topk_topics(east, west, sink);

  Rng wl_rng(43);
  workload::RandomWalkWorkload::Config wl_cfg;
  wl_cfg.horizon_sec = 1800.0;
  workload::RandomWalkWorkload pattern(wl_cfg, wl_rng);
  for (OperatorId src : query.sources) {
    for (SiteId s : query.plan.op(src).pinned_sites) {
      pattern.set_base_rate(src, s, 10'000.0);
    }
  }

  runtime::SystemConfig config;
  config.mode = runtime::AdaptationMode::kWasp;
  runtime::WaspSystem system(network, std::move(query), pattern, config);

  std::cout << "running to t=540 under live dynamics...\n";
  system.run_until(540.0);
  std::cout << "t=540: FAILURE -- all compute revoked for 60 s\n";
  system.fail_all_sites();
  system.run_until(600.0);
  std::cout << "t=600: sites restored; watch WASP drain the backlog\n";
  system.restore_all_sites();
  system.run_until(1800.0);

  const auto& rec = system.recorder();
  TextTable table({"window", "avg delay (s)", "parallelism x"});
  for (double t0 = 0.0; t0 < 1800.0; t0 += 300.0) {
    table.add_row({TextTable::fmt(t0, 0) + "-" + TextTable::fmt(t0 + 300, 0),
                   TextTable::fmt(rec.delay().mean_over(t0, t0 + 300.0), 2),
                   TextTable::fmt(
                       rec.parallelism().mean_over(t0, t0 + 300.0), 2)});
  }
  table.print(std::cout);

  std::cout << "\nAdaptation log:\n";
  for (const auto& e : rec.events()) {
    std::cout << "  t=" << e.decided_at << "s " << e.kind << " ("
              << e.reason << "); transition " << e.transition_sec()
              << "s, migrated " << e.migrated_mb << " MB\n";
  }
  std::cout << "\nProcessed " << 100.0 * rec.processed_fraction()
            << "% of all generated events.\n";
  return 0;
}
