// Quickstart: deploy the Top-K query on the paper's 16-site testbed, double
// the workload mid-run, and watch WASP adapt.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "common/log.h"
#include "common/rng.h"
#include "common/table.h"
#include "net/bandwidth_model.h"
#include "net/network.h"
#include "net/topology.h"
#include "runtime/wasp_system.h"
#include "workload/patterns.h"
#include "workload/queries.h"

int main() {
  using namespace wasp;
  set_log_level(LogLevel::kInfo);  // show adaptation decisions

  // 1. The wide-area substrate: 8 edge sites + 8 data centers with EC2/
  //    Akamai-like links (paper §8.2), static bandwidth for the quickstart.
  Rng rng(7);
  net::Topology topo = net::Topology::make_paper_testbed(rng);
  net::Network network(topo, std::make_shared<net::ConstantBandwidth>());

  // Edge sites host the sources; one data center hosts the sink.
  std::vector<SiteId> east, west;
  SiteId sink;
  for (const auto& site : topo.sites()) {
    if (site.type == net::SiteType::kEdge) {
      (east.size() <= west.size() ? east : west).push_back(site.id);
    } else if (!sink.valid()) {
      sink = site.id;
    }
  }

  // 2. The query: Top-K popular topics (stateful windowed aggregation).
  workload::QuerySpec query = workload::make_topk_topics(east, west, sink);

  // 3. The workload: 10k events/s per source site, doubling at t=300 s.
  workload::SteppedWorkload pattern;
  for (std::size_t i = 0; i < query.sources.size(); ++i) {
    const auto& op = query.plan.op(query.sources[i]);
    for (SiteId s : op.pinned_sites) {
      pattern.set_base_rate(query.sources[i], s, 10'000.0);
    }
  }
  pattern.add_step(300.0, 2.0);

  // 4. Deploy with the full WASP policy and run 10 simulated minutes.
  runtime::SystemConfig config;
  config.mode = runtime::AdaptationMode::kWasp;
  runtime::WaspSystem system(network, std::move(query), pattern, config);
  system.run_until(600.0);

  // 5. Report.
  const auto& rec = system.recorder();
  TextTable table({"window", "avg delay (s)", "avg ratio", "parallelism x"});
  for (double t0 = 0.0; t0 < 600.0; t0 += 100.0) {
    table.add_row({TextTable::fmt(t0, 0) + "-" + TextTable::fmt(t0 + 100, 0),
                   TextTable::fmt(rec.delay().mean_over(t0, t0 + 100.0), 3),
                   TextTable::fmt(rec.ratio().mean_over(t0, t0 + 100.0), 3),
                   TextTable::fmt(
                       rec.parallelism().mean_over(t0, t0 + 100.0), 2)});
  }
  table.print(std::cout);

  std::cout << "\nAdaptations taken:\n";
  for (const auto& e : rec.events()) {
    std::cout << "  t=" << e.decided_at << "s  " << e.kind << "  (" << e.reason
              << "), transition " << e.transition_sec() << "s, migrated "
              << e.migrated_mb << " MB\n";
  }
  std::cout << "\nProcessed " << 100.0 * rec.processed_fraction()
            << "% of generated events; 95th-pct delay "
            << rec.delay_histogram().percentile(95) << "s\n";
  return 0;
}
