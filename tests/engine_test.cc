// Unit tests for the fluid stream-engine simulator: delay tracking,
// throughput, backpressure propagation, degrade mode, windows and state,
// placement changes, re-planning, suspension, and failures.
#include "engine/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "engine/delay_tracker.h"
#include "net/bandwidth_model.h"
#include "net/network.h"
#include "net/topology.h"
#include "obs/metrics_registry.h"
#include "physical/physical_plan.h"
#include "query/logical_plan.h"

namespace wasp::engine {
namespace {

using physical::PhysicalPlan;
using physical::StagePlacement;
using query::LogicalOperator;
using query::LogicalPlan;
using query::OperatorKind;

// ---------------------------------------------------------------------------
// DelayTracker
// ---------------------------------------------------------------------------

TEST(DelayTrackerTest, NoBacklogMeansZeroDelay) {
  DelayTracker t;
  t.record_generated(1.0, 100.0);
  t.record_consumed(100.0);
  EXPECT_DOUBLE_EQ(t.queueing_delay(1.0), 0.0);
  EXPECT_DOUBLE_EQ(t.backlog(), 0.0);
}

TEST(DelayTrackerTest, BacklogAgeGrowsWithTime) {
  DelayTracker t;
  t.record_generated(1.0, 100.0);  // generated during (0, 1]
  // Nothing consumed: the head of the backlog was generated at ~t=0.
  EXPECT_NEAR(t.queueing_delay(10.0), 10.0, 1.1);
}

TEST(DelayTrackerTest, ConsumptionAdvancesTheHead) {
  DelayTracker t;
  for (int i = 1; i <= 10; ++i) {
    t.record_generated(i, 100.0);
  }
  t.record_consumed(500.0);  // events generated through t=5 are done
  EXPECT_NEAR(t.queueing_delay(10.0), 5.0, 0.1);
}

TEST(DelayTrackerTest, InterpolatesWithinTick) {
  DelayTracker t;
  t.record_generated(1.0, 100.0);
  t.record_generated(2.0, 100.0);
  t.record_consumed(150.0);  // halfway through the second tick
  EXPECT_NEAR(t.generation_time(150.0, 2.0), 1.5, 1e-9);
}

TEST(DelayTrackerTest, ConsumedNeverExceedsGenerated) {
  DelayTracker t;
  t.record_generated(1.0, 100.0);
  t.record_consumed(1000.0);
  EXPECT_DOUBLE_EQ(t.consumed_cum(), 100.0);
  EXPECT_DOUBLE_EQ(t.queueing_delay(5.0), 0.0);
}

TEST(DelayTrackerTest, GeneratedAtInterpolates) {
  DelayTracker t;
  t.record_generated(1.0, 100.0);
  t.record_generated(2.0, 300.0);  // G(2) = 400
  EXPECT_NEAR(t.generated_at(1.5), 250.0, 1e-9);
  EXPECT_DOUBLE_EQ(t.generated_at(5.0), 400.0);
}

TEST(DelayTrackerTest, HistoryPruningKeepsInversionCorrect) {
  DelayTracker t;
  for (int i = 1; i <= 1000; ++i) {
    t.record_generated(i, 10.0);
    t.record_consumed(10.0);
  }
  EXPECT_DOUBLE_EQ(t.queueing_delay(1000.0), 0.0);
  t.record_generated(1001.0, 10.0);
  EXPECT_NEAR(t.queueing_delay(1003.0), 3.0, 1.1);
}

// ---------------------------------------------------------------------------
// Engine scenarios on tiny topologies
// ---------------------------------------------------------------------------

struct Fixture {
  // src (site 0) -> map (site 1) -> sink (site 2), one task each.
  static constexpr double kEventBytes = 125.0;

  Fixture(double bandwidth_mbps = 1000.0, double map_capacity = 50'000.0,
          EngineConfig config = {},
          std::shared_ptr<const net::BandwidthModel> model = nullptr)
      : network(net::Topology::make_uniform(3, 2, bandwidth_mbps, 10.0),
                model ? model : std::make_shared<net::ConstantBandwidth>()) {
    LogicalOperator src;
    src.name = "src";
    src.kind = OperatorKind::kSource;
    src.output_event_bytes = kEventBytes;
    src.events_per_sec_per_slot = 1e6;
    src.pinned_sites = {SiteId(0)};
    src_id = plan.add_operator(std::move(src));

    LogicalOperator map;
    map.name = "map";
    map.kind = OperatorKind::kMap;
    map.selectivity = 1.0;
    map.output_event_bytes = kEventBytes;
    map.events_per_sec_per_slot = map_capacity;
    map_id = plan.add_operator(std::move(map));

    LogicalOperator sink;
    sink.name = "sink";
    sink.kind = OperatorKind::kSink;
    sink.events_per_sec_per_slot = 1e6;
    sink.pinned_sites = {SiteId(2)};
    sink_id = plan.add_operator(std::move(sink));

    plan.connect(src_id, map_id);
    plan.connect(map_id, sink_id);

    physical.add_stage(src_id, StagePlacement{.per_site = {1, 0, 0}});
    physical.add_stage(map_id, StagePlacement{.per_site = {0, 1, 0}});
    physical.add_stage(sink_id, StagePlacement{.per_site = {0, 0, 1}});

    engine = std::make_unique<Engine>(plan, physical, network, config);
  }

  void run(double from, double to, double rate) {
    for (double t = from + 1.0; t <= to + 1e-9; t += 1.0) {
      engine->set_source_rate(src_id, SiteId(0), rate);
      network.step(t, 1.0);
      engine->tick(t);
    }
  }

  net::Network network;
  LogicalPlan plan;
  PhysicalPlan physical;
  OperatorId src_id, map_id, sink_id;
  std::unique_ptr<Engine> engine;
};

TEST(EngineTest, HealthyPipelineReachesSteadyState) {
  Fixture f;
  f.run(0.0, 30.0, 10'000.0);
  const auto& m = f.engine->last_tick();
  EXPECT_NEAR(m.processing_ratio, 1.0, 0.01);
  EXPECT_NEAR(m.sink_eps, 10'000.0, 200.0);
  EXPECT_LT(m.delay_sec, 1.0);  // two ~10 ms hops + no queueing
  EXPECT_LT(f.engine->source_backlog_events(), 1.0);
}

TEST(EngineTest, SelectivityScalesSinkThroughput) {
  Fixture f;
  f.plan.mutable_op(f.map_id).selectivity = 0.25;
  f.engine = std::make_unique<Engine>(f.plan, f.physical, f.network,
                                      EngineConfig{});
  f.run(0.0, 30.0, 10'000.0);
  EXPECT_NEAR(f.engine->last_tick().sink_eps, 2'500.0, 100.0);
}

TEST(EngineTest, ComputeBottleneckThrottlesSources) {
  // Map can only process 5k ev/s but 10k arrive.
  Fixture f(1000.0, /*map_capacity=*/5'000.0);
  f.run(0.0, 60.0, 10'000.0);
  const auto& m = f.engine->last_tick();
  EXPECT_LT(m.processing_ratio, 0.7);
  EXPECT_GT(f.engine->source_backlog_events(), 10'000.0);
  EXPECT_GT(m.delay_sec, 5.0);
}

TEST(EngineTest, NetworkBottleneckThrottlesSources) {
  // 10k ev/s * 125 B = 10 Mbps demand on a 5 Mbps link.
  Fixture f(/*bandwidth=*/5.0);
  f.run(0.0, 60.0, 10'000.0);
  const auto& m = f.engine->last_tick();
  EXPECT_LT(m.processing_ratio, 0.7);
  EXPECT_GT(m.delay_sec, 5.0);
  // The map observes the deficit: arrivals well below the source rate.
  EXPECT_LT(f.engine->op_metrics(f.map_id).arrived_eps, 6'000.0);
}

TEST(EngineTest, BacklogDrainsAfterOverload) {
  Fixture f(1000.0, 15'000.0);
  f.run(0.0, 60.0, 20'000.0);   // overload
  EXPECT_GT(f.engine->source_backlog_events(), 0.0);
  f.run(60.0, 200.0, 5'000.0);  // recovery: ratio must exceed 1 while draining
  EXPECT_LT(f.engine->source_backlog_events(), 1.0);
  EXPECT_LT(f.engine->last_tick().delay_sec, 1.0);
}

TEST(EngineTest, ProcessingRatioAboveOneWhileDraining) {
  Fixture f(1000.0, 15'000.0);
  f.run(0.0, 60.0, 20'000.0);
  f.engine->set_source_rate(f.src_id, SiteId(0), 5'000.0);
  bool saw_ratio_above_one = false;
  for (double t = 61.0; t <= 120.0; t += 1.0) {
    f.network.step(t, 1.0);
    f.engine->tick(t);
    if (f.engine->last_tick().processing_ratio > 1.1) {
      saw_ratio_above_one = true;
    }
  }
  EXPECT_TRUE(saw_ratio_above_one);
}

TEST(EngineTest, DegradeHoldsDelayNearSloAndDropsEvents) {
  EngineConfig config;
  config.degrade = true;
  config.slo_sec = 10.0;
  Fixture f(1000.0, /*map_capacity=*/5'000.0, config);
  double dropped = 0.0;
  for (double t = 1.0; t <= 300.0; t += 1.0) {
    f.engine->set_source_rate(f.src_id, SiteId(0), 10'000.0);
    f.network.step(t, 1.0);
    f.engine->tick(t);
    dropped += f.engine->last_tick().dropped_eps;
  }
  EXPECT_GT(dropped, 10'000.0);
  // Delay bounded near the SLO rather than diverging to ~150 s.
  EXPECT_LT(f.engine->last_tick().delay_sec, 30.0);
}

TEST(EngineTest, NoDegradeModeNeverDrops) {
  Fixture f(1000.0, 5'000.0);
  double dropped = 0.0;
  for (double t = 1.0; t <= 100.0; t += 1.0) {
    f.engine->set_source_rate(f.src_id, SiteId(0), 10'000.0);
    f.network.step(t, 1.0);
    f.engine->tick(t);
    dropped += f.engine->last_tick().dropped_eps;
  }
  EXPECT_DOUBLE_EQ(dropped, 0.0);
}

TEST(EngineTest, EventConservationInSteadyState) {
  Fixture f;
  double generated = 0.0, admitted = 0.0;
  for (double t = 1.0; t <= 100.0; t += 1.0) {
    f.engine->set_source_rate(f.src_id, SiteId(0), 8'000.0);
    f.network.step(t, 1.0);
    f.engine->tick(t);
    generated += f.engine->last_tick().generated_eps;
    admitted += f.engine->last_tick().admitted_eps;
  }
  // generated = admitted + backlog (no drops configured).
  EXPECT_NEAR(generated, admitted + f.engine->source_backlog_events(), 1.0);
}

TEST(EngineTest, WindowStateGrowsAndResets) {
  Fixture f;
  auto& map = f.plan.mutable_op(f.map_id);
  map.kind = OperatorKind::kWindowAggregate;
  map.window = query::WindowSpec{10.0};
  map.state = query::StateSpec::windowed(/*base_mb=*/1.0,
                                         /*mb_per_kevent=*/0.1);
  f.engine = std::make_unique<Engine>(f.plan, f.physical, f.network,
                                      EngineConfig{});
  // Mid-window the state must exceed the base; right after a window
  // boundary it returns near the base.
  double max_state = 0.0, state_after_reset = 1e18;
  for (double t = 1.0; t <= 60.0; t += 1.0) {
    f.engine->set_source_rate(f.src_id, SiteId(0), 10'000.0);
    f.network.step(t, 1.0);
    f.engine->tick(t);
    const double s = f.engine->total_state_mb(f.map_id);
    max_state = std::max(max_state, s);
    if (t > 20.0 && std::fmod(t, 10.0) < 0.5) {
      state_after_reset = std::min(state_after_reset, s);
    }
  }
  EXPECT_GT(max_state, 5.0);  // ~9 windows * 10k ev/s * 0.1 MB/kev
  EXPECT_LT(state_after_reset, 3.0);
}

TEST(EngineTest, StateOverridePinsStateSize) {
  Fixture f;
  f.engine->set_state_override_mb(f.map_id, 256.0);
  f.run(0.0, 5.0, 1'000.0);
  EXPECT_DOUBLE_EQ(f.engine->total_state_mb(f.map_id), 256.0);
  EXPECT_DOUBLE_EQ(f.engine->state_mb(f.map_id, SiteId(1)), 256.0);
}

TEST(EngineTest, SuspensionStopsProcessingAndQueuesEvents) {
  Fixture f;
  f.run(0.0, 10.0, 10'000.0);
  f.engine->suspend_stage(f.map_id);
  f.run(10.0, 20.0, 10'000.0);
  EXPECT_DOUBLE_EQ(f.engine->op_metrics(f.map_id).processed_eps, 0.0);
  const double backlog_during = f.engine->source_backlog_events() +
                                f.engine->op_metrics(f.map_id).input_queue_events +
                                f.engine->op_metrics(f.map_id).channel_backlog_events;
  EXPECT_GT(backlog_during, 10'000.0);
  f.engine->resume_stage(f.map_id);
  f.run(20.0, 80.0, 10'000.0);
  EXPECT_NEAR(f.engine->last_tick().processing_ratio, 1.0, 0.05);
  EXPECT_LT(f.engine->source_backlog_events(), 100.0);
}

TEST(EngineTest, ApplyPlacementMovesTasksAndKeepsQueues) {
  Fixture f;
  f.run(0.0, 10.0, 10'000.0);
  // Move the map from site 1 to site 0 (co-located with the source).
  f.engine->apply_placement(f.map_id, StagePlacement{.per_site = {1, 0, 0}});
  EXPECT_EQ(f.engine->placement(f.map_id).at(SiteId(0)), 1);
  f.run(10.0, 40.0, 10'000.0);
  EXPECT_NEAR(f.engine->last_tick().processing_ratio, 1.0, 0.05);
  EXPECT_NEAR(f.engine->last_tick().sink_eps, 10'000.0, 300.0);
}

TEST(EngineTest, MigrationSeedsChannelDrainEstimate) {
  // Regression: channels created by rebuild_adjacent_channels used to start
  // with delivered_prev = 0. On a nearly saturated link the freshly rebuilt
  // flow has allocated_mbps = 0 and near-zero headroom, so the WAN drain
  // estimate -- and with it the channel buffer cap -- collapsed to the floor
  // and the sender was spuriously backpressured on the first post-migration
  // tick. The rebuild must seed delivered_prev from the replaced channels'
  // demonstrated drain rate.
  //
  // Setup: two chains sourced at site 0 on 12 Mbps links. Chain A
  // (srcA -> mapA@1) keeps link 0->1 at 11 of 12 Mbps, leaving ~1 Mbps of
  // headroom. Chain B (srcB -> mapB@0) runs intra-site at 10k events/s.
  // Moving mapB to site 1 creates a fresh WAN channel on the saturated link:
  // without seeding its cap is ~5000 + 2 s * ~1000 eps = 7000 events, well
  // under one tick's 10k output -> spurious backpressure.
  net::Network network(net::Topology::make_uniform(3, 4, 12.0, 10.0),
                       std::make_shared<net::ConstantBandwidth>());
  LogicalPlan plan;
  auto make_op = [](const char* name, OperatorKind kind,
                    std::vector<SiteId> pinned) {
    LogicalOperator op;
    op.name = name;
    op.kind = kind;
    op.output_event_bytes = 125.0;
    op.events_per_sec_per_slot = 1e6;
    op.pinned_sites = std::move(pinned);
    return op;
  };
  const OperatorId src_a =
      plan.add_operator(make_op("srcA", OperatorKind::kSource, {SiteId(0)}));
  const OperatorId map_a =
      plan.add_operator(make_op("mapA", OperatorKind::kMap, {}));
  const OperatorId sink_a =
      plan.add_operator(make_op("sinkA", OperatorKind::kSink, {SiteId(1)}));
  const OperatorId src_b =
      plan.add_operator(make_op("srcB", OperatorKind::kSource, {SiteId(0)}));
  const OperatorId map_b =
      plan.add_operator(make_op("mapB", OperatorKind::kMap, {}));
  const OperatorId sink_b =
      plan.add_operator(make_op("sinkB", OperatorKind::kSink, {SiteId(0)}));
  plan.connect(src_a, map_a);
  plan.connect(map_a, sink_a);
  plan.connect(src_b, map_b);
  plan.connect(map_b, sink_b);

  PhysicalPlan physical;
  physical.add_stage(src_a, StagePlacement{.per_site = {1, 0, 0}});
  physical.add_stage(map_a, StagePlacement{.per_site = {0, 1, 0}});
  physical.add_stage(sink_a, StagePlacement{.per_site = {0, 1, 0}});
  physical.add_stage(src_b, StagePlacement{.per_site = {1, 0, 0}});
  physical.add_stage(map_b, StagePlacement{.per_site = {1, 0, 0}});
  physical.add_stage(sink_b, StagePlacement{.per_site = {1, 0, 0}});

  Engine engine(plan, physical, network, EngineConfig{});
  for (double t = 1.0; t <= 30.0 + 1e-9; t += 1.0) {
    engine.set_source_rate(src_a, SiteId(0), 11'000.0);
    engine.set_source_rate(src_b, SiteId(0), 10'000.0);
    network.step(t, 1.0);
    engine.tick(t);
  }
  ASSERT_FALSE(engine.op_metrics(src_a).backpressured);
  ASSERT_FALSE(engine.op_metrics(src_b).backpressured);

  engine.apply_placement(map_b, StagePlacement{.per_site = {0, 1, 0}});

  engine.set_source_rate(src_a, SiteId(0), 11'000.0);
  engine.set_source_rate(src_b, SiteId(0), 10'000.0);
  network.step(31.0, 1.0);
  engine.tick(31.0);
  EXPECT_FALSE(engine.op_metrics(src_b).backpressured)
      << "fresh post-migration channel must inherit the replaced channel's "
         "drain rate, not collapse to the floor buffer";
}

TEST(EngineTest, ScaleOutSplitsStateAcrossSites) {
  Fixture f;
  f.engine->set_state_override_mb(f.map_id, 100.0);
  f.run(0.0, 5.0, 1'000.0);
  f.engine->apply_placement(f.map_id, StagePlacement{.per_site = {0, 1, 1}});
  EXPECT_NEAR(f.engine->state_mb(f.map_id, SiteId(1)), 50.0, 1e-6);
  EXPECT_NEAR(f.engine->state_mb(f.map_id, SiteId(2)), 50.0, 1e-6);
  f.run(5.0, 40.0, 10'000.0);
  EXPECT_NEAR(f.engine->last_tick().sink_eps, 10'000.0, 300.0);
}

TEST(EngineTest, FailedSiteStopsProcessingUntilRestore) {
  Fixture f;
  f.run(0.0, 10.0, 10'000.0);
  f.engine->fail_site(SiteId(1));
  EXPECT_TRUE(f.engine->site_failed(SiteId(1)));
  f.run(10.0, 30.0, 10'000.0);
  EXPECT_DOUBLE_EQ(f.engine->op_metrics(f.map_id).processed_eps, 0.0);
  EXPECT_GT(f.engine->source_backlog_events() +
                f.engine->op_metrics(f.map_id).channel_backlog_events,
            50'000.0);
  f.engine->restore_site(SiteId(1));
  f.run(30.0, 120.0, 10'000.0);
  EXPECT_NEAR(f.engine->last_tick().processing_ratio, 1.0, 0.05);
  EXPECT_LT(f.engine->source_backlog_events(), 1'000.0);
}

TEST(EngineTest, RestoreSiteRollsBackToCheckpointAndReplaysLostDelta) {
  // A failure destroys everything the site accumulated since its last local
  // checkpoint. restore_site must (a) roll the group's window state back to
  // the checkpoint snapshot and (b) re-inject the lost delta at the
  // replayable sources. Pre-fix, the recovered group kept its post-failure
  // window contents and nothing was replayed -- recovery silently "kept"
  // state the failure had destroyed.
  Fixture f;
  auto& map = f.plan.mutable_op(f.map_id);
  map.kind = OperatorKind::kWindowAggregate;
  map.window = query::WindowSpec{1000.0};  // no boundary during the test
  map.state = query::StateSpec::windowed(/*base_mb=*/1.0,
                                         /*mb_per_kevent=*/0.1);
  f.engine = std::make_unique<Engine>(f.plan, f.physical, f.network,
                                      EngineConfig{});
  // Default checkpoint interval is 30 s: a checkpoint lands at t~30 with
  // ~300k window events. By t=50 the open window holds ~500k.
  f.run(0.0, 40.0, 10'000.0);
  const double state_at_40 = f.engine->state_mb(f.map_id, SiteId(1));
  f.run(40.0, 50.0, 10'000.0);
  const double state_at_50 = f.engine->state_mb(f.map_id, SiteId(1));
  ASSERT_GT(state_at_50, state_at_40 + 5.0) << "window state must be growing";
  const double backlog_before = f.engine->source_backlog_events();

  f.engine->fail_site(SiteId(1));
  f.engine->restore_site(SiteId(1));

  // (a) Rollback: state returns to the t~30 checkpoint, i.e. below even the
  // t=40 reading -- not the pre-failure t=50 level.
  EXPECT_LT(f.engine->state_mb(f.map_id, SiteId(1)), state_at_40 + 1e-6);
  // (b) Replay: the ~200k-event delta re-enters the source backlog.
  EXPECT_GT(f.engine->source_backlog_events(), backlog_before + 100'000.0);
}

TEST(EngineTest, ApplyPlacementPreservesInProgressCheckpointReplay) {
  // Re-placing a stage while one of its groups is mid-way through replaying
  // a checkpoint must not cancel the replay pause for groups that stay put:
  // re-placement does not make recovery free. Pre-fix, apply_placement reset
  // restore_until unconditionally and the group resumed processing at once.
  Fixture f;
  f.engine->set_state_override_mb(f.map_id, 2'000.0);  // 10 s restore at 200 MB/s
  f.run(0.0, 35.0, 10'000.0);  // checkpoint at t~30 records the 2 GB state
  f.engine->fail_site(SiteId(1));
  f.engine->restore_site(SiteId(1));  // replaying until t=45

  // Same placement re-applied: the map group at site 1 keeps its pause.
  f.engine->apply_placement(f.map_id, StagePlacement{.per_site = {0, 1, 0}});
  f.run(35.0, 40.0, 10'000.0);
  EXPECT_DOUBLE_EQ(f.engine->op_metrics(f.map_id).processed_eps, 0.0)
      << "group must still be replaying its checkpoint after re-placement";

  // Once the replay deadline passes, processing resumes and drains.
  f.run(40.0, 120.0, 10'000.0);
  EXPECT_NEAR(f.engine->last_tick().processing_ratio, 1.0, 0.05);
}

TEST(EngineTest, FailSiteIsIdempotent) {
  // Chaos schedules (and overlapping injectors) can fail a site that is
  // already down; the second call must not count a second failure or
  // otherwise disturb state.
  obs::MetricsRegistry metrics;
  EngineConfig config;
  config.metrics = &metrics;
  Fixture f(1000.0, 50'000.0, config);
  f.run(0.0, 10.0, 10'000.0);
  f.engine->fail_site(SiteId(1));
  f.engine->fail_site(SiteId(1));
  EXPECT_TRUE(f.engine->site_failed(SiteId(1)));
  EXPECT_DOUBLE_EQ(metrics.counter("engine.site_failures").value(), 1.0);
  // One restore undoes it: fail_site did not "stack".
  f.engine->restore_site(SiteId(1));
  EXPECT_FALSE(f.engine->site_failed(SiteId(1)));
  EXPECT_DOUBLE_EQ(metrics.counter("engine.site_restores").value(), 1.0);
}

TEST(EngineTest, RestoreOnHealthySiteIsANoOp) {
  // restore_site on a site that never failed must not roll its window back
  // to the last checkpoint or re-inject a replay delta.
  Fixture f;
  auto& map = f.plan.mutable_op(f.map_id);
  map.kind = OperatorKind::kWindowAggregate;
  map.window = query::WindowSpec{1000.0};
  map.state = query::StateSpec::windowed(1.0, 0.1);
  f.engine = std::make_unique<Engine>(f.plan, f.physical, f.network,
                                      EngineConfig{});
  f.run(0.0, 50.0, 10'000.0);
  const double state_before = f.engine->state_mb(f.map_id, SiteId(1));
  const double backlog_before = f.engine->source_backlog_events();
  f.engine->restore_site(SiteId(1));
  EXPECT_DOUBLE_EQ(f.engine->state_mb(f.map_id, SiteId(1)), state_before);
  EXPECT_DOUBLE_EQ(f.engine->source_backlog_events(), backlog_before);
  // No replay pause either: processing continues on the next tick.
  f.run(50.0, 52.0, 10'000.0);
  EXPECT_GT(f.engine->op_metrics(f.map_id).processed_eps, 0.0);
}

TEST(EngineTest, StragglerFactorSurvivesFailAndRestore) {
  // A slow machine does not speed up by crashing: the straggler factor is
  // orthogonal to failure state and must survive a fail/restore cycle.
  Fixture f;
  f.run(0.0, 10.0, 10'000.0);
  f.engine->set_straggler(SiteId(1), 0.25);
  f.engine->fail_site(SiteId(1));
  f.engine->restore_site(SiteId(1));
  EXPECT_DOUBLE_EQ(f.engine->straggler_factor(SiteId(1)), 0.25);
}

TEST(EngineTest, FailDuringReplayComposesRestorePauseInsteadOfResetting) {
  // A site that fails again *while already replaying* a checkpoint must
  // serve the remainder of the first pause plus the new restore: the second
  // replay reads the same snapshot and cannot start before the first one
  // would have finished. Pre-fix, restore_site reset the deadline to
  // now + restore_sec, silently forgiving the time already owed.
  Fixture f;
  f.engine->set_state_override_mb(f.map_id, 2'000.0);  // 10 s at 200 MB/s
  f.run(0.0, 35.0, 10'000.0);  // checkpoint at t~30 records the 2 GB state
  f.engine->fail_site(SiteId(1));
  f.engine->restore_site(SiteId(1));
  const double first_until = f.engine->restore_until(f.map_id, SiteId(1));
  ASSERT_NEAR(first_until, 45.0, 1.5);

  // Two ticks into the replay the site crashes and restores again.
  f.run(35.0, 37.0, 10'000.0);
  f.engine->fail_site(SiteId(1));
  f.engine->restore_site(SiteId(1));
  const double second_until = f.engine->restore_until(f.map_id, SiteId(1));
  EXPECT_NEAR(second_until, first_until + 10.0, 1e-6)
      << "second restore must queue behind the in-progress replay";

  // The group stays paused through the composed deadline, then drains.
  f.run(37.0, second_until - 1.0, 10'000.0);
  EXPECT_DOUBLE_EQ(f.engine->op_metrics(f.map_id).processed_eps, 0.0)
      << "replay pause ended early: deadline was reset, not composed";
  f.run(second_until - 1.0, second_until + 5.0, 10'000.0);
  EXPECT_GT(f.engine->op_metrics(f.map_id).processed_eps, 0.0);
}

TEST(EngineTest, SecondFailureDuringReplayRerollsWithoutDoubleInject) {
  // A site that fails again while still replaying its checkpoint re-rolls
  // to the same snapshot. Since nothing was processed since the first
  // restore, there is no new delta -- the replay injection must not happen
  // twice.
  Fixture f;
  auto& map = f.plan.mutable_op(f.map_id);
  map.kind = OperatorKind::kWindowAggregate;
  map.window = query::WindowSpec{1000.0};
  map.state = query::StateSpec::windowed(1.0, 0.1);
  f.engine = std::make_unique<Engine>(f.plan, f.physical, f.network,
                                      EngineConfig{});
  f.run(0.0, 50.0, 10'000.0);  // checkpoint at t~30, window keeps growing
  const double backlog_healthy = f.engine->source_backlog_events();

  f.engine->fail_site(SiteId(1));
  f.engine->restore_site(SiteId(1));
  const double state_first = f.engine->state_mb(f.map_id, SiteId(1));
  const double backlog_first = f.engine->source_backlog_events();
  ASSERT_GT(backlog_first, backlog_healthy + 100'000.0)
      << "first restore must replay the lost delta";

  // Replay still pending (no tick ran): fail and restore again.
  f.engine->fail_site(SiteId(1));
  f.engine->restore_site(SiteId(1));
  EXPECT_DOUBLE_EQ(f.engine->state_mb(f.map_id, SiteId(1)), state_first);
  EXPECT_NEAR(f.engine->source_backlog_events(), backlog_first, 1.0)
      << "second restore from the same checkpoint must not re-inject";
}

TEST(EngineTest, StragglerSlowsOnlyItsSite) {
  Fixture f(1000.0, 50'000.0);
  f.run(0.0, 20.0, 10'000.0);
  EXPECT_NEAR(f.engine->last_tick().processing_ratio, 1.0, 0.02);
  // 10x slowdown at the map's site: capacity 5k < 10k input.
  f.engine->set_straggler(SiteId(1), 0.1);
  EXPECT_DOUBLE_EQ(f.engine->straggler_factor(SiteId(1)), 0.1);
  f.run(20.0, 80.0, 10'000.0);
  EXPECT_LT(f.engine->op_metrics(f.map_id).processed_eps, 6'000.0);
  EXPECT_GT(f.engine->last_tick().delay_sec, 5.0);
  // Recovery when the straggler clears.
  f.engine->set_straggler(SiteId(1), 1.0);
  f.run(80.0, 200.0, 10'000.0);
  EXPECT_NEAR(f.engine->last_tick().processing_ratio, 1.0, 0.05);
  EXPECT_LT(f.engine->source_backlog_events(), 100.0);
}

TEST(EngineTest, PartitionSkewConcentratesLoadOnHotSite) {
  // Map p=2 across sites 1 and 2, capacity 10k per task, input 16k:
  // balanced -> 8k each (healthy); 3x skew -> 12k on the hot site (> its
  // 10k capacity) -> the stage falls behind despite aggregate headroom.
  Fixture f(1000.0, 10'000.0);
  f.engine->apply_placement(f.map_id, StagePlacement{.per_site = {0, 1, 1}});
  f.run(0.0, 60.0, 16'000.0);
  EXPECT_NEAR(f.engine->last_tick().processing_ratio, 1.0, 0.02);

  f.engine->set_partition_skew(f.map_id, 3.0);
  f.run(60.0, 160.0, 16'000.0);
  EXPECT_LT(f.engine->last_tick().processing_ratio, 0.95);
  EXPECT_GT(f.engine->last_tick().delay_sec, 2.0);

  // Restoring balance heals it.
  f.engine->set_partition_skew(f.map_id, 1.0);
  f.run(160.0, 320.0, 16'000.0);
  EXPECT_NEAR(f.engine->last_tick().processing_ratio, 1.0, 0.05);
}

TEST(EngineTest, SlotsInUseTracksPlacements) {
  Fixture f;
  auto used = f.engine->slots_in_use();
  EXPECT_EQ(used[0], 0);  // sources take no computing slot
  EXPECT_EQ(used[1], 1);
  EXPECT_EQ(used[2], 1);
  f.engine->apply_placement(f.map_id, StagePlacement{.per_site = {0, 2, 0}});
  used = f.engine->slots_in_use();
  EXPECT_EQ(used[1], 2);
}

TEST(EngineTest, SourceGenerationReflectsActualWorkloadUnderBackpressure) {
  Fixture f(/*bandwidth=*/5.0);  // heavily constrained
  f.run(0.0, 60.0, 10'000.0);
  // Observed throughput is throttled, but the actual workload (§3.3's
  // λ_O[src]) still reports 10k.
  EXPECT_DOUBLE_EQ(f.engine->source_generation_eps(f.src_id), 10'000.0);
  EXPECT_LT(f.engine->op_metrics(f.src_id).processed_eps, 8'000.0);
}

TEST(EngineTest, OperatorMetricsSelectivity) {
  Fixture f;
  f.plan.mutable_op(f.map_id).selectivity = 0.5;
  f.engine = std::make_unique<Engine>(f.plan, f.physical, f.network,
                                      EngineConfig{});
  f.run(0.0, 20.0, 10'000.0);
  EXPECT_NEAR(f.engine->op_metrics(f.map_id).selectivity, 0.5, 0.01);
}

TEST(EngineTest, ChannelMetricsExposeLinkTelemetry) {
  Fixture f;
  f.run(0.0, 10.0, 10'000.0);
  const auto channels = f.engine->channels_into(f.map_id);
  ASSERT_EQ(channels.size(), 1u);
  EXPECT_EQ(channels[0].from, SiteId(0));
  EXPECT_EQ(channels[0].to, SiteId(1));
  EXPECT_NEAR(channels[0].delivered_eps, 10'000.0, 300.0);
}

TEST(EngineTest, AdjacentLinkMbpsReportsStageTraffic) {
  Fixture f;
  f.run(0.0, 10.0, 10'000.0);
  const auto links = f.engine->adjacent_link_mbps(f.map_id);
  // 10k ev/s * 125 B = 10 Mbps inbound on 0->1 plus outbound on 1->2.
  const auto n = static_cast<std::int64_t>(3);
  ASSERT_TRUE(links.contains(0 * n + 1));
  EXPECT_NEAR(links.at(0 * n + 1), 10.0, 0.5);
  ASSERT_TRUE(links.contains(1 * n + 2));
  EXPECT_NEAR(links.at(1 * n + 2), 10.0, 0.5);
}

TEST(EngineTest, ReplanCarriesSourceBacklogAndState) {
  Fixture f;
  f.plan.mutable_op(f.map_id).state = query::StateSpec::fixed(64.0);
  f.engine = std::make_unique<Engine>(f.plan, f.physical, f.network,
                                      EngineConfig{});
  // Build a backlog with a suspended map.
  f.engine->suspend_stage(f.map_id);
  f.run(0.0, 20.0, 10'000.0);
  const double backlog_before = f.engine->source_backlog_events();
  ASSERT_GT(backlog_before, 50'000.0);

  // "Re-plan" to a structurally identical plan with the map at site 2.
  LogicalPlan new_plan = f.plan;
  PhysicalPlan new_physical;
  new_physical.add_stage(f.src_id, StagePlacement{.per_site = {1, 0, 0}});
  new_physical.add_stage(f.map_id, StagePlacement{.per_site = {0, 0, 1}});
  new_physical.add_stage(f.sink_id, StagePlacement{.per_site = {0, 0, 1}});
  f.engine->apply_replan(std::move(new_plan), std::move(new_physical));

  // Backlog, state, and rates survived the swap.
  EXPECT_GE(f.engine->source_backlog_events(), backlog_before - 1'000.0);
  EXPECT_NEAR(f.engine->total_state_mb(f.map_id), 64.0, 1e-6);
  EXPECT_DOUBLE_EQ(f.engine->source_generation_eps(f.src_id), 10'000.0);
  // And the new execution drains it.
  f.run(20.0, 120.0, 10'000.0);
  EXPECT_LT(f.engine->source_backlog_events(), 1'000.0);
  EXPECT_NEAR(f.engine->last_tick().processing_ratio, 1.0, 0.05);
}

TEST(EngineTest, PartitionSkewStaysPinnedAcrossPlacementChanges) {
  // The hot key pins to the lowest-indexed hosting site *at skew time* and
  // must not migrate when a later placement extends or reorders the site
  // list (a regression pinned it to "first hosting site", which moves).
  Fixture f(1000.0, 10'000.0);
  f.engine->apply_placement(f.map_id, StagePlacement{.per_site = {0, 1, 1}});
  f.engine->set_partition_skew(f.map_id, 3.0);
  EXPECT_EQ(f.engine->partition_skew_site(f.map_id), 1);

  // Expanding onto site 0 changes the lowest-indexed hosting site; the hot
  // key stays where the data lives.
  f.engine->apply_placement(f.map_id, StagePlacement{.per_site = {1, 1, 1}});
  EXPECT_EQ(f.engine->partition_skew_site(f.map_id), 1);
  f.run(0.0, 30.0, 9'000.0);
  double offered_hot = 0.0, offered_cold = 0.0;
  for (const auto& c : f.engine->channels_into(f.map_id)) {
    (c.to == SiteId(1) ? offered_hot : offered_cold) += c.offered_eps;
  }
  // weights 1:3:1 -> the pinned site draws 3x each cold site's share.
  EXPECT_NEAR(offered_hot, 3.0 * (offered_cold / 2.0), 300.0);

  // Losing the pinned site re-anchors to the new lowest-indexed hosting
  // site; a re-plan then carries the pin by operator signature.
  f.engine->apply_placement(f.map_id, StagePlacement{.per_site = {1, 0, 1}});
  EXPECT_EQ(f.engine->partition_skew_site(f.map_id), 0);
  LogicalPlan new_plan = f.plan;
  PhysicalPlan new_physical;
  new_physical.add_stage(f.src_id, StagePlacement{.per_site = {1, 0, 0}});
  new_physical.add_stage(f.map_id, StagePlacement{.per_site = {1, 0, 1}});
  new_physical.add_stage(f.sink_id, StagePlacement{.per_site = {0, 0, 1}});
  f.engine->apply_replan(std::move(new_plan), std::move(new_physical));
  EXPECT_EQ(f.engine->partition_skew_site(f.map_id), 0);

  // Clearing the skew unpins.
  f.engine->set_partition_skew(f.map_id, 1.0);
  EXPECT_EQ(f.engine->partition_skew_site(f.map_id), -1);
}

TEST(EngineTest, ReplanPrunesStaleSourceTrackers) {
  // Two sources feed one sink; re-planning to a single-source query must
  // drop the orphaned source's delay tracker (a regression kept trackers
  // whose signature no longer matched any live source).
  net::Network network(net::Topology::make_uniform(2, 2, 1000.0, 10.0),
                       std::make_shared<net::ConstantBandwidth>());
  LogicalPlan plan;
  LogicalOperator src_a;
  src_a.name = "src_a";
  src_a.kind = OperatorKind::kSource;
  src_a.events_per_sec_per_slot = 1e6;
  src_a.pinned_sites = {SiteId(0)};
  const OperatorId a = plan.add_operator(std::move(src_a));
  LogicalOperator src_b;
  src_b.name = "src_b";
  src_b.kind = OperatorKind::kSource;
  src_b.events_per_sec_per_slot = 1e6;
  src_b.pinned_sites = {SiteId(1)};
  const OperatorId b = plan.add_operator(std::move(src_b));
  LogicalOperator sink;
  sink.name = "sink";
  sink.kind = OperatorKind::kSink;
  sink.events_per_sec_per_slot = 1e6;
  const OperatorId k = plan.add_operator(std::move(sink));
  plan.connect(a, k);
  plan.connect(b, k);
  PhysicalPlan physical;
  physical.add_stage(a, StagePlacement{.per_site = {1, 0}});
  physical.add_stage(b, StagePlacement{.per_site = {0, 1}});
  physical.add_stage(k, StagePlacement{.per_site = {1, 0}});
  Engine engine(plan, physical, network, EngineConfig{});
  EXPECT_EQ(engine.num_source_trackers(), 2u);

  LogicalPlan pruned;
  LogicalOperator src_a2;
  src_a2.name = "src_a";
  src_a2.kind = OperatorKind::kSource;
  src_a2.events_per_sec_per_slot = 1e6;
  src_a2.pinned_sites = {SiteId(0)};
  const OperatorId a2 = pruned.add_operator(std::move(src_a2));
  LogicalOperator sink2;
  sink2.name = "sink";
  sink2.kind = OperatorKind::kSink;
  sink2.events_per_sec_per_slot = 1e6;
  const OperatorId k2 = pruned.add_operator(std::move(sink2));
  pruned.connect(a2, k2);
  PhysicalPlan pruned_physical;
  pruned_physical.add_stage(a2, StagePlacement{.per_site = {1, 0}});
  pruned_physical.add_stage(k2, StagePlacement{.per_site = {1, 0}});
  engine.apply_replan(std::move(pruned), std::move(pruned_physical));
  EXPECT_EQ(engine.num_source_trackers(), 1u);
}

TEST(EngineTest, ReplanResetsDegradeBudgetAndReplayAccounting) {
  // A re-plan starts delay accounting fresh: the degrade admission budget
  // (previous tick's delay) and any not-yet-folded replay events from an
  // earlier transition must not leak into the new execution.
  Fixture f;
  f.engine->suspend_stage(f.map_id);  // grow delay and in-flight channel data
  f.run(0.0, 20.0, 10'000.0);
  ASSERT_GT(f.engine->last_tick().delay_sec, 1.0);
  ASSERT_GT(f.engine->degrade_budget_delay_sec(), 1.0);

  const auto make_replan = [&f](PhysicalPlan& out) {
    out.add_stage(f.src_id, StagePlacement{.per_site = {1, 0, 0}});
    out.add_stage(f.map_id, StagePlacement{.per_site = {0, 1, 0}});
    out.add_stage(f.sink_id, StagePlacement{.per_site = {0, 0, 1}});
  };
  LogicalPlan plan1 = f.plan;
  PhysicalPlan phys1;
  make_replan(phys1);
  f.engine->apply_replan(std::move(plan1), std::move(phys1));
  EXPECT_DOUBLE_EQ(f.engine->degrade_budget_delay_sec(), 0.0);
  EXPECT_DOUBLE_EQ(f.engine->last_tick().delay_sec, 0.0);
  // The suspended map left events in flight; the re-plan replays them.
  EXPECT_GT(f.engine->replay_pending_events(), 0.0);

  // A second re-plan before any tick: fresh channels hold nothing in
  // flight, and the first re-plan's pending replay must not carry over.
  LogicalPlan plan2 = f.plan;
  PhysicalPlan phys2;
  make_replan(phys2);
  f.engine->apply_replan(std::move(plan2), std::move(phys2));
  EXPECT_DOUBLE_EQ(f.engine->replay_pending_events(), 0.0);
}

}  // namespace
}  // namespace wasp::engine
