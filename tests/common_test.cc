// Unit tests for the common utilities: ids, units, rng, stats, histogram,
// time series, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <unordered_set>

#include "common/histogram.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/time_series.h"
#include "common/units.h"

namespace wasp {
namespace {

TEST(IdsTest, DefaultIsInvalid) {
  SiteId id;
  EXPECT_FALSE(id.valid());
  EXPECT_TRUE(SiteId(0).valid());
}

TEST(IdsTest, ComparesByValue) {
  EXPECT_EQ(SiteId(3), SiteId(3));
  EXPECT_NE(SiteId(3), SiteId(4));
  EXPECT_LT(SiteId(3), SiteId(4));
}

TEST(IdsTest, HashableInUnorderedSet) {
  std::unordered_set<TaskId> set;
  set.insert(TaskId(1));
  set.insert(TaskId(1));
  set.insert(TaskId(2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(UnitsTest, BandwidthDataRateRoundTrip) {
  EXPECT_DOUBLE_EQ(mbps_to_mb_per_sec(80.0), 10.0);
  EXPECT_DOUBLE_EQ(mb_per_sec_to_mbps(10.0), 80.0);
}

TEST(UnitsTest, TransferSeconds) {
  // 100 MB over 80 Mbps = 10 MB/s -> 10 s.
  EXPECT_NEAR(transfer_seconds(100.0, 80.0), 10.0, 1e-12);
  EXPECT_EQ(transfer_seconds(1.0, 0.0),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(transfer_seconds(0.0, 0.0), 0.0);
}

TEST(UnitsTest, StreamBandwidthDemand) {
  // 10000 events/s of 100 bytes = 1 MB/s = 8 Mbps.
  EXPECT_NEAR(stream_mbps(10000.0, 100.0), 8.0, 1e-12);
  EXPECT_NEAR(events_per_sec_over(8.0, 100.0), 10000.0, 1e-9);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalHasApproximateMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(RngTest, ZipfSkewsTowardSmallIndices) {
  Rng rng(17);
  int low = 0, high = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto k = rng.zipf(100, 1.2);
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 100);
    if (k < 10) ++low;
    if (k >= 90) ++high;
  }
  EXPECT_GT(low, 5 * high);
}

TEST(RngTest, ZipfZeroSkewIsRoughlyUniform) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.zipf(10, 0.0)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int c0 = 0, c1 = 0, c2 = 0;
  for (int i = 0; i < 10000; ++i) {
    switch (rng.weighted_index(weights)) {
      case 0: ++c0; break;
      case 1: ++c1; break;
      default: ++c2; break;
    }
  }
  EXPECT_EQ(c1, 0);
  EXPECT_NEAR(static_cast<double>(c2) / c0, 3.0, 0.5);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(EwmaTest, FirstSampleInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.add(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
}

TEST(HistogramTest, PercentileOfUniformWeights) {
  WeightedHistogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_NEAR(h.percentile(50), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(95), 95.0, 1.0);
  EXPECT_NEAR(h.percentile(100), 100.0, 1e-12);
}

TEST(HistogramTest, WeightsShiftPercentiles) {
  WeightedHistogram h;
  h.add(1.0, 9.0);
  h.add(10.0, 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(95), 10.0);
}

TEST(HistogramTest, CdfAt) {
  WeightedHistogram h;
  h.add(1.0);
  h.add(2.0);
  h.add(3.0);
  h.add(4.0);
  EXPECT_DOUBLE_EQ(h.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(h.cdf_at(10.0), 1.0);
}

TEST(HistogramTest, IgnoresNonPositiveWeights) {
  WeightedHistogram h;
  h.add(5.0, 0.0);
  h.add(6.0, -1.0);
  EXPECT_TRUE(h.empty());
}

TEST(HistogramTest, WeightedMean) {
  WeightedHistogram h;
  h.add(2.0, 1.0);
  h.add(4.0, 3.0);
  EXPECT_DOUBLE_EQ(h.weighted_mean(), 3.5);
}

TEST(HistogramTest, CdfPointsAreMonotonic) {
  WeightedHistogram h;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) h.add(rng.uniform(), rng.uniform(0.1, 2.0));
  const auto points = h.cdf_points(20);
  ASSERT_EQ(points.size(), 20u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].first, points[i - 1].first);
    EXPECT_GE(points[i].second, points[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(HistogramTest, CdfPointsMatchPercentileScan) {
  // Regression: cdf_points used to re-scan the sample vector per requested
  // point (O(points * n)); the single-cumulative-pass rewrite must return
  // exactly the values the per-quantile percentile() scan produces.
  WeightedHistogram h;
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    h.add(rng.uniform(0.0, 100.0), rng.uniform(0.1, 3.0));
  }
  const std::size_t kPoints = 64;
  const auto points = h.cdf_points(kPoints);
  ASSERT_EQ(points.size(), kPoints);
  for (std::size_t k = 1; k <= kPoints; ++k) {
    const double q = 100.0 * static_cast<double>(k) /
                     static_cast<double>(kPoints);
    EXPECT_DOUBLE_EQ(points[k - 1].first, h.percentile(q))
        << "quantile " << q;
    EXPECT_DOUBLE_EQ(points[k - 1].second,
                     static_cast<double>(k) / static_cast<double>(kPoints));
  }
}

TEST(HistogramTest, ZeroTotalWeightIsHandledExplicitly) {
  // Regression: with no accepted samples (empty, or every add rejected for
  // a non-positive weight) the total weight is 0; percentile/cdf_at/
  // cdf_points must treat that case explicitly instead of dividing by it.
  WeightedHistogram h;
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf_at(1.0), 0.0);
  EXPECT_TRUE(h.cdf_points(10).empty());

  h.add(5.0, 0.0);
  h.add(7.0, -2.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf_at(10.0), 0.0);
  EXPECT_TRUE(h.cdf_points(10).empty());

  // One real sample flips it back to defined behaviour.
  h.add(3.0, 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 3.0);
  EXPECT_DOUBLE_EQ(h.cdf_at(3.0), 1.0);
  ASSERT_EQ(h.cdf_points(2).size(), 2u);
}

TEST(TimeSeriesTest, MeanOverWindow) {
  TimeSeries ts("x");
  ts.add(0.0, 1.0);
  ts.add(1.0, 2.0);
  ts.add(2.0, 3.0);
  ts.add(3.0, 10.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(0.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(5.0, 6.0), 0.0);
}

TEST(TimeSeriesTest, MaxOverWindow) {
  TimeSeries ts("x");
  ts.add(0.0, 5.0);
  ts.add(1.0, -2.0);
  EXPECT_DOUBLE_EQ(ts.max_over(0.0, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(ts.max_over(0.5, 2.0), -2.0);
}

TEST(TimeSeriesTest, ValueAtIsLastAtOrBefore) {
  TimeSeries ts("x");
  ts.add(10.0, 1.0);
  ts.add(20.0, 2.0);
  EXPECT_DOUBLE_EQ(ts.value_at(5.0, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(15.0), 1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(25.0), 2.0);
}

TEST(TimeSeriesTest, DownsampleAverages) {
  TimeSeries ts("x");
  for (int t = 0; t < 10; ++t) ts.add(t, t < 5 ? 1.0 : 3.0);
  const auto buckets = ts.downsample(5.0);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].second, 1.0);
  EXPECT_DOUBLE_EQ(buckets[1].second, 3.0);
}

TEST(TableTest, PrintsAlignedRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", TextTable::fmt(0.8, 1)});
  t.add_row({"p_max", "3"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("0.8"), std::string::npos);
  EXPECT_NE(out.find("p_max"), std::string::npos);
}

TEST(TableTest, SeriesPrinterMergesXValues) {
  TimeSeries a("a"), b("b");
  a.add(0.0, 1.0);
  a.add(2.0, 3.0);
  b.add(1.0, 5.0);
  std::ostringstream os;
  print_series(os, "t", {a, b});
  const std::string out = os.str();
  // x=1 exists only in b; a's cell must be "-".
  EXPECT_NE(out.find("-"), std::string::npos);
  EXPECT_NE(out.find("5.000"), std::string::npos);
}

}  // namespace
}  // namespace wasp
