// Unit and property tests for the branch & bound ILP solver, including a
// sweep that cross-checks random instances against exhaustive enumeration.
#include "ilp/branch_and_bound.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "lp/problem.h"

namespace wasp::ilp {
namespace {

constexpr double kTol = 1e-6;

TEST(IlpTest, KnapsackSmall) {
  // max 10a + 6b + 4c  s.t. a + b + c <= 2 (binary) -> a=b=1, obj=16.
  lp::Problem p(lp::Sense::kMaximize);
  p.add_variable(10.0, 0.0, 1.0);
  p.add_variable(6.0, 0.0, 1.0);
  p.add_variable(4.0, 0.0, 1.0);
  p.add_dense_constraint({1.0, 1.0, 1.0}, lp::RowType::kLe, 2.0);
  const IlpResult r = solve_all_integer(p);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.objective, 16.0, kTol);
  EXPECT_NEAR(r.values[0], 1.0, kTol);
  EXPECT_NEAR(r.values[1], 1.0, kTol);
  EXPECT_NEAR(r.values[2], 0.0, kTol);
}

TEST(IlpTest, IntegerRoundingMatters) {
  // max x + y s.t. 2x + 2y <= 5 -> LP gives 2.5, ILP gives 2.
  lp::Problem p(lp::Sense::kMaximize);
  p.add_variable(1.0);
  p.add_variable(1.0);
  p.add_dense_constraint({2.0, 2.0}, lp::RowType::kLe, 5.0);
  const IlpResult r = solve_all_integer(p);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.objective, 2.0, kTol);
}

TEST(IlpTest, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 has no integer point.
  lp::Problem p(lp::Sense::kMinimize);
  p.add_variable(1.0, 0.4, 0.6);
  const IlpResult r = solve_all_integer(p);
  EXPECT_EQ(r.status, lp::SolveStatus::kInfeasible);
}

TEST(IlpTest, MixedIntegerKeepsContinuousVarsContinuous) {
  // min x + y s.t. x + y >= 2.5, x integer, y continuous -> x=0..2, y fills.
  lp::Problem p(lp::Sense::kMinimize);
  p.add_variable(1.0);
  p.add_variable(1.0);
  p.add_dense_constraint({1.0, 1.0}, lp::RowType::kGe, 2.5);
  const IlpResult r = solve(p, std::vector<std::size_t>{0});
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.objective, 2.5, kTol);
  EXPECT_NEAR(r.values[0], std::round(r.values[0]), kTol);
}

TEST(IlpTest, EqualityPartitionConstraint) {
  // Placement-like: min sum cost[s]*p[s] s.t. sum p[s] = 4, p[s] <= cap[s].
  lp::Problem p(lp::Sense::kMinimize);
  const std::vector<double> cost{5.0, 1.0, 3.0};
  const std::vector<double> cap{2.0, 2.0, 4.0};
  for (int s = 0; s < 3; ++s) p.add_variable(cost[s], 0.0, cap[s]);
  p.add_dense_constraint({1.0, 1.0, 1.0}, lp::RowType::kEq, 4.0);
  const IlpResult r = solve_all_integer(p);
  ASSERT_TRUE(r.optimal());
  // Cheapest fill: 2 at cost 1, then 2 at cost 3 -> 2+6=8.
  EXPECT_NEAR(r.objective, 8.0, kTol);
  EXPECT_NEAR(r.values[1], 2.0, kTol);
  EXPECT_NEAR(r.values[2], 2.0, kTol);
}

TEST(IlpTest, UnboundedDetected) {
  lp::Problem p(lp::Sense::kMaximize);
  p.add_variable(1.0);
  const IlpResult r = solve_all_integer(p);
  EXPECT_EQ(r.status, lp::SolveStatus::kUnbounded);
}

TEST(IlpTest, NodeLimitReturnsIterationLimitWithoutIncumbent) {
  lp::Problem p(lp::Sense::kMaximize);
  // A problem needing at least one branch.
  p.add_variable(1.0, 0.0, 10.0);
  p.add_dense_constraint({2.0}, lp::RowType::kLe, 5.0);
  IlpOptions opts;
  opts.max_nodes = 1;  // root only; relaxation is fractional -> no incumbent
  const IlpResult r = solve_all_integer(p, opts);
  EXPECT_EQ(r.status, lp::SolveStatus::kIterationLimit);
}

TEST(IlpTest, LpIterationLimitIsNotReportedAsInfeasible) {
  // Cap the simplex at one pivot so every node's relaxation comes back
  // kIterationLimit. The subtree is dropped unexplored, which is not a proof
  // of infeasibility: the solver must report kIterationLimit (and count the
  // dropped nodes), not kInfeasible. Pre-fix, limited relaxations were
  // silently treated like infeasible ones.
  lp::Problem p(lp::Sense::kMaximize);
  p.add_variable(3.0);
  p.add_variable(5.0);
  p.add_dense_constraint({1.0, 0.0}, lp::RowType::kLe, 4.0);
  p.add_dense_constraint({0.0, 2.0}, lp::RowType::kLe, 12.0);
  p.add_dense_constraint({3.0, 2.0}, lp::RowType::kLe, 18.0);
  ASSERT_TRUE(solve_all_integer(p).optimal()) << "baseline must be feasible";

  for (const auto algorithm : {IlpOptions::Algorithm::kCopyFree,
                               IlpOptions::Algorithm::kReference}) {
    IlpOptions opts;
    opts.algorithm = algorithm;
    opts.lp_options.max_iterations = 1;
    const IlpResult r = solve_all_integer(p, opts);
    EXPECT_EQ(r.status, lp::SolveStatus::kIterationLimit);
    EXPECT_GT(r.nodes_dropped_by_limit, 0u);
  }
}

// ---------------------------------------------------------------------------
// Property sweep: random small ILPs vs exhaustive enumeration over the
// integer box.
// ---------------------------------------------------------------------------

class IlpRandomProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IlpRandomProperty, MatchesExhaustiveEnumeration) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.uniform_int(1, 3));
  const int rows = static_cast<int>(rng.uniform_int(1, 4));
  const bool minimize = rng.uniform() < 0.5;

  lp::Problem p(minimize ? lp::Sense::kMinimize : lp::Sense::kMaximize);
  std::vector<int> lo(n), hi(n);
  for (int i = 0; i < n; ++i) {
    lo[i] = static_cast<int>(rng.uniform_int(-2, 1));
    hi[i] = lo[i] + static_cast<int>(rng.uniform_int(0, 5));
    p.add_variable(rng.uniform(-4.0, 4.0), lo[i], hi[i]);
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<double> coeffs(n);
    for (auto& c : coeffs) c = rng.uniform(-2.0, 2.0);
    // rhs around the box midpoint value keeps a good mix of feasible and
    // infeasible instances.
    double mid = 0.0;
    for (int i = 0; i < n; ++i) mid += coeffs[i] * 0.5 * (lo[i] + hi[i]);
    p.add_dense_constraint(coeffs,
                           rng.uniform() < 0.5 ? lp::RowType::kLe
                                               : lp::RowType::kGe,
                           mid + rng.uniform(-2.0, 2.0));
  }

  const IlpResult r = solve_all_integer(p);

  // The copy-free search (with maintained-row pricing, bound propagation, and
  // incumbent seeding) must return exactly what the reference copy-per-node
  // DFS over rescan-priced relaxations returns.
  IlpOptions ref_opts;
  ref_opts.algorithm = IlpOptions::Algorithm::kReference;
  ref_opts.lp_options.pricing = lp::SimplexOptions::Pricing::kRescan;
  const IlpResult ref = solve_all_integer(p, ref_opts);
  ASSERT_EQ(r.status, ref.status) << lp::to_string(r.status) << " vs "
                                  << lp::to_string(ref.status);
  if (r.optimal()) {
    EXPECT_NEAR(r.objective, ref.objective, 1e-9);
    ASSERT_EQ(r.values.size(), ref.values.size());
    for (std::size_t i = 0; i < r.values.size(); ++i) {
      EXPECT_EQ(r.values[i], ref.values[i]) << "var " << i;
    }
  }

  // Exhaustive enumeration of all integer points in the box.
  double best = minimize ? std::numeric_limits<double>::infinity()
                         : -std::numeric_limits<double>::infinity();
  bool any_feasible = false;
  std::vector<int> x(n);
  for (int i = 0; i < n; ++i) x[i] = lo[i];
  auto feasible = [&]() {
    for (const auto& c : p.constraints()) {
      double lhs = 0.0;
      for (std::size_t k = 0; k < c.vars.size(); ++k) {
        lhs += c.coeffs[k] * x[c.vars[k]];
      }
      if (c.type == lp::RowType::kLe && lhs > c.rhs + 1e-9) return false;
      if (c.type == lp::RowType::kGe && lhs < c.rhs - 1e-9) return false;
    }
    return true;
  };
  bool done = false;
  while (!done) {
    if (feasible()) {
      any_feasible = true;
      double obj = 0.0;
      for (int i = 0; i < n; ++i) obj += p.objective()[i] * x[i];
      best = minimize ? std::min(best, obj) : std::max(best, obj);
    }
    int d = 0;
    while (d < n && ++x[d] > hi[d]) {
      x[d] = lo[d];
      ++d;
    }
    done = d == n;
  }

  if (!any_feasible) {
    EXPECT_EQ(r.status, lp::SolveStatus::kInfeasible)
        << "enumeration found no feasible point but solver reported "
        << lp::to_string(r.status);
  } else {
    ASSERT_TRUE(r.optimal()) << lp::to_string(r.status);
    EXPECT_NEAR(r.objective, best, 1e-5);
    // Returned point must be integral and feasible.
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(r.values[i], std::round(r.values[i]), 1e-6);
      x[i] = static_cast<int>(std::round(r.values[i]));
    }
    EXPECT_TRUE(feasible());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomIlps, IlpRandomProperty,
                         ::testing::ValuesIn([] {
                           std::vector<std::uint64_t> seeds;
                           for (std::uint64_t s = 1; s <= 50; ++s) {
                             seeds.push_back(s * 104729);
                           }
                           return seeds;
                         }()));

}  // namespace
}  // namespace wasp::ilp
