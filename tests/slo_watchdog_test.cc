// SLO watchdog: spec parsing, windowed violation episodes, trace spans and
// slo.* metrics, plus the wasp_system wiring that drives it per tick.
#include "runtime/slo_watchdog.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/bandwidth_model.h"
#include "net/network.h"
#include "net/topology.h"
#include "obs/trace.h"
#include "obs/trace_analysis.h"
#include "runtime/wasp_system.h"
#include "workload/patterns.h"
#include "workload/queries.h"

namespace wasp::runtime {
namespace {

// ---------------------------------------------------------------------------
// SloSpec

TEST(SloSpecTest, ParsesFullSpecAndSuffixedSeconds) {
  std::string error;
  const auto spec = SloSpec::parse(
      "delay_p99=5s,delay_p95=3,delay_max=20sec,ratio_min=0.9,window=10s",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_DOUBLE_EQ(spec->delay_p99_sec, 5.0);
  EXPECT_DOUBLE_EQ(spec->delay_p95_sec, 3.0);
  EXPECT_DOUBLE_EQ(spec->delay_max_sec, 20.0);
  EXPECT_DOUBLE_EQ(spec->ratio_min, 0.9);
  EXPECT_DOUBLE_EQ(spec->window_sec, 10.0);
  EXPECT_TRUE(spec->any());

  // to_string renders every set bound; the result parses back identically.
  const auto reparsed = SloSpec::parse(spec->to_string());
  ASSERT_TRUE(reparsed.has_value()) << spec->to_string();
  EXPECT_DOUBLE_EQ(reparsed->delay_p99_sec, spec->delay_p99_sec);
  EXPECT_DOUBLE_EQ(reparsed->ratio_min, spec->ratio_min);
  EXPECT_DOUBLE_EQ(reparsed->window_sec, spec->window_sec);
}

TEST(SloSpecTest, DefaultsWindowAndAllowsPartialSpecs) {
  const auto spec = SloSpec::parse("delay_p99=5");
  ASSERT_TRUE(spec.has_value());
  EXPECT_DOUBLE_EQ(spec->window_sec, 30.0);
  EXPECT_LT(spec->ratio_min, 0.0);  // unset
  EXPECT_LT(spec->delay_max_sec, 0.0);
}

TEST(SloSpecTest, RejectsBadSpecsWithReason) {
  std::string error;
  EXPECT_FALSE(SloSpec::parse("delay_p42=5", &error).has_value());
  EXPECT_NE(error.find("delay_p42"), std::string::npos) << error;
  EXPECT_FALSE(SloSpec::parse("delay_p99=abc", &error).has_value());
  EXPECT_FALSE(SloSpec::parse("delay_p99", &error).has_value());
  EXPECT_FALSE(SloSpec::parse("window=30", &error).has_value());  // no bound
  EXPECT_FALSE(SloSpec::parse("delay_p99=5,window=0", &error).has_value());
  EXPECT_FALSE(SloSpec::parse("", &error).has_value());
  EXPECT_FALSE(SloSpec::parse("delay_p99=-3", &error).has_value());
}

// ---------------------------------------------------------------------------
// SloWatchdog episodes (driven directly, no engine)

void record_delay(Recorder* recorder, double t, double delay_sec,
                  double ratio = 1.0) {
  recorder->record_tick(t, delay_sec, ratio, 1.0, 0.0, 100.0, 100.0, 0.0);
}

TEST(SloWatchdogTest, OpensAndClosesEpisodeAroundBreach) {
  const auto spec = SloSpec::parse("delay_max=5,window=4");
  ASSERT_TRUE(spec.has_value());
  auto sink = std::make_shared<obs::MemorySink>();
  obs::TraceEmitter trace(sink);
  obs::MetricsRegistry metrics;
  SloWatchdog watchdog(*spec, &trace, &metrics);
  Recorder recorder;

  double t = 0.0;
  for (; t < 10.0; t += 1.0) {
    record_delay(&recorder, t, 1.0);
    trace.set_now(t);
    watchdog.tick(t, recorder);
  }
  EXPECT_FALSE(watchdog.in_violation());
  EXPECT_EQ(watchdog.violations(), 0u);

  // Three ticks above the bound: one episode, not three.
  for (; t < 13.0; t += 1.0) {
    record_delay(&recorder, t, 12.0);
    trace.set_now(t);
    watchdog.tick(t, recorder);
    EXPECT_TRUE(watchdog.in_violation());
  }
  EXPECT_EQ(watchdog.violations(), 1u);
  EXPECT_DOUBLE_EQ(metrics.counter("slo.violations").value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("slo.in_violation").value(), 1.0);

  // Recovery: the breach leaves the window once the bad ticks age out.
  for (; t < 20.0; t += 1.0) {
    record_delay(&recorder, t, 1.0);
    trace.set_now(t);
    watchdog.tick(t, recorder);
  }
  EXPECT_FALSE(watchdog.in_violation());
  EXPECT_EQ(watchdog.violations(), 1u);
  EXPECT_GT(watchdog.violation_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("slo.in_violation").value(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.counter("slo.violation_seconds").value(),
                   watchdog.violation_seconds());

  // Trace: one balanced "slo_violation" span with begin/end markers inside.
  const auto begins = sink->of_type("slo_violation_begin");
  const auto ends = sink->of_type("slo_violation_end");
  ASSERT_EQ(begins.size(), 1u);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_NE(begins[0].str("reasons").find("delay_max"), std::string::npos);
  EXPECT_EQ(ends[0].str("status"), "resolved");
  EXPECT_GT(ends[0].num("duration_sec"), 0.0);

  std::vector<obs::TraceEvent> events(sink->events().begin(),
                                      sink->events().end());
  const auto index = obs::SpanIndex::build(events);
  EXPECT_TRUE(index.balanced());
  ASSERT_EQ(index.nodes.size(), 1u);
  EXPECT_EQ(index.nodes[0].name, "slo_violation");
  EXPECT_EQ(index.nodes[0].parent, obs::kNoSpan);
  EXPECT_TRUE(index.nodes[0].closed);
}

TEST(SloWatchdogTest, RatioBoundUsesWindowMeanAndFinishCloses) {
  const auto spec = SloSpec::parse("ratio_min=0.9,window=5");
  ASSERT_TRUE(spec.has_value());
  auto sink = std::make_shared<obs::MemorySink>();
  obs::TraceEmitter trace(sink);
  SloWatchdog watchdog(*spec, &trace, /*metrics=*/nullptr);
  Recorder recorder;

  double t = 0.0;
  for (; t < 6.0; t += 1.0) {
    record_delay(&recorder, t, 1.0, /*ratio=*/1.0);
    trace.set_now(t);
    watchdog.tick(t, recorder);
  }
  EXPECT_FALSE(watchdog.in_violation());
  for (; t < 12.0; t += 1.0) {
    record_delay(&recorder, t, 1.0, /*ratio=*/0.4);
    trace.set_now(t);
    watchdog.tick(t, recorder);
  }
  EXPECT_TRUE(watchdog.in_violation());

  // End of run with the episode still open: finish() closes it unresolved.
  watchdog.finish(t);
  const auto ends = sink->of_type("slo_violation_end");
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0].str("status"), "unresolved");
  std::vector<obs::TraceEvent> events(sink->events().begin(),
                                      sink->events().end());
  EXPECT_TRUE(obs::SpanIndex::build(events).balanced());
}

TEST(SloWatchdogTest, RunsWithoutTraceOrMetrics) {
  const auto spec = SloSpec::parse("delay_max=1,window=2");
  ASSERT_TRUE(spec.has_value());
  SloWatchdog watchdog(*spec, /*trace=*/nullptr, /*metrics=*/nullptr);
  Recorder recorder;
  record_delay(&recorder, 0.0, 10.0);
  watchdog.tick(0.0, recorder);
  EXPECT_TRUE(watchdog.in_violation());
  EXPECT_EQ(watchdog.violations(), 1u);
  watchdog.finish(1.0);
  EXPECT_FALSE(watchdog.in_violation());
  EXPECT_DOUBLE_EQ(watchdog.violation_seconds(), 1.0);
}

// ---------------------------------------------------------------------------
// End-to-end: the runtime drives the watchdog from SystemConfig::slo.

struct Testbed {
  explicit Testbed(std::uint64_t seed = 7)
      : rng(seed),
        topology(net::Topology::make_paper_testbed(rng)),
        network(topology, std::make_shared<net::ConstantBandwidth>()) {
    for (const auto& site : topology.sites()) {
      if (site.type == net::SiteType::kEdge) {
        (east.size() <= west.size() ? east : west).push_back(site.id);
      } else if (!sink.valid()) {
        sink = site.id;
      }
    }
  }

  Rng rng;
  net::Topology topology;
  net::Network network;
  std::vector<SiteId> east, west;
  SiteId sink;
};

TEST(SloWatchdogIntegrationTest, OverloadOpensEpisodeAndRecoveryClosesIt) {
  Testbed bed;
  auto spec = workload::make_topk_topics(bed.east, bed.west, bed.sink);
  workload::SteppedWorkload pattern;
  for (OperatorId src : spec.sources) {
    for (SiteId s : spec.plan.op(src).pinned_sites) {
      pattern.set_base_rate(src, s, 10'000.0);
    }
  }
  pattern.add_step(100.0, 3.0);  // hard surge: delay passes the bound
  pattern.add_step(200.0, 1.0);  // then back to normal so WASP can drain

  auto sink = std::make_shared<obs::MemorySink>(1 << 20);
  SystemConfig config;
  config.mode = AdaptationMode::kWasp;
  config.trace_sink = sink;
  config.slo = *SloSpec::parse("delay_max=5,window=20");
  {
    WaspSystem system(bed.network, std::move(spec), pattern, config);
    system.run_until(600.0);

    const SloWatchdog* watchdog = system.slo_watchdog();
    ASSERT_NE(watchdog, nullptr);
    EXPECT_GE(watchdog->violations(), 1u);
    EXPECT_GT(watchdog->violation_seconds(), 0.0);
    EXPECT_FALSE(watchdog->in_violation()) << "run should end recovered";

    const auto* violations =
        system.metrics().find_counter("slo.violations");
    ASSERT_NE(violations, nullptr);
    EXPECT_DOUBLE_EQ(violations->value(),
                     static_cast<double>(watchdog->violations()));
  }

  // After destruction every span (episodes included) is closed.
  std::vector<obs::TraceEvent> events(sink->events().begin(),
                                      sink->events().end());
  const auto index = obs::SpanIndex::build(events);
  EXPECT_TRUE(index.balanced())
      << (index.errors.empty() ? "" : index.errors[0]);
  bool saw_violation_span = false;
  for (const auto& node : index.nodes) {
    if (node.name == "slo_violation") {
      saw_violation_span = true;
      EXPECT_TRUE(node.closed);
    }
  }
  EXPECT_TRUE(saw_violation_span);
}

TEST(SloWatchdogIntegrationTest, UnsetSloLeavesWatchdogNull) {
  Testbed bed;
  auto spec = workload::make_topk_topics(bed.east, bed.west, bed.sink);
  workload::SteppedWorkload pattern;
  for (OperatorId src : spec.sources) {
    for (SiteId s : spec.plan.op(src).pinned_sites) {
      pattern.set_base_rate(src, s, 10'000.0);
    }
  }
  SystemConfig config;
  config.mode = AdaptationMode::kWasp;
  WaspSystem system(bed.network, std::move(spec), pattern, config);
  system.run_until(50.0);
  EXPECT_EQ(system.slo_watchdog(), nullptr);
  EXPECT_EQ(system.metrics().find_counter("slo.violations"), nullptr);
}

}  // namespace
}  // namespace wasp::runtime
