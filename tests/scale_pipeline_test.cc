// Tests for the planet-scale pipeline (DESIGN.md §14): the edge-hierarchy
// topology generator and its spec grammar, the warm-started / budgeted /
// LP-rounded placement stack, region-decomposed re-plans, and the bottleneck
// max-flow migration path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/units.h"
#include "net/topology.h"
#include "net/topology_spec.h"
#include "physical/placement.h"
#include "physical/scheduler.h"
#include "physical/solver_budget.h"
#include "state/migration.h"

namespace wasp {
namespace {

// ---------------------------------------------------------------------------
// Topology generator
// ---------------------------------------------------------------------------

void expect_topologies_identical(const net::Topology& a,
                                 const net::Topology& b) {
  ASSERT_EQ(a.num_sites(), b.num_sites());
  for (std::size_t i = 0; i < a.num_sites(); ++i) {
    const SiteId id(static_cast<std::int64_t>(i));
    const auto& sa = a.site(id);
    const auto& sb = b.site(id);
    EXPECT_EQ(sa.name, sb.name);
    EXPECT_EQ(sa.type, sb.type);
    EXPECT_EQ(sa.slots, sb.slots);
    EXPECT_EQ(a.domain_of(id), b.domain_of(id));
    for (std::size_t j = 0; j < a.num_sites(); ++j) {
      const SiteId other(static_cast<std::int64_t>(j));
      // EXPECT_EQ on doubles is exact: byte-identical, not approximately so.
      EXPECT_EQ(a.base_bandwidth(id, other), b.base_bandwidth(id, other));
      EXPECT_EQ(a.latency_ms(id, other), b.latency_ms(id, other));
    }
  }
}

TEST(EdgeHierarchyTest, SameSeedIsByteIdentical) {
  net::EdgeHierarchyParams params;
  params.edge_sites = 48;
  params.regions = 4;
  Rng ra(9), rb(9);
  const net::Topology a = net::Topology::make_edge_hierarchy(params, ra);
  const net::Topology b = net::Topology::make_edge_hierarchy(params, rb);
  expect_topologies_identical(a, b);
}

TEST(EdgeHierarchyTest, DifferentSeedsDiffer) {
  net::EdgeHierarchyParams params;
  params.edge_sites = 24;
  params.regions = 4;
  Rng ra(9), rb(10);
  const net::Topology a = net::Topology::make_edge_hierarchy(params, ra);
  const net::Topology b = net::Topology::make_edge_hierarchy(params, rb);
  ASSERT_EQ(a.num_sites(), b.num_sites());
  bool any_difference = false;
  for (std::size_t i = 0; i < a.num_sites() && !any_difference; ++i) {
    for (std::size_t j = 0; j < a.num_sites(); ++j) {
      const SiteId from(static_cast<std::int64_t>(i));
      const SiteId to(static_cast<std::int64_t>(j));
      if (a.base_bandwidth(from, to) != b.base_bandwidth(from, to)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(EdgeHierarchyTest, TierShapeAndDistributionBounds) {
  net::EdgeHierarchyParams params;
  params.edge_sites = 64;
  params.regions = 4;
  params.core_dcs = 2;
  params.regional_dcs_per_region = 1;
  params.edge_slots_min = 2;
  params.edge_slots_max = 4;
  params.domains_per_region = 2;
  Rng rng(11);
  const net::Topology topo = net::Topology::make_edge_hierarchy(params, rng);
  ASSERT_EQ(topo.num_sites(),
            static_cast<std::size_t>(params.total_sites()));

  std::vector<SiteId> cores, regionals, edge_sites;
  for (const auto& site : topo.sites()) {
    if (site.type == net::SiteType::kEdge) {
      EXPECT_GE(site.slots, params.edge_slots_min);
      EXPECT_LE(site.slots, params.edge_slots_max);
      // Edge sites live in their region's domain range.
      EXPECT_GE(topo.domain_of(site.id), 0);
      EXPECT_LT(topo.domain_of(site.id),
                params.regions * params.domains_per_region);
      edge_sites.push_back(site.id);
    } else if (site.slots == params.core_slots) {
      // Core DCs sit in their own domains above the regional range.
      EXPECT_GE(topo.domain_of(site.id),
                params.regions * params.domains_per_region);
      cores.push_back(site.id);
    } else {
      EXPECT_EQ(site.slots, params.regional_slots);
      regionals.push_back(site.id);
    }
  }
  EXPECT_EQ(cores.size(), static_cast<std::size_t>(params.core_dcs));
  EXPECT_EQ(regionals.size(),
            static_cast<std::size_t>(params.regions *
                                     params.regional_dcs_per_region));
  EXPECT_EQ(edge_sites.size(), static_cast<std::size_t>(params.edge_sites));

  // Per-tier-pair bandwidth clamps (Fig. 7 shapes).
  for (SiteId a : cores) {
    for (SiteId b : cores) {
      if (a == b) continue;
      const double bw = topo.base_bandwidth(a, b);
      EXPECT_GE(bw, params.core_bw_min);
      EXPECT_LE(bw, params.core_bw_max);
    }
  }
  for (SiteId a : regionals) {
    for (SiteId b : regionals) {
      if (a == b) continue;
      const double bw = topo.base_bandwidth(a, b);
      EXPECT_GE(bw, params.dc_bw_min);
      EXPECT_LE(bw, params.dc_bw_max);
    }
  }
  const double edge_lo = std::min(params.edge_bw_min, params.far_edge_bw_min);
  const double edge_hi = std::max(params.edge_bw_max, params.far_edge_bw_max);
  for (SiteId e : edge_sites) {
    for (const auto& other : topo.sites()) {
      if (other.id == e) continue;
      EXPECT_GE(topo.base_bandwidth(e, other.id), edge_lo);
      EXPECT_LE(topo.base_bandwidth(e, other.id), edge_hi);
      EXPECT_GT(topo.latency_ms(e, other.id), 0.0);
    }
  }
}

// ---------------------------------------------------------------------------
// TopologySpec grammar
// ---------------------------------------------------------------------------

TEST(TopologySpecTest, RoundTripsThroughToString) {
  for (const char* text :
       {"paper", "uniform:sites=8;slots=2;bw=100;lat=10",
        "edge:sites=64;regions=4;core=2;edge-slots=3-5",
        "edge:sites=200,regions=8,domains-per-region=2"}) {
    SCOPED_TRACE(text);
    std::string error;
    const auto spec = net::TopologySpec::parse(text, &error);
    ASSERT_TRUE(spec.has_value()) << error;
    const auto again = net::TopologySpec::parse(spec->to_string(), &error);
    ASSERT_TRUE(again.has_value()) << error;
    EXPECT_EQ(spec->to_string(), again->to_string());
    EXPECT_EQ(spec->expected_sites(), again->expected_sites());
  }
}

TEST(TopologySpecTest, ExpectedSitesMatchesBuild) {
  std::string error;
  const auto spec =
      net::TopologySpec::parse("edge:sites=64;regions=4;core=2", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->expected_sites(), 64 + 4 + 2);
  Rng rng(3);
  EXPECT_EQ(spec->build(rng).num_sites(),
            static_cast<std::size_t>(spec->expected_sites()));
}

TEST(TopologySpecTest, MalformedSpecsAreHardErrors) {
  for (const char* text :
       {"frobnicate", "edge:sites=banana", "edge:bogus-key=3",
        "paper:sites=4", "uniform:sites=", "edge:edge-slots=5-3", ""}) {
    SCOPED_TRACE(text);
    std::string error;
    EXPECT_FALSE(net::TopologySpec::parse(text, &error).has_value());
    EXPECT_FALSE(error.empty());
  }
}

// ---------------------------------------------------------------------------
// Placement solver stack
// ---------------------------------------------------------------------------

// NetworkView over a topology's ground truth (all slots free).
class TopologyView final : public physical::NetworkView {
 public:
  explicit TopologyView(const net::Topology& topo) : topo_(topo) {}
  [[nodiscard]] std::size_t num_sites() const override {
    return topo_.num_sites();
  }
  [[nodiscard]] double available_mbps(SiteId from, SiteId to) const override {
    return topo_.base_bandwidth(from, to);
  }
  [[nodiscard]] double latency_ms(SiteId from, SiteId to) const override {
    return topo_.latency_ms(from, to);
  }
  [[nodiscard]] int available_slots(SiteId site) const override {
    return topo_.site(site).slots;
  }

 private:
  const net::Topology& topo_;
};

physical::StageContext testbed_stage(const net::Topology& topo,
                                     double eps_per_source) {
  physical::StageContext ctx;
  ctx.parallelism = 3;
  SiteId sink;
  for (const auto& site : topo.sites()) {
    if (site.type == net::SiteType::kEdge) {
      if (ctx.upstream.size() < 4) {
        ctx.upstream.push_back({site.id, eps_per_source, 120.0});
      }
    } else if (!sink.valid()) {
      sink = site.id;
    }
  }
  ctx.downstream.push_back({sink, eps_per_source, 60.0});
  return ctx;
}

TEST(ScaleSolverTest, WarmStartIsBitIdenticalToCold) {
  Rng rng(7);
  const net::Topology topo = net::Topology::make_paper_testbed(rng);
  const TopologyView view(topo);

  auto config = [](bool warm) {
    physical::Scheduler::Config c;
    c.force_branch_and_bound = true;
    c.direct_solve_min_sites = 1;  // treat the 16-site testbed as at-scale
    c.warm_start = warm;
    c.cross_epoch_cache = false;  // force a genuine re-solve every epoch
    return c;
  };
  const physical::Scheduler warm(config(true));
  const physical::Scheduler cold(config(false));

  // A drifting re-plan sequence: the rate changes every epoch, so the warm
  // scheduler re-installs the captured basis against fresh numbers.
  for (int epoch = 0; epoch < 5; ++epoch) {
    SCOPED_TRACE("epoch " + std::to_string(epoch));
    warm.begin_epoch();
    cold.begin_epoch();
    const double eps = 4'000.0 * (1.0 + 0.01 * epoch);
    const physical::StageContext ctx = testbed_stage(topo, eps);
    const auto a = warm.place_stage(ctx, view);
    const auto b = cold.place_stage(ctx, view);
    ASSERT_EQ(a.has_value(), b.has_value());
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->objective, b->objective);  // bit-identical
    EXPECT_EQ(a->placement, b->placement);
  }
}

TEST(ScaleSolverTest, DirectSolveMatchesReferenceAtScale) {
  net::EdgeHierarchyParams params;
  params.edge_sites = 56;
  params.regions = 4;
  Rng rng(5);
  const net::Topology topo = net::Topology::make_edge_hierarchy(params, rng);
  const TopologyView view(topo);
  ASSERT_GE(topo.num_sites(), 33u);  // at-scale: the direct solve engages

  const physical::Scheduler fast;  // default config -> direct solve at scale
  const physical::Scheduler reference(
      physical::Scheduler::Config{.use_reference_solvers = true});

  physical::StageContext ctx;
  ctx.parallelism = 6;
  int picked = 0;
  for (const auto& site : topo.sites()) {
    if (site.type == net::SiteType::kEdge && picked < 6) {
      ctx.upstream.push_back({site.id, 2'000.0, 120.0});
      ++picked;
    }
  }
  ctx.downstream.push_back({SiteId(0), 2'000.0, 60.0});

  const auto got = fast.place_stage(ctx, view);
  const auto want = reference.place_stage(ctx, view);
  ASSERT_EQ(got.has_value(), want.has_value());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->method, physical::PlacementOutcome::Method::kDirect);
  EXPECT_EQ(got->objective, want->objective);
  EXPECT_EQ(got->placement, want->placement);
}

TEST(ScaleSolverTest, RoundingFallbackStaysFeasibleUnderTrippedBudget) {
  Rng rng(7);
  const net::Topology topo = net::Topology::make_paper_testbed(rng);
  const TopologyView view(topo);

  physical::Scheduler::Config config;
  config.force_branch_and_bound = true;
  config.direct_solve_min_sites = 1;
  config.cross_epoch_cache = false;
  // One-pivot relaxations trip immediately; the B&B finishes with no
  // incumbent and the scheduler must fall through to LP rounding.
  config.lp_pivot_limit = 1;
  const physical::Scheduler scheduler(config);

  const physical::StageContext ctx = testbed_stage(topo, 4'000.0);
  const auto outcome = scheduler.place_stage(ctx, view);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->method, physical::PlacementOutcome::Method::kRounded);

  // The rounded placement is feasible: exact task total, slot bounds kept.
  EXPECT_EQ(outcome->placement.parallelism(), ctx.parallelism);
  for (std::size_t s = 0; s < outcome->placement.per_site.size(); ++s) {
    const SiteId site(static_cast<std::int64_t>(s));
    EXPECT_GE(outcome->placement.per_site[s], 0);
    EXPECT_LE(outcome->placement.per_site[s], view.available_slots(site));
  }

  // Same instance, uncapped: the exact optimum. Rounding may tie but can
  // never beat it.
  physical::Scheduler::Config exact_config = config;
  exact_config.lp_pivot_limit = 0;
  const physical::Scheduler exact(exact_config);
  const auto best = exact.place_stage(ctx, view);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->method, physical::PlacementOutcome::Method::kExact);
  EXPECT_GE(outcome->objective, best->objective - 1e-9);
}

TEST(AdaptiveNodeBudgetTest, BumpAndReduceDynamics) {
  physical::AdaptiveNodeBudget budget(512);
  EXPECT_EQ(budget.limit(), 512u);
  budget.bump();  // trip: interval 0 -> 1
  EXPECT_EQ(budget.limit(), 1024u);
  budget.bump();  // trip: interval 1 -> 2
  EXPECT_EQ(budget.limit(), 512u * 3);
  budget.reduce();  // clean finish: interval 2 -> 1
  EXPECT_EQ(budget.limit(), 1024u);
  budget.reduce();
  budget.reduce();  // decays back to (and stays at) the base
  EXPECT_EQ(budget.limit(), 512u);
  for (int i = 0; i < 40; ++i) budget.bump();
  EXPECT_EQ(budget.limit(), 512u * (1 + 1024));  // capped interval
}

// A two-region clique: sites 0-3 are region A, 4-7 region B. In-region
// links are fast and near; cross-region links are slow and far, so the
// optimal placement of an A-local stage never leaves region A -- the
// separable instance where a region-pinned solve must equal the global one.
class TwoRegionView final : public physical::NetworkView {
 public:
  [[nodiscard]] std::size_t num_sites() const override { return 8; }
  [[nodiscard]] double available_mbps(SiteId from, SiteId to) const override {
    if (from == to) return 1e6;
    return same_region(from, to) ? 200.0 : 25.0;
  }
  [[nodiscard]] double latency_ms(SiteId from, SiteId to) const override {
    if (from == to) return 0.1;
    return same_region(from, to) ? 5.0 : 200.0;
  }
  [[nodiscard]] int available_slots(SiteId) const override { return 2; }

 private:
  static bool same_region(SiteId a, SiteId b) {
    return (a.value() < 4) == (b.value() < 4);
  }
};

TEST(ScaleSolverTest, RegionPinnedReplanMatchesGlobalOnSeparableInstance) {
  const TwoRegionView view;
  const physical::Scheduler scheduler;

  physical::StageContext ctx;
  ctx.parallelism = 4;
  ctx.upstream.push_back({SiteId(0), 5'000.0, 200.0});
  ctx.downstream.push_back({SiteId(1), 5'000.0, 100.0});

  const auto global = scheduler.place_stage(ctx, view);
  ASSERT_TRUE(global.has_value());
  // Sanity: the global optimum is A-local, so pinning B is not a restriction.
  for (int s = 4; s < 8; ++s) EXPECT_EQ(global->placement.per_site[s], 0);

  // The decomposed re-plan (adapt::AdaptationPolicy, DESIGN.md §14) pins
  // out-of-region sites to their current task count -- zero here.
  physical::StageContext pinned = ctx;
  pinned.min_per_site.assign(view.num_sites(), 0);
  pinned.max_per_site.assign(view.num_sites(), -1);
  for (int s = 4; s < 8; ++s) pinned.max_per_site[s] = 0;
  const auto regional = scheduler.place_stage(pinned, view);
  ASSERT_TRUE(regional.has_value());
  EXPECT_EQ(regional->objective, global->objective);
  EXPECT_EQ(regional->placement, global->placement);
}

// ---------------------------------------------------------------------------
// Bottleneck max-flow migration path
// ---------------------------------------------------------------------------

class MigrationView final : public physical::NetworkView {
 public:
  explicit MigrationView(std::size_t n, double default_mbps = 100.0)
      : n_(n), bandwidth_(n * n, default_mbps) {}
  void set_bandwidth(SiteId from, SiteId to, double mbps) {
    bandwidth_[static_cast<std::size_t>(from.value()) * n_ +
               static_cast<std::size_t>(to.value())] = mbps;
  }
  [[nodiscard]] std::size_t num_sites() const override { return n_; }
  [[nodiscard]] double available_mbps(SiteId from, SiteId to) const override {
    if (from == to) return 1e6;
    return bandwidth_[static_cast<std::size_t>(from.value()) * n_ +
                      static_cast<std::size_t>(to.value())];
  }
  [[nodiscard]] double latency_ms(SiteId, SiteId) const override {
    return 10.0;
  }
  [[nodiscard]] int available_slots(SiteId) const override { return 8; }

 private:
  std::size_t n_;
  std::vector<double> bandwidth_;
};

TEST(MigrationFlowTest, UniformInstanceHitsAnalyticOptimum) {
  // 8 sources x 8 destinations = 64 pairs: past the threshold, the planner
  // takes the bottleneck max-flow path. With uniform links the optimal
  // makespan is the per-endpoint aggregate bound S / (nd * r).
  const std::size_t ns = 8, nd = 8;
  MigrationView view(ns + nd, 100.0);
  std::vector<state::StateSource> sources;
  std::vector<state::StateDestination> dests;
  for (std::size_t i = 0; i < ns; ++i) {
    sources.push_back({SiteId(static_cast<std::int64_t>(i)), 10.0});
  }
  for (std::size_t j = 0; j < nd; ++j) {
    dests.push_back({SiteId(static_cast<std::int64_t>(ns + j)), 10.0});
  }

  state::MigrationPlanner planner(state::MigrationStrategy::kNetworkAware,
                                  Rng(1));
  const auto plan = planner.plan(sources, dests, view);

  const double r = mbps_to_mb_per_sec(100.0);
  const double optimum = 10.0 / (static_cast<double>(nd) * r);
  EXPECT_NEAR(plan.estimated_transition_sec, optimum, optimum * 1e-6);

  // Fluid balance: every source fully drained, every share delivered.
  std::vector<double> out_mb(ns + nd, 0.0), in_mb(ns + nd, 0.0);
  for (const auto& move : plan.moves) {
    out_mb[static_cast<std::size_t>(move.from.value())] += move.size_mb;
    in_mb[static_cast<std::size_t>(move.to.value())] += move.size_mb;
    EXPECT_GT(move.size_mb, 0.0);
  }
  for (std::size_t i = 0; i < ns; ++i) EXPECT_NEAR(out_mb[i], 10.0, 1e-6);
  for (std::size_t j = 0; j < nd; ++j) EXPECT_NEAR(in_mb[ns + j], 10.0, 1e-6);
}

TEST(MigrationFlowTest, SlowDestinationSetsTheMakespan) {
  // One destination column is 10x slower; its aggregate-inflow bound
  // (10 MB over 8 x 1.25 MB/s) dominates and is achievable, so the
  // bottleneck search must land exactly on it.
  const std::size_t ns = 8, nd = 8;
  MigrationView view(ns + nd, 100.0);
  const SiteId slow(static_cast<std::int64_t>(ns));
  for (std::size_t i = 0; i < ns; ++i) {
    view.set_bandwidth(SiteId(static_cast<std::int64_t>(i)), slow, 10.0);
  }
  std::vector<state::StateSource> sources;
  std::vector<state::StateDestination> dests;
  for (std::size_t i = 0; i < ns; ++i) {
    sources.push_back({SiteId(static_cast<std::int64_t>(i)), 10.0});
  }
  for (std::size_t j = 0; j < nd; ++j) {
    dests.push_back({SiteId(static_cast<std::int64_t>(ns + j)), 10.0});
  }

  state::MigrationPlanner planner(state::MigrationStrategy::kNetworkAware,
                                  Rng(1));
  const auto plan = planner.plan(sources, dests, view);
  const double optimum =
      10.0 / (static_cast<double>(ns) * mbps_to_mb_per_sec(10.0));
  EXPECT_NEAR(plan.estimated_transition_sec, optimum, optimum * 1e-6);

  double total = 0.0;
  for (const auto& move : plan.moves) total += move.size_mb;
  EXPECT_NEAR(total, 80.0, 1e-6);
}

}  // namespace
}  // namespace wasp
